//! Multi-core line-card model: sharded CAESAR construction.
//!
//! ```text
//! cargo run --release --example concurrent_linecard
//! ```
//!
//! An RSS-style line card partitions flows across worker cores; each
//! core runs a private cache, all cores share one lock-free atomic
//! counter array. The ingest pipeline routes the trace into per-shard
//! batches with a single O(n) pass and pushes evictions through
//! coalescing writeback buffers. This example measures construction
//! throughput from 1 to 8 shards, compares the pipeline against the
//! original O(shards·n) replay implementation and the streaming
//! (mpsc-overlapped) variant, and checks accuracy is unaffected.

use caesar::ConcurrentCaesar;
use caesar_repro::prelude::*;
use std::time::Instant;

fn main() {
    // Bursty (captured-order) replay: flows stay temporally local, so
    // the per-shard caches actually hit and off-chip traffic stays low
    // — the regime a real line card operates in. (Try UniformShuffle
    // to see the pathological case: every cache misses, all shards
    // hammer the shared counters, and scaling inverts.)
    let (trace, truth) = TraceGenerator::new(SynthConfig {
        num_flows: 50_000,
        order: ArrivalOrder::PerFlowBursts,
        ..SynthConfig::default()
    })
    .generate();
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    println!(
        "trace: {} packets, {} flows\n",
        flows.len(),
        trace.num_flows
    );

    let cfg = CaesarConfig {
        cache_entries: 4_096,
        entry_capacity: trace.recommended_entry_capacity(),
        counters: 32_768,
        k: 3,
        ..CaesarConfig::default()
    };

    // The biggest flow, for the accuracy spot-check.
    let (&big_flow, &big_size) = truth.iter().max_by_key(|(_, &x)| x).expect("flows");

    println!("{:>7} {:>12} {:>14} {:>16}", "shards", "time (ms)", "Mpkt/s", "biggest-flow est");
    let mut baseline_ms = 0.0;
    let mut last_ms = 0.0;
    for shards in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let sketch = ConcurrentCaesar::build(cfg, shards, &flows);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if shards == 1 {
            baseline_ms = ms;
        }
        last_ms = ms;
        assert_eq!(sketch.sram().total_added() as usize, flows.len());
        println!(
            "{shards:>7} {ms:>12.1} {:>14.2} {:>10.0} (true {big_size})",
            flows.len() as f64 / ms / 1e3,
            sketch.query(big_flow),
        );
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\nspeedup at 8 shards: {:.2}x on {cores} available core(s)",
        baseline_ms / last_ms
    );
    if cores == 1 {
        println!(
            "(single-core host: sharding can only add overhead here; on a\n\
             multi-core box each shard runs on its own core)"
        );
    }

    // Before/after: the seed's replay implementation re-scans the whole
    // trace in every shard (O(shards·n) hashing) and writes each
    // eviction's counters through one atomic op at a time.
    let shards = 4usize;
    let t0 = Instant::now();
    let slow = ConcurrentCaesar::build_replay(cfg, shards, &flows);
    let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let fast = ConcurrentCaesar::build(cfg, shards, &flows);
    let partitioned_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let stream = ConcurrentCaesar::build_stream(cfg, shards, flows.iter().copied());
    let stream_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fast.sram().snapshot(), slow.sram().snapshot());
    assert_eq!(fast.sram().snapshot(), stream.sram().snapshot());
    println!(
        "\ningest pipeline at {shards} shards (identical counters, pinned):\n\
         {:>14} {replay_ms:>10.1} ms\n\
         {:>14} {partitioned_ms:>10.1} ms  ({:.2}x)\n\
         {:>14} {stream_ms:>10.1} ms  ({:.2}x, partition overlapped via mpsc)",
        "replay (seed)",
        "partitioned",
        replay_ms / partitioned_ms,
        "streamed",
        replay_ms / stream_ms,
    );
    let stats = fast.ingest_stats();
    println!(
        "writeback batching: {} staged updates -> {} SRAM writes \
         ({:.1}x coalescing over {} flushes)",
        stats.staged_updates,
        stats.flushed_updates,
        stats.coalescing_factor(),
        stats.flushes,
    );
    println!(
        "\nflow partitioning keeps each shard's eviction stream deterministic —\n\
         rerun this example and the counter array is bit-identical; batch vs\n\
         stream vs replay agree because saturating adds commute"
    );
}
