//! DDoS watch: continuous heavy-hitter detection over epochs.
//!
//! ```text
//! cargo run --release --example ddos_watch
//! ```
//!
//! An operator's loop: measure each epoch with a fresh CAESAR sketch,
//! flag candidates whose estimated rate crosses the alarm threshold,
//! and score the alarms against ground truth. Mid-run, an attacker
//! starts a pulse flood — the per-epoch top-k makes it jump out.

use caesar::epochs::EpochedCaesar;
use caesar::heavy_hitters::score_detection;
use caesar::Estimator;
use caesar_repro::prelude::*;
use flowtrace::{scenarios, transform};

fn main() {
    // Background traffic, split into 6 epochs.
    let (trace, _) = TraceGenerator::new(SynthConfig {
        num_flows: 10_000,
        seed: 0xDD05,
        ..SynthConfig::default()
    })
    .generate();
    let mut epochs = transform::split_epochs(&trace, 6);

    // The attack: one source floods the victim during epochs 3 and 4,
    // adding ~25% of an epoch's traffic in each.
    let flood_size = (epochs[3].packets.len() / 4) as u64;
    let attack = scenarios::flood(0xBAD0_0001, 0xC0A8_0001, 443, flood_size);
    let attacker = attack.flows[0];
    for e in [3usize, 4] {
        epochs[e] = scenarios::inject(&epochs[e], &attack, 0.0, 1.0);
    }

    let cfg = CaesarConfig {
        cache_entries: 2048,
        entry_capacity: trace.recommended_entry_capacity(),
        counters: 16_384,
        k: 3,
        ..CaesarConfig::default()
    };
    let mut monitor = EpochedCaesar::new(cfg, 6);

    println!("{:>6} {:>10} {:>12} {:>22}", "epoch", "packets", "threshold", "top flow (est)");
    for (e, epoch) in epochs.iter().enumerate() {
        // Candidate set: flows seen this epoch (an operator would take
        // them from the cache or a companion sampler).
        let candidates: Vec<u64> = transform::flow_sizes(epoch).iter().map(|&(f, _)| f).collect();
        for p in &epoch.packets {
            monitor.record(p.flow);
        }
        monitor.rotate();

        let sketch = &monitor
            .epochs()
            .last()
            .expect("epoch just finished")
            .sketch;
        let threshold = epoch.packets.len() as f64 * 0.02; // 2% of epoch
        let hitters = sketch.heavy_hitters(candidates.iter().copied(), threshold, Estimator::Csm);
        let top = hitters.first();
        println!(
            "{e:>6} {:>10} {threshold:>12.0} {:>22}",
            epoch.packets.len(),
            top.map(|h| format!(
                "{}{:x} ({:.0})",
                if h.flow == attacker { "ATTACKER " } else { "" },
                h.flow,
                h.estimate
            ))
            .unwrap_or_else(|| "-".into()),
        );

        // Score the alarm list against this epoch's ground truth.
        let truth = transform::flow_sizes(epoch);
        let report = score_detection(&hitters, truth.iter().copied(), threshold as u64);
        if e == 3 || e == 4 {
            assert!(
                hitters.iter().any(|h| h.flow == attacker),
                "the flood must be flagged in epoch {e}"
            );
        }
        println!(
            "        alarms: {} (precision {:.0}%, recall {:.0}%)",
            hitters.len(),
            100.0 * report.precision(),
            100.0 * report.recall()
        );
    }
    println!("\nThe flood is visible only in epochs 3-4 — epoch rotation localizes it in time.");
}
