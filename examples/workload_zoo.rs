//! Tour of the workload zoo: every traffic family, one sketch each.
//!
//! ```text
//! cargo run --release --example workload_zoo
//! ```
//!
//! Generates each family of [`flowtrace::zoo::standard_zoo`] — four
//! realistic shapes (CDN, KV, flat, bursty), three adversarial ones
//! (mouse flood, single elephant, flow churn), and the CAIDA-shaped
//! fit — runs CAESAR over each, and prints the per-workload accuracy
//! and cache behaviour side by side. It also round-trips one fitted
//! trace through the `CZOO` artifact format to show that a workload is
//! a replayable file, not a transient RNG state.

use caesar_repro::prelude::*;
use flowtrace::binfmt;
use flowtrace::zoo::{standard_zoo, ZOO_SEED};

fn main() {
    let zoo = standard_zoo(2_000).expect("standard zoo parameters are valid");
    println!("{:<16} {:>12} {:>8} {:>9} {:>10} {:>9}", "workload", "kind", "flows", "packets", "hit rate", "ARE");

    for w in &zoo {
        let (trace, truth) = w.generate(ZOO_SEED);
        let cfg = experiments::zoo::zoo_config(&trace);
        let mut sketch = Caesar::new(cfg);
        for p in &trace.packets {
            sketch.record(p.flow);
        }
        sketch.finish();

        let mut pairs: Vec<(FlowId, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
        pairs.sort_unstable();
        let mut series = metrics::ScatterSeries::new();
        for (flow, x) in pairs {
            series.push(x, sketch.estimate(flow, Estimator::Csm).clamped());
        }

        println!(
            "{:<16} {:>12} {:>8} {:>9} {:>9.1}% {:>8.1}%",
            w.name(),
            w.kind().name(),
            trace.num_flows,
            trace.num_packets(),
            sketch.stats().cache.hit_rate() * 100.0,
            series.report().avg_relative_error * 100.0,
        );
    }

    // A fitted workload is a replayable artifact: trace + exact ground
    // truth round-trip through one deterministic blob.
    let caida = &zoo[7];
    let (trace, truth) = caida.generate(ZOO_SEED);
    let blob = binfmt::encode_artifact(&trace, &truth);
    let (replayed, replayed_truth) =
        binfmt::decode_artifact(&blob).expect("artifact must round-trip");
    assert_eq!(replayed.packets, trace.packets);
    assert_eq!(replayed_truth, truth);
    println!(
        "\n{} artifact: {} bytes for {} packets + {} truth entries (round-trip exact)",
        caida.name(),
        blob.len(),
        replayed.num_packets(),
        replayed_truth.len()
    );
}
