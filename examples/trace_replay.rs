//! Replay a pcap capture through CAESAR.
//!
//! ```text
//! cargo run --release --example trace_replay [capture.pcap]
//! ```
//!
//! With an argument, parses that libpcap file (Ethernet/IPv4,
//! TCP/UDP/ICMP) and measures its flows. Without one, synthesizes a
//! small capture first — demonstrating the full pipeline the paper
//! runs on its backbone trace: pcap → 5-tuple → SHA-1⊕APHash flow ID →
//! CAESAR.

use caesar_repro::prelude::*;
use flowtrace::pcap::{PcapReader, PcapWriter};
use flowtrace::ExactCounter;
use std::fs::File;
use std::io::BufReader;

fn synthesize_capture(path: &std::path::Path) {
    // Write a capture with a handful of talkative endpoints.
    let mut w = PcapWriter::new(File::create(path).expect("create pcap")).expect("pcap header");
    for round in 0..400u32 {
        let ts = round;
        for host in 0..8u32 {
            // A TCP flow per host; host 0 is ten times as chatty.
            let reps = if host == 0 { 10 } else { 1 };
            for _ in 0..reps {
                let tuple = FiveTuple {
                    src_ip: 0x0A00_0000 | host,
                    dst_ip: 0xC0A8_0001,
                    src_port: 40_000 + host as u16,
                    dst_port: 443,
                    proto: FiveTuple::TCP,
                };
                w.write_packet(&tuple, ts, 64 + round % 1000)
                    .expect("write packet");
            }
        }
    }
    w.finish().expect("flush pcap");
}

fn main() {
    let arg = std::env::args().nth(1);
    let tmp = std::env::temp_dir().join("caesar_demo.pcap");
    let path = match &arg {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            synthesize_capture(&tmp);
            println!("no capture given; synthesized {}", tmp.display());
            tmp.clone()
        }
    };

    let file = BufReader::new(File::open(&path).expect("open pcap"));
    let reader = PcapReader::new(file).expect("valid pcap");
    let (trace, stats) = reader.read_trace().expect("parse pcap");
    println!(
        "parsed {} packets ({} skipped), {} flows",
        stats.parsed, stats.skipped, trace.num_flows
    );
    if trace.packets.is_empty() {
        eprintln!("capture contained no usable IPv4 packets");
        return;
    }

    let truth = ExactCounter::from_trace(&trace);
    let cfg = CaesarConfig {
        cache_entries: 256,
        entry_capacity: trace.recommended_entry_capacity(),
        counters: 2048,
        k: 3,
        ..CaesarConfig::default()
    };
    let mut sketch = Caesar::new(cfg);
    for p in &trace.packets {
        sketch.record(p.flow);
    }
    sketch.finish();

    let mut flows: Vec<(u64, u64)> = truth.iter().collect();
    flows.sort_by_key(|&(_, x)| std::cmp::Reverse(x));
    println!("\n{:<18} {:>8} {:>10}", "flow", "actual", "estimate");
    for (flow, actual) in flows.into_iter().take(10) {
        println!("{flow:<18x} {actual:>8} {:>10.1}", sketch.query(flow));
    }
}
