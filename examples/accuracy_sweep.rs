//! Accuracy vs memory and vs `k`: the design-space sweep behind the
//! paper's parameter choices.
//!
//! ```text
//! cargo run --release --example accuracy_sweep
//! ```
//!
//! Sweeps the off-chip counter budget `L` and the counters-per-flow
//! `k`, printing the average relative error over all flows and over
//! large flows (≥ 1000 packets) for each point. Shows the two core
//! trade-offs: more SRAM buys less sharing noise; `k` barely matters
//! for the sum estimator but spreads elephants thinner.

use caesar_repro::prelude::*;
use support::par::par_map;

fn main() {
    let (trace, truth) = TraceGenerator::new(SynthConfig {
        num_flows: 20_000,
        ..SynthConfig::default()
    })
    .generate();
    println!(
        "trace: {} packets, {} flows\n",
        trace.num_packets(),
        trace.num_flows
    );
    let y = trace.recommended_entry_capacity();

    println!("{:<10} {:>4} {:>12} {:>14} {:>16}", "L", "k", "SRAM KB", "ARE (all)", "ARE (x>=1000)");
    for l in [512usize, 2048, 8192, 32768] {
        for k in [1usize, 3, 5] {
            let cfg = CaesarConfig {
                cache_entries: 2048,
                entry_capacity: y,
                counters: l,
                k,
                ..CaesarConfig::default()
            };
            let sram_kb = cfg.sram_kb();
            let mut sketch = Caesar::new(cfg);
            for p in &trace.packets {
                sketch.record(p.flow);
            }
            sketch.finish();

            let mut pairs: Vec<(u64, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
            pairs.sort_unstable(); // deterministic order for reproducible output
            let errors: Vec<(u64, f64)> = par_map(&pairs, |&(f, x)| (x, sketch.query(f)));
            let are = errors
                .iter()
                .map(|&(x, e)| (e - x as f64).abs() / x as f64)
                .sum::<f64>()
                / errors.len() as f64;
            let large: Vec<f64> = errors
                .iter()
                .filter(|&&(x, _)| x >= 1000)
                .map(|&(x, e)| (e - x as f64).abs() / x as f64)
                .collect();
            let large_are = large.iter().sum::<f64>() / large.len().max(1) as f64;
            println!(
                "{l:<10} {k:>4} {sram_kb:>12.1} {:>13.1}% {:>15.1}%",
                100.0 * are,
                100.0 * large_are
            );
        }
    }
    println!(
        "\nReading: the all-flow ARE is dominated by counter-sharing noise on\n\
         mice; quadrupling L roughly quarters it (noise mean k·n/L). Note\n\
         that for the pure sum estimator, small k collects less aggregate\n\
         noise — the paper's k = 3 buys per-eviction update parallelism and\n\
         RCS compatibility, not accuracy. The ablation benches quantify this."
    );
}
