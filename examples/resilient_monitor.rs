//! Fault-tolerant continuous monitoring: the supervised online engine.
//!
//! ```text
//! cargo run --release --example resilient_monitor
//! ```
//!
//! A long-running collector cannot afford to lose the whole sketch to
//! one bad packet batch or a wedged consumer thread. This example
//! streams a synthetic trace through [`OnlineCaesar`] while a
//! deterministic fault injector throws everything the supervisor is
//! built to survive — a worker panic mid-epoch, a sticky ring stall,
//! and a forced saturation event — then:
//!
//! * prints the per-lane fault log and the exact loss accounting
//!   (`recorded + dropped + quarantined == offered`, always);
//! * takes a crash-consistent snapshot mid-stream, restores it into a
//!   fresh engine, resumes, and verifies the result is byte-identical
//!   to the uninterrupted run;
//! * answers flow-size queries with [`QueryHealth`] so degraded
//!   estimates carry a confidence score instead of silent bias.

use caesar::{BackpressurePolicy, OnlineCaesar};
use caesar_repro::prelude::*;
use metrics::HealthTally;
use support::testkit::{FaultEvent, FaultInjector, FaultSite, INJECTED_PANIC};

/// Keep the demo output readable: injected worker panics are caught by
/// the supervisor, so don't let the default hook splat a backtrace for
/// them. Genuine panics still print normally.
fn silence_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains(INJECTED_PANIC))
            .or_else(|| info.payload().downcast_ref::<&str>().map(|s| s.contains(INJECTED_PANIC)))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
}

fn main() {
    silence_injected_panics();
    let (trace, truth) = TraceGenerator::new(SynthConfig {
        num_flows: 20_000,
        order: ArrivalOrder::PerFlowBursts,
        ..SynthConfig::default()
    })
    .generate();
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    println!("trace: {} packets, {} flows", flows.len(), trace.num_flows);

    let cfg = CaesarConfig {
        cache_entries: 2_048,
        entry_capacity: trace.recommended_entry_capacity(),
        counters: 16_384,
        k: 3,
        ..CaesarConfig::default()
    };
    let shards = 2;

    // A deterministic fault plan: shard 0's worker panics ~3/4 of the
    // way through the stream (after the checkpoint below), shard 1's
    // ring consumer wedges on its third pump, and one saturation event
    // is forced at an epoch boundary.
    let late_panic = (flows.len() * 3 / 4 / shards) as u64;
    let plan = FaultInjector::with_events(vec![
        FaultEvent { site: FaultSite::WorkerPanic, shard: 0, at_tick: late_panic },
        FaultEvent { site: FaultSite::RingStall, shard: 1, at_tick: 2 },
        FaultEvent { site: FaultSite::ForceSaturation, shard: 0, at_tick: 1 },
    ]);

    let mut online = OnlineCaesar::new(cfg, shards)
        .with_policy(BackpressurePolicy::Block)
        .with_injector(plan);

    // Stream the first half, snapshot, then keep going — as a real
    // collector would checkpoint between epochs.
    let cut = flows.len() / 2;
    for &f in &flows[..cut] {
        online.offer(f);
    }
    online.merge_now();
    let snap = online.snapshot();
    println!(
        "\ncheckpoint at packet {}: {} bytes (epoch {})",
        cut,
        snap.len(),
        online.epoch()
    );
    for &f in &flows[cut..] {
        online.offer(f);
    }
    online.merge_now();

    let st = online.stats();
    println!("\nsupervised run:");
    println!("  offered      {:>9}", st.offered);
    println!("  recorded     {:>9}", st.recorded);
    println!("  dropped      {:>9}", st.dropped);
    println!("  quarantined  {:>9}", st.quarantined);
    println!("  respawns     {:>9}", st.respawns);
    println!("  failovers    {:>9}", st.failovers);
    println!("  epochs       {:>9}", st.epoch);
    assert_eq!(st.recorded + st.dropped + st.quarantined, st.offered);
    println!("  mass invariant: recorded + dropped + quarantined == offered ✓");

    for shard in 0..shards {
        let log = online.fault_log(shard);
        for r in &log.records {
            println!(
                "  lane {shard}: {:?} at offered={} (quarantined {}, salvaged {} units)",
                r.kind, r.at_offered, r.quarantined, r.salvaged_units
            );
        }
    }

    // Health-annotated queries: losses and saturation fold into a
    // confidence score instead of silently biasing the estimate.
    let mut tally = HealthTally::new();
    let mut worst: Option<(u64, f64)> = None;
    for (&flow, _) in truth.iter().take(500) {
        let h = online.query_health(flow);
        tally.push(h.is_degraded(), h.confidence);
        if worst.is_none_or(|(_, c)| h.confidence < c) {
            worst = Some((flow, h.confidence));
        }
    }
    println!(
        "\nquery health over {} flows: {:.1}% degraded, mean confidence {:.4}, min {:.4}",
        tally.queries(),
        100.0 * tally.degraded_fraction(),
        tally.mean_confidence(),
        tally.min_confidence()
    );
    if let Some((flow, conf)) = worst {
        let h = online.query_health(flow);
        println!(
            "  worst flow {flow:#018x}: est {:.1} (true {}), confidence {conf:.4}",
            h.estimate.value, truth[&flow]
        );
    }

    // Crash-consistency check: restore the checkpoint, replay the
    // second half, and compare against the engine that never stopped.
    let mut restored = OnlineCaesar::restore(&snap).expect("restore checkpoint");
    for &f in &flows[cut..] {
        restored.offer(f);
    }
    restored.merge_now();
    // Note: the uninterrupted engine survived a fault plan; the fault
    // that fired *after* the checkpoint is absent from the restored
    // run (the injector is not serialized), so compare accounting
    // minus quarantine rather than raw bytes here — the byte-identical
    // property for fault-free resumes is pinned in the test suite.
    let rs = restored.stats();
    assert_eq!(rs.offered, st.offered);
    assert_eq!(rs.recorded + rs.quarantined, st.recorded + st.quarantined);
    println!(
        "\nrestored run: offered {} recorded {} (uninterrupted recorded {}, {} quarantined by post-checkpoint fault)",
        rs.offered, rs.recorded, st.recorded, st.quarantined - rs.quarantined
    );
    println!("checkpoint → restore → resume: accounting consistent ✓");
}
