//! The memory-hierarchy timing model: where CAESAR's speed comes from.
//!
//! ```text
//! cargo run --release --example timing_model
//! ```
//!
//! Demonstrates the three memsim pieces the paper's evaluation relies
//! on: (1) the D/D/1/B ingress queue producing the 2/3 and 9/10 loss
//! rates of Fig. 7 from nothing but latency ratios; (2) the per-event
//! cost model behind Fig. 8; (3) the Virtex-7 throughput arithmetic.

use memsim::fpga::FpgaSpec;
use memsim::{AccessCosts, CostTally, IngressQueue, MemoryModel, Technology};

fn main() {
    // --- 1. Loss emerges from latency ratios --------------------------
    println!("Ingress queue (arrivals at on-chip speed, 1 ns):");
    for tech in [Technology::SramFast, Technology::Sram, Technology::Dram] {
        let q = IngressQueue {
            arrival_ns: Technology::OnChip.access_ns(),
            service_ns: tech.access_ns(),
            capacity: 64,
        };
        let r = q.simulate(1_000_000);
        println!(
            "  service = {:>4.0} ns ({tech:?}): loss {:.1}% (predicted {:.1}%)",
            tech.access_ns(),
            100.0 * r.loss_rate(),
            100.0 * (1.0 - Technology::OnChip.access_ns() / tech.access_ns()),
        );
    }
    let mem = MemoryModel::default();
    println!(
        "  => the paper's Fig. 7 loss rates: {:.3} (3 ns SRAM) and {:.3} (10 ns SRAM)\n",
        MemoryModel::fast_sram().cache_free_loss_rate(),
        mem.cache_free_loss_rate()
    );

    // --- 2. Per-event cost model (Fig. 8) ------------------------------
    let costs = AccessCosts::default();
    let n = 100_000u64;
    let eviction_rate = 0.06; // bursty trace, ~2n/y evictions per packet

    let mut caesar = CostTally::new();
    caesar.hash(n);
    caesar.on_chip(n);
    let evictions = (n as f64 * eviction_rate) as u64;
    caesar.hash(evictions * 3);
    caesar.sram(evictions * 3 * 2);

    let mut rcs = CostTally::new();
    rcs.hash(n * 2);
    rcs.sram(n * 2);

    let mut case = CostTally::new();
    case.setup();
    case.hash(n);
    case.on_chip(n);
    case.sram(evictions * 2);
    case.pow_op(evictions * 2);

    println!("Cost model at n = {n} packets (eviction rate {eviction_rate}):");
    for (name, t) in [("CAESAR", &caesar), ("CASE", &case), ("RCS", &rcs)] {
        println!(
            "  {name:<7} {:>12.0} ns  ({:.2} ns/packet)",
            t.total_ns(&costs),
            t.total_ns(&costs) / n as f64
        );
    }

    // --- 3. FPGA prototype arithmetic ----------------------------------
    let fpga = FpgaSpec::virtex7();
    println!(
        "\nVirtex-7 prototype: {:.3} MHz clock, {}-bit bus => {:.3} Mbps ingest,\n\
         cycle {:.2} ns; CAESAR's {n} packets ≈ {} cycles of compute budget",
        fpga.clock_hz / 1e6,
        fpga.bus_bits,
        fpga.throughput_bps() / 1e6,
        fpga.cycle_ns(),
        fpga.ns_to_cycles(caesar.total_ns(&costs)),
    );
}
