//! Continuous monitoring with epoch rotation and flow-volume counting.
//!
//! ```text
//! cargo run --release --example continuous_monitoring
//! ```
//!
//! Splits a day of (simulated) traffic into epochs, rotates a fresh
//! CAESAR sketch each epoch, and answers the questions an operator
//! actually asks: "how much did this customer send in the last hour?"
//! (sliding-window size query) and "how many bytes in epoch 3?"
//! (flow-volume mode).

use caesar::epochs::EpochedCaesar;
use caesar_repro::prelude::*;

fn main() {
    let cfg = CaesarConfig {
        cache_entries: 1_024,
        entry_capacity: 54,
        counters: 8_192,
        k: 3,
        ..CaesarConfig::default()
    };

    // Six "ten-minute" epochs; the monitored customer ramps up over
    // the day, a background population fills the counters.
    let mut monitor = EpochedCaesar::new(cfg, 6);
    let customer = 0xC057_00E5u64;
    let epochs = 6u64;
    for epoch in 0..epochs {
        let (bg, _) = TraceGenerator::new(SynthConfig {
            num_flows: 3_000,
            seed: 0xDA7 + epoch,
            ..SynthConfig::default()
        })
        .generate();
        let customer_packets = 200 * (epoch + 1);
        let mut sent = 0u64;
        for (i, p) in bg.packets.iter().enumerate() {
            monitor.record(p.flow);
            // Interleave the customer's packets evenly.
            if sent < customer_packets
                && (i as u64).is_multiple_of(bg.packets.len() as u64 / customer_packets)
            {
                monitor.record(customer);
                sent += 1;
            }
        }
        monitor.rotate();
    }

    println!("per-epoch estimates for customer {customer:#x}:");
    println!("{:>6} {:>8} {:>10}", "epoch", "actual", "estimate");
    for e in 0..epochs {
        let est = monitor.query_epoch(e, customer).expect("epoch retained");
        println!("{e:>6} {:>8} {est:>10.1}", 200 * (e + 1));
    }

    let last2 = monitor.query_window(customer, 2);
    println!(
        "\nsliding window (last 2 epochs): estimated {last2:.0}, actual {}",
        200 * (epochs - 1) + 200 * epochs
    );

    // Flow volume on a single epoch's worth of traffic.
    let (trace, _) = TraceGenerator::new(SynthConfig::small()).generate();
    let mut volume = Caesar::new(CaesarConfig {
        entry_capacity: 54 * 600, // y in bytes: 2·mean volume
        counters: 8_192,
        k: 3,
        cache_entries: 1_024,
        ..CaesarConfig::default()
    });
    let mut actual_bytes = 0u64;
    let watched = trace.packets[0].flow;
    for p in &trace.packets {
        volume.record_weighted(p.flow, p.byte_len as u64);
        if p.flow == watched {
            actual_bytes += p.byte_len as u64;
        }
    }
    volume.finish();
    println!(
        "\nflow-volume mode: flow {watched:#x} sent {actual_bytes} bytes, estimated {:.0}",
        volume.query(watched)
    );
}
