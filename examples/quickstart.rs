//! Quickstart: measure per-flow traffic with CAESAR.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small heavy-tailed synthetic trace, streams it through the
//! CAESAR sketch, and queries a few flows with confidence intervals.

use caesar_repro::prelude::*;

fn main() {
    // 1. A reproducible heavy-tailed trace: ~2 K flows, ~55 K packets,
    //    mean flow size ≈ 27 packets — a 1/500-scale model of the
    //    paper's backbone capture.
    let (trace, truth) = TraceGenerator::new(SynthConfig::small()).generate();
    println!(
        "trace: {} packets over {} flows (mean {:.1} pkts/flow)",
        trace.num_packets(),
        trace.num_flows,
        trace.mean_flow_size()
    );

    // 2. Configure CAESAR: an on-chip cache in front of a shared
    //    off-chip counter array. y = 2·mean keeps overflows rare; k = 3
    //    counters per flow is the paper's sweet spot.
    let cfg = CaesarConfig {
        cache_entries: 512,
        entry_capacity: trace.recommended_entry_capacity(),
        counters: 4096,
        k: 3,
        ..CaesarConfig::default()
    };
    println!(
        "cache: {} entries (capacity {}), SRAM: {} counters ({:.1} KB)",
        cfg.cache_entries,
        cfg.entry_capacity,
        cfg.counters,
        cfg.sram_kb()
    );

    // 3. Construction phase: one call per packet; off-chip memory is
    //    only touched on cache evictions.
    let mut sketch = Caesar::new(cfg);
    for p in &trace.packets {
        sketch.record(p.flow);
    }
    sketch.finish(); // dump residual cache entries (§3.1)

    let stats = sketch.stats();
    println!(
        "cache hit rate {:.1}%, {} evictions, {} SRAM writes ({:.2} per packet vs 1.0 for cache-free RCS)",
        100.0 * stats.cache.hit_rate(),
        stats.evictions,
        stats.sram_writes,
        stats.sram_writes as f64 / trace.num_packets() as f64,
    );

    // 4. Query phase: the three biggest flows and three mice.
    let mut flows: Vec<(u64, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
    flows.sort_by_key(|&(_, x)| std::cmp::Reverse(x));
    println!("\n{:<18} {:>8} {:>10} {:>22}", "flow", "actual", "estimate", "95% confidence");
    for &(flow, actual) in flows.iter().take(3).chain(flows.iter().rev().take(3)) {
        let (est, (lo, hi)) = sketch.query_with_ci(flow, 0.95);
        println!(
            "{flow:<18x} {actual:>8} {est:>10.1} {:>22}",
            format!("[{:.0}, {:.0}]", lo.max(0.0), hi.max(0.0))
        );
    }
}
