//! Cluster view over the wire: taps push sketches to an aggregator.
//!
//! ```text
//! cargo run --release --example cluster_view
//! ```
//!
//! The networked sibling of `merge_collectors`: instead of merging
//! sketches by hand in one process, each measurement tap freezes its
//! [`ConcurrentCaesar`] into a [`SketchPayload`] and pushes it over a
//! real TCP socket to a [`MeasurementService`] aggregator. The
//! aggregator merges every push into one epoch-versioned cluster view
//! and answers flow-size queries against it — so the controller sees
//! the union of all taps without ever shipping raw packets.
//!
//! Walkthrough:
//!   1. stripe one synthetic stream across 3 taps (per-packet ECMP);
//!   2. each tap builds its own sketch locally;
//!   3. spawn a `TcpServer` on a loopback port;
//!   4. handshake (fingerprint check), push each tap's payload;
//!   5. query the merged view + per-flow health over the same socket.

use caesar_repro::prelude::*;
use flowtrace::transform;
use service::{MeasurementClient, MeasurementService, TcpServer, TcpTransport};
use std::sync::Arc;

const TAPS: usize = 3;

fn main() {
    // One logical traffic aggregate, split across the taps.
    let (trace, _truth) = TraceGenerator::new(SynthConfig {
        num_flows: 20_000,
        seed: 0x3C1,
        ..SynthConfig::default()
    })
    .generate();

    // Identical config + seed fleet-wide — mandatory, and enforced:
    // the service refuses pushes whose fingerprint disagrees.
    let cfg = CaesarConfig {
        cache_entries: 1_024,
        entry_capacity: trace.recommended_entry_capacity(),
        counters: 16_384,
        k: 3,
        seed: 0xC1_057E4,
        ..CaesarConfig::default()
    };

    // 1–2. Per-packet ECMP striping; each tap sketches its slice.
    let mut slices: Vec<Vec<u64>> = vec![Vec::new(); TAPS];
    for (i, p) in trace.packets.iter().enumerate() {
        slices[i % TAPS].push(p.flow);
    }
    let taps: Vec<ConcurrentCaesar> =
        slices.iter().map(|s| ConcurrentCaesar::build(cfg, 2, s)).collect();

    // 3. The aggregator: an empty cluster view behind a TCP socket.
    let svc = Arc::new(MeasurementService::new(cfg));
    let server = TcpServer::spawn(Arc::clone(&svc), "127.0.0.1:0").expect("bind loopback");
    println!("aggregator listening on {}", server.addr());

    // 4. Handshake, then push every tap's frozen sketch.
    let transport = TcpTransport::connect(server.addr()).expect("connect");
    let mut client =
        MeasurementClient::connect(transport, &taps[0].fingerprint()).expect("compatible fleet");
    for (i, tap) in taps.iter().enumerate() {
        let payload = tap.export_sketch();
        let receipt = client.push_sketch(&payload).expect("push");
        println!(
            "tap {i}: pushed {} packets ({} counter words, {} wire bytes) -> epoch {}, {} node(s)",
            payload.total_added,
            payload.counters.len(),
            receipt.bytes,
            receipt.epoch,
            receipt.nodes
        );
    }

    // 5. Query the merged view for the top flows, over the same socket.
    let mut sizes = transform::flow_sizes(&trace);
    sizes.sort_by_key(|&(_, x)| std::cmp::Reverse(x));
    let top: Vec<(u64, u64)> = sizes.iter().take(6).copied().collect();
    let flow_ids: Vec<u64> = top.iter().map(|&(f, _)| f).collect();
    let (epoch, estimates) = client.query(&flow_ids).expect("query");

    println!("\ncluster view at epoch {epoch}:");
    println!("{:<18} {:>8} {:>12} {:>12}", "flow", "actual", "merged est", "tap-0 alone");
    for (&(flow, actual), est) in top.iter().zip(&estimates) {
        println!("{flow:<18x} {actual:>8} {est:>12.0} {:>12.0}", taps[0].query(flow));
    }

    let (_, health) = client.query_health(flow_ids[0]).expect("health");
    println!(
        "\ntop flow health: confidence {:.2}, {} saturated counter(s), loss {:.1}%",
        health.confidence,
        health.saturated_counters,
        health.loss_fraction * 100.0
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stats.total_added as usize, trace.num_packets());
    println!(
        "cluster stats: {} nodes, {} packets accounted — equals the trace, nothing lost in transit",
        stats.nodes, stats.total_added
    );

    server.stop();
    println!("\n(each tap alone sees ~1/{TAPS} of every flow; the service merge restores the totals)");
}
