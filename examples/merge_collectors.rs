//! Distributed collectors: measure at several taps, merge, query once.
//!
//! ```text
//! cargo run --release --example merge_collectors
//! ```
//!
//! A flow's packets often cross several monitored links (ECMP,
//! multi-homing). With identical configuration and seed, every
//! collector maps flows to the same counters, so the counter arrays
//! add — merge them at the controller and query the union as if one
//! box had seen everything.

use caesar_repro::prelude::*;
use flowtrace::transform;

fn main() {
    // One logical traffic aggregate, ECMP-split across three taps.
    let (trace, truth) = TraceGenerator::new(SynthConfig {
        num_flows: 20_000,
        seed: 0x3C0,
        ..SynthConfig::default()
    })
    .generate();

    let cfg = CaesarConfig {
        cache_entries: 1_024,
        entry_capacity: trace.recommended_entry_capacity(),
        counters: 16_384,
        k: 3,
        seed: 0xC011EC7, // identical on every collector — mandatory
        ..CaesarConfig::default()
    };

    // Hash-split the packets over the taps (per-packet ECMP — the
    // cruelest split: no single tap sees a whole flow).
    let mut collectors: Vec<Caesar> = (0..3).map(|_| Caesar::new(cfg)).collect();
    for (i, p) in trace.packets.iter().enumerate() {
        collectors[i % 3].record(p.flow);
    }
    for c in &mut collectors {
        c.finish();
    }

    println!("per-tap packet counts:");
    for (i, c) in collectors.iter().enumerate() {
        println!("  tap {i}: {} packets recorded off-chip", c.sram().total_added());
    }

    // Snapshot what tap 0 alone would answer, then merge everything
    // into it.
    let mut sizes = transform::flow_sizes(&trace);
    sizes.sort_by_key(|&(_, x)| std::cmp::Reverse(x));
    let top: Vec<(u64, u64)> = sizes.iter().take(6).copied().collect();
    let tap0_alone: Vec<f64> = top.iter().map(|&(f, _)| collectors[0].query(f)).collect();

    let (head, rest) = collectors.split_at_mut(1);
    for c in rest.iter() {
        head[0].merge(c);
    }
    let merged = &head[0];
    assert_eq!(merged.sram().total_added() as usize, trace.num_packets());
    println!(
        "\nmerged: {} packets — equals the trace, nothing lost in transit",
        merged.sram().total_added()
    );
    let _ = &truth;

    // Query the union for the top flows.
    println!("\n{:<18} {:>8} {:>12} {:>12}", "flow", "actual", "merged est", "tap-0 alone");
    for (&(flow, actual), &alone) in top.iter().zip(&tap0_alone) {
        println!("{flow:<18x} {actual:>8} {:>12.0} {alone:>12.0}", merged.query(flow));
    }
    println!("\n(each tap alone sees ~1/3 of every flow; the merge restores the totals)");
}
