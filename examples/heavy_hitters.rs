//! Heavy-hitter detection — the intrusion-detection use case from the
//! paper's introduction ("scanning speeds of worm-infected hosts").
//!
//! ```text
//! cargo run --release --example heavy_hitters
//! ```
//!
//! Streams a trace through CAESAR, then reports every flow whose
//! estimated size exceeds a threshold and scores the detector's
//! precision and recall against ground truth.

use caesar_repro::prelude::*;

fn main() {
    let (trace, truth) = TraceGenerator::new(SynthConfig {
        num_flows: 20_000,
        ..SynthConfig::default()
    })
    .generate();
    println!(
        "trace: {} packets, {} flows",
        trace.num_packets(),
        trace.num_flows
    );

    let cfg = CaesarConfig {
        cache_entries: 2_048,
        entry_capacity: trace.recommended_entry_capacity(),
        counters: 16_384,
        k: 3,
        ..CaesarConfig::default()
    };
    let mut sketch = Caesar::new(cfg);
    for p in &trace.packets {
        sketch.record(p.flow);
    }
    sketch.finish();

    // An operator's heavy-hitter rule: any flow above 0.05% of total
    // traffic is a hitter.
    let threshold = (trace.num_packets() as f64 * 0.0005).max(100.0);
    println!("heavy-hitter threshold: {threshold:.0} packets");

    let mut true_pos = 0usize;
    let mut false_pos = 0usize;
    let mut false_neg = 0usize;
    let mut detected: Vec<(u64, f64, u64)> = Vec::new();
    for (&flow, &actual) in &truth {
        let est = sketch.query(flow);
        let is_hitter = actual as f64 >= threshold;
        let flagged = est >= threshold;
        match (flagged, is_hitter) {
            (true, true) => {
                true_pos += 1;
                detected.push((flow, est, actual));
            }
            (true, false) => false_pos += 1,
            (false, true) => false_neg += 1,
            (false, false) => {}
        }
    }
    let precision = true_pos as f64 / (true_pos + false_pos).max(1) as f64;
    let recall = true_pos as f64 / (true_pos + false_neg).max(1) as f64;
    println!(
        "detected {} hitters: precision {:.1}%, recall {:.1}% ({} false alarms, {} misses)",
        true_pos + false_pos,
        100.0 * precision,
        100.0 * recall,
        false_pos,
        false_neg
    );

    detected.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite estimates"));
    println!("\ntop detected flows:");
    println!("{:<18} {:>12} {:>10}", "flow", "estimated", "actual");
    for (flow, est, actual) in detected.iter().take(10) {
        println!("{flow:<18x} {est:>12.0} {actual:>10}");
    }
}
