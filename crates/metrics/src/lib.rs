//! # metrics — accuracy scoring for the paper's figures
//!
//! Every accuracy figure in the paper is one of two plots:
//!
//! * **estimated vs actual** scatter (Figs. 4a/4b, 5a/5b, 6a–c,
//!   7a/7b) — [`ScatterSeries`];
//! * **average relative error vs actual flow size** (Figs. 4c/4d, 5c/5d,
//!   6d, 7c/7d) — [`are_by_size`].
//!
//! Plus the headline scalar: the average relative error over all flows
//! (§1.5 quotes 25.23% for CAESAR-CSM, 30.83% for CAESAR-MLM, 67.68%
//! and 90.06% for lossy RCS, ≈100% for CASE).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use support::json::{Json, ToJson};

/// Relative error of one estimate: `|x̂ − x| / x`.
///
/// Defined for `actual > 0` (every real flow has at least one packet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeError(pub f64);

impl RelativeError {
    /// Compute `|estimate − actual| / actual`.
    ///
    /// # Panics
    /// Panics if `actual == 0`; relative error against a zero-size
    /// flow is undefined (such a flow does not exist in a trace).
    pub fn new(actual: u64, estimate: f64) -> Self {
        assert!(actual > 0, "relative error undefined for actual size 0");
        Self((estimate - actual as f64).abs() / actual as f64)
    }
}

/// One `(actual, estimated)` point of a scatter plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// True flow size.
    pub actual: u64,
    /// Estimated flow size.
    pub estimated: f64,
}

/// A full estimated-vs-actual series, the raw material of every
/// accuracy figure.
#[derive(Debug, Clone, Default)]
pub struct ScatterSeries {
    points: Vec<ScatterPoint>,
}

impl ScatterSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one flow's result.
    pub fn push(&mut self, actual: u64, estimated: f64) {
        self.points.push(ScatterPoint { actual, estimated });
    }

    /// Number of flows scored.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing was scored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The recorded points.
    pub fn points(&self) -> &[ScatterPoint] {
        &self.points
    }

    /// Downsample to at most `n` points for plotting (deterministic
    /// stride sampling — scatter plots need shape, not every point).
    pub fn sample(&self, n: usize) -> Vec<ScatterPoint> {
        if self.points.len() <= n || n == 0 {
            return self.points.clone();
        }
        let stride = self.points.len() as f64 / n as f64;
        (0..n)
            .map(|i| self.points[(i as f64 * stride) as usize])
            .collect()
    }

    /// Score the series into a report.
    pub fn report(&self) -> AccuracyReport {
        AccuracyReport::from_points(&self.points)
    }
}

/// Aggregate accuracy over a set of flows.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// Flows scored.
    pub flows: usize,
    /// Average relative error over all flows (the headline number).
    pub avg_relative_error: f64,
    /// Median relative error.
    pub median_relative_error: f64,
    /// Root-mean-square absolute error.
    pub rmse: f64,
    /// Mean signed error (bias; ≈ 0 for an unbiased estimator).
    pub mean_signed_error: f64,
    /// Fraction of flows whose estimate is exactly 0 (CASE's collapse
    /// signature in Fig. 5).
    pub frac_estimated_zero: f64,
}

impl AccuracyReport {
    /// Score a list of points.
    ///
    /// # Panics
    /// Panics if `points` is empty or any actual size is 0.
    pub fn from_points(points: &[ScatterPoint]) -> Self {
        assert!(!points.is_empty(), "cannot score zero flows");
        let n = points.len() as f64;
        let mut rel: Vec<f64> = points
            .iter()
            .map(|p| RelativeError::new(p.actual, p.estimated).0)
            .collect();
        let avg = rel.iter().sum::<f64>() / n;
        rel.sort_by(|a, b| a.partial_cmp(b).expect("no NaN errors"));
        let median = rel[rel.len() / 2];
        let rmse = (points
            .iter()
            .map(|p| {
                let d = p.estimated - p.actual as f64;
                d * d
            })
            .sum::<f64>()
            / n)
            .sqrt();
        let bias = points
            .iter()
            .map(|p| p.estimated - p.actual as f64)
            .sum::<f64>()
            / n;
        let zeros = points.iter().filter(|p| p.estimated == 0.0).count();
        Self {
            flows: points.len(),
            avg_relative_error: avg,
            median_relative_error: median,
            rmse,
            mean_signed_error: bias,
            frac_estimated_zero: zeros as f64 / n,
        }
    }
}

impl ToJson for ScatterPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("actual", self.actual.into()),
            ("estimated", self.estimated.into()),
        ])
    }
}

impl ToJson for AccuracyReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("flows", self.flows.into()),
            ("avg_relative_error", self.avg_relative_error.into()),
            ("median_relative_error", self.median_relative_error.into()),
            ("rmse", self.rmse.into()),
            ("mean_signed_error", self.mean_signed_error.into()),
            ("frac_estimated_zero", self.frac_estimated_zero.into()),
        ])
    }
}

/// Average relative error restricted to flows of at least `min_size`
/// packets. Returns `None` when no flow qualifies.
///
/// Shared-counter sketches have a size-dependent error profile: the
/// absolute noise per flow is roughly constant (set by the elephants
/// sharing its counters), so the *relative* error decays as `1/x`. The
/// paper's headline percentages are only meaningful over flows large
/// enough to rise above that noise floor; EXPERIMENTS.md quantifies
/// this, and the headline table reports both the all-flow ARE and this
/// large-flow ARE.
pub fn are_over_threshold(points: &[ScatterPoint], min_size: u64) -> Option<(usize, f64)> {
    let mut n = 0usize;
    let mut sum = 0.0;
    for p in points {
        if p.actual >= min_size {
            n += 1;
            sum += RelativeError::new(p.actual, p.estimated).0;
        }
    }
    if n == 0 {
        None
    } else {
        Some((n, sum / n as f64))
    }
}

/// Average relative error grouped by actual flow size — the y-axis of
/// Figs. 4c/4d, 5c/5d, 6d, 7c/7d. Sizes with fewer than `min_flows`
/// samples are merged into geometric buckets to keep the curve stable.
pub fn are_by_size(points: &[ScatterPoint], min_flows: usize) -> Vec<(u64, f64)> {
    let mut by_size: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
    for p in points {
        let e = by_size.entry(p.actual).or_insert((0.0, 0));
        e.0 += RelativeError::new(p.actual, p.estimated).0;
        e.1 += 1;
    }
    // First pass: exact sizes with enough support.
    let mut out = Vec::new();
    let mut pending: Vec<(u64, f64, usize)> = Vec::new();
    for (size, (sum, cnt)) in by_size {
        if cnt >= min_flows {
            out.push((size, sum / cnt as f64));
        } else {
            pending.push((size, sum, cnt));
        }
    }
    // Second pass: geometric buckets over the sparse tail.
    let mut lo = 1u64;
    while !pending.is_empty() {
        let hi = lo.saturating_mul(2);
        let (mut sum, mut cnt, mut wsize) = (0.0, 0usize, 0u128);
        pending.retain(|&(size, s, c)| {
            if size >= lo && size < hi {
                sum += s;
                cnt += c;
                wsize += size as u128 * c as u128;
                false
            } else {
                true
            }
        });
        if cnt > 0 {
            let center = (wsize / cnt as u128) as u64;
            out.push((center, sum / cnt as f64));
        }
        if hi < lo {
            break; // saturated
        }
        lo = hi;
    }
    out.sort_by_key(|&(s, _)| s);
    out
}

/// Fleet-level health roll-up over a sweep of health-annotated queries
/// (`caesar::QueryHealth` or anything shaped like it): how many
/// estimates were degraded, and how much confidence survives.
///
/// The caller pushes one `(degraded, confidence)` pair per query; the
/// tally is order-independent, so shards/threads can be merged with
/// [`HealthTally::merge`]. Rendered to JSON for dashboards alongside
/// [`AccuracyReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HealthTally {
    queries: usize,
    degraded: usize,
    confidence_sum: f64,
    min_confidence: f64,
}

impl HealthTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self { queries: 0, degraded: 0, confidence_sum: 0.0, min_confidence: 1.0 }
    }

    /// Record one health-annotated query.
    ///
    /// # Panics
    /// Panics if `confidence` is outside `[0, 1]`.
    pub fn push(&mut self, degraded: bool, confidence: f64) {
        assert!(
            (0.0..=1.0).contains(&confidence),
            "confidence must be in [0, 1]"
        );
        self.queries += 1;
        self.degraded += usize::from(degraded);
        self.confidence_sum += confidence;
        if confidence < self.min_confidence {
            self.min_confidence = confidence;
        }
    }

    /// Fold another tally in (order-independent).
    pub fn merge(&mut self, other: &HealthTally) {
        self.queries += other.queries;
        self.degraded += other.degraded;
        self.confidence_sum += other.confidence_sum;
        if other.queries > 0 && other.min_confidence < self.min_confidence {
            self.min_confidence = other.min_confidence;
        }
    }

    /// Queries recorded so far.
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// Fraction of queries flagged as saturation- or loss-degraded
    /// (0.0 on an empty tally).
    pub fn degraded_fraction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.degraded as f64 / self.queries as f64
        }
    }

    /// Mean confidence over all queries (1.0 on an empty tally).
    pub fn mean_confidence(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.confidence_sum / self.queries as f64
        }
    }

    /// Worst single-query confidence seen (1.0 on an empty tally).
    pub fn min_confidence(&self) -> f64 {
        self.min_confidence
    }
}

impl ToJson for HealthTally {
    fn to_json(&self) -> Json {
        Json::obj([
            ("queries", self.queries.into()),
            ("degraded", self.degraded.into()),
            ("degraded_fraction", self.degraded_fraction().into()),
            ("mean_confidence", self.mean_confidence().into()),
            ("min_confidence", self.min_confidence().into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert_eq!(RelativeError::new(100, 100.0).0, 0.0);
        assert_eq!(RelativeError::new(100, 150.0).0, 0.5);
        assert_eq!(RelativeError::new(100, 50.0).0, 0.5);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn zero_actual_rejected() {
        RelativeError::new(0, 1.0);
    }

    #[test]
    fn report_on_perfect_estimates() {
        let mut s = ScatterSeries::new();
        for x in 1..=10u64 {
            s.push(x, x as f64);
        }
        let r = s.report();
        assert_eq!(r.flows, 10);
        assert_eq!(r.avg_relative_error, 0.0);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.mean_signed_error, 0.0);
        assert_eq!(r.frac_estimated_zero, 0.0);
    }

    #[test]
    fn report_catches_collapse_to_zero() {
        let mut s = ScatterSeries::new();
        for x in 1..=4u64 {
            s.push(x * 10, 0.0);
        }
        let r = s.report();
        assert_eq!(r.frac_estimated_zero, 1.0);
        assert!((r.avg_relative_error - 1.0).abs() < 1e-12); // 100% error
    }

    #[test]
    fn report_bias_detects_systematic_offset() {
        let mut s = ScatterSeries::new();
        for x in 1..=100u64 {
            s.push(x, x as f64 + 5.0);
        }
        let r = s.report();
        assert!((r.mean_signed_error - 5.0).abs() < 1e-9);
    }

    #[test]
    fn are_by_size_exact_and_bucketed() {
        let mut pts = Vec::new();
        // Size 1: 10 flows at 50% error.
        for _ in 0..10 {
            pts.push(ScatterPoint { actual: 1, estimated: 1.5 });
        }
        // Size 1000: a single flow (sparse) at 10% error.
        pts.push(ScatterPoint { actual: 1000, estimated: 900.0 });
        let curve = are_by_size(&pts, 5);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].0, 1);
        assert!((curve[0].1 - 0.5).abs() < 1e-12);
        assert_eq!(curve[1].0, 1000);
        assert!((curve[1].1 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sample_downsamples_deterministically() {
        let mut s = ScatterSeries::new();
        for x in 1..=1000u64 {
            s.push(x, x as f64);
        }
        let a = s.sample(100);
        let b = s.sample(100);
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
        // No sampling requested or possible: full set back.
        assert_eq!(s.sample(2000).len(), 1000);
    }

    #[test]
    #[should_panic(expected = "zero flows")]
    fn empty_report_rejected() {
        AccuracyReport::from_points(&[]);
    }

    #[test]
    fn report_json_shape_is_stable() {
        let mut s = ScatterSeries::new();
        s.push(10, 12.0);
        s.push(20, 20.0);
        let j = s.report().to_json_string();
        let parsed = support::json::parse(&j).expect("valid json");
        assert_eq!(parsed.get("flows").and_then(|v| v.as_u64()), Some(2));
        assert!(parsed.get("avg_relative_error").and_then(|v| v.as_f64()).is_some());
        assert!(parsed.get("rmse").is_some());
    }

    #[test]
    fn health_tally_rolls_up_and_merges() {
        let mut a = HealthTally::new();
        a.push(false, 1.0);
        a.push(true, 0.5);
        assert_eq!(a.queries(), 2);
        assert!((a.degraded_fraction() - 0.5).abs() < 1e-12);
        assert!((a.mean_confidence() - 0.75).abs() < 1e-12);
        assert!((a.min_confidence() - 0.5).abs() < 1e-12);

        let mut b = HealthTally::new();
        b.push(true, 0.25);
        a.merge(&b);
        assert_eq!(a.queries(), 3);
        assert!((a.min_confidence() - 0.25).abs() < 1e-12);

        // Empty tallies are benign on both sides of a merge.
        let empty = HealthTally::new();
        assert_eq!(empty.degraded_fraction(), 0.0);
        assert_eq!(empty.mean_confidence(), 1.0);
        a.merge(&empty);
        assert_eq!(a.queries(), 3);

        let j = support::json::parse(&a.to_json_string()).expect("valid json");
        assert_eq!(j.get("queries").and_then(|v| v.as_u64()), Some(3));
        assert!(j.get("min_confidence").and_then(|v| v.as_f64()).is_some());
    }

    #[test]
    #[should_panic(expected = "confidence must be in")]
    fn health_tally_rejects_out_of_range_confidence() {
        HealthTally::new().push(false, 1.5);
    }

    #[test]
    fn threshold_are_filters_small_flows() {
        let pts = vec![
            ScatterPoint { actual: 1, estimated: 100.0 },   // RE 99
            ScatterPoint { actual: 1000, estimated: 900.0 }, // RE 0.1
            ScatterPoint { actual: 2000, estimated: 2200.0 }, // RE 0.1
        ];
        let (n, are) = are_over_threshold(&pts, 1000).expect("has large flows");
        assert_eq!(n, 2);
        assert!((are - 0.1).abs() < 1e-12);
        assert!(are_over_threshold(&pts, 10_000).is_none());
    }
}
