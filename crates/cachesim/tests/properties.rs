//! Property tests: the cache table against a naive reference model,
//! on the deterministic `support::testkit` harness.

use cachesim::{CacheConfig, CachePolicy, CacheTable, Eviction, EvictionReason};
use support::rand::Rng;
use support::testkit::{for_each_seed, GenExt};

/// A deliberately dumb O(n) LRU cache: Vec ordered most-recent-first.
struct RefLru {
    entries: Vec<(u64, u64)>, // (flow, count), MRU first
    capacity: usize,
    y: u64,
}

impl RefLru {
    fn new(capacity: usize, y: u64) -> Self {
        Self { entries: Vec::new(), capacity, y }
    }

    fn record(&mut self, flow: u64) -> Option<Eviction> {
        if let Some(pos) = self.entries.iter().position(|&(f, _)| f == flow) {
            let (f, c) = self.entries.remove(pos);
            let c = c + 1;
            if c >= self.y {
                self.entries.insert(0, (f, 0));
                return Some(Eviction { flow, value: c, reason: EvictionReason::Overflow });
            }
            self.entries.insert(0, (f, c));
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            let (vf, vc) = self.entries.pop().expect("full cache");
            (vc > 0).then_some(Eviction {
                flow: vf,
                value: vc,
                reason: EvictionReason::Replacement,
            })
        } else {
            None
        };
        self.entries.insert(0, (flow, 1));
        evicted
    }
}

/// The slab/linked-list LRU behaves exactly like the naive model
/// for any packet stream.
#[test]
fn lru_matches_reference_model() {
    for_each_seed(|rng| {
        let flows = rng.vec_with(1..3000, |r| r.gen_range(0u64..24));
        let capacity = rng.gen_range(1usize..12);
        let y = rng.gen_range(2u64..20);
        let mut fast = CacheTable::new(CacheConfig::lru(capacity, y));
        let mut slow = RefLru::new(capacity, y);
        for &f in &flows {
            assert_eq!(fast.record(f), slow.record(f), "diverged on flow {f}");
        }
        // Final residents match, including counts.
        let mut a: Vec<(u64, u64)> = fast.iter().collect();
        let mut b: Vec<(u64, u64)> = slow.entries.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    });
}

/// Conservation for any interleaving of unit and weighted records.
#[test]
fn mixed_recording_conserves() {
    for_each_seed(|rng| {
        let ops =
            rng.vec_with(1..2000, |r| (r.gen_range(0u64..40), r.gen_range(0u64..200)));
        let capacity = rng.gen_range(1usize..32);
        let y = rng.gen_range(2u64..64);
        let policy = if rng.gen::<bool>() { CachePolicy::Random } else { CachePolicy::Fifo };
        let mut cache = CacheTable::new(CacheConfig {
            entries: capacity,
            entry_capacity: y,
            policy,
            seed: 7,
        });
        let mut out = Vec::new();
        let mut sent = 0u64;
        for &(flow, w) in &ops {
            if w == 0 {
                sent += 1;
                if let Some(e) = cache.record(flow) {
                    out.push(e);
                }
            } else {
                sent += w;
                cache.record_weighted(flow, w, &mut out);
            }
        }
        let mut evicted: u64 = out.iter().map(|e| e.value).sum();
        evicted += cache.drain().iter().map(|e| e.value).sum::<u64>();
        assert_eq!(evicted, sent);
    });
}

/// Unit-mode eviction values never exceed the entry capacity and
/// overflow evictions are exactly `y`.
#[test]
fn eviction_value_bounds() {
    for_each_seed(|rng| {
        let flows = rng.vec_with(1..2000, |r| r.gen_range(0u64..30));
        let capacity = rng.gen_range(1usize..16);
        let y = rng.gen_range(2u64..32);
        let mut cache = CacheTable::new(CacheConfig::lru(capacity, y));
        for &f in &flows {
            if let Some(e) = cache.record(f) {
                assert!(e.value >= 1 && e.value <= y);
                if e.reason == EvictionReason::Overflow {
                    assert_eq!(e.value, y);
                } else {
                    assert!(e.value < y);
                }
            }
        }
        for e in cache.drain() {
            assert!(e.value >= 1 && e.value < y);
            assert_eq!(e.reason, EvictionReason::FinalDump);
        }
    });
}

/// Weighted recording against a naive reference: same evictions,
/// same residents, for any weight stream.
#[test]
fn weighted_lru_matches_reference_model() {
    for_each_seed(|rng| {
        let ops =
            rng.vec_with(1..1500, |r| (r.gen_range(0u64..16), r.gen_range(1u64..40)));
        let capacity = rng.gen_range(1usize..8);
        let y = rng.gen_range(2u64..24);
        let mut fast = CacheTable::new(CacheConfig::lru(capacity, y));
        let mut slow = RefLru::new(capacity, y);
        let mut fast_out = Vec::new();
        for &(flow, w) in &ops {
            // Reference semantics: miss/replacement first, then the
            // weight accumulates with chunked overflow evictions.
            let mut slow_out = Vec::new();
            // Drive the reference one unit at a time; the unit model's
            // overflow fires at exact multiples of y, matching
            // record_weighted's chunking.
            for _ in 0..w {
                if let Some(e) = slow.record(flow) {
                    slow_out.push(e);
                }
            }
            let before = fast_out.len();
            fast.record_weighted(flow, w, &mut fast_out);
            assert_eq!(&fast_out[before..], &slow_out[..], "flow {flow} w {w}");
        }
    });
}

/// The resident set never exceeds the configured capacity.
#[test]
fn capacity_is_respected() {
    for_each_seed(|rng| {
        let flows = rng.vec_with(1..1000, |r| r.gen::<u64>());
        let capacity = rng.gen_range(1usize..8);
        let mut cache = CacheTable::new(CacheConfig::random(capacity, 100));
        for &f in &flows {
            cache.record(f);
            assert!(cache.len() <= capacity);
        }
    });
}
