//! # cachesim — the on-chip cache table of CAESAR and CASE
//!
//! Models the paper's fast on-chip memory (§3.1): a table of `M`
//! entries, each `(flow_id, partial_count)` with per-entry capacity
//! `y`. Packets update the cache; the slow off-chip memory only sees
//! *eviction events*, which this crate emits as a stream:
//!
//! * **Overflow** — an entry reached `y` ("fulfilled"), its value `y`
//!   is evicted and the entry keeps counting from zero;
//! * **Replacement** — the table is full and a victim chosen by the
//!   replacement policy (LRU or random in the paper; FIFO added for
//!   ablation) is flushed to make room for a new flow;
//! * **FinalDump** — at the end of measurement "we dump all the cache
//!   entries to the SRAM counters".
//!
//! The table is O(1) per packet: an identity-hashed index map plus an
//! intrusive doubly-linked recency list over a slab of slots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod table;

pub use table::{
    CacheConfig, CachePolicy, CacheStats, CacheTable, CacheTableState, Eviction, EvictionReason,
    Recorded,
};
