//! The cache table implementation.

use hashkit::FlowSlotMap;
use support::rand::{rngs::StdRng, Rng, SeedableRng};

/// Replacement policy for a full table (§3.1: "we try both LRU and
/// random replacement algorithms in this paper"; FIFO is our ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Evict the least-recently-used entry.
    Lru,
    /// Evict a uniformly random entry.
    Random,
    /// Evict the oldest-inserted entry (no touch on access).
    Fifo,
}

/// Why an entry left the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionReason {
    /// The entry counter reached capacity `y` (a "fulfilled" entry).
    Overflow,
    /// The table was full and the policy chose this entry as victim.
    Replacement,
    /// End-of-measurement dump of all residual entries.
    FinalDump,
}

/// An eviction event: `value` packets of `flow` must be pushed to the
/// off-chip counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted flow.
    pub flow: u64,
    /// The evicted partial count (`E_i` in the paper, `1..=y`).
    pub value: u64,
    /// What triggered the eviction.
    pub reason: EvictionReason,
}

/// Outcome of a slot-visible record ([`CacheTable::record_slotted`]).
///
/// Exposing the slot id lets callers keep **per-slot side tables** (the
/// CAESAR layer memoizes each resident flow's `k` counter indices this
/// way) without a second hash lookup:
///
/// * `inserted == true` means the flow was newly bound to `slot` by
///   this call (fresh allocation *or* victim replacement) and any
///   side-table row for `slot` must be refreshed — **after** consuming
///   `eviction`, which still refers to the slot's previous occupant on
///   the replacement path.
/// * `inserted == false` means the flow was already resident; the
///   side-table row for `slot` is the flow's own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recorded {
    /// The slot the flow occupies after this call.
    pub slot: u32,
    /// True when the flow was (re)bound to `slot` by this call.
    pub inserted: bool,
    /// The eviction the packet caused, if any. On the replacement path
    /// this is the **previous** occupant of `slot`.
    pub eviction: Option<Eviction>,
}

/// Cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of entries `M`.
    pub entries: usize,
    /// Per-entry capacity `y` (evict when the count reaches `y`).
    pub entry_capacity: u64,
    /// Replacement policy.
    pub policy: CachePolicy,
    /// Seed for the random-replacement policy.
    pub seed: u64,
}

impl CacheConfig {
    /// LRU cache with the given geometry.
    pub fn lru(entries: usize, entry_capacity: u64) -> Self {
        Self {
            entries,
            entry_capacity,
            policy: CachePolicy::Lru,
            seed: 0x5EED,
        }
    }

    /// Random-replacement cache with the given geometry.
    pub fn random(entries: usize, entry_capacity: u64) -> Self {
        Self {
            policy: CachePolicy::Random,
            ..Self::lru(entries, entry_capacity)
        }
    }

    /// On-chip memory footprint in bits, following the paper's
    /// accounting `M · log2(y)` for the counters plus the flow-ID tag
    /// bits per entry.
    pub fn memory_bits(&self, tag_bits: u32) -> u64 {
        let counter_bits = 64 - (self.entry_capacity.max(2) - 1).leading_zeros();
        self.entries as u64 * (counter_bits as u64 + tag_bits as u64)
    }
}

/// Running statistics of the cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Packets that found their flow resident.
    pub hits: u64,
    /// Packets that missed.
    pub misses: u64,
    /// Overflow evictions emitted.
    pub overflow_evictions: u64,
    /// Replacement evictions emitted.
    pub replacement_evictions: u64,
    /// Entries flushed by the final dump.
    pub final_dump_entries: u64,
}

impl CacheStats {
    /// Total packets processed.
    pub fn packets(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        if self.packets() == 0 {
            0.0
        } else {
            self.hits as f64 / self.packets() as f64
        }
    }

    /// Total evictions of every kind.
    pub fn total_evictions(&self) -> u64 {
        self.overflow_evictions + self.replacement_evictions + self.final_dump_entries
    }
}

/// Complete serializable dynamic state of a [`CacheTable`], captured by
/// [`CacheTable::snapshot_state`] and consumed by
/// [`CacheTable::restore`]. All fields are plain data so callers can
/// encode them with any codec (the CAESAR online runtime uses
/// `support::bytesx`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheTableState {
    /// Resident slots in slot-id order: `(flow, count, prev, next)`
    /// where `prev`/`next` are recency-list links (`u32::MAX` = nil).
    pub slots: Vec<(u64, u64, u32, u32)>,
    /// Most-recently-used slot (list head; `u32::MAX` = empty).
    pub head: u32,
    /// Least-recently-used slot (list tail; `u32::MAX` = empty).
    pub tail: u32,
    /// Random-replacement generator state ([`StdRng::state`]).
    pub rng: [u64; 4],
    /// Running statistics at snapshot time.
    pub stats: CacheStats,
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    flow: u64,
    count: u64,
    prev: u32,
    next: u32,
}

/// The on-chip cache table (see crate docs).
///
/// ```
/// use cachesim::{CacheConfig, CacheTable, EvictionReason};
/// let mut cache = CacheTable::new(CacheConfig::lru(2, 10));
/// assert!(cache.record(1).is_none());  // miss: allocated
/// assert!(cache.record(2).is_none());
/// let ev = cache.record(3).expect("table full: victim flushed");
/// assert_eq!(ev.reason, EvictionReason::Replacement);
/// assert_eq!(cache.drain().len(), 2);  // final dump
/// ```
#[derive(Debug)]
pub struct CacheTable {
    cfg: CacheConfig,
    slots: Vec<Slot>,
    /// flow -> slot index: a fixed-capacity open-addressing table
    /// (population is bounded by `cfg.entries`, so it never grows).
    index: FlowSlotMap,
    /// Most-recently-used slot (list head).
    head: u32,
    /// Least-recently-used slot (list tail).
    tail: u32,
    free: Vec<u32>,
    rng: StdRng,
    stats: CacheStats,
}

impl CacheTable {
    /// Build an empty table.
    ///
    /// # Panics
    /// Panics if `entries == 0` or `entry_capacity < 2` (an entry must
    /// be able to hold at least one packet without overflowing).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.entries > 0, "cache needs at least one entry");
        assert!(cfg.entry_capacity >= 2, "entry capacity y must be >= 2");
        Self {
            slots: Vec::with_capacity(cfg.entries),
            index: FlowSlotMap::with_capacity(cfg.entries),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Number of resident flows.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no flow is resident.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Current partial count of `flow`, if resident.
    pub fn peek(&self, flow: u64) -> Option<u64> {
        self.index.get(flow).map(|s| self.slots[s as usize].count)
    }

    /// Process one packet of `flow`. Returns the eviction the packet
    /// caused, if any (at most one in packet-counting mode).
    #[inline]
    pub fn record(&mut self, flow: u64) -> Option<Eviction> {
        self.record_slotted(flow).eviction
    }

    /// Process one packet of `flow`, additionally reporting **which
    /// slot** the flow now occupies and whether it was (re)bound by
    /// this call. This is the single implementation behind
    /// [`record`](Self::record); the eviction semantics and emission
    /// order are identical. See [`Recorded`] for the side-table
    /// contract.
    #[inline]
    pub fn record_slotted(&mut self, flow: u64) -> Recorded {
        if let Some(slot) = self.index.get(flow) {
            return self.hit(flow, slot);
        }

        self.stats.misses += 1;
        // Free capacity? Allocate a fresh or recycled slot.
        if self.index.len() < self.cfg.entries {
            let slot = if let Some(s) = self.free.pop() {
                self.slots[s as usize] = Slot { flow, count: 1, prev: NIL, next: NIL };
                s
            } else {
                self.slots.push(Slot { flow, count: 1, prev: NIL, next: NIL });
                (self.slots.len() - 1) as u32
            };
            self.index.insert(flow, slot);
            self.push_front(slot);
            return Recorded { slot, inserted: true, eviction: None };
        }

        // Full: pick a victim, flush it, reuse its slot.
        let victim = self.select_victim();
        let victim_flow = self.slots[victim as usize].flow;
        let victim_count = self.slots[victim as usize].count;
        self.index.remove(victim_flow);
        self.unlink(victim);
        self.slots[victim as usize] = Slot { flow, count: 1, prev: NIL, next: NIL };
        self.index.insert(flow, victim);
        self.push_front(victim);
        let eviction = if victim_count > 0 {
            self.stats.replacement_evictions += 1;
            Some(Eviction {
                flow: victim_flow,
                value: victim_count,
                reason: EvictionReason::Replacement,
            })
        } else {
            // The victim had just overflowed (count 0): nothing to flush.
            None
        };
        Recorded { slot: victim, inserted: true, eviction }
    }

    /// The shared hit branch of [`record_slotted`](Self::record_slotted)
    /// and [`record_slotted_hinted`](Self::record_slotted_hinted):
    /// `slot` is known to be bound to `flow`.
    #[inline]
    fn hit(&mut self, flow: u64, slot: u32) -> Recorded {
        self.stats.hits += 1;
        self.touch(slot);
        let s = &mut self.slots[slot as usize];
        s.count += 1;
        let eviction = if s.count >= self.cfg.entry_capacity {
            let value = s.count;
            s.count = 0;
            self.stats.overflow_evictions += 1;
            Some(Eviction {
                flow,
                value,
                reason: EvictionReason::Overflow,
            })
        } else {
            None
        };
        Recorded { slot, inserted: false, eviction }
    }

    /// The pure-hit fast path: absorb one packet of `flow` on-chip iff
    /// the flow is resident **and** the increment does not overflow its
    /// entry, returning whether the packet was absorbed. On `false`
    /// nothing was recorded — the caller must fall through to
    /// [`record_slotted`](Self::record_slotted), which redoes the index
    /// probe and handles miss/overflow/replacement.
    ///
    /// Exists because in the cache-friendly regime >90% of packets take
    /// exactly this branch, and carving it out of the (large, fully
    /// inlined) `record_slotted` body gives the batch ingest loop a
    /// tiny, branch-predictable common path with no [`Recorded`]
    /// construction at all. Observable behavior — stats, recency order,
    /// counts — is bit-identical to `record_slotted` on the same
    /// packet: the absorbed case is precisely its hit branch with
    /// `eviction: None`, which triggers no downstream bookkeeping.
    #[inline]
    pub fn record_absorbed(&mut self, flow: u64) -> bool {
        if let Some(slot) = self.index.get(flow) {
            let count = self.slots[slot as usize].count;
            if count + 1 < self.cfg.entry_capacity {
                self.stats.hits += 1;
                self.touch(slot);
                self.slots[slot as usize].count = count + 1;
                return true;
            }
        }
        false
    }

    /// [`record_slotted`](Self::record_slotted) with a **slot hint**
    /// from an earlier [`prefetch`](Self::prefetch) of the same `flow`,
    /// letting the hot hit path skip the index lookup entirely (the
    /// probe already paid for it).
    ///
    /// The hint is validated against the slot's flow tag: between the
    /// probe and this call, intervening `record*` calls can only
    /// *rebind* a slot (replacement), never free one, so a matching tag
    /// proves `slot` is still `flow`'s binding. A stale or `None` hint
    /// falls back to the full lookup. Either way the observable
    /// behavior — stats, recency order, evictions, slot binding — is
    /// identical to [`record_slotted`](Self::record_slotted).
    ///
    /// Do **not** carry hints across [`drain`](Self::drain),
    /// [`drain_with`](Self::drain_with) or weighted records, which can
    /// free slots and leave stale flow tags behind.
    #[inline]
    pub fn record_slotted_hinted(&mut self, flow: u64, hint: Option<u32>) -> Recorded {
        if let Some(slot) = hint {
            if self
                .slots
                .get(slot as usize)
                .is_some_and(|s| s.flow == flow)
            {
                return self.hit(flow, slot);
            }
        }
        self.record_slotted(flow)
    }

    /// Process one packet of `flow` carrying `weight` units (bytes for
    /// flow-volume measurement, §3.1). A large weight can fill the
    /// entry several times over, so this may emit several overflow
    /// evictions (each of exactly `y`) plus at most one replacement
    /// eviction; they are appended to `out` in order.
    pub fn record_weighted(&mut self, flow: u64, weight: u64, out: &mut Vec<Eviction>) {
        self.record_weighted_slotted(flow, weight, out);
    }

    /// Slot-visible form of [`record_weighted`](Self::record_weighted);
    /// identical eviction semantics and emission order (replacement of
    /// the previous occupant first, then the new flow's overflows).
    /// Returns `None` when `weight == 0` (a no-op that binds nothing).
    ///
    /// Side-table contract: when `inserted` is true, refresh the row
    /// for `slot` **after** consuming any `Replacement` eviction in
    /// `out` (it refers to the slot's previous occupant) and **before**
    /// consuming the `Overflow` evictions (they are the new flow's).
    pub fn record_weighted_slotted(
        &mut self,
        flow: u64,
        weight: u64,
        out: &mut Vec<Eviction>,
    ) -> Option<Recorded> {
        if weight == 0 {
            return None;
        }
        let mut inserted = false;
        let slot = if let Some(slot) = self.index.get(flow) {
            self.stats.hits += 1;
            self.touch(slot);
            slot
        } else {
            self.stats.misses += 1;
            inserted = true;
            if self.index.len() < self.cfg.entries {
                let slot = if let Some(s) = self.free.pop() {
                    self.slots[s as usize] = Slot { flow, count: 0, prev: NIL, next: NIL };
                    s
                } else {
                    self.slots.push(Slot { flow, count: 0, prev: NIL, next: NIL });
                    (self.slots.len() - 1) as u32
                };
                self.index.insert(flow, slot);
                self.push_front(slot);
                slot
            } else {
                let victim = self.select_victim();
                let victim_flow = self.slots[victim as usize].flow;
                let victim_count = self.slots[victim as usize].count;
                self.index.remove(victim_flow);
                self.unlink(victim);
                self.slots[victim as usize] = Slot { flow, count: 0, prev: NIL, next: NIL };
                self.index.insert(flow, victim);
                self.push_front(victim);
                if victim_count > 0 {
                    self.stats.replacement_evictions += 1;
                    out.push(Eviction {
                        flow: victim_flow,
                        value: victim_count,
                        reason: EvictionReason::Replacement,
                    });
                }
                victim
            }
        };
        let s = &mut self.slots[slot as usize];
        s.count += weight;
        while s.count >= self.cfg.entry_capacity {
            s.count -= self.cfg.entry_capacity;
            self.stats.overflow_evictions += 1;
            out.push(Eviction {
                flow,
                value: self.cfg.entry_capacity,
                reason: EvictionReason::Overflow,
            });
        }
        Some(Recorded { slot, inserted, eviction: None })
    }

    /// End-of-measurement dump (§3.1): flush every entry with a nonzero
    /// count and clear the table.
    pub fn drain(&mut self) -> Vec<Eviction> {
        let mut out = Vec::with_capacity(self.index.len());
        self.drain_with(|_, e| out.push(e));
        out
    }

    /// Streaming form of [`drain`](Self::drain): invoke `sink` with
    /// `(slot, eviction)` for every resident entry with a nonzero
    /// count, **in ascending slot-id order** (the same order `drain`
    /// emits), then clear the table. The slot id lets callers consume
    /// their per-slot side tables (e.g. memoized counter indices)
    /// without re-hashing, and the callback form avoids materializing
    /// the eviction `Vec`.
    ///
    /// Slot-id order (rather than hash-map iteration order) makes the
    /// dump a pure function of the *visible* table state: a table
    /// rebuilt from a [`CacheTableState`] snapshot drains — and
    /// therefore scatters its final-dump remainders through the
    /// downstream RNG — byte-identically to the original, even though
    /// the rebuilt hash index has a different internal layout history.
    /// Every slot in `slots` is resident by construction (slots are
    /// only ever allocated bound and rebound in place, never freed
    /// mid-run), so this walk misses nothing.
    pub fn drain_with(&mut self, mut sink: impl FnMut(u32, Eviction)) {
        let mut dumped = 0u64;
        for (slot, s) in self.slots.iter().enumerate() {
            if s.count > 0 {
                dumped += 1;
                sink(
                    slot as u32,
                    Eviction {
                        flow: s.flow,
                        value: s.count,
                        reason: EvictionReason::FinalDump,
                    },
                );
            }
        }
        self.stats.final_dump_entries += dumped;
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Capture the table's complete dynamic state for a
    /// crash-consistent snapshot. Restoring via
    /// [`CacheTable::restore`] yields a table whose every future
    /// observable — records, evictions, recency order, random-victim
    /// draws, final dump — is byte-identical to continuing with `self`.
    pub fn snapshot_state(&self) -> CacheTableState {
        debug_assert!(self.free.is_empty(), "slots are never freed mid-run");
        CacheTableState {
            slots: self
                .slots
                .iter()
                .map(|s| (s.flow, s.count, s.prev, s.next))
                .collect(),
            head: self.head,
            tail: self.tail,
            rng: self.rng.state(),
            stats: self.stats,
        }
    }

    /// Rebuild a table from a [`CacheTableState`] snapshot taken with
    /// the same `cfg`. The hash index is reconstructed from the slot
    /// array; because no observable path depends on hash-map iteration
    /// order (see [`drain_with`](Self::drain_with)), the restored table
    /// continues the original's behavior exactly.
    ///
    /// # Panics
    /// Panics if the snapshot is inconsistent with `cfg` (more slots
    /// than entries, duplicate flows, or dangling list links).
    pub fn restore(cfg: CacheConfig, state: &CacheTableState) -> Self {
        assert!(cfg.entries > 0, "cache needs at least one entry");
        assert!(cfg.entry_capacity >= 2, "entry capacity y must be >= 2");
        assert!(
            state.slots.len() <= cfg.entries,
            "snapshot has {} slots but cfg allows {}",
            state.slots.len(),
            cfg.entries
        );
        let n = state.slots.len() as u32;
        let ok = |link: u32| link == NIL || link < n;
        assert!(ok(state.head) && ok(state.tail), "dangling list head/tail");
        let mut slots = Vec::with_capacity(cfg.entries);
        let mut index = FlowSlotMap::with_capacity(cfg.entries);
        for (i, &(flow, count, prev, next)) in state.slots.iter().enumerate() {
            assert!(ok(prev) && ok(next), "dangling link at slot {i}");
            let dup = index.insert(flow, i as u32);
            assert!(dup.is_none(), "duplicate flow {flow:#x} in snapshot");
            slots.push(Slot { flow, count, prev, next });
        }
        Self {
            cfg,
            slots,
            index,
            head: state.head,
            tail: state.tail,
            free: Vec::new(),
            rng: StdRng::from_state(state.rng),
            stats: state.stats,
        }
    }

    /// Software-prefetch the table state for an upcoming
    /// [`record`](Self::record) of `flow` (issued one batch element
    /// ahead by the CAESAR batch record loop).
    ///
    /// Probing the index warms the hash-map bucket line as a side
    /// effect; on a resident flow the slot's line is additionally
    /// prefetched and `Some((slot, will_overflow))` is returned so the
    /// caller can also prefetch the flow's `k` SRAM counter words when
    /// the *next* packet will overflow the entry. Read-only: no stats,
    /// no recency update.
    #[inline]
    pub fn prefetch(&self, flow: u64) -> Option<(u32, bool)> {
        let slot = self.index.get(flow)?;
        let s = &self.slots[slot as usize];
        support::mem::prefetch_read(s);
        Some((slot, s.count + 1 >= self.cfg.entry_capacity))
    }

    /// Iterate resident `(flow, partial_count)` pairs without flushing,
    /// in ascending slot-id order (deterministic and
    /// layout-independent, like [`drain_with`](Self::drain_with)).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.slots.iter().map(|s| (s.flow, s.count))
    }

    #[inline]
    fn select_victim(&mut self) -> u32 {
        match self.cfg.policy {
            CachePolicy::Lru | CachePolicy::Fifo => self.tail,
            CachePolicy::Random => {
                // Table is full, so every slot is occupied.
                self.rng.gen_range(0..self.slots.len()) as u32
            }
        }
    }

    /// Move `slot` to the list head on access (LRU only).
    ///
    /// Specialized unlink + relink: `slot != head` guarantees a
    /// predecessor exists and the list is non-empty, so the nil checks
    /// the general [`unlink`](Self::unlink)/[`push_front`](Self::push_front)
    /// pair makes are dead here — this is the hottest list operation
    /// (one per cache hit).
    #[inline]
    fn touch(&mut self, slot: u32) {
        if self.cfg.policy == CachePolicy::Lru && self.head != slot {
            let Slot { prev, next, .. } = self.slots[slot as usize];
            self.slots[prev as usize].next = next;
            if next != NIL {
                self.slots[next as usize].prev = prev;
            } else {
                self.tail = prev;
            }
            let old_head = self.head;
            let s = &mut self.slots[slot as usize];
            s.prev = NIL;
            s.next = old_head;
            self.slots[old_head as usize].prev = slot;
            self.head = slot;
        }
    }

    #[inline]
    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        let s = &mut self.slots[slot as usize];
        s.prev = NIL;
        s.next = NIL;
    }

    #[inline]
    fn push_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[slot as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    #[cfg(test)]
    fn assert_list_invariants(&self) {
        // Walk the list forward: every resident slot appears exactly once.
        let mut seen = std::collections::HashSet::new();
        let mut cur = self.head;
        let mut prev = NIL;
        while cur != NIL {
            assert!(seen.insert(cur), "cycle at slot {cur}");
            assert_eq!(self.slots[cur as usize].prev, prev);
            prev = cur;
            cur = self.slots[cur as usize].next;
        }
        assert_eq!(prev, self.tail);
        assert_eq!(seen.len(), self.index.len());
        for (flow, slot) in self.index.iter() {
            assert_eq!(self.slots[slot as usize].flow, flow);
            assert!(seen.contains(&slot));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru(entries: usize, cap: u64) -> CacheTable {
        CacheTable::new(CacheConfig::lru(entries, cap))
    }

    #[test]
    fn hit_increments_without_eviction() {
        let mut c = lru(4, 100);
        assert!(c.record(1).is_none());
        assert!(c.record(1).is_none());
        assert_eq!(c.peek(1), Some(2));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn overflow_evicts_full_capacity() {
        let mut c = lru(4, 5);
        let mut evictions = Vec::new();
        for _ in 0..12 {
            if let Some(e) = c.record(9) {
                evictions.push(e);
            }
        }
        // Counts 1..5 -> overflow at 5, again at 10.
        assert_eq!(evictions.len(), 2);
        for e in &evictions {
            assert_eq!(e.value, 5);
            assert_eq!(e.reason, EvictionReason::Overflow);
        }
        assert_eq!(c.peek(9), Some(2)); // 12 - 2*5
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = lru(2, 100);
        c.record(1);
        c.record(2);
        c.record(1); // 1 is now MRU
        let e = c.record(3).expect("replacement eviction");
        assert_eq!(e.flow, 2);
        assert_eq!(e.value, 1);
        assert_eq!(e.reason, EvictionReason::Replacement);
        assert_eq!(c.peek(1), Some(2));
        assert_eq!(c.peek(2), None);
        assert_eq!(c.peek(3), Some(1));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = CacheTable::new(CacheConfig {
            policy: CachePolicy::Fifo,
            ..CacheConfig::lru(2, 100)
        });
        c.record(1);
        c.record(2);
        c.record(1); // touch must NOT save flow 1 under FIFO
        let e = c.record(3).expect("replacement eviction");
        assert_eq!(e.flow, 1);
        assert_eq!(e.value, 2);
    }

    #[test]
    fn random_policy_evicts_some_resident_flow() {
        let mut c = CacheTable::new(CacheConfig::random(4, 100));
        for f in 1..=4 {
            c.record(f);
        }
        let e = c.record(5).expect("replacement eviction");
        assert!((1..=4).contains(&e.flow));
        assert_eq!(c.len(), 4);
        assert_eq!(c.peek(5), Some(1));
    }

    #[test]
    fn drain_flushes_everything_once() {
        let mut c = lru(8, 100);
        for f in 0..5u64 {
            for _ in 0..=f {
                c.record(f);
            }
        }
        let mut dump = c.drain();
        dump.sort_by_key(|e| e.flow);
        assert_eq!(dump.len(), 5);
        for (i, e) in dump.iter().enumerate() {
            assert_eq!(e.flow, i as u64);
            assert_eq!(e.value, i as u64 + 1);
            assert_eq!(e.reason, EvictionReason::FinalDump);
        }
        assert!(c.is_empty());
        assert!(c.drain().is_empty());
    }

    #[test]
    fn conservation_of_packets() {
        // Every packet must end up in exactly one eviction value.
        let mut c = lru(16, 7);
        let mut evicted = 0u64;
        let mut sent = 0u64;
        for i in 0..10_000u64 {
            let flow = i % 37; // 37 flows > 16 entries: lots of churn
            sent += 1;
            if let Some(e) = c.record(flow) {
                evicted += e.value;
            }
        }
        for e in c.drain() {
            evicted += e.value;
        }
        assert_eq!(evicted, sent);
    }

    #[test]
    fn zero_count_victim_emits_nothing() {
        // Overflow resets a count to zero; replacing that entry before
        // its next packet must not emit a zero-value eviction.
        let mut c = lru(1, 2);
        c.record(1);
        let e = c.record(1).expect("overflow at capacity 2");
        assert_eq!(e.value, 2);
        // Flow 1's entry now has count 0; a miss replaces it silently.
        assert!(c.record(2).is_none());
        assert_eq!(c.peek(2), Some(1));
    }

    #[test]
    fn list_invariants_under_churn() {
        for policy in [CachePolicy::Lru, CachePolicy::Random, CachePolicy::Fifo] {
            let mut c = CacheTable::new(CacheConfig {
                policy,
                ..CacheConfig::lru(8, 4)
            });
            let mut x = 1u64;
            for _ in 0..5_000 {
                // Cheap LCG over a 29-flow universe.
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                c.record(x % 29);
                c.assert_list_invariants();
            }
        }
    }

    #[test]
    fn eviction_values_bounded_by_capacity() {
        let mut c = CacheTable::new(CacheConfig::random(8, 6));
        let mut x = 7u64;
        let check = |e: Option<Eviction>| {
            if let Some(e) = e {
                assert!(e.value >= 1 && e.value <= 6, "eviction {e:?}");
            }
        };
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            check(c.record(x % 100));
        }
        for e in c.drain() {
            assert!(e.value >= 1 && e.value <= 6);
        }
    }

    #[test]
    fn stats_accounting() {
        let mut c = lru(2, 3);
        c.record(1); // miss
        c.record(1); // hit
        c.record(1); // hit + overflow (count reaches 3)
        c.record(2); // miss
        c.record(3); // miss + replacement (victim is flow 1 w/ count 0 -> silent) or flow 2?
        let st = c.stats();
        assert_eq!(st.hits, 2);
        assert_eq!(st.misses, 3);
        assert_eq!(st.overflow_evictions, 1);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        CacheTable::new(CacheConfig::lru(0, 10));
    }

    #[test]
    #[should_panic(expected = "y must be >= 2")]
    fn tiny_capacity_rejected() {
        CacheTable::new(CacheConfig::lru(4, 1));
    }

    #[test]
    fn weighted_conservation() {
        let mut c = lru(8, 100);
        let mut out = Vec::new();
        let mut sent = 0u64;
        let mut x = 3u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let w = x % 1500 + 1;
            sent += w;
            c.record_weighted(x % 23, w, &mut out);
        }
        let mut evicted: u64 = out.iter().map(|e| e.value).sum();
        evicted += c.drain().iter().map(|e| e.value).sum::<u64>();
        assert_eq!(evicted, sent);
    }

    #[test]
    fn weighted_multi_overflow() {
        let mut c = lru(2, 10);
        let mut out = Vec::new();
        c.record_weighted(1, 35, &mut out);
        // 35 units in a capacity-10 entry: three overflow evictions of
        // exactly 10, residue 5 stays resident.
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|e| e.value == 10 && e.reason == EvictionReason::Overflow));
        assert_eq!(c.peek(1), Some(5));
    }

    #[test]
    fn weighted_replacement_then_overflow() {
        let mut c = lru(1, 10);
        let mut out = Vec::new();
        c.record_weighted(1, 4, &mut out);
        assert!(out.is_empty());
        c.record_weighted(2, 25, &mut out);
        // Replacement eviction of flow 1 (value 4), then two overflows
        // of flow 2.
        assert_eq!(out[0], Eviction { flow: 1, value: 4, reason: EvictionReason::Replacement });
        assert_eq!(out.len(), 3);
        assert_eq!(c.peek(2), Some(5));
    }

    #[test]
    fn weighted_zero_is_noop() {
        let mut c = lru(2, 10);
        let mut out = Vec::new();
        c.record_weighted(1, 0, &mut out);
        assert!(out.is_empty());
        assert!(c.is_empty());
        assert_eq!(c.stats().packets(), 0);
    }

    #[test]
    fn weighted_unit_matches_record() {
        // record_weighted(f, 1) must behave exactly like record(f).
        let mut a = lru(4, 7);
        let mut b = lru(4, 7);
        let mut out = Vec::new();
        let mut x = 9u64;
        for _ in 0..3_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let f = x % 13;
            let e1 = a.record(f);
            let before = out.len();
            b.record_weighted(f, 1, &mut out);
            match e1 {
                Some(e) => assert_eq!(out.last(), Some(&e)),
                None => assert_eq!(out.len(), before),
            }
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn record_slotted_agrees_with_record_and_tracks_binding() {
        for policy in [CachePolicy::Lru, CachePolicy::Random, CachePolicy::Fifo] {
            let mut a = CacheTable::new(CacheConfig { policy, ..CacheConfig::lru(8, 4) });
            let mut b = CacheTable::new(CacheConfig { policy, ..CacheConfig::lru(8, 4) });
            let mut bound: std::collections::HashMap<u32, u64> = Default::default();
            let mut x = 5u64;
            for _ in 0..10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let f = x % 29;
                let e = a.record(f);
                let r = b.record_slotted(f);
                assert_eq!(e, r.eviction);
                if !r.inserted {
                    // Already resident: the slot must have been bound to
                    // this flow by an earlier inserted=true call.
                    assert_eq!(bound.get(&r.slot), Some(&f), "slot {} flow {f}", r.slot);
                } else if let Some(ev) = r.eviction {
                    // Replacement: the eviction names the previous
                    // occupant of the reused slot.
                    assert_eq!(bound.get(&r.slot), Some(&ev.flow));
                }
                bound.insert(r.slot, f);
            }
            assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn drain_with_matches_drain_order_and_slots() {
        let build = |seed: u64| {
            let mut c = CacheTable::new(CacheConfig::random(16, 9));
            let mut x = seed;
            for _ in 0..4_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                c.record(x % 41);
            }
            c
        };
        let mut a = build(11);
        let mut b = build(11);
        let expected = a.drain();
        let mut got = Vec::new();
        b.drain_with(|slot, e| {
            // The slot really held this flow's count.
            got.push(e);
            let _ = slot;
        });
        assert_eq!(expected, got);
        assert_eq!(a.stats(), b.stats());
        assert!(b.is_empty());
    }

    #[test]
    fn weighted_slotted_agrees_with_weighted() {
        let mut a = lru(4, 7);
        let mut b = lru(4, 7);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        let mut x = 9u64;
        for _ in 0..3_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let f = x % 13;
            let w = x % 20;
            a.record_weighted(f, w, &mut out_a);
            let r = b.record_weighted_slotted(f, w, &mut out_b);
            assert_eq!(r.is_none(), w == 0);
        }
        assert_eq!(out_a, out_b);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn prefetch_is_read_only_and_predicts_overflow() {
        let mut c = lru(4, 3);
        assert_eq!(c.prefetch(1), None);
        c.record(1); // count 1
        let st = c.stats();
        assert_eq!(c.prefetch(1), Some((0, false)));
        c.record(1); // count 2: next packet overflows (y = 3)
        assert_eq!(c.prefetch(1).map(|(_, o)| o), Some(true));
        assert_eq!(c.stats().hits, st.hits + 1, "prefetch must not count as access");
    }

    #[test]
    fn snapshot_restore_continues_byte_identically() {
        for policy in [CachePolicy::Lru, CachePolicy::Random, CachePolicy::Fifo] {
            let cfg = CacheConfig { policy, ..CacheConfig::lru(8, 5) };
            let mut a = CacheTable::new(cfg);
            let mut x = 17u64;
            for _ in 0..3_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                a.record(x % 31);
            }
            let snap = a.snapshot_state();
            let mut b = CacheTable::restore(cfg, &snap);
            assert_eq!(a.stats(), b.stats());
            assert_eq!(a.len(), b.len());
            // Identical futures: same evictions, same random victims,
            // same recency decisions, same final dump.
            for _ in 0..3_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let f = x % 31;
                assert_eq!(a.record_slotted(f), b.record_slotted(f));
            }
            let mut da = Vec::new();
            let mut db = Vec::new();
            a.drain_with(|slot, e| da.push((slot, e)));
            b.drain_with(|slot, e| db.push((slot, e)));
            assert_eq!(da, db);
            assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn snapshot_restore_round_trips_state() {
        let cfg = CacheConfig::random(4, 9);
        let mut c = CacheTable::new(cfg);
        for f in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            c.record(f);
        }
        let snap = c.snapshot_state();
        let r = CacheTable::restore(cfg, &snap);
        assert_eq!(r.snapshot_state(), snap, "restore → snapshot is the identity");
        // iter() is slot-ordered, hence identical too.
        assert_eq!(c.iter().collect::<Vec<_>>(), r.iter().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "duplicate flow")]
    fn restore_rejects_duplicate_flows() {
        let cfg = CacheConfig::lru(4, 9);
        let state = CacheTableState {
            slots: vec![(7, 1, NIL, 1), (7, 2, 0, NIL)],
            head: 0,
            tail: 1,
            rng: [1, 2, 3, 4],
            stats: CacheStats::default(),
        };
        CacheTable::restore(cfg, &state);
    }

    #[test]
    fn memory_bits_accounting() {
        let cfg = CacheConfig::lru(1024, 64);
        // 64-capacity counter needs 6 bits; with a 32-bit tag:
        assert_eq!(cfg.memory_bits(32), 1024 * (6 + 32));
    }
}
