//! Property tests: trace substrate robustness and invariants, on the
//! deterministic `support::testkit` harness.

use flowtrace::dist::{FlowSizeDistribution, PowerLaw};
use flowtrace::pcap::{decode_ethernet_ipv4, encode_ethernet_ipv4, PcapReader};
use flowtrace::stats::{ccdf, histogram};
use flowtrace::FiveTuple;
use support::rand::{Rng, StdRng};
use support::testkit::{for_each_seed, GenExt};
use std::io::Cursor;

fn arb_tuple(rng: &mut StdRng) -> FiveTuple {
    let proto = rng.pick(&[6u8, 17, 1]);
    let src_port: u16 = rng.gen();
    let dst_port: u16 = rng.gen();
    FiveTuple {
        src_ip: rng.gen(),
        dst_ip: rng.gen(),
        src_port: if proto == 1 { 0 } else { src_port },
        dst_port: if proto == 1 { 0 } else { dst_port },
        proto,
    }
}

/// Ethernet/IPv4 frame encode→decode round-trips any 5-tuple.
#[test]
fn frame_roundtrip() {
    for_each_seed(|rng| {
        let tuple = arb_tuple(rng);
        let frame = encode_ethernet_ipv4(&tuple);
        assert_eq!(decode_ethernet_ipv4(&frame), Some(tuple));
    });
}

/// The pcap reader never panics on arbitrary bytes — it either
/// errors out or yields packets until a clean EOF.
#[test]
fn pcap_reader_is_total() {
    for_each_seed(|rng| {
        let bytes = rng.bytes(0..2000);
        if let Ok(mut r) = PcapReader::new(Cursor::new(&bytes)) {
            // Bounded loop: each next_packet consumes input or ends.
            for _ in 0..200 {
                match r.next_packet() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => break,
                }
            }
        }
    });
}

/// Truncating a valid capture anywhere still parses cleanly.
#[test]
fn pcap_truncation_is_graceful() {
    for_each_seed(|rng| {
        use flowtrace::pcap::PcapWriter;
        let tuples = rng.vec_with(1..20, arb_tuple);
        let cut_fraction = rng.gen_range(0.0f64..1.0);
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf).expect("header");
            for t in &tuples {
                w.write_packet(t, 0, 64).expect("packet");
            }
            w.finish().expect("flush");
        }
        let cut = 24 + ((buf.len() - 24) as f64 * cut_fraction) as usize;
        let mut r = PcapReader::new(Cursor::new(&buf[..cut])).expect("header intact");
        let mut parsed = 0;
        while let Ok(Some(_)) = r.next_packet() {
            parsed += 1;
        }
        assert!(parsed <= tuples.len());
    });
}

/// Histograms conserve the population for arbitrary sizes.
#[test]
fn histogram_conserves() {
    for_each_seed(|rng| {
        let sizes = rng.vec_with(1..500, |r| r.gen_range(1u64..1_000_000));
        let cutoff = rng.gen_range(1u64..100);
        let bins = histogram(&sizes, cutoff);
        let total: u64 = bins.iter().map(|b| b.count).sum();
        assert_eq!(total as usize, sizes.len());
        // Bins tile the value range without overlap.
        for w in bins.windows(2) {
            assert_eq!(w[0].size_end, w[1].size);
        }
    });
}

/// CCDF is monotone non-increasing and starts at 1.
#[test]
fn ccdf_monotone() {
    for_each_seed(|rng| {
        let sizes = rng.vec_with(1..300, |r| r.gen_range(1u64..10_000));
        let c = ccdf(&sizes);
        assert!((c[0].1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    });
}

/// The truncated power law is a distribution for any parameters.
#[test]
fn power_law_is_normalized() {
    for_each_seed(|rng| {
        let alpha = rng.gen_range(0.2f64..4.0);
        let max = rng.gen_range(2u64..5000);
        let d = PowerLaw::new(alpha, max);
        let total: f64 = (1..=max).map(|s| d.pmf(s)).sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(d.mean() >= 1.0 && d.mean() <= max as f64);
    });
}

/// Arrival-time models produce sorted timestamps at the requested
/// average rate.
#[test]
fn arrival_processes_sorted_and_calibrated() {
    for_each_seed(|rng| {
        use flowtrace::timing::ArrivalProcess;
        let mean = rng.gen_range(1u32..50) as f64;
        let burst = rng.gen_range(2usize..64);
        let seed: u64 = rng.gen();
        let n = 20_000;
        for p in [
            ArrivalProcess::Constant { spacing_ns: mean },
            ArrivalProcess::Poisson { mean_ns: mean, seed },
            ArrivalProcess::OnOff { mean_ns: mean, on_ns: 1.0, burst_len: burst },
        ] {
            let ts = p.timestamps(n);
            assert_eq!(ts.len(), n);
            assert!(ts.windows(2).all(|w| w[1] >= w[0]));
            let avg = ts.last().expect("non-empty") / (n as f64 - 1.0);
            assert!((avg - mean).abs() / mean < 0.1, "avg gap {avg} vs {mean}");
        }
    });
}

/// Scenario injection conserves every packet and the attack flows.
#[test]
fn injection_conserves() {
    for_each_seed(|rng| {
        use flowtrace::scenarios;
        use flowtrace::synth::{SynthConfig, TraceGenerator};
        let sources = rng.gen_range(1u32..50);
        let per_source = rng.gen_range(1u64..50);
        let start = rng.gen_range(0.0f64..0.5);
        let width = rng.gen_range(0.1f64..0.5);
        let (bg, _) = TraceGenerator::new(SynthConfig {
            num_flows: 200,
            ..SynthConfig::small()
        })
        .generate();
        let attack = scenarios::ddos(1, 80, sources, per_source, 3);
        let mixed = scenarios::inject(&bg, &attack, start, (start + width).min(1.0));
        assert_eq!(mixed.packets.len(), bg.packets.len() + attack.packets.len());
        assert!(mixed.num_flows <= bg.num_flows + attack.flows.len());
    });
}

/// Sampling stays within the truncation for any seed.
#[test]
fn power_law_sampling_in_range() {
    for_each_seed(|rng| {
        use support::rand::SeedableRng;
        let alpha = rng.gen_range(0.5f64..3.0);
        let max = rng.gen_range(2u64..300);
        let seed: u64 = rng.gen();
        let d = PowerLaw::new(alpha, max);
        let mut sample_rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = d.sample(&mut sample_rng);
            assert!((1..=max).contains(&s));
        }
    });
}
