//! Property tests: trace substrate robustness and invariants.

use flowtrace::dist::{FlowSizeDistribution, PowerLaw};
use flowtrace::pcap::{decode_ethernet_ipv4, encode_ethernet_ipv4, PcapReader};
use flowtrace::stats::{ccdf, histogram};
use flowtrace::FiveTuple;
use proptest::prelude::*;
use std::io::Cursor;

fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), prop_oneof![Just(6u8), Just(17u8), Just(1u8)])
        .prop_map(|(src_ip, dst_ip, src_port, dst_port, proto)| FiveTuple {
            src_ip,
            dst_ip,
            src_port: if proto == 1 { 0 } else { src_port },
            dst_port: if proto == 1 { 0 } else { dst_port },
            proto,
        })
}

proptest! {
    /// Ethernet/IPv4 frame encode→decode round-trips any 5-tuple.
    #[test]
    fn frame_roundtrip(tuple in arb_tuple()) {
        let frame = encode_ethernet_ipv4(&tuple);
        prop_assert_eq!(decode_ethernet_ipv4(&frame), Some(tuple));
    }

    /// The pcap reader never panics on arbitrary bytes — it either
    /// errors out or yields packets until a clean EOF.
    #[test]
    fn pcap_reader_is_total(bytes in prop::collection::vec(any::<u8>(), 0..2000)) {
        if let Ok(mut r) = PcapReader::new(Cursor::new(&bytes)) {
            // Bounded loop: each next_packet consumes input or ends.
            for _ in 0..200 {
                match r.next_packet() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => break,
                }
            }
        }
    }

    /// Truncating a valid capture anywhere still parses cleanly.
    #[test]
    fn pcap_truncation_is_graceful(
        tuples in prop::collection::vec(arb_tuple(), 1..20),
        cut_fraction in 0.0f64..1.0,
    ) {
        use flowtrace::pcap::PcapWriter;
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf).expect("header");
            for t in &tuples {
                w.write_packet(t, 0, 64).expect("packet");
            }
            w.finish().expect("flush");
        }
        let cut = 24 + ((buf.len() - 24) as f64 * cut_fraction) as usize;
        let mut r = PcapReader::new(Cursor::new(&buf[..cut])).expect("header intact");
        let mut parsed = 0;
        while let Ok(Some(_)) = r.next_packet() {
            parsed += 1;
        }
        prop_assert!(parsed <= tuples.len());
    }

    /// Histograms conserve the population for arbitrary sizes.
    #[test]
    fn histogram_conserves(
        sizes in prop::collection::vec(1u64..1_000_000, 1..500),
        cutoff in 1u64..100,
    ) {
        let bins = histogram(&sizes, cutoff);
        let total: u64 = bins.iter().map(|b| b.count).sum();
        prop_assert_eq!(total as usize, sizes.len());
        // Bins tile the value range without overlap.
        for w in bins.windows(2) {
            prop_assert_eq!(w[0].size_end, w[1].size);
        }
    }

    /// CCDF is monotone non-increasing and starts at 1.
    #[test]
    fn ccdf_monotone(sizes in prop::collection::vec(1u64..10_000, 1..300)) {
        let c = ccdf(&sizes);
        prop_assert!((c[0].1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    /// The truncated power law is a distribution for any parameters.
    #[test]
    fn power_law_is_normalized(alpha in 0.2f64..4.0, max in 2u64..5000) {
        let d = PowerLaw::new(alpha, max);
        let total: f64 = (1..=max).map(|s| d.pmf(s)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(d.mean() >= 1.0 && d.mean() <= max as f64);
    }

    /// Arrival-time models produce sorted timestamps at the requested
    /// average rate.
    #[test]
    fn arrival_processes_sorted_and_calibrated(
        mean in 1u32..50,
        burst in 2usize..64,
        seed in any::<u64>(),
    ) {
        use flowtrace::timing::ArrivalProcess;
        let mean = mean as f64;
        let n = 20_000;
        for p in [
            ArrivalProcess::Constant { spacing_ns: mean },
            ArrivalProcess::Poisson { mean_ns: mean, seed },
            ArrivalProcess::OnOff { mean_ns: mean, on_ns: 1.0, burst_len: burst },
        ] {
            let ts = p.timestamps(n);
            prop_assert_eq!(ts.len(), n);
            prop_assert!(ts.windows(2).all(|w| w[1] >= w[0]));
            let avg = ts.last().expect("non-empty") / (n as f64 - 1.0);
            prop_assert!((avg - mean).abs() / mean < 0.1, "avg gap {} vs {}", avg, mean);
        }
    }

    /// Scenario injection conserves every packet and the attack flows.
    #[test]
    fn injection_conserves(
        sources in 1u32..50,
        per_source in 1u64..50,
        start in 0.0f64..0.5,
        width in 0.1f64..0.5,
    ) {
        use flowtrace::scenarios;
        use flowtrace::synth::{SynthConfig, TraceGenerator};
        let (bg, _) = TraceGenerator::new(SynthConfig {
            num_flows: 200,
            ..SynthConfig::small()
        })
        .generate();
        let attack = scenarios::ddos(1, 80, sources, per_source, 3);
        let mixed = scenarios::inject(&bg, &attack, start, (start + width).min(1.0));
        prop_assert_eq!(mixed.packets.len(), bg.packets.len() + attack.packets.len());
        prop_assert!(mixed.num_flows <= bg.num_flows + attack.flows.len());
    }

    /// Sampling stays within the truncation for any seed.
    #[test]
    fn power_law_sampling_in_range(alpha in 0.5f64..3.0, max in 2u64..300, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let d = PowerLaw::new(alpha, max);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            prop_assert!((1..=max).contains(&s));
        }
    }
}
