//! Trace statistics — everything Figure 3 plots plus the tail fractions
//! the paper's assumptions lean on (§4.2, §6.2).


/// Summary statistics of a set of flow sizes.
#[derive(Debug, Clone)]
pub struct FlowStats {
    /// Number of flows (`Q`).
    pub num_flows: usize,
    /// Total packets (`n`).
    pub total_packets: u64,
    /// Mean flow size (`μ`).
    pub mean: f64,
    /// Variance of flow size (`σ²`).
    pub variance: f64,
    /// Largest flow.
    pub max: u64,
    /// Median flow size.
    pub median: u64,
    /// Fraction of flows strictly below the mean (paper: > 0.92).
    pub frac_below_mean: f64,
    /// Fraction of flows strictly below `2·mean` (paper: > 0.95).
    pub frac_below_twice_mean: f64,
}

impl FlowStats {
    /// Compute statistics from flow sizes.
    ///
    /// # Panics
    /// Panics if `sizes` is empty.
    pub fn from_sizes(sizes: &[u64]) -> Self {
        assert!(!sizes.is_empty(), "no flows to summarize");
        let num_flows = sizes.len();
        let total_packets: u64 = sizes.iter().sum();
        let mean = total_packets as f64 / num_flows as f64;
        let variance = sizes
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / num_flows as f64;
        let mut sorted = sizes.to_vec();
        sorted.sort_unstable();
        let median = sorted[num_flows / 2];
        let max = *sorted.last().expect("non-empty");
        let below_mean = sorted.iter().filter(|&&s| (s as f64) < mean).count();
        let below_2mean = sorted.iter().filter(|&&s| (s as f64) < 2.0 * mean).count();
        Self {
            num_flows,
            total_packets,
            mean,
            variance,
            max,
            median,
            frac_below_mean: below_mean as f64 / num_flows as f64,
            frac_below_twice_mean: below_2mean as f64 / num_flows as f64,
        }
    }
}

/// One point of a flow-size histogram / distribution plot.
#[derive(Debug, Clone, Copy)]
pub struct HistogramBin {
    /// Flow size (exact, for sizes ≤ the linear cutoff) or bucket lower
    /// bound (for the geometric tail).
    pub size: u64,
    /// Exclusive upper bound of the bucket.
    pub size_end: u64,
    /// Number of flows in the bucket.
    pub count: u64,
}

/// Histogram of flow sizes with exact unit bins up to `linear_cutoff`
/// and geometric (×2) bins beyond — the standard way to render a
/// heavy-tailed distribution like Fig. 3.
pub fn histogram(sizes: &[u64], linear_cutoff: u64) -> Vec<HistogramBin> {
    let max = sizes.iter().copied().max().unwrap_or(0);
    let mut bins: Vec<HistogramBin> = Vec::new();
    for s in 1..=linear_cutoff.min(max) {
        bins.push(HistogramBin { size: s, size_end: s + 1, count: 0 });
    }
    let mut lo = linear_cutoff + 1;
    while lo <= max {
        let hi = (lo * 2).max(lo + 1);
        bins.push(HistogramBin { size: lo, size_end: hi, count: 0 });
        lo = hi;
    }
    for &s in sizes {
        if s == 0 {
            continue;
        }
        let idx = if s <= linear_cutoff {
            s as usize - 1
        } else {
            // Geometric bucket index after the linear region.
            let mut i = linear_cutoff as usize;
            let mut lo = linear_cutoff + 1;
            loop {
                let hi = (lo * 2).max(lo + 1);
                if s < hi {
                    break i;
                }
                lo = hi;
                i += 1;
            }
        };
        if idx < bins.len() {
            bins[idx].count += 1;
        }
    }
    bins
}

/// Complementary CDF points `(size, P(flow size ≥ size))` at
/// logarithmically spaced sizes.
pub fn ccdf(sizes: &[u64]) -> Vec<(u64, f64)> {
    if sizes.is_empty() {
        return Vec::new();
    }
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let max = *sorted.last().expect("non-empty");
    let mut out = Vec::new();
    let mut s = 1u64;
    while s <= max {
        // Count of flows >= s via binary search on the sorted sizes.
        let idx = sorted.partition_point(|&x| x < s);
        out.push((s, (sorted.len() - idx) as f64 / n));
        s = if s < 10 { s + 1 } else { (s as f64 * 1.3).ceil() as u64 };
    }
    out
}

/// Hill estimator of the power-law tail exponent: the maximum-
/// likelihood estimator over the top `k` order statistics,
/// `α̂ = 1 + k / Σ ln(x_(i)/x_(k))`. More statistically principled than
/// the least-squares CCDF fit ([`tail_exponent`]); the two should
/// agree on a clean power law.
///
/// Returns `NaN` when fewer than two distinct tail samples exist.
pub fn hill_estimator(sizes: &[u64], tail_fraction: f64) -> f64 {
    assert!(
        tail_fraction > 0.0 && tail_fraction <= 1.0,
        "tail fraction must be in (0,1]"
    );
    let mut sorted: Vec<u64> = sizes.iter().copied().filter(|&s| s > 0).collect();
    if sorted.len() < 2 {
        return f64::NAN;
    }
    sorted.sort_unstable_by(|a, b| b.cmp(a)); // descending
    let k = ((sorted.len() as f64 * tail_fraction).ceil() as usize)
        .clamp(2, sorted.len() - 1);
    let x_k = sorted[k] as f64;
    if x_k <= 0.0 {
        return f64::NAN;
    }
    let sum: f64 = sorted[..k].iter().map(|&x| (x as f64 / x_k).ln()).sum();
    if sum <= 0.0 {
        return f64::NAN;
    }
    1.0 + k as f64 / sum
}

/// Estimate the power-law tail exponent by a least-squares fit of
/// `log(CCDF)` against `log(size)` over the tail region. For a pure
/// power law with pmf exponent `α`, the CCDF exponent is `α − 1`.
pub fn tail_exponent(sizes: &[u64]) -> f64 {
    let pts: Vec<(f64, f64)> = ccdf(sizes)
        .into_iter()
        .filter(|&(s, p)| s >= 10 && p > 0.0)
        .map(|(s, p)| ((s as f64).ln(), p.ln()))
        .collect();
    if pts.len() < 2 {
        return f64::NAN;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    -slope + 1.0
}

/// Two-sided Kolmogorov–Smirnov statistic between the empirical CDF of
/// `sizes` and a target CDF over the integers:
/// `sup_s max(|F̂(s) − F(s)|, |F̂(s−) − F(s−1)|)`, evaluated over the
/// observed support. Both CDFs jump at integer atoms, so the target's
/// left limit at `s` is `F(s−1)` — comparing `F̂(s−)` against `F(s)`
/// (the continuous-case convention) would count every shared atom's
/// jump as distance.
///
/// `cdf(s)` must return `P(size <= s)` of the target distribution.
/// Returns 0 for an empty sample.
pub fn ks_statistic(sizes: &[u64], cdf: impl Fn(u64) -> f64) -> f64 {
    if sizes.is_empty() {
        return 0.0;
    }
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut ks = 0.0f64;
    let mut i = 0usize;
    while i < sorted.len() {
        let s = sorted[i];
        let mut j = i;
        while j < sorted.len() && sorted[j] == s {
            j += 1;
        }
        let f_emp_at = j as f64 / n; // F̂(s), inclusive of the atom
        let f_emp_before = i as f64 / n; // F̂(s−)
        let f = cdf(s);
        let f_before = cdf(s.saturating_sub(1));
        ks = ks
            .max((f_emp_at - f).abs())
            .max((f_emp_before - f_before).abs());
        i = j;
    }
    ks
}

/// Fraction of all packets carried by the largest `fraction` of flows
/// (e.g. `top_share(sizes, 0.01)` = the tail-mass share of the top 1%).
/// At least one flow is always included; returns 0 for an empty or
/// all-zero sample.
pub fn top_share(sizes: &[u64], fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "top fraction must be in [0, 1]"
    );
    if sizes.is_empty() {
        return 0.0;
    }
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let k = ((sorted.len() as f64 * fraction).ceil() as usize).clamp(1, sorted.len());
    sorted[..k].iter().sum::<u64>() as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_known_data() {
        let sizes = [1u64, 1, 2, 4, 100];
        let st = FlowStats::from_sizes(&sizes);
        assert_eq!(st.num_flows, 5);
        assert_eq!(st.total_packets, 108);
        assert!((st.mean - 21.6).abs() < 1e-12);
        assert_eq!(st.max, 100);
        assert_eq!(st.median, 2);
        assert!((st.frac_below_mean - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no flows")]
    fn stats_reject_empty() {
        FlowStats::from_sizes(&[]);
    }

    #[test]
    fn histogram_conserves_flows() {
        let sizes: Vec<u64> = (1..=1000u64).collect();
        let bins = histogram(&sizes, 32);
        let total: u64 = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 1000);
        // Linear region: one flow per unit bin.
        for b in &bins[..32] {
            assert_eq!(b.count, 1, "bin at size {}", b.size);
        }
    }

    #[test]
    fn histogram_bins_are_contiguous() {
        let sizes = [1u64, 5, 100, 5000];
        let bins = histogram(&sizes, 8);
        for w in bins.windows(2) {
            assert_eq!(w[0].size_end, w[1].size, "gap between bins");
        }
    }

    #[test]
    fn ccdf_starts_at_one_and_decreases() {
        let sizes = [1u64, 2, 3, 10, 100];
        let c = ccdf(&sizes);
        assert!((c[0].1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn hill_estimator_recovers_power_law() {
        use crate::dist::{FlowSizeDistribution, PowerLaw};
        use support::rand::{rngs::StdRng, SeedableRng};
        let d = PowerLaw::new(1.8, 1_000_000);
        let mut rng = StdRng::seed_from_u64(13);
        let sizes: Vec<u64> = (0..300_000).map(|_| d.sample(&mut rng)).collect();
        let est = hill_estimator(&sizes, 0.01);
        assert!((est - 1.8).abs() < 0.25, "Hill alpha = {est}");
        // The two estimators agree on a clean power law.
        let ls = tail_exponent(&sizes);
        assert!((est - ls).abs() < 0.5, "Hill {est} vs LS {ls}");
    }

    #[test]
    fn hill_estimator_degenerate_inputs() {
        assert!(hill_estimator(&[], 0.1).is_nan());
        assert!(hill_estimator(&[5], 0.1).is_nan());
        // Constant sizes: no tail decay, estimator returns NaN.
        assert!(hill_estimator(&[7; 100], 0.1).is_nan());
    }

    #[test]
    #[should_panic(expected = "tail fraction")]
    fn hill_estimator_rejects_bad_fraction() {
        hill_estimator(&[1, 2, 3], 0.0);
    }

    #[test]
    fn tail_exponent_recovers_power_law() {
        use crate::dist::{FlowSizeDistribution, PowerLaw};
        use support::rand::{rngs::StdRng, SeedableRng};
        let d = PowerLaw::new(1.8, 100_000);
        let mut rng = StdRng::seed_from_u64(11);
        let sizes: Vec<u64> = (0..300_000).map(|_| d.sample(&mut rng)).collect();
        let est = tail_exponent(&sizes);
        assert!((est - 1.8).abs() < 0.3, "estimated alpha = {est}");
    }

    #[test]
    fn ks_statistic_detects_fit_and_misfit() {
        use crate::dist::{FlowSizeDistribution, PowerLaw};
        use support::rand::{rngs::StdRng, SeedableRng};
        let d = PowerLaw::new(1.5, 1_000);
        let mut rng = StdRng::seed_from_u64(17);
        let sizes: Vec<u64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        // Against its own CDF: small (≈ 1.36/sqrt(n) at 95%).
        let good = ks_statistic(&sizes, |s| d.cdf(s));
        assert!(good < 0.02, "self-fit KS = {good}");
        // Against a very different tail: large.
        let other = PowerLaw::new(3.0, 1_000);
        let bad = ks_statistic(&sizes, |s| other.cdf(s));
        assert!(bad > 0.1, "misfit KS = {bad}");
        assert_eq!(ks_statistic(&[], |_| 0.5), 0.0);
    }

    #[test]
    fn top_share_on_known_data() {
        // 10 flows; top-10% (1 flow) carries 91/100 of the packets.
        let mut sizes = vec![1u64; 9];
        sizes.push(91);
        assert!((top_share(&sizes, 0.1) - 0.91).abs() < 1e-12);
        // Whole population carries everything.
        assert!((top_share(&sizes, 1.0) - 1.0).abs() < 1e-12);
        // At least one flow is always counted.
        assert!((top_share(&sizes, 0.0) - 0.91).abs() < 1e-12);
        assert_eq!(top_share(&[], 0.5), 0.0);
        assert_eq!(top_share(&[0, 0], 0.5), 0.0);
    }
}
