//! Exact per-flow counting — the oracle every scheme is scored against.

use crate::packet::{FlowId, Packet, Trace};
use std::collections::HashMap;

/// Exact per-flow packet and byte counter.
///
/// This is what an idealized measurement box with unbounded fast memory
/// would report; the paper's relative-error plots compare each scheme's
/// estimate to these values.
#[derive(Debug, Default, Clone)]
pub struct ExactCounter {
    packets: HashMap<FlowId, u64>,
    bytes: HashMap<FlowId, u64>,
    total_packets: u64,
}

impl ExactCounter {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one packet.
    pub fn record(&mut self, packet: &Packet) {
        *self.packets.entry(packet.flow).or_default() += 1;
        *self.bytes.entry(packet.flow).or_default() += packet.byte_len as u64;
        self.total_packets += 1;
    }

    /// Count a whole trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut c = Self::new();
        for p in &trace.packets {
            c.record(p);
        }
        c
    }

    /// Exact packet count of `flow` (0 if unseen).
    pub fn size(&self, flow: FlowId) -> u64 {
        self.packets.get(&flow).copied().unwrap_or(0)
    }

    /// Exact byte count of `flow` (0 if unseen).
    pub fn volume(&self, flow: FlowId) -> u64 {
        self.bytes.get(&flow).copied().unwrap_or(0)
    }

    /// Number of distinct flows seen (`Q`).
    pub fn num_flows(&self) -> usize {
        self.packets.len()
    }

    /// Total packets seen (`n`).
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Mean flow size `μ = n / Q`.
    pub fn mean_flow_size(&self) -> f64 {
        if self.packets.is_empty() {
            0.0
        } else {
            self.total_packets as f64 / self.packets.len() as f64
        }
    }

    /// Iterate `(flow, exact_size)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, u64)> + '_ {
        self.packets.iter().map(|(&f, &s)| (f, s))
    }

    /// All flow sizes (order unspecified).
    pub fn sizes(&self) -> Vec<u64> {
        self.packets.values().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_packets_and_bytes() {
        let mut c = ExactCounter::new();
        c.record(&Packet { flow: 1, byte_len: 100 });
        c.record(&Packet { flow: 1, byte_len: 200 });
        c.record(&Packet { flow: 2, byte_len: 64 });
        assert_eq!(c.size(1), 2);
        assert_eq!(c.volume(1), 300);
        assert_eq!(c.size(2), 1);
        assert_eq!(c.size(3), 0);
        assert_eq!(c.num_flows(), 2);
        assert_eq!(c.total_packets(), 3);
        assert!((c.mean_flow_size() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_trace_equals_manual() {
        let trace = Trace {
            packets: vec![
                Packet { flow: 7, byte_len: 64 },
                Packet { flow: 7, byte_len: 64 },
                Packet { flow: 9, byte_len: 1500 },
            ],
            num_flows: 2,
        };
        let c = ExactCounter::from_trace(&trace);
        assert_eq!(c.size(7), 2);
        assert_eq!(c.size(9), 1);
    }

    #[test]
    fn empty_counter_is_well_defined() {
        let c = ExactCounter::new();
        assert_eq!(c.mean_flow_size(), 0.0);
        assert_eq!(c.num_flows(), 0);
    }
}
