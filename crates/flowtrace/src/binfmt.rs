//! Compact binary trace format.
//!
//! Full-scale experiment traces run to tens of millions of packets;
//! re-generating them is cheap but not free, and sharing the exact
//! trace between the simulation harness and the FPGA-style timing model
//! requires a stable on-disk form. The format is deliberately trivial:
//!
//! ```text
//! magic  "CTRC" (4 bytes)
//! version u32 LE
//! num_flows u64 LE
//! num_packets u64 LE
//! then per packet: flow u64 LE, byte_len u32 LE
//! ```
//!
//! Version 2 (current) stores `byte_len` as u32 — pcap `orig_len` is
//! 32-bit and jumbo/aggregated records exceed 65535 bytes. Version-1
//! streams (u16 `byte_len`) still decode.
//!
//! A second container, `CZOO`, wraps a CTRC blob together with its
//! exact ground truth so a fitted [`crate::zoo`] workload is a
//! replayable artifact — decode gives back both the trace and the
//! oracle without re-running the generator:
//!
//! ```text
//! magic  "CZOO" (4 bytes)
//! version u32 LE
//! trace_len u64 LE, then trace_len bytes of CTRC
//! num_truth u64 LE
//! then per flow (sorted by flow id): flow u64 LE, count u64 LE
//! ```
//!
//! Truth entries are emitted in sorted flow-id order, so equal
//! `(trace, truth)` pairs always encode to identical bytes.

use crate::packet::{FlowId, Packet, Trace};
use std::collections::HashMap;
use support::bytesx::{ByteReader, PutBytes};

/// Format magic.
pub const MAGIC: &[u8; 4] = b"CTRC";
/// Current format version (u32 `byte_len`).
pub const VERSION: u32 = 2;
/// Legacy format version (u16 `byte_len`); still decodable.
pub const VERSION_U16_LEN: u32 = 1;

/// Errors from decoding a binary trace.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Stream did not start with the `CTRC` magic.
    BadMagic,
    /// Unknown version number.
    BadVersion(u32),
    /// Fewer bytes than the header promised.
    Truncated,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a CTRC trace"),
            DecodeError::BadVersion(v) => write!(f, "unsupported CTRC version {v}"),
            DecodeError::Truncated => write!(f, "trace data truncated"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialize a trace.
pub fn encode(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24 + trace.packets.len() * 12);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(trace.num_flows as u64);
    buf.put_u64_le(trace.packets.len() as u64);
    for p in &trace.packets {
        buf.put_u64_le(p.flow);
        buf.put_u32_le(p.byte_len);
    }
    buf
}

/// Deserialize a trace.
pub fn decode(data: &[u8]) -> Result<Trace, DecodeError> {
    if data.len() < 24 {
        return Err(DecodeError::BadMagic);
    }
    let mut r = ByteReader::new(data);
    let magic = r.get_array::<4>().ok_or(DecodeError::BadMagic)?;
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.get_u32_le().ok_or(DecodeError::Truncated)?;
    let record_len = match version {
        VERSION => 12,
        VERSION_U16_LEN => 10,
        other => return Err(DecodeError::BadVersion(other)),
    };
    let num_flows = r.get_u64_le().ok_or(DecodeError::Truncated)? as usize;
    let num_packets = r.get_u64_le().ok_or(DecodeError::Truncated)? as usize;
    if r.remaining() < num_packets.saturating_mul(record_len) {
        return Err(DecodeError::Truncated);
    }
    let mut packets = Vec::with_capacity(num_packets);
    for _ in 0..num_packets {
        let flow = r.get_u64_le().ok_or(DecodeError::Truncated)?;
        let byte_len = if version == VERSION_U16_LEN {
            u32::from(r.get_u16_le().ok_or(DecodeError::Truncated)?)
        } else {
            r.get_u32_le().ok_or(DecodeError::Truncated)?
        };
        packets.push(Packet { flow, byte_len });
    }
    Ok(Trace { packets, num_flows })
}

/// Artifact container magic.
pub const ARTIFACT_MAGIC: &[u8; 4] = b"CZOO";
/// Current artifact container version.
pub const ARTIFACT_VERSION: u32 = 1;

/// Serialize a workload artifact: the trace plus its exact ground
/// truth, deterministically (truth sorted by flow id).
pub fn encode_artifact(trace: &Trace, truth: &HashMap<FlowId, u64>) -> Vec<u8> {
    let blob = encode(trace);
    let mut buf = Vec::with_capacity(24 + blob.len() + truth.len() * 16);
    buf.put_slice(ARTIFACT_MAGIC);
    buf.put_u32_le(ARTIFACT_VERSION);
    buf.put_u64_le(blob.len() as u64);
    buf.put_slice(&blob);
    let mut entries: Vec<(FlowId, u64)> = truth.iter().map(|(&f, &c)| (f, c)).collect();
    entries.sort_unstable();
    buf.put_u64_le(entries.len() as u64);
    for (flow, count) in entries {
        buf.put_u64_le(flow);
        buf.put_u64_le(count);
    }
    buf
}

/// Deserialize a workload artifact back into `(trace, truth)`.
pub fn decode_artifact(data: &[u8]) -> Result<(Trace, HashMap<FlowId, u64>), DecodeError> {
    let mut r = ByteReader::new(data);
    let magic = r.get_array::<4>().ok_or(DecodeError::BadMagic)?;
    if &magic != ARTIFACT_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.get_u32_le().ok_or(DecodeError::Truncated)?;
    if version != ARTIFACT_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let trace_len = r.get_u64_le().ok_or(DecodeError::Truncated)? as usize;
    if r.remaining() < trace_len {
        return Err(DecodeError::Truncated);
    }
    let blob = r.get_slice(trace_len).ok_or(DecodeError::Truncated)?;
    let trace = decode(blob)?;
    let num_truth = r.get_u64_le().ok_or(DecodeError::Truncated)? as usize;
    if r.remaining() < num_truth.saturating_mul(16) {
        return Err(DecodeError::Truncated);
    }
    let mut truth = HashMap::with_capacity(num_truth);
    for _ in 0..num_truth {
        let flow = r.get_u64_le().ok_or(DecodeError::Truncated)?;
        let count = r.get_u64_le().ok_or(DecodeError::Truncated)?;
        truth.insert(flow, count);
    }
    Ok((trace, truth))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            packets: vec![
                Packet { flow: 0xDEAD_BEEF, byte_len: 64 },
                Packet { flow: 1, byte_len: 1500 },
                Packet { flow: 0xDEAD_BEEF, byte_len: 128 },
            ],
            num_flows: 2,
        }
    }

    #[test]
    fn roundtrip() {
        let t = sample_trace();
        let enc = encode(&t);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.packets, t.packets);
        assert_eq!(dec.num_flows, 2);
    }

    #[test]
    fn empty_trace_roundtrip() {
        let t = Trace::default();
        let dec = decode(&encode(&t)).unwrap();
        assert_eq!(dec.packets.len(), 0);
        assert_eq!(dec.num_flows, 0);
    }

    #[test]
    fn jumbo_byte_len_roundtrips() {
        // Regression: byte_len was u16 until format v2; a 64 KB+
        // super-packet must survive the round-trip unclamped.
        let t = Trace {
            packets: vec![Packet { flow: 42, byte_len: 262_144 }],
            num_flows: 1,
        };
        let dec = decode(&encode(&t)).unwrap();
        assert_eq!(dec.packets[0].byte_len, 262_144);
    }

    #[test]
    fn decodes_legacy_v1_streams() {
        // Hand-build a version-1 stream (u16 byte_len records).
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_U16_LEN);
        buf.put_u64_le(2); // num_flows
        buf.put_u64_le(2); // num_packets
        buf.put_u64_le(7);
        buf.put_u16_le(64);
        buf.put_u64_le(9);
        buf.put_u16_le(1500);
        let dec = decode(&buf).unwrap();
        assert_eq!(
            dec.packets,
            vec![
                Packet { flow: 7, byte_len: 64 },
                Packet { flow: 9, byte_len: 1500 },
            ]
        );
        // Truncation detection still works against the 10-byte record.
        assert!(matches!(decode(&buf[..buf.len() - 1]), Err(DecodeError::Truncated)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(decode(b"nope"), Err(DecodeError::BadMagic)));
        assert!(matches!(decode(&[0u8; 64]), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut enc = encode(&sample_trace());
        enc[4] = 99;
        assert!(matches!(decode(&enc), Err(DecodeError::BadVersion(99))));
    }

    #[test]
    fn rejects_truncation() {
        let enc = encode(&sample_trace());
        assert!(matches!(
            decode(&enc[..enc.len() - 1]),
            Err(DecodeError::Truncated)
        ));
    }

    fn sample_truth() -> HashMap<FlowId, u64> {
        let mut truth = HashMap::new();
        truth.insert(0xDEAD_BEEF, 2);
        truth.insert(1, 1);
        truth
    }

    #[test]
    fn artifact_roundtrip() {
        let t = sample_trace();
        let truth = sample_truth();
        let enc = encode_artifact(&t, &truth);
        let (dt, dtruth) = decode_artifact(&enc).unwrap();
        assert_eq!(dt.packets, t.packets);
        assert_eq!(dtruth, truth);
    }

    #[test]
    fn artifact_bytes_are_deterministic() {
        // HashMap iteration order varies; the encoding must not.
        let t = sample_trace();
        let a = encode_artifact(&t, &sample_truth());
        let b = encode_artifact(&t, &sample_truth());
        assert_eq!(a, b);
    }

    #[test]
    fn artifact_rejects_garbage_and_truncation() {
        assert!(matches!(decode_artifact(b"nah"), Err(DecodeError::BadMagic)));
        let enc = encode_artifact(&sample_trace(), &sample_truth());
        assert!(decode_artifact(&enc[..enc.len() - 1]).is_err());
        let mut wrong = enc.clone();
        wrong[4] = 9;
        assert!(matches!(
            decode_artifact(&wrong),
            Err(DecodeError::BadVersion(9))
        ));
        // A plain CTRC blob is not an artifact.
        assert!(matches!(
            decode_artifact(&encode(&sample_trace())),
            Err(DecodeError::BadMagic)
        ));
    }
}
