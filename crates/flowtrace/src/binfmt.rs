//! Compact binary trace format.
//!
//! Full-scale experiment traces run to tens of millions of packets;
//! re-generating them is cheap but not free, and sharing the exact
//! trace between the simulation harness and the FPGA-style timing model
//! requires a stable on-disk form. The format is deliberately trivial:
//!
//! ```text
//! magic  "CTRC" (4 bytes)
//! version u32 LE
//! num_flows u64 LE
//! num_packets u64 LE
//! then per packet: flow u64 LE, byte_len u16 LE
//! ```

use crate::packet::{Packet, Trace};
use support::bytesx::{ByteReader, PutBytes};

/// Format magic.
pub const MAGIC: &[u8; 4] = b"CTRC";
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors from decoding a binary trace.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Stream did not start with the `CTRC` magic.
    BadMagic,
    /// Unknown version number.
    BadVersion(u32),
    /// Fewer bytes than the header promised.
    Truncated,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a CTRC trace"),
            DecodeError::BadVersion(v) => write!(f, "unsupported CTRC version {v}"),
            DecodeError::Truncated => write!(f, "trace data truncated"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialize a trace.
pub fn encode(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24 + trace.packets.len() * 10);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(trace.num_flows as u64);
    buf.put_u64_le(trace.packets.len() as u64);
    for p in &trace.packets {
        buf.put_u64_le(p.flow);
        buf.put_u16_le(p.byte_len);
    }
    buf
}

/// Deserialize a trace.
pub fn decode(data: &[u8]) -> Result<Trace, DecodeError> {
    if data.len() < 24 {
        return Err(DecodeError::BadMagic);
    }
    let mut r = ByteReader::new(data);
    let magic = r.get_array::<4>().ok_or(DecodeError::BadMagic)?;
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.get_u32_le().ok_or(DecodeError::Truncated)?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let num_flows = r.get_u64_le().ok_or(DecodeError::Truncated)? as usize;
    let num_packets = r.get_u64_le().ok_or(DecodeError::Truncated)? as usize;
    if r.remaining() < num_packets.saturating_mul(10) {
        return Err(DecodeError::Truncated);
    }
    let mut packets = Vec::with_capacity(num_packets);
    for _ in 0..num_packets {
        let flow = r.get_u64_le().ok_or(DecodeError::Truncated)?;
        let byte_len = r.get_u16_le().ok_or(DecodeError::Truncated)?;
        packets.push(Packet { flow, byte_len });
    }
    Ok(Trace { packets, num_flows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            packets: vec![
                Packet { flow: 0xDEAD_BEEF, byte_len: 64 },
                Packet { flow: 1, byte_len: 1500 },
                Packet { flow: 0xDEAD_BEEF, byte_len: 128 },
            ],
            num_flows: 2,
        }
    }

    #[test]
    fn roundtrip() {
        let t = sample_trace();
        let enc = encode(&t);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.packets, t.packets);
        assert_eq!(dec.num_flows, 2);
    }

    #[test]
    fn empty_trace_roundtrip() {
        let t = Trace::default();
        let dec = decode(&encode(&t)).unwrap();
        assert_eq!(dec.packets.len(), 0);
        assert_eq!(dec.num_flows, 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(decode(b"nope"), Err(DecodeError::BadMagic)));
        assert!(matches!(decode(&[0u8; 64]), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut enc = encode(&sample_trace());
        enc[4] = 99;
        assert!(matches!(decode(&enc), Err(DecodeError::BadVersion(99))));
    }

    #[test]
    fn rejects_truncation() {
        let enc = encode(&sample_trace());
        assert!(matches!(
            decode(&enc[..enc.len() - 1]),
            Err(DecodeError::Truncated)
        ));
    }
}
