//! Trace transformations.
//!
//! Operational tooling around captured or synthesized traces: epoch
//! splitting for continuous measurement, deterministic and probabilistic
//! subsampling, merging of captures from multiple taps, and flow-ID
//! anonymization for sharing traces.

use crate::packet::{FlowId, Packet, Trace};
use hashkit::mix::mix64;
use hashkit::IdHashSet;
use support::rand::{rngs::StdRng, Rng, SeedableRng};

fn census(packets: Vec<Packet>) -> Trace {
    let mut flows = IdHashSet::default();
    for p in &packets {
        flows.insert(p.flow);
    }
    Trace {
        packets,
        num_flows: flows.len(),
    }
}

/// Split a trace into `epochs` contiguous, near-equal segments (the
/// last epoch absorbs the remainder). Each segment's flow census is
/// recomputed.
///
/// # Panics
/// Panics if `epochs == 0`.
pub fn split_epochs(trace: &Trace, epochs: usize) -> Vec<Trace> {
    assert!(epochs > 0, "need at least one epoch");
    let n = trace.packets.len();
    let base = n / epochs;
    let mut out = Vec::with_capacity(epochs);
    let mut start = 0;
    for e in 0..epochs {
        let end = if e == epochs - 1 { n } else { start + base };
        out.push(census(trace.packets[start..end].to_vec()));
        start = end;
    }
    out
}

/// Keep every `stride`-th packet (deterministic 1-in-N subsampling).
///
/// # Panics
/// Panics if `stride == 0`.
pub fn subsample_deterministic(trace: &Trace, stride: usize) -> Trace {
    assert!(stride > 0, "stride must be positive");
    census(
        trace
            .packets
            .iter()
            .step_by(stride)
            .copied()
            .collect(),
    )
}

/// Keep each packet independently with probability `rate`.
///
/// # Panics
/// Panics unless `0 < rate <= 1`.
pub fn subsample_random(trace: &Trace, rate: f64, seed: u64) -> Trace {
    assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    census(
        trace
            .packets
            .iter()
            .filter(|_| rng.gen::<f64>() < rate)
            .copied()
            .collect(),
    )
}

/// Interleave two traces round-robin, proportionally to their lengths
/// (models two taps feeding one measurement point).
pub fn merge(a: &Trace, b: &Trace) -> Trace {
    let (na, nb) = (a.packets.len(), b.packets.len());
    let mut packets = Vec::with_capacity(na + nb);
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < na || ib < nb {
        // Emit from the stream that is "behind" proportionally.
        let take_a = ib >= nb
            || (ia < na && (ia as u128 * nb as u128) <= (ib as u128 * na as u128));
        if take_a {
            packets.push(a.packets[ia]);
            ia += 1;
        } else {
            packets.push(b.packets[ib]);
            ib += 1;
        }
    }
    census(packets)
}

/// Replace every flow ID with a keyed permutation of itself
/// (anonymization that preserves flow structure exactly).
pub fn anonymize(trace: &Trace, key: u64) -> Trace {
    census(
        trace
            .packets
            .iter()
            .map(|p| Packet {
                flow: mix64(p.flow ^ key),
                ..*p
            })
            .collect(),
    )
}

/// Ground-truth flow sizes of a trace (convenience over
/// [`crate::ExactCounter`] when only sizes are needed).
pub fn flow_sizes(trace: &Trace) -> Vec<(FlowId, u64)> {
    let mut counter = crate::ExactCounter::new();
    for p in &trace.packets {
        counter.record(p);
    }
    let mut v: Vec<(FlowId, u64)> = counter.iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(flows: &[u64]) -> Trace {
        census(flows.iter().map(|&f| Packet::new(f)).collect())
    }

    #[test]
    fn split_conserves_packets() {
        let t = mk(&[1, 2, 3, 1, 2, 1, 4, 5, 1, 2]);
        let parts = split_epochs(&t, 3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.packets.len()).sum();
        assert_eq!(total, 10);
        // Reassembling in order gives the original stream.
        let rejoined: Vec<Packet> = parts.iter().flat_map(|p| p.packets.clone()).collect();
        assert_eq!(rejoined, t.packets);
    }

    #[test]
    fn split_recomputes_flow_census() {
        let t = mk(&[1, 1, 1, 2, 2, 2]);
        let parts = split_epochs(&t, 2);
        assert_eq!(parts[0].num_flows, 1);
        assert_eq!(parts[1].num_flows, 1);
    }

    #[test]
    fn deterministic_subsample() {
        let t = mk(&(0..10).collect::<Vec<u64>>());
        let s = subsample_deterministic(&t, 3);
        let kept: Vec<u64> = s.packets.iter().map(|p| p.flow).collect();
        assert_eq!(kept, vec![0, 3, 6, 9]);
    }

    #[test]
    fn random_subsample_rate() {
        let t = mk(&vec![7u64; 100_000]);
        let s = subsample_random(&t, 0.25, 42);
        let rate = s.packets.len() as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
        // Same seed, same result.
        assert_eq!(subsample_random(&t, 0.25, 42).packets, s.packets);
    }

    #[test]
    fn merge_preserves_both_streams_in_order() {
        let a = mk(&[1, 1, 1, 1, 1, 1]);
        let b = mk(&[2, 2, 2]);
        let m = merge(&a, &b);
        assert_eq!(m.packets.len(), 9);
        assert_eq!(m.num_flows, 2);
        // Relative order within each stream is preserved and the short
        // stream is spread, not appended.
        let first_half_twos = m.packets[..5].iter().filter(|p| p.flow == 2).count();
        assert!(first_half_twos >= 1, "stream b bunched at the end");
    }

    #[test]
    fn merge_with_empty() {
        let a = mk(&[1, 2, 3]);
        let e = mk(&[]);
        assert_eq!(merge(&a, &e).packets, a.packets);
        assert_eq!(merge(&e, &a).packets, a.packets);
    }

    #[test]
    fn anonymize_preserves_structure() {
        let t = mk(&[1, 2, 1, 3, 1, 2]);
        let a = anonymize(&t, 0x5EED);
        assert_eq!(a.num_flows, 3);
        let orig = flow_sizes(&t);
        let anon = flow_sizes(&a);
        let mut orig_sizes: Vec<u64> = orig.iter().map(|&(_, s)| s).collect();
        let mut anon_sizes: Vec<u64> = anon.iter().map(|&(_, s)| s).collect();
        orig_sizes.sort_unstable();
        anon_sizes.sort_unstable();
        assert_eq!(orig_sizes, anon_sizes);
        // IDs actually changed.
        assert!(t.packets.iter().zip(&a.packets).all(|(x, y)| x.flow != y.flow));
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_rejected() {
        split_epochs(&mk(&[1]), 0);
    }
}
