//! Synthetic trace generation.
//!
//! Substitutes for the paper's captured backbone trace (§6.1): flows get
//! random 5-tuples (hashed to IDs with SHA-1 + APHash, like the paper),
//! sizes drawn from a calibrated heavy-tailed distribution, and packets
//! are interleaved uniformly at random — the paper's assumption that
//! "all packets from all flows can be regarded as arriving uniformly
//! and with equal probability" (§4.2).

use crate::dist::{FlowSizeDistribution, LogNormal, PowerLaw};
use crate::packet::{FiveTuple, FlowId, Packet, Trace};
use support::rand::seq::SliceRandom;
use support::rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;

/// Which heavy-tail family generates the flow sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TailFamily {
    /// Truncated discrete power law (the default; matches Fig. 3).
    PowerLaw,
    /// Discretized log-normal with the given log-space spread.
    LogNormal {
        /// σ in log space (≈ 2.0 gives an internet-like tail).
        sigma_log: f64,
    },
}

/// How packets of different flows are ordered in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOrder {
    /// Global uniform shuffle of all packets (paper's assumption).
    UniformShuffle,
    /// Each flow's packets arrive back-to-back (worst case for shared
    /// caches, best case for per-flow caches) — used in ablations.
    PerFlowBursts,
    /// Round-robin over flows until each flow's budget is exhausted.
    RoundRobin,
}

/// Configuration of the synthetic trace.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of flows (the paper's `Q`; full scale is 1,014,601).
    pub num_flows: usize,
    /// Mean flow size `n/Q`; the paper's trace has ≈ 27.3.
    pub mean_flow_size: f64,
    /// Truncation of the flow-size distribution.
    pub max_flow_size: u64,
    /// Packet arrival order.
    pub order: ArrivalOrder,
    /// Flow-size tail family.
    pub tail: TailFamily,
    /// RNG seed — traces are fully reproducible.
    pub seed: u64,
}

impl Default for SynthConfig {
    /// Default is a 1/10-scale version of the paper's trace:
    /// ≈ 101 K flows, ≈ 2.77 M packets, mean ≈ 27.3.
    fn default() -> Self {
        Self {
            num_flows: 101_460,
            mean_flow_size: 27.32,
            max_flow_size: 100_000,
            order: ArrivalOrder::UniformShuffle,
            tail: TailFamily::PowerLaw,
            seed: 0xCAE5A2,
        }
    }
}

impl SynthConfig {
    /// A small configuration for unit tests and doc examples
    /// (≈ 2 K flows, ≈ 55 K packets).
    pub fn small() -> Self {
        Self {
            num_flows: 2_000,
            max_flow_size: 20_000,
            ..Self::default()
        }
    }

    /// The paper's full scale (≈ 1.01 M flows, ≈ 27.7 M packets).
    pub fn paper_scale() -> Self {
        Self {
            num_flows: 1_014_601,
            ..Self::default()
        }
    }
}

/// Generates reproducible synthetic traces.
#[derive(Debug)]
pub struct TraceGenerator {
    cfg: SynthConfig,
}

impl TraceGenerator {
    /// New generator for the given configuration.
    pub fn new(cfg: SynthConfig) -> Self {
        Self { cfg }
    }

    /// Generate the trace together with its ground-truth flow sizes.
    ///
    /// ```
    /// use flowtrace::synth::{SynthConfig, TraceGenerator};
    /// let (trace, truth) = TraceGenerator::new(SynthConfig::small()).generate();
    /// assert_eq!(trace.num_flows, truth.len());
    /// let total: u64 = truth.values().sum();
    /// assert_eq!(total as usize, trace.num_packets());
    /// ```
    pub fn generate(&self) -> (Trace, HashMap<FlowId, u64>) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        enum Tail {
            P(PowerLaw),
            L(LogNormal),
        }
        let dist = match self.cfg.tail {
            TailFamily::PowerLaw => {
                Tail::P(PowerLaw::with_mean(self.cfg.mean_flow_size, self.cfg.max_flow_size))
            }
            TailFamily::LogNormal { sigma_log } => Tail::L(LogNormal::with_mean(
                self.cfg.mean_flow_size,
                sigma_log,
                self.cfg.max_flow_size,
            )),
        };
        let draw = |rng: &mut StdRng| match &dist {
            Tail::P(d) => d.sample(rng),
            Tail::L(d) => d.sample(rng),
        };

        // Draw distinct 5-tuples; regenerate on the (astronomically
        // unlikely) flow-ID collision so ground truth stays exact.
        let mut truth: HashMap<FlowId, u64> = HashMap::with_capacity(self.cfg.num_flows);
        let mut flows: Vec<(FlowId, u64)> = Vec::with_capacity(self.cfg.num_flows);
        while flows.len() < self.cfg.num_flows {
            let tuple = random_tuple(&mut rng);
            let id = tuple.flow_id();
            if truth.contains_key(&id) {
                continue;
            }
            let size = draw(&mut rng);
            truth.insert(id, size);
            flows.push((id, size));
        }

        let total: u64 = flows.iter().map(|&(_, s)| s).sum();
        let mut packets = Vec::with_capacity(total as usize);
        match self.cfg.order {
            ArrivalOrder::PerFlowBursts => {
                for &(id, size) in &flows {
                    packets.extend((0..size).map(|_| mk_packet(id, &mut rng)));
                }
            }
            ArrivalOrder::UniformShuffle => {
                for &(id, size) in &flows {
                    packets.extend((0..size).map(|_| mk_packet(id, &mut rng)));
                }
                packets.shuffle(&mut rng);
            }
            ArrivalOrder::RoundRobin => {
                let mut remaining: Vec<(FlowId, u64)> = flows.clone();
                while !remaining.is_empty() {
                    remaining.retain_mut(|(id, left)| {
                        packets.push(mk_packet(*id, &mut rng));
                        *left -= 1;
                        *left > 0
                    });
                }
            }
        }

        let trace = Trace {
            packets,
            num_flows: flows.len(),
        };
        (trace, truth)
    }
}

fn mk_packet<R: Rng>(flow: FlowId, rng: &mut R) -> Packet {
    // Realistic-ish IMIX-flavoured packet lengths: mostly small, some
    // full MTU. Only flow-volume experiments consume this field.
    let byte_len = match rng.gen_range(0..10u8) {
        0..=5 => rng.gen_range(64..=128),
        6..=8 => rng.gen_range(128..=576),
        _ => rng.gen_range(576..=1500),
    };
    Packet { flow, byte_len }
}

fn random_tuple<R: Rng>(rng: &mut R) -> FiveTuple {
    let proto = match rng.gen_range(0..10u8) {
        0..=6 => FiveTuple::TCP,
        7..=8 => FiveTuple::UDP,
        _ => FiveTuple::ICMP,
    };
    let (src_port, dst_port) = if proto == FiveTuple::ICMP {
        (0, 0)
    } else {
        const SERVICES: [u16; 5] = [80, 443, 53, 22, 8080];
        (
            rng.gen_range(1024..=u16::MAX),
            SERVICES[rng.gen_range(0..SERVICES.len())],
        )
    };
    FiveTuple {
        src_ip: rng.gen(),
        dst_ip: rng.gen(),
        src_port,
        dst_port,
        proto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_for_same_seed() {
        let cfg = SynthConfig::small();
        let (a, _) = TraceGenerator::new(cfg.clone()).generate();
        let (b, _) = TraceGenerator::new(cfg).generate();
        assert_eq!(a.packets, b.packets);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SynthConfig::small();
        let (a, _) = TraceGenerator::new(cfg.clone()).generate();
        cfg.seed += 1;
        let (b, _) = TraceGenerator::new(cfg).generate();
        assert_ne!(a.packets, b.packets);
    }

    #[test]
    fn ground_truth_matches_trace() {
        let (trace, truth) = TraceGenerator::new(SynthConfig::small()).generate();
        let mut counted: HashMap<FlowId, u64> = HashMap::new();
        for p in &trace.packets {
            *counted.entry(p.flow).or_default() += 1;
        }
        assert_eq!(counted, truth);
    }

    #[test]
    fn mean_flow_size_close_to_target() {
        // The sample mean of a heavy-tailed distribution converges
        // slowly (one elephant flow moves it by max_flow_size / Q), so
        // use a moderate Q and a loose relative tolerance.
        let cfg = SynthConfig {
            num_flows: 20_000,
            ..SynthConfig::small()
        };
        let (trace, _) = TraceGenerator::new(cfg).generate();
        let mean = trace.mean_flow_size();
        assert!((mean - 27.32).abs() / 27.32 < 0.35, "mean = {mean}");
    }

    #[test]
    fn round_robin_interleaves() {
        let cfg = SynthConfig {
            num_flows: 10,
            order: ArrivalOrder::RoundRobin,
            ..SynthConfig::small()
        };
        let (trace, _) = TraceGenerator::new(cfg).generate();
        // The first 10 packets must be 10 distinct flows.
        let first: std::collections::HashSet<_> =
            trace.packets[..10].iter().map(|p| p.flow).collect();
        assert_eq!(first.len(), 10);
    }

    #[test]
    fn bursts_are_contiguous() {
        let cfg = SynthConfig {
            num_flows: 50,
            order: ArrivalOrder::PerFlowBursts,
            ..SynthConfig::small()
        };
        let (trace, _) = TraceGenerator::new(cfg).generate();
        // Each flow must appear as one contiguous run.
        let mut seen = std::collections::HashSet::new();
        let mut prev = None;
        for p in &trace.packets {
            if prev != Some(p.flow) {
                assert!(seen.insert(p.flow), "flow {} split into two runs", p.flow);
                prev = Some(p.flow);
            }
        }
    }
}
