//! The workload zoo: named traffic-shape families for accuracy and
//! stress sweeps.
//!
//! Every accuracy figure of the reproduction runs on the one
//! heavy-tailed synthetic trace from [`crate::synth`], which matches
//! the paper's capture but says nothing about where cache-assisted
//! shared counters *stop* working. This module generates a matrix of
//! realistic and adversarial traffic shapes behind one interface:
//!
//! | family | kind | what it stresses |
//! |---|---|---|
//! | [`CdnPopularity`] | realistic | Zipf object skew + temporal locality (cache-friendly) |
//! | [`KvAccess`] | realistic | read-heavy small flows, near-uniform sizes |
//! | [`FlatUniform`] | realistic | no skew at all — the anti-heavy-tail control |
//! | [`BurstyOnOff`] | realistic | heavy tail with on/off burst arrivals |
//! | [`MouseFlood`] | adversarial | cache thrash: every packet a cold miss |
//! | [`SingleElephant`] | adversarial | one flow saturating its `k` shared counters |
//! | [`FlowChurn`] | adversarial | working set rotated every epoch |
//! | [`CaidaShaped`] | realistic | CAIDA-published flow-size fit via [`Empirical`] |
//!
//! All generators are pure functions of their configuration and an
//! explicit seed: the same `(config, seed)` pair produces a
//! byte-identical trace (see `binfmt::encode`) and the returned ground
//! truth always sums exactly to the packet count — both properties are
//! pinned by property tests.

use crate::dist::{DistError, Empirical, FlowSizeDistribution, PowerLaw};
use crate::packet::{FlowId, Packet, Trace};
use crate::scenarios;
use hashkit::mix::mix64;
use std::collections::HashMap;
use support::rand::seq::SliceRandom;
use support::rand::{rngs::StdRng, Rng, SeedableRng};

/// Default generation seed for zoo sweeps and examples.
pub const ZOO_SEED: u64 = 0x5EED_2005;

/// Whether a family models production traffic or a worst case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// A traffic shape a deployed sketch should handle gracefully.
    Realistic,
    /// A deliberately hostile shape built to break one mechanism.
    Adversarial,
}

impl WorkloadKind {
    /// Stable lowercase name (CSV/JSON value).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Realistic => "realistic",
            WorkloadKind::Adversarial => "adversarial",
        }
    }
}

/// One workload family: a deterministic trace generator with exact
/// ground truth.
pub trait WorkloadGen {
    /// Stable family name — the CSV key and bench name.
    fn name(&self) -> &'static str;
    /// Realistic or adversarial.
    fn kind(&self) -> WorkloadKind;
    /// Generate the trace and its exact per-flow packet counts for
    /// `seed`. Equal seeds give byte-identical traces; the truth map
    /// always sums to `trace.num_packets()`.
    fn generate(&self, seed: u64) -> (Trace, HashMap<FlowId, u64>);
}

/// Tally the exact census of a packet list — the one way every family
/// builds its `(Trace, truth)` pair, so conservation holds by
/// construction even if two synthetic IDs ever collided.
fn census(packets: Vec<Packet>) -> (Trace, HashMap<FlowId, u64>) {
    let mut truth: HashMap<FlowId, u64> = HashMap::new();
    for p in &packets {
        *truth.entry(p.flow).or_default() += 1;
    }
    let trace = Trace { num_flows: truth.len(), packets };
    (trace, truth)
}

/// Deterministic per-family flow-ID stream: `mix64` is a bijection, so
/// distinct `(tag, index)` inputs give distinct IDs within a family.
fn id_stream(seed: u64, tag: u64) -> impl Fn(u64) -> FlowId {
    let base = mix64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(tag));
    move |i| mix64(base ^ i)
}

fn check_fraction(name: &'static str, value: f64) -> Result<(), DistError> {
    if value.is_nan() || !(0.0..1.0).contains(&value) {
        return Err(DistError::BadFraction { name, value });
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Realistic families
// ---------------------------------------------------------------------

/// CDN object-popularity workload: each packet requests an object drawn
/// from a Zipf(`exponent`) popularity law over `objects` ranks, with an
/// extra recency loop — with probability `locality` the packet re-hits
/// one of the last [`CdnPopularity::RECENT`] distinct objects instead
/// of a fresh popularity draw. High skew + high temporal locality is
/// the friendliest shape for the on-chip cache.
#[derive(Debug, Clone)]
pub struct CdnPopularity {
    objects: usize,
    packets: u64,
    popularity: PowerLaw,
    locality: f64,
}

impl CdnPopularity {
    /// Size of the recency loop the `locality` re-hits draw from.
    pub const RECENT: usize = 64;

    /// Validated constructor. `exponent` is the Zipf popularity
    /// exponent (`P(rank r) ∝ r^−exponent`); `locality ∈ [0, 1)`.
    pub fn new(
        objects: usize,
        packets: u64,
        exponent: f64,
        locality: f64,
    ) -> Result<Self, DistError> {
        check_fraction("locality", locality)?;
        let popularity = PowerLaw::try_new(exponent, objects.max(1) as u64)?;
        Ok(Self { objects: objects.max(1), packets, popularity, locality })
    }

    /// The popularity law over object ranks.
    pub fn popularity(&self) -> &PowerLaw {
        &self.popularity
    }

    /// Number of distinct objects in the catalogue (the upper bound on
    /// flows per trace).
    pub fn catalogue_size(&self) -> usize {
        self.objects
    }
}

impl WorkloadGen for CdnPopularity {
    fn name(&self) -> &'static str {
        "cdn"
    }
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Realistic
    }
    fn generate(&self, seed: u64) -> (Trace, HashMap<FlowId, u64>) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCD17);
        let id = id_stream(seed, 1);
        let mut recent: Vec<FlowId> = Vec::with_capacity(Self::RECENT);
        let mut cursor = 0usize;
        let mut packets = Vec::with_capacity(self.packets as usize);
        for _ in 0..self.packets {
            let flow = if !recent.is_empty() && rng.gen::<f64>() < self.locality {
                recent[rng.gen_range(0..recent.len())]
            } else {
                let rank = self.popularity.sample(&mut rng) - 1;
                let f = id(rank);
                if recent.len() < Self::RECENT {
                    recent.push(f);
                } else {
                    recent[cursor] = f;
                    cursor = (cursor + 1) % Self::RECENT;
                }
                f
            };
            // Content delivery is MTU-dominated with some header-ish
            // control traffic.
            let byte_len = if rng.gen_range(0..10u8) < 8 {
                1500
            } else {
                rng.gen_range(200..=600)
            };
            packets.push(Packet { flow, byte_len });
        }
        census(packets)
    }
}

/// KV-storage access workload: `flows` independent clients issuing
/// short read-heavy operation runs — flow sizes are geometric with a
/// small mean (capped at `max_ops`), arrivals globally shuffled. Lots
/// of small flows, little skew: the counter-sharing noise floor
/// dominates, the cache barely matters.
#[derive(Debug, Clone, Copy)]
pub struct KvAccess {
    flows: usize,
    mean_ops: f64,
    max_ops: u64,
}

impl KvAccess {
    /// Validated constructor: `1 <= mean_ops < max_ops`.
    pub fn new(flows: usize, mean_ops: f64, max_ops: u64) -> Result<Self, DistError> {
        if max_ops == 0 {
            return Err(DistError::ZeroMaxSize);
        }
        if mean_ops.is_nan() || mean_ops < 1.0 || (mean_ops as u64) >= max_ops {
            return Err(DistError::BadMean { target: mean_ops, max_size: max_ops });
        }
        Ok(Self { flows: flows.max(1), mean_ops, max_ops })
    }
}

impl WorkloadGen for KvAccess {
    fn name(&self) -> &'static str {
        "kv"
    }
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Realistic
    }
    fn generate(&self, seed: u64) -> (Trace, HashMap<FlowId, u64>) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4B56);
        let id = id_stream(seed, 2);
        let p = 1.0 / self.mean_ops;
        let mut packets = Vec::new();
        for i in 0..self.flows {
            // Geometric on {1, 2, ...} with success probability p:
            // mean exactly `mean_ops` before truncation.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let size = ((1.0 - u).ln() / (1.0 - p).ln()).ceil().max(1.0) as u64;
            let size = size.clamp(1, self.max_ops);
            let flow = id(i as u64);
            for _ in 0..size {
                // Small GET/SET-sized payloads.
                let byte_len = rng.gen_range(64..=256);
                packets.push(Packet { flow, byte_len });
            }
        }
        packets.shuffle(&mut rng);
        census(packets)
    }
}

/// Flat/uniform workload: `flows` flows of near-equal size drawn
/// uniformly from `[lo, hi]`, globally shuffled. No elephants, no
/// mice: the control case where cache admission gains nothing and the
/// shared-counter noise is spread perfectly evenly.
#[derive(Debug, Clone, Copy)]
pub struct FlatUniform {
    flows: usize,
    lo: u64,
    hi: u64,
}

impl FlatUniform {
    /// Validated constructor: `1 <= lo <= hi`.
    pub fn new(flows: usize, lo: u64, hi: u64) -> Result<Self, DistError> {
        if lo == 0 || hi < lo {
            return Err(DistError::BadRange { lo, hi });
        }
        Ok(Self { flows: flows.max(1), lo, hi })
    }
}

impl WorkloadGen for FlatUniform {
    fn name(&self) -> &'static str {
        "flat"
    }
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Realistic
    }
    fn generate(&self, seed: u64) -> (Trace, HashMap<FlowId, u64>) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1A7);
        let id = id_stream(seed, 3);
        let mut packets = Vec::new();
        for i in 0..self.flows {
            let size = rng.gen_range(self.lo..=self.hi);
            let flow = id(i as u64);
            for _ in 0..size {
                let byte_len = rng.gen_range(64..=1500);
                packets.push(Packet { flow, byte_len });
            }
        }
        packets.shuffle(&mut rng);
        census(packets)
    }
}

/// Bursty on/off workload: heavy-tailed flow sizes (power law with the
/// paper's mean), but arrivals come in per-flow bursts of up to
/// `burst_len` packets — a random active flow transmits a burst, goes
/// quiet, and another takes over. Temporal locality without the
/// paper's uniform-interleave assumption.
#[derive(Debug, Clone)]
pub struct BurstyOnOff {
    flows: usize,
    sizes: PowerLaw,
    burst_len: u64,
}

impl BurstyOnOff {
    /// Validated constructor; `mean_flow_size`/`max_flow_size`
    /// parametrize the power-law size distribution.
    pub fn new(
        flows: usize,
        mean_flow_size: f64,
        max_flow_size: u64,
        burst_len: u64,
    ) -> Result<Self, DistError> {
        if burst_len == 0 {
            return Err(DistError::BadRange { lo: burst_len, hi: burst_len });
        }
        let sizes = PowerLaw::try_with_mean(mean_flow_size, max_flow_size)?;
        Ok(Self { flows: flows.max(1), sizes, burst_len })
    }
}

impl WorkloadGen for BurstyOnOff {
    fn name(&self) -> &'static str {
        "bursty"
    }
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Realistic
    }
    fn generate(&self, seed: u64) -> (Trace, HashMap<FlowId, u64>) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB057);
        let id = id_stream(seed, 4);
        let mut active: Vec<(FlowId, u64)> = (0..self.flows)
            .map(|i| (id(i as u64), self.sizes.sample(&mut rng)))
            .collect();
        let total: u64 = active.iter().map(|&(_, s)| s).sum();
        let mut packets = Vec::with_capacity(total as usize);
        while !active.is_empty() {
            let idx = rng.gen_range(0..active.len());
            let (flow, remaining) = active[idx];
            let burst = remaining.min(self.burst_len);
            for _ in 0..burst {
                let byte_len = rng.gen_range(64..=1500);
                packets.push(Packet { flow, byte_len });
            }
            if remaining > burst {
                active[idx].1 = remaining - burst;
            } else {
                active.swap_remove(idx);
            }
        }
        census(packets)
    }
}

// ---------------------------------------------------------------------
// Adversarial families
// ---------------------------------------------------------------------

/// Cache-thrashing mouse flood (see [`scenarios::mouse_flood`]):
/// `mice` distinct 1–2 packet flows arriving back-to-back. Every
/// packet is a cold miss; once the cache is full, every new mouse
/// evicts a resident entry, so the front-end degenerates to pure
/// insert/evict churn with hit rate ≈ 0.
#[derive(Debug, Clone, Copy)]
pub struct MouseFlood {
    mice: usize,
    max_packets_per_mouse: u64,
}

impl MouseFlood {
    /// Validated constructor.
    pub fn new(mice: usize, max_packets_per_mouse: u64) -> Result<Self, DistError> {
        if max_packets_per_mouse == 0 {
            return Err(DistError::BadRange { lo: 0, hi: 0 });
        }
        Ok(Self { mice: mice.max(1), max_packets_per_mouse })
    }
}

impl WorkloadGen for MouseFlood {
    fn name(&self) -> &'static str {
        "mouse_flood"
    }
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Adversarial
    }
    fn generate(&self, seed: u64) -> (Trace, HashMap<FlowId, u64>) {
        let a = scenarios::mouse_flood(self.mice, self.max_packets_per_mouse, seed ^ 0x30F5);
        census(a.packets)
    }
}

/// Single-elephant saturation: one flow carries `elephant_packets`
/// packets — the bulk of the trace — over a light power-law background.
/// The elephant's mass funnels into its `k` shared counters, which is
/// exactly the shape that clamps narrow counters and drives the
/// saturation term of `QueryHealth` down.
#[derive(Debug, Clone)]
pub struct SingleElephant {
    elephant_packets: u64,
    background_flows: usize,
    background: Option<PowerLaw>,
}

impl SingleElephant {
    /// Validated constructor; `background_flows` may be 0 for a pure
    /// one-flow trace.
    pub fn new(
        elephant_packets: u64,
        background_flows: usize,
        background_mean: f64,
        background_max: u64,
    ) -> Result<Self, DistError> {
        if elephant_packets == 0 {
            return Err(DistError::BadRange { lo: 0, hi: 0 });
        }
        let background = if background_flows > 0 {
            Some(PowerLaw::try_with_mean(background_mean, background_max)?)
        } else {
            None
        };
        Ok(Self { elephant_packets, background_flows, background })
    }

    /// The elephant's flow ID for a given generation seed.
    pub fn elephant_id(&self, seed: u64) -> FlowId {
        id_stream(seed, 5)(0)
    }
}

impl WorkloadGen for SingleElephant {
    fn name(&self) -> &'static str {
        "single_elephant"
    }
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Adversarial
    }
    fn generate(&self, seed: u64) -> (Trace, HashMap<FlowId, u64>) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE1E9);
        let id = id_stream(seed, 5);
        let elephant = id(0);
        let mut packets: Vec<Packet> = (0..self.elephant_packets)
            .map(|_| Packet { flow: elephant, byte_len: 1500 })
            .collect();
        if let Some(bg) = &self.background {
            for i in 0..self.background_flows {
                let flow = id(1 + i as u64);
                let size = bg.sample(&mut rng);
                for _ in 0..size {
                    let byte_len = rng.gen_range(64..=576);
                    packets.push(Packet { flow, byte_len });
                }
            }
        }
        // Uniform interleave: the elephant stays cache-resident and
        // overflows its entry every y packets.
        packets.shuffle(&mut rng);
        census(packets)
    }
}

/// Epoch-rotating flow churn (see [`scenarios::flow_churn`]): the
/// active flow set is replaced wholesale every
/// `flows_per_epoch * packets_per_flow` packets. Whatever the cache
/// learned in epoch `e` is dead weight in epoch `e+1`.
#[derive(Debug, Clone, Copy)]
pub struct FlowChurn {
    epochs: usize,
    flows_per_epoch: usize,
    packets_per_flow: u64,
}

impl FlowChurn {
    /// Validated constructor.
    pub fn new(
        epochs: usize,
        flows_per_epoch: usize,
        packets_per_flow: u64,
    ) -> Result<Self, DistError> {
        if packets_per_flow == 0 {
            return Err(DistError::BadRange { lo: 0, hi: 0 });
        }
        Ok(Self {
            epochs: epochs.max(1),
            flows_per_epoch: flows_per_epoch.max(1),
            packets_per_flow,
        })
    }

    /// Packets per epoch segment (exact by construction).
    pub fn packets_per_epoch(&self) -> usize {
        self.flows_per_epoch * self.packets_per_flow as usize
    }

    /// Number of epochs.
    pub fn epochs(&self) -> usize {
        self.epochs
    }
}

impl WorkloadGen for FlowChurn {
    fn name(&self) -> &'static str {
        "flow_churn"
    }
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Adversarial
    }
    fn generate(&self, seed: u64) -> (Trace, HashMap<FlowId, u64>) {
        let a = scenarios::flow_churn(
            self.epochs,
            self.flows_per_epoch,
            self.packets_per_flow,
            seed ^ 0xC4E2,
        );
        census(a.packets)
    }
}

// ---------------------------------------------------------------------
// CAIDA-shaped loader
// ---------------------------------------------------------------------

/// Published CAIDA-backbone flow-size fit parameters.
///
/// The fitted distribution is a mixture: an extra point mass of
/// `frac_single_packet` at size 1 (single-packet flows dominate real
/// backbone captures) on top of a truncated power-law body whose
/// conditional mean is calibrated so the mixture mean is exactly
/// `mean_flow_size`. The body contributes its own mass at 1 as well,
/// so the realized single-packet fraction exceeds
/// `frac_single_packet` — [`CaidaShaped::target_cdf`] accounts for
/// both terms.
#[derive(Debug, Clone, Copy)]
pub struct CaidaParams {
    /// Mixture mean flow size (the paper's backbone trace: 27.32).
    pub mean_flow_size: f64,
    /// Extra point mass at size 1.
    pub frac_single_packet: f64,
    /// Truncation bound of the power-law body.
    pub max_flow_size: u64,
    /// How many sizes to draw into the [`Empirical`] sample bank.
    pub fit_samples: usize,
}

impl CaidaParams {
    /// The backbone operating point the paper's capture exhibits
    /// (§6.1: mean 27.32; §4.2: > 92% of flows below the mean).
    pub fn backbone() -> Self {
        Self {
            mean_flow_size: 27.32,
            frac_single_packet: 0.45,
            max_flow_size: 100_000,
            fit_samples: 100_000,
        }
    }
}

/// The CAIDA-shaped loader: synthetic-fits [`CaidaParams`] into an
/// [`Empirical`] sample bank once, then generates traces by resampling
/// it. Fitted traces round-trip through `binfmt::encode_artifact`, so
/// a fit is a replayable artifact rather than a transient RNG state.
#[derive(Debug, Clone)]
pub struct CaidaShaped {
    params: CaidaParams,
    flows: usize,
    body: PowerLaw,
    empirical: Empirical,
}

impl CaidaShaped {
    /// Fit the published parameters with a deterministic `fit_seed`,
    /// producing the empirical sample bank for `flows`-flow traces.
    pub fn fit(params: CaidaParams, flows: usize, fit_seed: u64) -> Result<Self, DistError> {
        check_fraction("frac_single_packet", params.frac_single_packet)?;
        if params.fit_samples == 0 {
            return Err(DistError::EmptySample);
        }
        let p1 = params.frac_single_packet;
        // Conditional mean of the body so the mixture hits the target:
        // mean = p1·1 + (1−p1)·body_mean.
        let body_mean = (params.mean_flow_size - p1) / (1.0 - p1);
        let body = PowerLaw::try_with_mean(body_mean, params.max_flow_size)?;
        let mut rng = StdRng::seed_from_u64(fit_seed);
        let sizes: Vec<u64> = (0..params.fit_samples)
            .map(|_| {
                if rng.gen::<f64>() < p1 {
                    1
                } else {
                    body.sample(&mut rng)
                }
            })
            .collect();
        let empirical = Empirical::try_new(sizes)?;
        Ok(Self { params, flows: flows.max(1), body, empirical })
    }

    /// The fit parameters.
    pub fn params(&self) -> &CaidaParams {
        &self.params
    }

    /// The fitted sample bank.
    pub fn empirical(&self) -> &Empirical {
        &self.empirical
    }

    /// The target mixture CDF `P(size <= s)` the fit is pinned against
    /// (KS golden tests).
    pub fn target_cdf(&self, s: u64) -> f64 {
        let p1 = self.params.frac_single_packet;
        let single = if s >= 1 { p1 } else { 0.0 };
        single + (1.0 - p1) * self.body.cdf(s)
    }
}

impl WorkloadGen for CaidaShaped {
    fn name(&self) -> &'static str {
        "caida_fit"
    }
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Realistic
    }
    fn generate(&self, seed: u64) -> (Trace, HashMap<FlowId, u64>) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCA1D);
        let id = id_stream(seed, 7);
        let mut packets = Vec::new();
        for i in 0..self.flows {
            let flow = id(i as u64);
            let size = self.empirical.sample(&mut rng);
            for _ in 0..size {
                // IMIX-flavoured lengths, like crate::synth.
                let byte_len = match rng.gen_range(0..10u8) {
                    0..=5 => rng.gen_range(64..=128),
                    6..=8 => rng.gen_range(128..=576),
                    _ => rng.gen_range(576..=1500),
                };
                packets.push(Packet { flow, byte_len });
            }
        }
        packets.shuffle(&mut rng);
        census(packets)
    }
}

// ---------------------------------------------------------------------
// The standard zoo
// ---------------------------------------------------------------------

/// The standard eight-family zoo at flow-count scale `q` (the CAESAR
/// `Q`): realistic families target roughly the paper's mean flow size,
/// adversarial families are sized so their hostile mass dominates.
/// `q` is floored at 64 so tiny test scales stay well-formed.
pub fn standard_zoo(q: usize) -> Result<Vec<Box<dyn WorkloadGen>>, DistError> {
    let q = q.max(64);
    let caida = CaidaParams {
        // Smaller fit bank + truncation at reduced scale: the bank is
        // re-fit per call, and sweep scales don't need 100 K samples.
        fit_samples: (q * 25).clamp(10_000, 100_000),
        max_flow_size: 20_000,
        ..CaidaParams::backbone()
    };
    Ok(vec![
        Box::new(CdnPopularity::new(q, q as u64 * 27, 0.9, 0.3)?),
        Box::new(KvAccess::new(q, 4.0, 64)?),
        Box::new(FlatUniform::new(q, 20, 35)?),
        Box::new(BurstyOnOff::new(q, 27.32, 20_000, 16)?),
        // Single-packet mice: a 2-packet mouse's second packet hits the
        // cache (bursts are contiguous), which blunts the thrash.
        Box::new(MouseFlood::new(4 * q, 1)?),
        Box::new(SingleElephant::new(14 * q as u64, q, 6.0, 1_000)?),
        Box::new(FlowChurn::new(8, (q / 4).max(1), 8)?),
        Box::new(CaidaShaped::fit(caida, q, 0xCA1DA)?),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn conserved(w: &dyn WorkloadGen, seed: u64) -> (Trace, HashMap<FlowId, u64>) {
        let (trace, truth) = w.generate(seed);
        assert_eq!(
            truth.values().sum::<u64>() as usize,
            trace.num_packets(),
            "{}: truth must sum to packet count",
            w.name()
        );
        assert_eq!(truth.len(), trace.num_flows, "{}", w.name());
        (trace, truth)
    }

    #[test]
    fn standard_zoo_has_all_families_and_conserves() {
        let zoo = standard_zoo(128).expect("standard zoo params are valid");
        let names: Vec<&str> = zoo.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            [
                "cdn",
                "kv",
                "flat",
                "bursty",
                "mouse_flood",
                "single_elephant",
                "flow_churn",
                "caida_fit"
            ]
        );
        for w in &zoo {
            conserved(w.as_ref(), 3);
        }
        let adversarial: Vec<&str> = zoo
            .iter()
            .filter(|w| w.kind() == WorkloadKind::Adversarial)
            .map(|w| w.name())
            .collect();
        assert_eq!(adversarial, ["mouse_flood", "single_elephant", "flow_churn"]);
    }

    #[test]
    fn cdn_is_skewed_and_bounded_by_catalogue() {
        let w = CdnPopularity::new(2_000, 54_000, 0.9, 0.3).unwrap();
        let (trace, truth) = conserved(&w, 11);
        assert!(
            trace.num_flows <= w.catalogue_size(),
            "at most one flow per object"
        );
        let sizes: Vec<u64> = truth.values().copied().collect();
        // Zipf-over-objects: the top 1% of a 2 K catalogue at α = 0.9
        // carries ≈ 34% of requests (vs 1% under uniform popularity).
        let share = stats::top_share(&sizes, 0.01);
        assert!(share > 0.25, "top-1% share = {share}");
    }

    #[test]
    fn cdn_locality_increases_repeat_hits() {
        // A window of recent packets must contain repeats under high
        // locality; near-zero locality at exponent ~0 is near-uniform.
        let hot = CdnPopularity::new(5_000, 20_000, 0.9, 0.6).unwrap();
        let cold = CdnPopularity::new(5_000, 20_000, 0.05, 0.0).unwrap();
        let repeats = |t: &Trace| {
            let mut r = 0usize;
            for w in t.packets.windows(2) {
                if w[0].flow == w[1].flow {
                    r += 1;
                }
            }
            r
        };
        let (ht, _) = hot.generate(5);
        let (ct, _) = cold.generate(5);
        assert!(
            repeats(&ht) > 4 * repeats(&ct).max(1),
            "hot {} vs cold {}",
            repeats(&ht),
            repeats(&ct)
        );
    }

    #[test]
    fn kv_flows_are_small_and_capped() {
        let w = KvAccess::new(3_000, 4.0, 64).unwrap();
        let (trace, truth) = conserved(&w, 7);
        assert_eq!(trace.num_flows, 3_000);
        assert!(truth.values().all(|&s| (1..=64).contains(&s)));
        let mean = trace.mean_flow_size();
        assert!((mean - 4.0).abs() < 1.0, "mean ops = {mean}");
    }

    #[test]
    fn flat_sizes_stay_in_band() {
        let w = FlatUniform::new(1_000, 20, 35).unwrap();
        let (_, truth) = conserved(&w, 13);
        assert!(truth.values().all(|&s| (20..=35).contains(&s)));
        assert_eq!(truth.len(), 1_000);
    }

    #[test]
    fn bursty_emits_bounded_bursts() {
        let w = BurstyOnOff::new(500, 27.32, 20_000, 16).unwrap();
        let (trace, _) = conserved(&w, 17);
        // No run of a single flow exceeds 2 adjacent bursts' worth
        // (two bursts of the same flow can land back-to-back).
        let mut run = 1usize;
        let mut max_run = 1usize;
        for w2 in trace.packets.windows(2) {
            if w2[0].flow == w2[1].flow {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 1;
            }
        }
        assert!(max_run >= 8, "bursts should be visible, max run {max_run}");
    }

    #[test]
    fn elephant_dominates_and_is_addressable() {
        let w = SingleElephant::new(50_000, 300, 6.0, 1_000).unwrap();
        let (trace, truth) = conserved(&w, 19);
        let id = w.elephant_id(19);
        assert_eq!(truth[&id], 50_000);
        let share = 50_000.0 / trace.num_packets() as f64;
        assert!(share > 0.9, "elephant share = {share}");
    }

    #[test]
    fn churn_epochs_are_disjoint() {
        let w = FlowChurn::new(6, 200, 8).unwrap();
        let (trace, _) = conserved(&w, 23);
        let seg = w.packets_per_epoch();
        assert_eq!(trace.num_packets(), seg * 6);
        let first: std::collections::HashSet<FlowId> =
            trace.packets[..seg].iter().map(|p| p.flow).collect();
        let last: std::collections::HashSet<FlowId> =
            trace.packets[5 * seg..].iter().map(|p| p.flow).collect();
        assert!(first.is_disjoint(&last), "epochs must rotate the flow set");
    }

    #[test]
    fn caida_fit_hits_target_mean_and_shape() {
        let c = CaidaShaped::fit(CaidaParams::backbone(), 500, 0xCA1DA).unwrap();
        let e = c.empirical();
        let rel = (e.mean() - 27.32).abs() / 27.32;
        assert!(rel < 0.05, "fitted mean {} vs 27.32", e.mean());
        // §4.2 shape: most flows below the mean.
        let below = e.samples().iter().filter(|&&s| s < 27).count();
        assert!(below as f64 / e.samples().len() as f64 > 0.9);
        conserved(&c, 29);
    }

    #[test]
    fn bad_configs_report_instead_of_panicking() {
        assert!(CdnPopularity::new(100, 10, -1.0, 0.3).is_err());
        assert!(CdnPopularity::new(100, 10, 0.9, 1.5).is_err());
        assert!(KvAccess::new(10, 0.5, 64).is_err());
        assert!(KvAccess::new(10, 100.0, 64).is_err());
        assert!(FlatUniform::new(10, 0, 5).is_err());
        assert!(FlatUniform::new(10, 9, 5).is_err());
        assert!(BurstyOnOff::new(10, 27.3, 20_000, 0).is_err());
        assert!(BurstyOnOff::new(10, 1e9, 20_000, 16).is_err());
        assert!(MouseFlood::new(10, 0).is_err());
        assert!(SingleElephant::new(0, 10, 6.0, 100).is_err());
        assert!(FlowChurn::new(3, 10, 0).is_err());
        let bad = CaidaParams { frac_single_packet: 1.2, ..CaidaParams::backbone() };
        assert!(CaidaShaped::fit(bad, 10, 1).is_err());
    }
}
