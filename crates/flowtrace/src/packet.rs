//! Core packet and trace types.

use hashkit::flowid;

/// 64-bit flow identifier, generated from the 5-tuple header with
/// SHA-1 + APHash as in the paper (§6.1). See [`hashkit::flowid`].
pub type FlowId = u64;

/// The classic transport 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// IPv4 source address (host byte order).
    pub src_ip: u32,
    /// IPv4 destination address (host byte order).
    pub dst_ip: u32,
    /// Transport source port (0 for ICMP).
    pub src_port: u16,
    /// Transport destination port (0 for ICMP).
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP, 1 = ICMP).
    pub proto: u8,
}

impl FiveTuple {
    /// TCP protocol number.
    pub const TCP: u8 = 6;
    /// UDP protocol number.
    pub const UDP: u8 = 17;
    /// ICMP protocol number.
    pub const ICMP: u8 = 1;

    /// Generate the flow ID for this tuple (SHA-1 ⊕ APHash, §6.1).
    pub fn flow_id(&self) -> FlowId {
        flowid::flow_id(self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.proto)
    }
}

/// A captured packet, reduced to what per-flow measurement needs: its
/// flow and its wire length. The paper counts either packets ("flow
/// size") or bytes ("flow volume"); both have "almost the same
/// distribution, except for the magnitude" (§3.1), so the schemes only
/// see `flow` and optionally weight by `byte_len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Wire length in bytes (for flow-volume measurement). `u32`, not
    /// `u16`: pcap `orig_len` is 32-bit, and jumbo or aggregated
    /// records (super-packets from offload NICs) legitimately exceed
    /// 65535 bytes.
    pub byte_len: u32,
}

impl Packet {
    /// Construct a packet with the default 64-byte minimum frame.
    pub fn new(flow: FlowId) -> Self {
        Self { flow, byte_len: 64 }
    }
}

/// An ordered packet trace plus its basic census.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Packets in arrival order.
    pub packets: Vec<Packet>,
    /// Number of distinct flows (the paper's `Q`).
    pub num_flows: usize,
}

impl Trace {
    /// Total packet count (the paper's `n`).
    pub fn num_packets(&self) -> usize {
        self.packets.len()
    }

    /// Average flow size `n / Q` used to pick the cache entry capacity
    /// `y = ⌊2·n/Q⌋` (§6.2).
    pub fn mean_flow_size(&self) -> f64 {
        if self.num_flows == 0 {
            return 0.0;
        }
        self.packets.len() as f64 / self.num_flows as f64
    }

    /// The paper's recommended per-entry cache capacity `y = ⌊2·n/Q⌋`,
    /// clamped to at least 2 so an entry can always hold one packet
    /// without instantly overflowing.
    pub fn recommended_entry_capacity(&self) -> u64 {
        ((2.0 * self.mean_flow_size()).floor() as u64).max(2)
    }

    /// Iterate over flow IDs in arrival order.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.packets.iter().map(|p| p.flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_flow_id_is_stable_and_direction_sensitive() {
        let fwd = FiveTuple {
            src_ip: 0x0A00_0001,
            dst_ip: 0x0A00_0002,
            src_port: 1234,
            dst_port: 80,
            proto: FiveTuple::TCP,
        };
        let rev = FiveTuple {
            src_ip: fwd.dst_ip,
            dst_ip: fwd.src_ip,
            src_port: fwd.dst_port,
            dst_port: fwd.src_port,
            proto: fwd.proto,
        };
        assert_eq!(fwd.flow_id(), fwd.flow_id());
        assert_ne!(fwd.flow_id(), rev.flow_id());
    }

    #[test]
    fn mean_flow_size_and_capacity() {
        let mut t = Trace { num_flows: 4, ..Trace::default() };
        for f in 0..4u64 {
            for _ in 0..27 {
                t.packets.push(Packet::new(f));
            }
        }
        assert_eq!(t.num_packets(), 108);
        assert!((t.mean_flow_size() - 27.0).abs() < 1e-9);
        assert_eq!(t.recommended_entry_capacity(), 54);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::default();
        assert_eq!(t.mean_flow_size(), 0.0);
        assert_eq!(t.recommended_entry_capacity(), 2);
    }
}
