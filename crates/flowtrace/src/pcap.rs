//! Minimal from-scratch libpcap file support.
//!
//! The paper replays a real capture; users who have one can load it
//! here. We implement the classic pcap container (24-byte global
//! header plus per-record headers) and decode the Ethernet → IPv4 →
//! TCP/UDP/ICMP stack into [`FiveTuple`]s.
//!
//! Anything else (IPv6, VLAN, truncated records) is counted and
//! skipped rather than failing the whole file — real captures are
//! messy.
//!
//! A writer is included so tests and examples can synthesize captures
//! and round-trip them.

use crate::packet::{FiveTuple, Packet, Trace};
use std::collections::HashSet;
use std::io::{self, Read, Write};

/// Classic pcap magic, microsecond timestamps, writer-native order.
pub const PCAP_MAGIC: u32 = 0xA1B2_C3D4;
/// Byte-swapped magic (file written on opposite endianness).
pub const PCAP_MAGIC_SWAPPED: u32 = 0xD4C3_B2A1;
/// Linktype for Ethernet.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Linktype for raw IP (no link-layer header).
pub const LINKTYPE_RAW: u32 = 101;

/// Counters of what the parser saw and skipped.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ParseStats {
    /// Records parsed into packets.
    pub parsed: u64,
    /// Records skipped (non-IPv4, unsupported transport, truncated).
    pub skipped: u64,
}

/// Errors from reading a pcap stream.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The global header magic was not a known pcap magic.
    BadMagic(u32),
    /// The link type is not Ethernet.
    UnsupportedLinkType(u32),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap i/o error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            PcapError::UnsupportedLinkType(t) => write!(f, "unsupported linktype {t}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Streaming pcap reader yielding `(FiveTuple, original_length)`.
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
    raw_ip: bool,
    stats: ParseStats,
}

impl<R: Read> PcapReader<R> {
    /// Parse the global header and construct a reader.
    pub fn new(mut inner: R) -> Result<Self, PcapError> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            PCAP_MAGIC => false,
            PCAP_MAGIC_SWAPPED => true,
            other => return Err(PcapError::BadMagic(other)),
        };
        let read_u32 = |b: &[u8]| {
            let arr = [b[0], b[1], b[2], b[3]];
            if swapped {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        let linktype = read_u32(&hdr[20..24]);
        let raw_ip = match linktype {
            LINKTYPE_ETHERNET => false,
            LINKTYPE_RAW => true,
            other => return Err(PcapError::UnsupportedLinkType(other)),
        };
        Ok(Self {
            inner,
            swapped,
            raw_ip,
            stats: ParseStats::default(),
        })
    }

    /// Parse stats so far.
    pub fn stats(&self) -> ParseStats {
        self.stats
    }

    fn read_u32(&mut self) -> io::Result<Option<u32>> {
        let mut b = [0u8; 4];
        match self.inner.read_exact(&mut b) {
            Ok(()) => Ok(Some(if self.swapped {
                u32::from_be_bytes(b)
            } else {
                u32::from_le_bytes(b)
            })),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Next decodable packet, or `None` at end of file. Undecodable
    /// records are skipped and counted in [`ParseStats::skipped`].
    pub fn next_packet(&mut self) -> Result<Option<(FiveTuple, u32)>, PcapError> {
        loop {
            let Some(_ts_sec) = self.read_u32()? else {
                return Ok(None);
            };
            // ts_usec, incl_len, orig_len must follow or the file is
            // truncated mid-header, which we treat as EOF.
            let (Some(_ts_usec), Some(incl_len), Some(orig_len)) =
                (self.read_u32()?, self.read_u32()?, self.read_u32()?)
            else {
                return Ok(None);
            };
            let mut data = vec![0u8; incl_len as usize];
            if self.inner.read_exact(&mut data).is_err() {
                return Ok(None);
            }
            let decoded = if self.raw_ip {
                decode_ipv4(&data)
            } else {
                decode_ethernet_ipv4(&data)
            };
            match decoded {
                Some(tuple) => {
                    self.stats.parsed += 1;
                    return Ok(Some((tuple, orig_len)));
                }
                None => {
                    self.stats.skipped += 1;
                }
            }
        }
    }

    /// Read the whole file into a [`Trace`].
    pub fn read_trace(mut self) -> Result<(Trace, ParseStats), PcapError> {
        let mut packets = Vec::new();
        let mut flows = HashSet::new();
        while let Some((tuple, orig_len)) = self.next_packet()? {
            let flow = tuple.flow_id();
            flows.insert(flow);
            packets.push(Packet { flow, byte_len: orig_len });
        }
        Ok((
            Trace {
                packets,
                num_flows: flows.len(),
            },
            self.stats,
        ))
    }
}

/// Decode an Ethernet frame carrying IPv4 TCP/UDP/ICMP into a 5-tuple.
/// Returns `None` for anything else.
pub fn decode_ethernet_ipv4(frame: &[u8]) -> Option<FiveTuple> {
    if frame.len() < 14 {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != 0x0800 {
        return None; // not IPv4 (could be VLAN/IPv6/ARP)
    }
    decode_ipv4(&frame[14..])
}

/// Decode a bare IPv4 packet (linktype RAW) into a 5-tuple.
pub fn decode_ipv4(ip: &[u8]) -> Option<FiveTuple> {
    if ip.len() < 20 || ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = ((ip[0] & 0x0F) as usize) * 4;
    if ihl < 20 || ip.len() < ihl {
        return None;
    }
    let proto = ip[9];
    let src_ip = u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]);
    let dst_ip = u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]);
    let l4 = &ip[ihl..];
    let (src_port, dst_port) = match proto {
        FiveTuple::TCP | FiveTuple::UDP => {
            if l4.len() < 4 {
                return None;
            }
            (
                u16::from_be_bytes([l4[0], l4[1]]),
                u16::from_be_bytes([l4[2], l4[3]]),
            )
        }
        FiveTuple::ICMP => (0, 0),
        _ => return None,
    };
    Some(FiveTuple {
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        proto,
    })
}

/// Writer producing classic little-endian pcap with Ethernet linktype.
pub struct PcapWriter<W: Write> {
    inner: W,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and construct the writer.
    pub fn new(mut inner: W) -> io::Result<Self> {
        inner.write_all(&PCAP_MAGIC.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&65535u32.to_le_bytes())?; // snaplen
        inner.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(Self { inner })
    }

    /// Append one minimal Ethernet+IPv4 packet for `tuple`, padding the
    /// on-wire length to `wire_len`.
    pub fn write_packet(&mut self, tuple: &FiveTuple, ts_sec: u32, wire_len: u32) -> io::Result<()> {
        let frame = encode_ethernet_ipv4(tuple);
        self.inner.write_all(&ts_sec.to_le_bytes())?;
        self.inner.write_all(&0u32.to_le_bytes())?; // ts_usec
        self.inner.write_all(&(frame.len() as u32).to_le_bytes())?;
        // The max must happen in u32: pcap's orig_len field is 32-bit,
        // and narrowing wire_len first would truncate jumbo lengths
        // before the comparison ever saw them.
        self.inner
            .write_all(&wire_len.max(frame.len() as u32).to_le_bytes())?;
        self.inner.write_all(&frame)?;
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Build the smallest valid Ethernet+IPv4(+L4 ports) frame for `tuple`.
pub fn encode_ethernet_ipv4(tuple: &FiveTuple) -> Vec<u8> {
    let l4_len = match tuple.proto {
        FiveTuple::TCP => 20,
        FiveTuple::UDP => 8,
        _ => 8, // ICMP header
    };
    let total_ip = 20 + l4_len;
    let mut f = Vec::with_capacity(14 + total_ip);
    // Ethernet: dst MAC, src MAC, ethertype IPv4.
    f.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]);
    f.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]);
    f.extend_from_slice(&0x0800u16.to_be_bytes());
    // IPv4 header (no options, checksum left zero — parsers don't care).
    f.push(0x45);
    f.push(0);
    f.extend_from_slice(&(total_ip as u16).to_be_bytes());
    f.extend_from_slice(&[0, 0, 0, 0]); // id, flags/frag
    f.push(64); // ttl
    f.push(tuple.proto);
    f.extend_from_slice(&[0, 0]); // checksum
    f.extend_from_slice(&tuple.src_ip.to_be_bytes());
    f.extend_from_slice(&tuple.dst_ip.to_be_bytes());
    // L4.
    match tuple.proto {
        FiveTuple::TCP | FiveTuple::UDP => {
            f.extend_from_slice(&tuple.src_port.to_be_bytes());
            f.extend_from_slice(&tuple.dst_port.to_be_bytes());
            f.resize(14 + total_ip, 0);
        }
        _ => {
            f.resize(14 + total_ip, 0);
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tuple(p: u8) -> FiveTuple {
        FiveTuple {
            src_ip: 0x0A00_0001,
            dst_ip: 0xC0A8_0001,
            src_port: if p == FiveTuple::ICMP { 0 } else { 4242 },
            dst_port: if p == FiveTuple::ICMP { 0 } else { 443 },
            proto: p,
        }
    }

    #[test]
    fn roundtrip_tcp_udp_icmp() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf).unwrap();
            for p in [FiveTuple::TCP, FiveTuple::UDP, FiveTuple::ICMP] {
                w.write_packet(&tuple(p), 0, 64).unwrap();
            }
            w.finish().unwrap();
        }
        let mut r = PcapReader::new(Cursor::new(&buf)).unwrap();
        for p in [FiveTuple::TCP, FiveTuple::UDP, FiveTuple::ICMP] {
            let (t, len) = r.next_packet().unwrap().expect("packet");
            assert_eq!(t, tuple(p));
            assert_eq!(len, 64);
        }
        assert!(r.next_packet().unwrap().is_none());
        assert_eq!(r.stats(), ParseStats { parsed: 3, skipped: 0 });
    }

    #[test]
    fn jumbo_orig_len_survives_read_trace() {
        // Regression: read_trace used to clamp orig_len to u16::MAX,
        // silently corrupting byte counts for jumbo/aggregated records
        // (offload NICs hand the capture stack 64 KB+ super-packets).
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf).unwrap();
            w.write_packet(&tuple(FiveTuple::TCP), 0, 100_000).unwrap();
            w.write_packet(&tuple(FiveTuple::TCP), 0, 64).unwrap();
            w.finish().unwrap();
        }
        let mut r = PcapReader::new(Cursor::new(&buf)).unwrap();
        let (_, len) = r.next_packet().unwrap().expect("packet");
        assert_eq!(len, 100_000);
        let (trace, _) = PcapReader::new(Cursor::new(&buf)).unwrap().read_trace().unwrap();
        assert_eq!(trace.packets[0].byte_len, 100_000);
        assert_eq!(trace.packets[1].byte_len, 64);
    }

    #[test]
    fn writer_orig_len_compares_in_u32() {
        // Regression: write_packet used to narrow wire_len to u16
        // before taking max(frame.len()), so a jumbo wire_len wrote a
        // truncated orig_len. The whole comparison now runs in u32.
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf).unwrap();
            // Larger than u16::MAX: must round-trip exactly.
            w.write_packet(&tuple(FiveTuple::UDP), 0, 70_000).unwrap();
            // Smaller than the synthesized frame: orig_len is the
            // frame length, never less than what was captured.
            w.write_packet(&tuple(FiveTuple::UDP), 0, 1).unwrap();
            w.finish().unwrap();
        }
        let frame_len = encode_ethernet_ipv4(&tuple(FiveTuple::UDP)).len() as u32;
        let mut r = PcapReader::new(Cursor::new(&buf)).unwrap();
        let (_, len) = r.next_packet().unwrap().expect("jumbo packet");
        assert_eq!(len, 70_000);
        let (_, len) = r.next_packet().unwrap().expect("tiny packet");
        assert_eq!(len, frame_len);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = vec![0u8; 24];
        let err = PcapReader::new(Cursor::new(&buf)).err().expect("must fail");
        assert!(matches!(err, PcapError::BadMagic(0)));
    }

    #[test]
    fn non_ipv4_records_are_skipped() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf).unwrap();
            w.write_packet(&tuple(FiveTuple::TCP), 0, 64).unwrap();
            w.finish().unwrap();
        }
        // Append an ARP record by hand.
        let arp_frame = {
            let mut f = vec![0u8; 14];
            f[12] = 0x08;
            f[13] = 0x06; // ethertype ARP
            f.resize(42, 0);
            f
        };
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(arp_frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(arp_frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&arp_frame);

        let mut r = PcapReader::new(Cursor::new(&buf)).unwrap();
        assert!(r.next_packet().unwrap().is_some());
        assert!(r.next_packet().unwrap().is_none());
        assert_eq!(r.stats(), ParseStats { parsed: 1, skipped: 1 });
    }

    #[test]
    fn truncated_file_ends_cleanly() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf).unwrap();
            w.write_packet(&tuple(FiveTuple::TCP), 0, 64).unwrap();
            w.finish().unwrap();
        }
        // Chop the last record in half.
        let cut = buf.len() - 10;
        let mut r = PcapReader::new(Cursor::new(&buf[..cut])).unwrap();
        assert!(r.next_packet().unwrap().is_none());
    }

    #[test]
    fn read_trace_counts_flows() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf).unwrap();
            for _ in 0..3 {
                w.write_packet(&tuple(FiveTuple::TCP), 0, 100).unwrap();
            }
            w.write_packet(&tuple(FiveTuple::UDP), 1, 200).unwrap();
            w.finish().unwrap();
        }
        let (trace, stats) = PcapReader::new(Cursor::new(&buf)).unwrap().read_trace().unwrap();
        assert_eq!(trace.num_packets(), 4);
        assert_eq!(trace.num_flows, 2);
        assert_eq!(stats.parsed, 4);
    }

    #[test]
    fn decode_rejects_short_and_non_v4() {
        assert!(decode_ethernet_ipv4(&[]).is_none());
        assert!(decode_ethernet_ipv4(&[0u8; 13]).is_none());
        let mut f = encode_ethernet_ipv4(&tuple(FiveTuple::TCP));
        f[14] = 0x65; // version 6
        assert!(decode_ethernet_ipv4(&f).is_none());
    }

    #[test]
    fn raw_ip_linktype_parses() {
        // Hand-build a linktype-101 capture: bare IPv4 packets.
        let mut buf = Vec::new();
        buf.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&65535u32.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
        let frame = encode_ethernet_ipv4(&tuple(FiveTuple::UDP));
        let ip_only = &frame[14..];
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(ip_only.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(ip_only.len() as u32).to_le_bytes());
        buf.extend_from_slice(ip_only);
        let mut r = PcapReader::new(Cursor::new(&buf)).unwrap();
        let (t, _) = r.next_packet().unwrap().expect("packet");
        assert_eq!(t, tuple(FiveTuple::UDP));
        assert!(r.next_packet().unwrap().is_none());
    }

    #[test]
    fn unsupported_linktype_rejected() {
        let mut buf = vec![0u8; 24];
        buf[0..4].copy_from_slice(&PCAP_MAGIC.to_le_bytes());
        buf[20..24].copy_from_slice(&105u32.to_le_bytes()); // 802.11
        let err = PcapReader::new(Cursor::new(&buf)).err().expect("must fail");
        assert!(matches!(err, PcapError::UnsupportedLinkType(105)));
    }

    #[test]
    fn swapped_endianness_reader() {
        // Hand-build a big-endian pcap with one TCP packet.
        let mut buf = Vec::new();
        buf.extend_from_slice(&PCAP_MAGIC.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        let frame = encode_ethernet_ipv4(&tuple(FiveTuple::TCP));
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(&frame);
        let mut r = PcapReader::new(Cursor::new(&buf)).unwrap();
        let (t, _) = r.next_packet().unwrap().expect("packet");
        assert_eq!(t, tuple(FiveTuple::TCP));
    }
}
