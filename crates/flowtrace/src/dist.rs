//! Flow-size distributions.
//!
//! The paper's analysis (§4.1) assumes flow sizes follow a known
//! distribution `P_i` with mean `μ` and variance `σ²`, and its trace
//! exhibits a heavy tail where **more than 92% of flows are smaller
//! than the mean** (§4.2) and **more than 95% are smaller than
//! `y = 2·n/Q`** (§6.2). A truncated discrete power law
//! `P(s) ∝ s^(−α)`, `s ∈ [1, s_max]`, reproduces both properties; this
//! module samples it and calibrates `α` to hit a target mean.

use support::rand::Rng;

/// Why a distribution constructor rejected its parameters.
///
/// The public constructors come in pairs: `new`/`with_mean` panic (for
/// call sites with static, known-good parameters) and
/// `try_new`/`try_with_mean` return this error (for sweep and workload
/// configuration paths, where one bad spec must produce a report row
/// instead of aborting the whole run).
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// Power-law exponent `alpha` must be strictly positive.
    BadAlpha(f64),
    /// Log-normal spread `sigma_log` must be strictly positive.
    BadSigma(f64),
    /// `max_size` must be at least 1.
    ZeroMaxSize,
    /// Target mean not achievable inside `[1, max_size)`.
    BadMean {
        /// The requested mean.
        target: f64,
        /// The truncation bound the mean must fit under.
        max_size: u64,
    },
    /// A probability/fraction parameter fell outside `[0, 1)`.
    BadFraction {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A size range `[lo, hi]` was empty or started below 1.
    BadRange {
        /// Lower bound.
        lo: u64,
        /// Upper bound.
        hi: u64,
    },
    /// Empirical distribution built from an empty sample.
    EmptySample,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::BadAlpha(a) => write!(f, "alpha must be positive (got {a})"),
            DistError::BadSigma(s) => write!(f, "sigma must be positive (got {s})"),
            DistError::ZeroMaxSize => write!(f, "max_size must be at least 1"),
            DistError::BadMean { target, max_size } => write!(
                f,
                "target mean {target} unreachable with max_size {max_size} \
                 (need 1 <= mean < max_size)"
            ),
            DistError::BadFraction { name, value } => {
                write!(f, "{name} must be in [0, 1) (got {value})")
            }
            DistError::BadRange { lo, hi } => {
                write!(f, "size range [{lo}, {hi}] must satisfy 1 <= lo <= hi")
            }
            DistError::EmptySample => write!(f, "empirical distribution needs samples"),
        }
    }
}

impl std::error::Error for DistError {}

/// A discrete distribution over flow sizes `1..=max_size`.
pub trait FlowSizeDistribution {
    /// Draw one flow size.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64;
    /// Analytic (or empirical) mean of the distribution.
    fn mean(&self) -> f64;
    /// Largest size the distribution can produce.
    fn max_size(&self) -> u64;
}

/// Truncated discrete power law ("Zipf-like") flow sizes:
/// `P(s) = s^(−α) / Σ_{j=1}^{s_max} j^(−α)`.
///
/// Sampling is inverse-CDF over a precomputed table, O(log s_max) per
/// draw. With `s_max` up to a few hundred thousand, the table costs a
/// few MB once per experiment — irrelevant next to the trace itself.
#[derive(Debug, Clone)]
pub struct PowerLaw {
    alpha: f64,
    /// cdf[i] = P(size <= i+1)
    cdf: Vec<f64>,
    mean: f64,
}

impl PowerLaw {
    /// Build with explicit tail exponent `alpha > 0` and truncation
    /// `max_size >= 1`.
    ///
    /// # Panics
    /// Panics on invalid parameters; use [`PowerLaw::try_new`] on
    /// configuration paths that must report instead.
    pub fn new(alpha: f64, max_size: u64) -> Self {
        Self::try_new(alpha, max_size).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`PowerLaw::new`].
    ///
    /// ```
    /// use flowtrace::dist::{DistError, PowerLaw};
    /// assert!(PowerLaw::try_new(1.1, 100).is_ok());
    /// assert!(matches!(PowerLaw::try_new(0.0, 100), Err(DistError::BadAlpha(_))));
    /// ```
    pub fn try_new(alpha: f64, max_size: u64) -> Result<Self, DistError> {
        if alpha.is_nan() || alpha <= 0.0 {
            return Err(DistError::BadAlpha(alpha));
        }
        if max_size == 0 {
            return Err(DistError::ZeroMaxSize);
        }
        let mut weights = Vec::with_capacity(max_size as usize);
        let mut total = 0.0f64;
        for s in 1..=max_size {
            let w = (s as f64).powf(-alpha);
            total += w;
            weights.push(w);
        }
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        let mut mean = 0.0f64;
        for (i, w) in weights.iter().enumerate() {
            acc += w / total;
            cdf.push(acc);
            mean += (i as f64 + 1.0) * (w / total);
        }
        // Guard against floating-point drift in the last bucket.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Self { alpha, cdf, mean })
    }

    /// Calibrate the exponent so the mean flow size is `target_mean`,
    /// using a bisection on the analytic mean (which is monotonically
    /// decreasing in `α`).
    ///
    /// ```
    /// use flowtrace::dist::{FlowSizeDistribution, PowerLaw};
    /// let d = PowerLaw::with_mean(27.3, 100_000);
    /// assert!((d.mean() - 27.3).abs() < 0.05);
    /// ```
    ///
    /// # Panics
    /// Panics when the target mean is unreachable; use
    /// [`PowerLaw::try_with_mean`] on configuration paths.
    pub fn with_mean(target_mean: f64, max_size: u64) -> Self {
        Self::try_with_mean(target_mean, max_size).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`PowerLaw::with_mean`].
    ///
    /// ```
    /// use flowtrace::dist::{DistError, PowerLaw};
    /// assert!(PowerLaw::try_with_mean(27.3, 100_000).is_ok());
    /// assert!(matches!(
    ///     PowerLaw::try_with_mean(100.0, 50),
    ///     Err(DistError::BadMean { .. })
    /// ));
    /// ```
    pub fn try_with_mean(target_mean: f64, max_size: u64) -> Result<Self, DistError> {
        if max_size == 0 {
            return Err(DistError::ZeroMaxSize);
        }
        if target_mean.is_nan() || target_mean < 1.0 || (target_mean as u64) >= max_size {
            return Err(DistError::BadMean { target: target_mean, max_size });
        }
        let mean_of = |alpha: f64| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for s in 1..=max_size {
                let w = (s as f64).powf(-alpha);
                num += s as f64 * w;
                den += w;
            }
            num / den
        };
        // Mean decreases from ~max_size/2 (alpha→0) towards 1 (alpha→∞).
        let (mut lo, mut hi) = (1e-6f64, 8.0f64);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if mean_of(mid) > target_mean {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Self::try_new(0.5 * (lo + hi), max_size)
    }

    /// The tail exponent in use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Cumulative probability `P(size <= s)`; 0 for `s == 0`, 1 past
    /// the truncation bound.
    pub fn cdf(&self, s: u64) -> f64 {
        if s == 0 {
            0.0
        } else {
            let i = (s as usize).min(self.cdf.len()) - 1;
            self.cdf[i]
        }
    }

    /// Probability of a flow having exactly size `s` (`P_s` in Table 1).
    pub fn pmf(&self, s: u64) -> f64 {
        if s == 0 || s as usize > self.cdf.len() {
            return 0.0;
        }
        let i = s as usize - 1;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

impl FlowSizeDistribution for PowerLaw {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // First index with cdf >= u.
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i as u64 + 1).min(self.cdf.len() as u64),
        }
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn max_size(&self) -> u64 {
        self.cdf.len() as u64
    }
}

/// Discretized log-normal flow sizes: `size = ⌈exp(N(μ_log, σ_log))⌉`,
/// truncated to `[1, max_size]`.
///
/// Internet flow sizes are often modelled log-normally as well as by
/// power laws; having both lets the sensitivity experiments check that
/// the paper's comparisons do not hinge on the exact tail family.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu_log: f64,
    sigma_log: f64,
    max_size: u64,
    mean: f64,
}

impl LogNormal {
    /// Build from log-space parameters.
    ///
    /// # Panics
    /// Panics if `sigma_log <= 0` or `max_size == 0`; use
    /// [`LogNormal::try_new`] on configuration paths.
    pub fn new(mu_log: f64, sigma_log: f64, max_size: u64) -> Self {
        Self::try_new(mu_log, sigma_log, max_size).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`LogNormal::new`].
    pub fn try_new(mu_log: f64, sigma_log: f64, max_size: u64) -> Result<Self, DistError> {
        if sigma_log.is_nan() || sigma_log <= 0.0 {
            return Err(DistError::BadSigma(sigma_log));
        }
        if max_size == 0 {
            return Err(DistError::ZeroMaxSize);
        }
        // Empirical mean of the truncated, discretized variable: use a
        // numeric estimate over the quantile grid (cheap, done once).
        let mut mean = 0.0;
        let steps = 10_000;
        for i in 0..steps {
            let p = (i as f64 + 0.5) / steps as f64;
            let z = crate::dist::probit(p);
            let v = (mu_log + sigma_log * z).exp().ceil().clamp(1.0, max_size as f64);
            mean += v;
        }
        Ok(Self { mu_log, sigma_log, max_size, mean: mean / steps as f64 })
    }

    /// Calibrate `μ_log` so the (truncated, discretized) mean is
    /// `target_mean` at the given log-space spread.
    ///
    /// # Panics
    /// Panics on invalid parameters; use [`LogNormal::try_with_mean`]
    /// on configuration paths.
    pub fn with_mean(target_mean: f64, sigma_log: f64, max_size: u64) -> Self {
        Self::try_with_mean(target_mean, sigma_log, max_size).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`LogNormal::with_mean`].
    pub fn try_with_mean(
        target_mean: f64,
        sigma_log: f64,
        max_size: u64,
    ) -> Result<Self, DistError> {
        if sigma_log.is_nan() || sigma_log <= 0.0 {
            return Err(DistError::BadSigma(sigma_log));
        }
        if max_size == 0 {
            return Err(DistError::ZeroMaxSize);
        }
        if target_mean.is_nan() || target_mean < 1.0 || target_mean > max_size as f64 {
            return Err(DistError::BadMean { target: target_mean, max_size });
        }
        let (mut lo, mut hi) = (-5.0f64, 15.0f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if Self::new(mid, sigma_log, max_size).mean() < target_mean {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Self::try_new(0.5 * (lo + hi), sigma_log, max_size)
    }

    /// Log-space location parameter.
    pub fn mu_log(&self) -> f64 {
        self.mu_log
    }
}

impl FlowSizeDistribution for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Box–Muller from two uniforms.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (self.mu_log + self.sigma_log * z).exp().ceil();
        (v as u64).clamp(1, self.max_size)
    }
    fn mean(&self) -> f64 {
        self.mean
    }
    fn max_size(&self) -> u64 {
        self.max_size
    }
}

/// Standard normal quantile (probit) via the Beasley–Springer–Moro
/// rational approximation — enough precision for trace calibration.
// The rational coefficients are quoted verbatim from the published
// approximation; truncating them to f64-representable precision would
// obscure their provenance for no behavioural change.
#[allow(clippy::excessive_precision)]
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit needs p in (0,1)");
    // Symmetric around 0.5.
    let q = p - 0.5;
    if q.abs() <= 0.425 {
        let r = 0.180625 - q * q;
        return q * (((((((2509.0809287301226727 * r + 33430.575583588128105) * r
            + 67265.770927008700853)
            * r
            + 45921.953931549871457)
            * r
            + 13731.693765509461125)
            * r
            + 1971.5909503065514427)
            * r
            + 133.14166789178437745)
            * r
            + 3.387132872796366608)
            / (((((((5226.495278852545703 * r + 28729.085735721942674) * r
                + 39307.89580009271061)
                * r
                + 21213.794301586595867)
                * r
                + 5394.1960214247511077)
                * r
                + 687.1870074920579083)
                * r
                + 42.313330701600911252)
                * r
                + 1.0);
    }
    let r = if q < 0.0 { p } else { 1.0 - p };
    let r = (-r.ln()).sqrt();
    let val = if r <= 5.0 {
        let r = r - 1.6;
        (((((((7.7454501427834140764e-4 * r + 0.0227238449892691845833) * r
            + 0.24178072517745061177)
            * r
            + 1.27045825245236838258)
            * r
            + 3.64784832476320460504)
            * r
            + 5.7694972214606914055)
            * r
            + 4.6303378461565452959)
            * r
            + 1.42343711074968357734)
            / (((((((1.05075007164441684324e-9 * r + 5.475938084995344946e-4) * r
                + 0.0151986665636164571966)
                * r
                + 0.14810397642748007459)
                * r
                + 0.68976733498510000455)
                * r
                + 1.6763848301838038494)
                * r
                + 2.05319162663775882187)
                * r
                + 1.0)
    } else {
        let r = r - 5.0;
        (((((((2.01033439929228813265e-7 * r + 2.71155556874348757815e-5) * r
            + 0.0012426609473880784386)
            * r
            + 0.026532189526576123093)
            * r
            + 0.29656057182850489123)
            * r
            + 1.7848265399172913358)
            * r
            + 5.4637849111641143699)
            * r
            + 6.6579046435011037772)
            / (((((((2.04426310338993978564e-15 * r + 1.4215117583164458887e-7) * r
                + 1.8463183175100546818e-5)
                * r
                + 7.868691311456132591e-4)
                * r
                + 0.0148753612908506148525)
                * r
                + 0.13692988092273580531)
                * r
                + 0.59983220655588793769)
                * r
                + 1.0)
    };
    if q < 0.0 {
        -val
    } else {
        val
    }
}

/// Degenerate distribution: every flow has exactly `size` packets.
/// Useful for controlled experiments and the analytic unit tests.
#[derive(Debug, Clone, Copy)]
pub struct Constant(pub u64);

impl FlowSizeDistribution for Constant {
    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> u64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0 as f64
    }
    fn max_size(&self) -> u64 {
        self.0
    }
}

/// Empirical distribution resampled from observed flow sizes.
#[derive(Debug, Clone)]
pub struct Empirical {
    sizes: Vec<u64>,
    mean: f64,
}

impl Empirical {
    /// Build from a list of observed flow sizes.
    ///
    /// # Panics
    /// Panics if `sizes` is empty; use [`Empirical::try_new`] on
    /// configuration paths.
    pub fn new(sizes: Vec<u64>) -> Self {
        Self::try_new(sizes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Empirical::new`].
    pub fn try_new(sizes: Vec<u64>) -> Result<Self, DistError> {
        if sizes.is_empty() {
            return Err(DistError::EmptySample);
        }
        let mean = sizes.iter().map(|&s| s as f64).sum::<f64>() / sizes.len() as f64;
        Ok(Self { sizes, mean })
    }

    /// The sample bank the distribution resamples from (e.g. for
    /// goodness-of-fit statistics against a target CDF).
    pub fn samples(&self) -> &[u64] {
        &self.sizes
    }
}

impl FlowSizeDistribution for Empirical {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.sizes[rng.gen_range(0..self.sizes.len())]
    }
    fn mean(&self) -> f64 {
        self.mean
    }
    fn max_size(&self) -> u64 {
        *self.sizes.iter().max().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use support::rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pmf_sums_to_one() {
        let d = PowerLaw::new(1.5, 1000);
        let total: f64 = (1..=1000).map(|s| d.pmf(s)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn pmf_is_decreasing() {
        let d = PowerLaw::new(1.2, 500);
        for s in 1..500 {
            assert!(d.pmf(s) >= d.pmf(s + 1));
        }
    }

    #[test]
    fn sample_respects_truncation() {
        let d = PowerLaw::new(1.1, 64);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1..=64).contains(&s));
        }
    }

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let d = PowerLaw::with_mean(27.3, 50_000);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp = sum as f64 / n as f64;
        assert!(
            (emp - d.mean()).abs() / d.mean() < 0.05,
            "empirical {emp} vs analytic {}",
            d.mean()
        );
    }

    #[test]
    fn calibrated_tail_matches_paper_shape() {
        // Paper §4.2: >92% of flows are below the mean.
        let d = PowerLaw::with_mean(27.3, 100_000);
        let below: f64 = (1..=27).map(|s| d.pmf(s)).sum();
        assert!(below > 0.92, "P(size < mean) = {below}");
        // §6.2: >95% of flows are below y = 2 * mean.
        let below_y: f64 = (1..=54).map(|s| d.pmf(s)).sum();
        assert!(below_y > 0.95, "P(size < y) = {below_y}");
    }

    #[test]
    fn probit_inverts_known_quantiles() {
        assert!((probit(0.5)).abs() < 1e-9);
        assert!((probit(0.975) - 1.959964).abs() < 1e-4);
        assert!((probit(0.025) + 1.959964).abs() < 1e-4);
        assert!((probit(0.999) - 3.090232).abs() < 1e-4);
    }

    #[test]
    fn lognormal_calibrates_to_target_mean() {
        let d = LogNormal::with_mean(27.3, 2.0, 100_000);
        assert!((d.mean() - 27.3).abs() / 27.3 < 0.02, "mean = {}", d.mean());
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let emp: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((emp - 27.3).abs() / 27.3 < 0.1, "empirical mean = {emp}");
    }

    #[test]
    fn lognormal_respects_truncation_and_floor() {
        let d = LogNormal::new(3.0, 2.5, 500);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1..=500).contains(&s));
        }
    }

    #[test]
    fn lognormal_is_heavy_tailed_enough() {
        // With σ_log = 2 the mean-27 lognormal also puts > 80% of
        // flows below the mean (the tail-shape property the paper's
        // analysis leans on, somewhat weaker than the power law's 92%).
        let d = LogNormal::with_mean(27.3, 2.0, 100_000);
        let mut rng = StdRng::seed_from_u64(9);
        let below = (0..100_000)
            .filter(|_| (d.sample(&mut rng) as f64) < 27.3)
            .count();
        assert!(below > 80_000, "below-mean fraction {below}");
    }

    #[test]
    fn constant_distribution() {
        let d = Constant(5);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 5);
        assert_eq!(d.mean(), 5.0);
    }

    #[test]
    fn empirical_resamples_support() {
        let d = Empirical::new(vec![1, 1, 1, 10]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!(s == 1 || s == 10);
        }
        assert!((d.mean() - 3.25).abs() < 1e-12);
        assert_eq!(d.max_size(), 10);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empirical_rejects_empty() {
        Empirical::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn with_mean_rejects_impossible_target() {
        PowerLaw::with_mean(100.0, 50);
    }

    #[test]
    fn try_constructors_report_instead_of_panicking() {
        assert!(matches!(
            PowerLaw::try_new(0.0, 100),
            Err(DistError::BadAlpha(_))
        ));
        assert!(matches!(
            PowerLaw::try_new(f64::NAN, 100),
            Err(DistError::BadAlpha(_))
        ));
        assert!(matches!(PowerLaw::try_new(1.0, 0), Err(DistError::ZeroMaxSize)));
        assert!(matches!(
            PowerLaw::try_with_mean(100.0, 50),
            Err(DistError::BadMean { max_size: 50, .. })
        ));
        assert!(matches!(
            PowerLaw::try_with_mean(0.5, 50),
            Err(DistError::BadMean { .. })
        ));
        assert!(matches!(
            LogNormal::try_new(1.0, 0.0, 100),
            Err(DistError::BadSigma(_))
        ));
        assert!(matches!(
            LogNormal::try_with_mean(3.0, -1.0, 100),
            Err(DistError::BadSigma(_))
        ));
        assert!(matches!(Empirical::try_new(vec![]), Err(DistError::EmptySample)));
        // The happy path matches the panicking constructors exactly.
        let a = PowerLaw::new(1.3, 500);
        let b = PowerLaw::try_new(1.3, 500).unwrap();
        assert_eq!(a.alpha(), b.alpha());
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn dist_error_messages_are_actionable() {
        let e = PowerLaw::try_with_mean(100.0, 50).unwrap_err();
        assert!(e.to_string().contains("unreachable"), "{e}");
        let e = Empirical::try_new(vec![]).unwrap_err();
        assert!(e.to_string().contains("needs samples"), "{e}");
    }

    #[test]
    fn powerlaw_cdf_is_consistent_with_pmf() {
        let d = PowerLaw::new(1.4, 200);
        assert_eq!(d.cdf(0), 0.0);
        assert!((d.cdf(200) - 1.0).abs() < 1e-12);
        assert!((d.cdf(500) - 1.0).abs() < 1e-12);
        let mut acc = 0.0;
        for s in 1..=200 {
            acc += d.pmf(s);
            assert!((d.cdf(s) - acc).abs() < 1e-9, "s={s}");
        }
    }
}
