//! Attack and anomaly traffic scenarios.
//!
//! The paper motivates per-flow measurement with intrusion detection
//! ("scanning speeds of worm-infected hosts", §1.1). These generators
//! synthesize the corresponding traffic patterns as 5-tuple-level
//! flows so the detection examples and tests work on realistic
//! structure rather than hand-rolled packet lists.

use crate::packet::{FiveTuple, FlowId, Packet, Trace};
use crate::transform;
use support::rand::{rngs::StdRng, Rng, SeedableRng};

/// A synthesized attack: the packets plus the flow IDs involved.
#[derive(Debug, Clone)]
pub struct AttackTraffic {
    /// Attack packets, in order.
    pub packets: Vec<Packet>,
    /// The flows the attack created.
    pub flows: Vec<FlowId>,
}

/// A volumetric flood: one source hammers one destination/service with
/// `packets` packets — a single elephant flow.
pub fn flood(src_ip: u32, dst_ip: u32, dst_port: u16, packets: u64) -> AttackTraffic {
    let tuple = FiveTuple {
        src_ip,
        dst_ip,
        src_port: 54_321,
        dst_port,
        proto: FiveTuple::TCP,
    };
    let flow = tuple.flow_id();
    AttackTraffic {
        packets: (0..packets).map(|_| Packet { flow, byte_len: 64 }).collect(),
        flows: vec![flow],
    }
}

/// A horizontal port scan: one source probes `ports` ports on one
/// target, `probes_per_port` packets each — many mouse flows from one
/// host, the classic scanner signature.
pub fn port_scan(src_ip: u32, dst_ip: u32, ports: u16, probes_per_port: u64) -> AttackTraffic {
    let mut packets = Vec::with_capacity(ports as usize * probes_per_port as usize);
    let mut flows = Vec::with_capacity(ports as usize);
    for p in 0..ports {
        let tuple = FiveTuple {
            src_ip,
            dst_ip,
            src_port: 40_000,
            dst_port: 1 + p,
            proto: FiveTuple::TCP,
        };
        let flow = tuple.flow_id();
        flows.push(flow);
        for _ in 0..probes_per_port {
            packets.push(Packet { flow, byte_len: 64 });
        }
    }
    AttackTraffic { packets, flows }
}

/// A distributed flood: `sources` hosts each send `packets_per_source`
/// packets at one victim service — many medium flows sharing a
/// destination.
pub fn ddos(
    victim_ip: u32,
    victim_port: u16,
    sources: u32,
    packets_per_source: u64,
    seed: u64,
) -> AttackTraffic {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut packets = Vec::with_capacity(sources as usize * packets_per_source as usize);
    let mut flows = Vec::with_capacity(sources as usize);
    for _ in 0..sources {
        let tuple = FiveTuple {
            src_ip: rng.gen(),
            dst_ip: victim_ip,
            src_port: rng.gen_range(1024..=u16::MAX),
            dst_port: victim_port,
            proto: FiveTuple::UDP,
        };
        let flow = tuple.flow_id();
        flows.push(flow);
        for _ in 0..packets_per_source {
            packets.push(Packet { flow, byte_len: 512 });
        }
    }
    // Interleave sources rather than sending them back-to-back.
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xD0);
    use support::rand::seq::SliceRandom;
    packets.shuffle(&mut rng2);
    AttackTraffic { packets, flows }
}

/// A cache-thrashing mouse flood: `mice` distinct flows, each sending
/// `1..=max_packets_per_mouse` packets back-to-back before the next
/// mouse starts. Every arrival is a cold miss, so the on-chip cache
/// pays an insert (and, once full, an eviction) per flow while the
/// flows themselves are too small to ever amortize the entry — the
/// worst case for any cache-assisted sketch front-end.
///
/// Flow IDs are guaranteed distinct (tuples are redrawn on the
/// astronomically unlikely hash collision), so `flows.len() == mice`.
pub fn mouse_flood(mice: usize, max_packets_per_mouse: u64, seed: u64) -> AttackTraffic {
    assert!(max_packets_per_mouse >= 1, "mice must send at least 1 packet");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(mice);
    let mut packets = Vec::new();
    let mut flows = Vec::with_capacity(mice);
    while flows.len() < mice {
        let tuple = FiveTuple {
            src_ip: rng.gen(),
            dst_ip: rng.gen(),
            src_port: rng.gen_range(1024..=u16::MAX),
            dst_port: rng.gen_range(1..1024),
            proto: FiveTuple::UDP,
        };
        let flow = tuple.flow_id();
        if !seen.insert(flow) {
            continue;
        }
        flows.push(flow);
        let burst = rng.gen_range(1..=max_packets_per_mouse);
        packets.extend((0..burst).map(|_| Packet { flow, byte_len: 64 }));
    }
    AttackTraffic { packets, flows }
}

/// Epoch-rotating flow churn: `epochs` rounds, each with a fresh
/// (disjoint) set of `flows_per_epoch` flows sending exactly
/// `packets_per_flow` packets, shuffled within the epoch. The working
/// set the cache just learned is invalidated at every boundary, so hit
/// rate is capped by the intra-epoch reuse alone.
///
/// Flow sets are disjoint across epochs by construction, and each
/// epoch occupies exactly `flows_per_epoch * packets_per_flow`
/// consecutive trace positions.
pub fn flow_churn(
    epochs: usize,
    flows_per_epoch: usize,
    packets_per_flow: u64,
    seed: u64,
) -> AttackTraffic {
    assert!(packets_per_flow >= 1, "churn flows must send at least 1 packet");
    use support::rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(epochs * flows_per_epoch);
    let mut packets = Vec::with_capacity(epochs * flows_per_epoch * packets_per_flow as usize);
    let mut flows = Vec::with_capacity(epochs * flows_per_epoch);
    for _ in 0..epochs {
        let mut epoch_packets = Vec::with_capacity(flows_per_epoch * packets_per_flow as usize);
        let mut fresh = 0usize;
        while fresh < flows_per_epoch {
            let tuple = FiveTuple {
                src_ip: rng.gen(),
                dst_ip: rng.gen(),
                src_port: rng.gen_range(1024..=u16::MAX),
                dst_port: 443,
                proto: FiveTuple::TCP,
            };
            let flow = tuple.flow_id();
            if !seen.insert(flow) {
                continue;
            }
            flows.push(flow);
            fresh += 1;
            epoch_packets.extend((0..packets_per_flow).map(|_| Packet { flow, byte_len: 256 }));
        }
        epoch_packets.shuffle(&mut rng);
        packets.extend(epoch_packets);
    }
    AttackTraffic { packets, flows }
}

/// Blend attack traffic into a background trace, spreading the attack
/// packets evenly across the window `[start, end)` (fractions of the
/// background length).
///
/// # Panics
/// Panics unless `0 ≤ start < end ≤ 1`.
pub fn inject(background: &Trace, attack: &AttackTraffic, start: f64, end: f64) -> Trace {
    assert!(
        (0.0..1.0).contains(&start) && end > start && end <= 1.0,
        "injection window must satisfy 0 <= start < end <= 1"
    );
    let n = background.packets.len();
    let w_start = (n as f64 * start) as usize;
    let w_end = (n as f64 * end) as usize;
    let window = (w_end - w_start).max(1);
    let mut packets = Vec::with_capacity(n + attack.packets.len());
    let per_slot = attack.packets.len() as f64 / window as f64;
    let mut injected = 0usize;
    for (i, p) in background.packets.iter().enumerate() {
        if i >= w_start && i < w_end {
            let due = ((i - w_start + 1) as f64 * per_slot) as usize;
            while injected < due.min(attack.packets.len()) {
                packets.push(attack.packets[injected]);
                injected += 1;
            }
        }
        packets.push(*p);
    }
    // Anything left (rounding) goes at the window end.
    packets.extend_from_slice(&attack.packets[injected..]);
    let merged = Trace { packets, num_flows: 0 };
    // Recompute the census.
    let sizes = transform::flow_sizes(&merged);
    Trace {
        num_flows: sizes.len(),
        ..merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, TraceGenerator};

    #[test]
    fn flood_is_one_elephant() {
        let a = flood(1, 2, 80, 5000);
        assert_eq!(a.flows.len(), 1);
        assert_eq!(a.packets.len(), 5000);
        assert!(a.packets.iter().all(|p| p.flow == a.flows[0]));
    }

    #[test]
    fn port_scan_is_many_mice_from_one_source() {
        let a = port_scan(1, 2, 1000, 2);
        assert_eq!(a.flows.len(), 1000);
        assert_eq!(a.packets.len(), 2000);
        let distinct: std::collections::HashSet<_> =
            a.packets.iter().map(|p| p.flow).collect();
        assert_eq!(distinct.len(), 1000);
    }

    #[test]
    fn ddos_has_distinct_sources() {
        let a = ddos(0xC0A80001, 443, 500, 20, 7);
        assert_eq!(a.flows.len(), 500);
        assert_eq!(a.packets.len(), 10_000);
        let distinct: std::collections::HashSet<_> = a.flows.iter().collect();
        assert_eq!(distinct.len(), 500);
    }

    #[test]
    fn inject_conserves_and_localizes() {
        let (bg, _) = TraceGenerator::new(SynthConfig::small()).generate();
        let attack = flood(9, 9, 80, 3000);
        let mixed = inject(&bg, &attack, 0.25, 0.5);
        assert_eq!(mixed.packets.len(), bg.packets.len() + 3000);
        assert_eq!(mixed.num_flows, bg.num_flows + 1);
        // Attack packets live inside (a slightly padded) window.
        let positions: Vec<usize> = mixed
            .packets
            .iter()
            .enumerate()
            .filter(|(_, p)| p.flow == attack.flows[0])
            .map(|(i, _)| i)
            .collect();
        let n = mixed.packets.len() as f64;
        let lo = *positions.first().expect("attack present") as f64 / n;
        let hi = *positions.last().expect("attack present") as f64 / n;
        assert!(lo >= 0.2, "first attack packet at {lo}");
        assert!(hi <= 0.55, "last attack packet at {hi}");
    }

    #[test]
    fn mouse_flood_is_all_distinct_small_flows() {
        let a = mouse_flood(3_000, 2, 5);
        assert_eq!(a.flows.len(), 3_000);
        let distinct: std::collections::HashSet<_> = a.flows.iter().collect();
        assert_eq!(distinct.len(), 3_000);
        // Sizes bounded by the cap; per-mouse packets are contiguous.
        let mut sizes: std::collections::HashMap<FlowId, u64> = Default::default();
        for p in &a.packets {
            *sizes.entry(p.flow).or_default() += 1;
        }
        assert!(sizes.values().all(|&s| (1..=2).contains(&s)));
        let mut prev = None;
        let mut seen = std::collections::HashSet::new();
        for p in &a.packets {
            if prev != Some(p.flow) {
                assert!(seen.insert(p.flow), "mouse {} split into two runs", p.flow);
                prev = Some(p.flow);
            }
        }
    }

    #[test]
    fn flow_churn_rotates_disjoint_epochs() {
        let epochs = 5;
        let per = 200usize;
        let ppf = 4u64;
        let a = flow_churn(epochs, per, ppf, 9);
        assert_eq!(a.flows.len(), epochs * per);
        assert_eq!(a.packets.len(), epochs * per * ppf as usize);
        let distinct: std::collections::HashSet<_> = a.flows.iter().collect();
        assert_eq!(distinct.len(), epochs * per, "epoch flow sets must be disjoint");
        // Every epoch segment only contains its own epoch's flows.
        let seg = per * ppf as usize;
        for e in 0..epochs {
            let expected: std::collections::HashSet<_> =
                a.flows[e * per..(e + 1) * per].iter().collect();
            for p in &a.packets[e * seg..(e + 1) * seg] {
                assert!(expected.contains(&p.flow), "epoch {e} leaked a flow");
            }
        }
    }

    #[test]
    #[should_panic(expected = "injection window")]
    fn inject_rejects_bad_window() {
        let (bg, _) = TraceGenerator::new(SynthConfig::small()).generate();
        inject(&bg, &flood(1, 2, 80, 10), 0.8, 0.5);
    }
}
