//! Attack and anomaly traffic scenarios.
//!
//! The paper motivates per-flow measurement with intrusion detection
//! ("scanning speeds of worm-infected hosts", §1.1). These generators
//! synthesize the corresponding traffic patterns as 5-tuple-level
//! flows so the detection examples and tests work on realistic
//! structure rather than hand-rolled packet lists.

use crate::packet::{FiveTuple, FlowId, Packet, Trace};
use crate::transform;
use support::rand::{rngs::StdRng, Rng, SeedableRng};

/// A synthesized attack: the packets plus the flow IDs involved.
#[derive(Debug, Clone)]
pub struct AttackTraffic {
    /// Attack packets, in order.
    pub packets: Vec<Packet>,
    /// The flows the attack created.
    pub flows: Vec<FlowId>,
}

/// A volumetric flood: one source hammers one destination/service with
/// `packets` packets — a single elephant flow.
pub fn flood(src_ip: u32, dst_ip: u32, dst_port: u16, packets: u64) -> AttackTraffic {
    let tuple = FiveTuple {
        src_ip,
        dst_ip,
        src_port: 54_321,
        dst_port,
        proto: FiveTuple::TCP,
    };
    let flow = tuple.flow_id();
    AttackTraffic {
        packets: (0..packets).map(|_| Packet { flow, byte_len: 64 }).collect(),
        flows: vec![flow],
    }
}

/// A horizontal port scan: one source probes `ports` ports on one
/// target, `probes_per_port` packets each — many mouse flows from one
/// host, the classic scanner signature.
pub fn port_scan(src_ip: u32, dst_ip: u32, ports: u16, probes_per_port: u64) -> AttackTraffic {
    let mut packets = Vec::with_capacity(ports as usize * probes_per_port as usize);
    let mut flows = Vec::with_capacity(ports as usize);
    for p in 0..ports {
        let tuple = FiveTuple {
            src_ip,
            dst_ip,
            src_port: 40_000,
            dst_port: 1 + p,
            proto: FiveTuple::TCP,
        };
        let flow = tuple.flow_id();
        flows.push(flow);
        for _ in 0..probes_per_port {
            packets.push(Packet { flow, byte_len: 64 });
        }
    }
    AttackTraffic { packets, flows }
}

/// A distributed flood: `sources` hosts each send `packets_per_source`
/// packets at one victim service — many medium flows sharing a
/// destination.
pub fn ddos(
    victim_ip: u32,
    victim_port: u16,
    sources: u32,
    packets_per_source: u64,
    seed: u64,
) -> AttackTraffic {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut packets = Vec::with_capacity(sources as usize * packets_per_source as usize);
    let mut flows = Vec::with_capacity(sources as usize);
    for _ in 0..sources {
        let tuple = FiveTuple {
            src_ip: rng.gen(),
            dst_ip: victim_ip,
            src_port: rng.gen_range(1024..=u16::MAX),
            dst_port: victim_port,
            proto: FiveTuple::UDP,
        };
        let flow = tuple.flow_id();
        flows.push(flow);
        for _ in 0..packets_per_source {
            packets.push(Packet { flow, byte_len: 512 });
        }
    }
    // Interleave sources rather than sending them back-to-back.
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xD0);
    use support::rand::seq::SliceRandom;
    packets.shuffle(&mut rng2);
    AttackTraffic { packets, flows }
}

/// Blend attack traffic into a background trace, spreading the attack
/// packets evenly across the window `[start, end)` (fractions of the
/// background length).
///
/// # Panics
/// Panics unless `0 ≤ start < end ≤ 1`.
pub fn inject(background: &Trace, attack: &AttackTraffic, start: f64, end: f64) -> Trace {
    assert!(
        (0.0..1.0).contains(&start) && end > start && end <= 1.0,
        "injection window must satisfy 0 <= start < end <= 1"
    );
    let n = background.packets.len();
    let w_start = (n as f64 * start) as usize;
    let w_end = (n as f64 * end) as usize;
    let window = (w_end - w_start).max(1);
    let mut packets = Vec::with_capacity(n + attack.packets.len());
    let per_slot = attack.packets.len() as f64 / window as f64;
    let mut injected = 0usize;
    for (i, p) in background.packets.iter().enumerate() {
        if i >= w_start && i < w_end {
            let due = ((i - w_start + 1) as f64 * per_slot) as usize;
            while injected < due.min(attack.packets.len()) {
                packets.push(attack.packets[injected]);
                injected += 1;
            }
        }
        packets.push(*p);
    }
    // Anything left (rounding) goes at the window end.
    packets.extend_from_slice(&attack.packets[injected..]);
    let merged = Trace { packets, num_flows: 0 };
    // Recompute the census.
    let sizes = transform::flow_sizes(&merged);
    Trace {
        num_flows: sizes.len(),
        ..merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, TraceGenerator};

    #[test]
    fn flood_is_one_elephant() {
        let a = flood(1, 2, 80, 5000);
        assert_eq!(a.flows.len(), 1);
        assert_eq!(a.packets.len(), 5000);
        assert!(a.packets.iter().all(|p| p.flow == a.flows[0]));
    }

    #[test]
    fn port_scan_is_many_mice_from_one_source() {
        let a = port_scan(1, 2, 1000, 2);
        assert_eq!(a.flows.len(), 1000);
        assert_eq!(a.packets.len(), 2000);
        let distinct: std::collections::HashSet<_> =
            a.packets.iter().map(|p| p.flow).collect();
        assert_eq!(distinct.len(), 1000);
    }

    #[test]
    fn ddos_has_distinct_sources() {
        let a = ddos(0xC0A80001, 443, 500, 20, 7);
        assert_eq!(a.flows.len(), 500);
        assert_eq!(a.packets.len(), 10_000);
        let distinct: std::collections::HashSet<_> = a.flows.iter().collect();
        assert_eq!(distinct.len(), 500);
    }

    #[test]
    fn inject_conserves_and_localizes() {
        let (bg, _) = TraceGenerator::new(SynthConfig::small()).generate();
        let attack = flood(9, 9, 80, 3000);
        let mixed = inject(&bg, &attack, 0.25, 0.5);
        assert_eq!(mixed.packets.len(), bg.packets.len() + 3000);
        assert_eq!(mixed.num_flows, bg.num_flows + 1);
        // Attack packets live inside (a slightly padded) window.
        let positions: Vec<usize> = mixed
            .packets
            .iter()
            .enumerate()
            .filter(|(_, p)| p.flow == attack.flows[0])
            .map(|(i, _)| i)
            .collect();
        let n = mixed.packets.len() as f64;
        let lo = *positions.first().expect("attack present") as f64 / n;
        let hi = *positions.last().expect("attack present") as f64 / n;
        assert!(lo >= 0.2, "first attack packet at {lo}");
        assert!(hi <= 0.55, "last attack packet at {hi}");
    }

    #[test]
    #[should_panic(expected = "injection window")]
    fn inject_rejects_bad_window() {
        let (bg, _) = TraceGenerator::new(SynthConfig::small()).generate();
        inject(&bg, &flood(1, 2, 80, 10), 0.8, 0.5);
    }
}
