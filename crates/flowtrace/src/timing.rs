//! Packet arrival-time models.
//!
//! The paper's analysis assumes packets arrive back-to-back at line
//! rate; real links are burstier. This module generates arrival
//! timestamp sequences under three standard models so the timing
//! experiments (memsim's pipeline) can quantify how much burstiness a
//! cache-assisted front end absorbs:
//!
//! * [`ArrivalProcess::Constant`] — fixed spacing (the paper's model);
//! * [`ArrivalProcess::Poisson`] — exponential inter-arrivals at the
//!   same average rate;
//! * [`ArrivalProcess::OnOff`] — the classic bursty on/off source:
//!   line-rate bursts separated by idle gaps, same average rate.

use support::rand::{rngs::StdRng, Rng, SeedableRng};

/// An arrival process with a configurable average rate.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// Fixed inter-arrival spacing of `spacing_ns`.
    Constant {
        /// Nanoseconds between consecutive packets.
        spacing_ns: f64,
    },
    /// Poisson arrivals with mean inter-arrival `mean_ns`.
    Poisson {
        /// Mean inter-arrival time (ns).
        mean_ns: f64,
        /// RNG seed.
        seed: u64,
    },
    /// On/off bursts: `burst_len` packets back-to-back at `on_ns`
    /// spacing, then an idle gap sized so the long-run average spacing
    /// is `mean_ns`.
    OnOff {
        /// Average inter-arrival time (ns).
        mean_ns: f64,
        /// Spacing inside a burst (ns); must be ≤ `mean_ns`.
        on_ns: f64,
        /// Packets per burst.
        burst_len: usize,
    },
}

impl ArrivalProcess {
    /// The long-run average inter-arrival spacing.
    pub fn mean_spacing_ns(&self) -> f64 {
        match *self {
            ArrivalProcess::Constant { spacing_ns } => spacing_ns,
            ArrivalProcess::Poisson { mean_ns, .. } => mean_ns,
            ArrivalProcess::OnOff { mean_ns, .. } => mean_ns,
        }
    }

    /// Generate `n` non-decreasing arrival timestamps (ns, from 0).
    ///
    /// # Panics
    /// Panics on non-positive rates or an on/off configuration whose
    /// burst spacing exceeds the average spacing.
    pub fn timestamps(&self, n: usize) -> Vec<f64> {
        match *self {
            ArrivalProcess::Constant { spacing_ns } => {
                assert!(spacing_ns > 0.0, "spacing must be positive");
                (0..n).map(|i| i as f64 * spacing_ns).collect()
            }
            ArrivalProcess::Poisson { mean_ns, seed } => {
                assert!(mean_ns > 0.0, "mean spacing must be positive");
                let mut rng = StdRng::seed_from_u64(seed);
                let mut t = 0.0f64;
                (0..n)
                    .map(|_| {
                        // Exponential inter-arrival via inverse CDF.
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        t += -mean_ns * u.ln();
                        t
                    })
                    .collect()
            }
            ArrivalProcess::OnOff { mean_ns, on_ns, burst_len } => {
                assert!(on_ns > 0.0 && mean_ns >= on_ns, "burst spacing must not exceed the mean");
                assert!(burst_len >= 1, "bursts need at least one packet");
                // Each burst of B packets spans (B−1)·on_ns; to average
                // mean_ns per packet, each burst period is B·mean_ns.
                let period = burst_len as f64 * mean_ns;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let burst = i / burst_len;
                    let within = i % burst_len;
                    out.push(burst as f64 * period + within as f64 * on_ns);
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap(ts: &[f64]) -> f64 {
        ts.last().expect("non-empty") / (ts.len() as f64 - 1.0)
    }

    #[test]
    fn constant_spacing() {
        let ts = ArrivalProcess::Constant { spacing_ns: 5.0 }.timestamps(100);
        assert_eq!(ts.len(), 100);
        for (i, &t) in ts.iter().enumerate() {
            assert_eq!(t, i as f64 * 5.0);
        }
    }

    #[test]
    fn poisson_hits_average_rate() {
        let ts = ArrivalProcess::Poisson { mean_ns: 10.0, seed: 1 }.timestamps(200_000);
        let mean = mean_gap(&ts);
        assert!((mean - 10.0).abs() < 0.2, "mean gap = {mean}");
        assert!(ts.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn onoff_hits_average_rate_with_bursts() {
        let p = ArrivalProcess::OnOff { mean_ns: 10.0, on_ns: 1.0, burst_len: 32 };
        let ts = p.timestamps(32 * 1000);
        let mean = mean_gap(&ts);
        assert!((mean - 10.0).abs() < 0.5, "mean gap = {mean}");
        // Inside a burst the spacing is 1 ns.
        assert!((ts[1] - ts[0] - 1.0).abs() < 1e-9);
        // Between bursts there is a real gap.
        let gap = ts[32] - ts[31];
        assert!(gap > 10.0, "inter-burst gap = {gap}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ArrivalProcess::Poisson { mean_ns: 3.0, seed: 9 }.timestamps(100);
        let b = ArrivalProcess::Poisson { mean_ns: 3.0, seed: 9 }.timestamps(100);
        let c = ArrivalProcess::Poisson { mean_ns: 3.0, seed: 10 }.timestamps(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn onoff_rejects_oversubscribed_burst() {
        ArrivalProcess::OnOff { mean_ns: 1.0, on_ns: 2.0, burst_len: 4 }.timestamps(1);
    }
}
