//! # flowtrace — packet/flow model and traces for CAESAR experiments
//!
//! The paper evaluates on a real 10 Gbps backbone trace with
//! `n = 27,720,011` packets forming `Q = 1,014,601` flows whose sizes
//! follow a heavy-tailed distribution (Fig. 3), with more than 92% of
//! flows below the average size (§4.2). We do not have that trace, so
//! this crate builds the closest synthetic equivalent plus the tooling a
//! user with a real capture needs:
//!
//! * [`packet`] — [`FiveTuple`], [`Packet`], [`Trace`];
//! * [`dist`] — truncated power-law (Zipf-like) flow-size sampler with
//!   analytic calibration of the tail exponent to a target mean;
//! * [`synth`] — [`synth::TraceGenerator`]: heavy-tailed synthetic
//!   traces with uniform packet interleaving (the paper's arrival
//!   assumption) or per-flow bursts;
//! * [`pcap`] — a from-scratch libpcap file reader/writer (Ethernet →
//!   IPv4 → TCP/UDP/ICMP → 5-tuple) so real captures can be replayed;
//! * [`stats`] — flow-size histograms, CCDF, tail fractions (Fig. 3);
//! * [`groundtruth`] — exact per-flow counts used as the oracle;
//! * [`zoo`] — the workload zoo: realistic and adversarial trace
//!   families (CDN, KV, flat, bursty, mouse flood, single elephant,
//!   flow churn, CAIDA-shaped fit) behind one [`zoo::WorkloadGen`]
//!   interface for per-workload accuracy/stress sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod dist;
pub mod groundtruth;
pub mod packet;
pub mod pcap;
pub mod scenarios;
pub mod stats;
pub mod synth;
pub mod timing;
pub mod transform;
pub mod zoo;

pub use groundtruth::ExactCounter;
pub use packet::{FiveTuple, FlowId, Packet, Trace};
