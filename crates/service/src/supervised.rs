//! The supervised measurement tap: a detached-thread engine wired to
//! the aggregator push protocol.
//!
//! [`SupervisedTap`] owns a [`caesar::ThreadedCaesar`] — the online
//! runtime whose shard workers are real OS threads under heartbeat
//! supervision — and keeps the aggregator's cluster view current with
//! the cheapest correct push each time [`SupervisedTap::sync`] runs:
//!
//! * the first sync is a **full push** ([`SketchPayload`], O(L) on the
//!   wire) — the aggregator has never seen this tap;
//! * every later sync diffs the engine's export against the last
//!   state the aggregator acked and pushes the **delta**
//!   ([`SketchDelta`], O(changed blocks));
//! * an idle epoch (empty delta) pushes **nothing**;
//! * a [`DeltaPush::Stale`] NACK — the view epoch moved under the tap,
//!   typically because a sibling tap pushed — recovers with
//!   [`MeasurementClient::resync_after_nack`], which re-pushes the
//!   refused delta's **increment only**. Mass the aggregator already
//!   acked is never re-sent, so no NACK/resync interleaving can
//!   double-count a packet.
//!
//! The tap survives what its engine survives: a worker thread that
//! hangs or panics between syncs is failed over by the engine's
//! heartbeat monitor, and the next sync simply ships whatever mass the
//! failover salvaged — the push protocol never sees the fault, only
//! the (exactly accounted) counters. [`SupervisedTap::health`]
//! surfaces the engine's fault ledger so operators can tell a clean
//! tap from one running on respawned workers.

use caesar::{SketchDelta, SketchPayload, ThreadedCaesar};

use crate::client::{DeltaPush, MeasurementClient, PushReceipt, ServiceError, Transport};

/// What one [`SupervisedTap::sync`] did on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOutcome {
    /// First contact: the full sketch was pushed.
    Full(PushReceipt),
    /// The increment since the last ack was pushed as a delta.
    Delta(PushReceipt),
    /// The delta NACKed stale and the increment was re-pushed as a
    /// full frame via [`MeasurementClient::resync_after_nack`].
    Resynced(PushReceipt),
    /// Nothing changed since the last ack; nothing was sent.
    Skipped,
}

impl SyncOutcome {
    /// The server receipt, when a push happened.
    pub fn receipt(&self) -> Option<PushReceipt> {
        match self {
            SyncOutcome::Full(r) | SyncOutcome::Delta(r) | SyncOutcome::Resynced(r) => {
                Some(*r)
            }
            SyncOutcome::Skipped => None,
        }
    }
}

/// A tap's supervision ledger: how much fault history its engine has
/// accumulated, summed across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapHealth {
    /// Worker panics absorbed by in-place respawn.
    pub panics: u64,
    /// Heartbeat failovers (hung workers replaced on fresh rings).
    pub failovers: u64,
    /// Units quarantined across all faults — mass the engine could
    /// not attribute and excluded from its counters.
    pub quarantined: u64,
    /// `true` when every fault's loss accounting is exact (no fault,
    /// or every salvage completed with the worker cell reachable).
    pub exact: bool,
}

impl TapHealth {
    /// `true` when no worker has faulted since the engine started.
    pub fn is_clean(&self) -> bool {
        self.panics == 0 && self.failovers == 0
    }
}

/// A detached-thread measurement engine plus the push-protocol state
/// needed to keep one aggregator's view of it current. See the module
/// docs for the sync strategy.
pub struct SupervisedTap {
    engine: ThreadedCaesar,
    /// The engine export most recently acked by the aggregator — the
    /// diff base for the next delta. `None` until the first sync.
    last_acked: Option<SketchPayload>,
    /// The aggregator view epoch that ack reported.
    acked_epoch: u64,
}

impl SupervisedTap {
    /// Wrap a threaded engine. The engine may already carry traffic;
    /// the first [`SupervisedTap::sync`] ships everything it has seen.
    pub fn new(engine: ThreadedCaesar) -> Self {
        Self { engine, last_acked: None, acked_epoch: 0 }
    }

    /// Offer one packet to the engine.
    pub fn offer(&mut self, flow: u64) {
        self.engine.offer(flow);
    }

    /// Offer a batch of packets to the engine.
    pub fn offer_batch(&mut self, flows: &[u64]) {
        self.engine.offer_batch(flows);
    }

    /// The wrapped engine, for queries and stats.
    pub fn engine(&self) -> &ThreadedCaesar {
        &self.engine
    }

    /// The wrapped engine, mutably (epoch rotation, fault injection in
    /// tests).
    pub fn engine_mut(&mut self) -> &mut ThreadedCaesar {
        &mut self.engine
    }

    /// Unwrap the engine, abandoning the push-protocol state.
    pub fn into_engine(self) -> ThreadedCaesar {
        self.engine
    }

    /// The aggregator view epoch of the most recent ack (0 before the
    /// first sync).
    pub fn acked_epoch(&self) -> u64 {
        self.acked_epoch
    }

    /// Sum the engine's fault ledger across shards.
    pub fn health(&self) -> TapHealth {
        let stats = self.engine.stats();
        let mut panics = 0;
        let mut failovers = 0;
        let mut exact = true;
        for shard in 0..self.engine.shards() {
            let log = self.engine.fault_log(shard);
            panics += log.panics() as u64;
            failovers += log.failovers() as u64;
            exact &= log.is_exact();
        }
        TapHealth { panics, failovers, quarantined: stats.quarantined, exact }
    }

    /// Drain the engine (merge all in-flight mass into its SRAM) and
    /// push whatever changed since the aggregator's last ack, choosing
    /// the cheapest correct frame — see the module docs. Returns what
    /// happened on the wire.
    ///
    /// On any transport error the diff base is left untouched, so the
    /// next sync re-diffs against the last state the aggregator
    /// actually acked and re-carries the unshipped increment.
    pub fn sync<T: Transport>(
        &mut self,
        client: &mut MeasurementClient<T>,
    ) -> Result<SyncOutcome, ServiceError> {
        self.engine.merge_now();
        let cur = self.engine.export_sketch();
        let Some(prev) = &self.last_acked else {
            let receipt = client.push_sketch(&cur)?;
            self.acked_epoch = receipt.epoch;
            self.last_acked = Some(cur);
            return Ok(SyncOutcome::Full(receipt));
        };
        let delta = SketchDelta::between(prev, &cur, self.acked_epoch)
            .map_err(ServiceError::Incompatible)?;
        if delta.is_empty() {
            return Ok(SyncOutcome::Skipped);
        }
        let outcome = match client.push_delta(&delta)? {
            DeltaPush::Accepted(receipt) => SyncOutcome::Delta(receipt),
            DeltaPush::Stale { .. } => {
                SyncOutcome::Resynced(client.resync_after_nack(&delta)?)
            }
        };
        let receipt = outcome.receipt().expect("push outcomes carry a receipt");
        self.acked_epoch = receipt.epoch;
        self.last_acked = Some(cur);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::InProcess;
    use crate::server::MeasurementService;
    use caesar::{CaesarConfig, ConcurrentCaesar, SketchFingerprint};
    use support::testkit::{FaultEvent, FaultInjector, FaultSite};

    fn cfg() -> CaesarConfig {
        CaesarConfig {
            cache_entries: 64,
            entry_capacity: 8,
            counters: 1024,
            k: 3,
            ..CaesarConfig::default()
        }
    }

    fn flows(n: u64, salt: u64) -> Vec<u64> {
        (0..n)
            .map(|i| (i % 61).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt))
            .collect()
    }

    #[test]
    fn tap_syncs_full_then_delta_then_skips_idle() {
        let svc = MeasurementService::new(cfg());
        let fp = SketchFingerprint::of(&cfg());
        let mut client = MeasurementClient::connect(InProcess::new(&svc), &fp).unwrap();
        let mut tap = SupervisedTap::new(ThreadedCaesar::new(cfg(), 2));

        tap.offer_batch(&flows(3_000, 1));
        let first = tap.sync(&mut client).unwrap();
        assert!(matches!(first, SyncOutcome::Full(_)));
        assert_eq!(tap.acked_epoch(), 1);

        tap.offer_batch(&flows(1_000, 2));
        let second = tap.sync(&mut client).unwrap();
        let receipt = match second {
            SyncOutcome::Delta(r) => r,
            other => panic!("second sync must ship a delta, got {other:?}"),
        };
        assert_eq!(receipt.epoch, 2);

        // Nothing new → nothing on the wire, base epoch unchanged.
        assert_eq!(tap.sync(&mut client).unwrap(), SyncOutcome::Skipped);
        assert_eq!(tap.acked_epoch(), 2);

        // The aggregator's view equals the engine's own state.
        let engine = tap.into_engine();
        svc.with_view(|sketch, _| {
            assert_eq!(sketch.sram().snapshot(), engine.sram().snapshot());
            assert_eq!(sketch.sram().total_added(), engine.sram().total_added());
        });
    }

    #[test]
    fn stale_delta_resyncs_without_double_counting() {
        let svc = MeasurementService::new(cfg());
        let fp = SketchFingerprint::of(&cfg());
        let mut client = MeasurementClient::connect(InProcess::new(&svc), &fp).unwrap();
        let mut tap = SupervisedTap::new(ThreadedCaesar::new(cfg(), 2));

        tap.offer_batch(&flows(2_000, 1));
        tap.sync(&mut client).unwrap();

        // A rival tap moves the view epoch between our syncs.
        let rival = ConcurrentCaesar::build(cfg(), 1, &flows(500, 9));
        MeasurementClient::connect(InProcess::new(&svc), &fp)
            .unwrap()
            .push_sketch(&rival.export_sketch())
            .unwrap();

        tap.offer_batch(&flows(1_500, 2));
        let outcome = tap.sync(&mut client).unwrap();
        assert!(
            matches!(outcome, SyncOutcome::Resynced(_)),
            "stale base must resync, got {outcome:?}"
        );

        // Exactly-once: the view equals engine + rival, no acked mass
        // pushed twice.
        let engine = tap.into_engine();
        let mut reference = ConcurrentCaesar::empty(cfg());
        reference
            .merge_sketch(&engine.export_sketch())
            .and_then(|()| reference.merge(&rival))
            .unwrap();
        svc.with_view(|sketch, _| {
            assert_eq!(sketch.sram().snapshot(), reference.sram().snapshot());
            assert_eq!(sketch.sram().total_added(), reference.sram().total_added());
        });
    }

    #[test]
    fn tap_survives_a_worker_panic_between_syncs() {
        let svc = MeasurementService::new(cfg());
        let fp = SketchFingerprint::of(&cfg());
        let mut client = MeasurementClient::connect(InProcess::new(&svc), &fp).unwrap();
        let engine = ThreadedCaesar::new(cfg(), 2).with_injector(FaultInjector::with_events(
            vec![FaultEvent { site: FaultSite::WorkerPanic, shard: 1, at_tick: 2 }],
        ));
        let mut tap = SupervisedTap::new(engine);

        tap.offer_batch(&flows(2_000, 1));
        tap.sync(&mut client).unwrap();
        tap.offer_batch(&flows(2_000, 2));
        tap.sync(&mut client).unwrap();

        let health = tap.health();
        assert!(!health.is_clean(), "the injected panic must be on the ledger");
        assert_eq!(health.panics, 1);
        assert!(health.exact, "panic respawn accounts its loss exactly");

        // Whatever the engine recorded is exactly what the view holds.
        let engine = tap.into_engine();
        svc.with_view(|sketch, _| {
            assert_eq!(sketch.sram().snapshot(), engine.sram().snapshot());
            assert_eq!(sketch.sram().total_added(), engine.sram().total_added());
        });
    }
}
