//! The measurement service wire protocol.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! u32 le  body length N          (N ≤ MAX_FRAME_BYTES)
//! N bytes body = seal(payload)   (support::bytesx seal/unseal)
//! ```
//!
//! The sealed body makes each frame self-validating — truncation,
//! bit-flips and garbage streams are rejected by the checksum before a
//! decoder sees a single field. The payload inside the seal is a
//! tagged message:
//!
//! ```text
//! u8 tag, then tag-specific fields (little-endian throughout)
//! ```
//!
//! Requests: `Hello` (fingerprint handshake), `PushSketch` (a node's
//! [`SketchPayload`]), `PushDelta` (an incremental [`SketchDelta`]
//! against a named view epoch), `Query` (batch of flow IDs),
//! `QueryHealth` (one flow, health-annotated), `Stats`. Responses
//! mirror them, plus a generic `Error` and `DeltaNack` — the typed
//! "your base epoch is stale, full-push instead" answer that keeps
//! delta pushes exactly-once. Estimates cross the wire as
//! `f64::to_bits` so a TCP round-trip is **bit-identical** to an
//! in-process query.

use caesar::{QueryHealth, SketchDelta, SketchFingerprint, SketchPayload};
use support::bytesx::{seal, unseal, ByteReader, PutBytes, SealError};

/// Upper bound on a frame body. A `PushSketch` for one million 64-bit
/// counters is ~8 MB; 64 MB leaves an order of magnitude of headroom
/// while still refusing nonsense lengths before allocating.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Why a frame or message failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The transport failed mid-frame (peer closed, read error).
    Io(String),
    /// The declared body length exceeds [`MAX_FRAME_BYTES`].
    Oversized(u64),
    /// The sealed body failed validation.
    Seal(SealError),
    /// The payload decoded but is not a well-formed message.
    Malformed(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
            ProtoError::Seal(e) => write!(f, "frame body invalid: {e}"),
            ProtoError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e.to_string())
    }
}

impl From<SealError> for ProtoError {
    fn from(e: SealError) -> Self {
        ProtoError::Seal(e)
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Geometry handshake: the client announces its fingerprint; the
    /// server answers with its own so the client can run the typed
    /// [`SketchFingerprint::expect_matches`] check locally.
    Hello(SketchFingerprint),
    /// Push one node's frozen sketch into the cluster view.
    PushSketch(SketchPayload),
    /// Push the increments since the tap's previous push. Applied only
    /// when the delta's `base_epoch` matches the server's current view
    /// epoch; a stale base gets a [`Response::DeltaNack`] instead.
    PushDelta(SketchDelta),
    /// Batch flow-size query against the current epoch snapshot.
    Query(Vec<u64>),
    /// Health-annotated single-flow query.
    QueryHealth(u64),
    /// Cluster view statistics.
    Stats,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Hello`]: the aggregator's own fingerprint.
    HelloAck(SketchFingerprint),
    /// Sketch (full or delta) accepted: the epoch it created, total
    /// sketches merged, and how large the accepted payload was — the
    /// server-measured wire cost, so experiments report what actually
    /// crossed instead of inferring it client-side.
    PushAck {
        /// Cluster-view epoch after this merge (bumps on every push).
        epoch: u64,
        /// Sketches folded into the view so far.
        nodes: u64,
        /// Decoded payload size of the accepted push, in bytes.
        bytes: u64,
    },
    /// A [`Request::PushDelta`] named a base epoch that is not the
    /// server's current one (another tap pushed in between). Nothing
    /// was applied; the tap must fall back to a full push.
    DeltaNack {
        /// The server's current view epoch.
        epoch: u64,
    },
    /// Answer to [`Request::Query`]: clamped default-estimator sizes,
    /// in request order, plus the epoch they were served at.
    Estimates {
        /// Epoch the whole batch was consistently served against.
        epoch: u64,
        /// One estimate per requested flow.
        values: Vec<f64>,
    },
    /// Answer to [`Request::QueryHealth`].
    Health {
        /// Epoch the answer was served at.
        epoch: u64,
        /// The health-annotated estimate.
        health: HealthReport,
    },
    /// Answer to [`Request::Stats`].
    Stats(ClusterStats),
    /// The server refused the request (incompatible sketch, malformed
    /// field); the connection stays usable.
    Error(String),
}

/// Wire form of [`caesar::QueryHealth`] (the `Estimate` is flattened
/// into value + variance bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthReport {
    /// Estimated flow size `x̂`.
    pub estimate: f64,
    /// Model variance of the estimate.
    pub variance: f64,
    /// Array-wide saturating-add events on the merged view.
    pub saturation_events: u64,
    /// How many of the flow's `k` counters sit at the clamp.
    pub saturated_counters: u64,
    /// Ingest-loss fraction folded into confidence.
    pub loss_fraction: f64,
    /// Combined [0, 1] trust score.
    pub confidence: f64,
}

impl HealthReport {
    /// Flatten a [`QueryHealth`] for the wire.
    pub fn of(h: &QueryHealth) -> Self {
        Self {
            estimate: h.estimate.value,
            variance: h.estimate.variance,
            saturation_events: h.saturation_events,
            saturated_counters: h.saturated_counters as u64,
            loss_fraction: h.loss_fraction,
            confidence: h.confidence,
        }
    }

    /// True when any degradation source is present (mirrors
    /// [`QueryHealth::is_degraded`]).
    pub fn is_degraded(&self) -> bool {
        self.saturated_counters > 0 || self.saturation_events > 0 || self.loss_fraction > 0.0
    }
}

/// Aggregate statistics of the cluster view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStats {
    /// Current epoch (number of accepted pushes).
    pub epoch: u64,
    /// Sketches merged so far.
    pub nodes: u64,
    /// Units offered across every merged node.
    pub total_added: u64,
    /// Folded saturation events.
    pub saturation_events: u64,
    /// Folded eviction counts.
    pub evictions: u64,
    /// Shared counters `L` in the view.
    pub counters: u64,
}

const TAG_HELLO: u8 = 0x01;
const TAG_PUSH: u8 = 0x02;
const TAG_QUERY: u8 = 0x03;
const TAG_HEALTH: u8 = 0x04;
const TAG_STATS: u8 = 0x05;
const TAG_PUSH_DELTA: u8 = 0x06;
const TAG_HELLO_ACK: u8 = 0x81;
const TAG_PUSH_ACK: u8 = 0x82;
const TAG_ESTIMATES: u8 = 0x83;
const TAG_HEALTH_RSP: u8 = 0x84;
const TAG_STATS_RSP: u8 = 0x85;
const TAG_DELTA_NACK: u8 = 0x86;
const TAG_ERROR: u8 = 0xFF;

impl Request {
    /// Encode into a raw (unsealed) payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello(fp) => {
                buf.push(TAG_HELLO);
                fp.encode_into(&mut buf);
            }
            Request::PushSketch(p) => {
                buf.push(TAG_PUSH);
                buf.put_slice(&p.encode());
            }
            Request::PushDelta(d) => {
                buf.push(TAG_PUSH_DELTA);
                buf.put_slice(&d.encode());
            }
            Request::Query(flows) => {
                buf.push(TAG_QUERY);
                buf.put_u64_le(flows.len() as u64);
                for &f in flows {
                    buf.put_u64_le(f);
                }
            }
            Request::QueryHealth(flow) => {
                buf.push(TAG_HEALTH);
                buf.put_u64_le(*flow);
            }
            Request::Stats => buf.push(TAG_STATS),
        }
        buf
    }

    /// Decode a payload produced by [`Request::encode`].
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = ByteReader::new(payload);
        let tag = r.get_u8().ok_or(ProtoError::Malformed("empty payload"))?;
        match tag {
            TAG_HELLO => {
                let fp = SketchFingerprint::decode_from(&mut r)
                    .ok_or(ProtoError::Malformed("hello fingerprint"))?;
                expect_drained(&r)?;
                Ok(Request::Hello(fp))
            }
            TAG_PUSH => {
                let rest = r.get_slice(r.remaining()).unwrap_or(&[]);
                let p = SketchPayload::decode(rest)
                    .map_err(|_| ProtoError::Malformed("sketch payload"))?;
                Ok(Request::PushSketch(p))
            }
            TAG_PUSH_DELTA => {
                let rest = r.get_slice(r.remaining()).unwrap_or(&[]);
                let d = SketchDelta::decode(rest)
                    .map_err(|_| ProtoError::Malformed("sketch delta"))?;
                Ok(Request::PushDelta(d))
            }
            TAG_QUERY => {
                let n = r.get_u64_le().ok_or(ProtoError::Malformed("query count"))? as usize;
                if r.remaining() != n.saturating_mul(8) {
                    return Err(ProtoError::Malformed("query flow list"));
                }
                let mut flows = Vec::with_capacity(n);
                for _ in 0..n {
                    flows.push(r.get_u64_le().ok_or(ProtoError::Malformed("query flow"))?);
                }
                Ok(Request::Query(flows))
            }
            TAG_HEALTH => {
                let flow = r.get_u64_le().ok_or(ProtoError::Malformed("health flow"))?;
                expect_drained(&r)?;
                Ok(Request::QueryHealth(flow))
            }
            TAG_STATS => {
                expect_drained(&r)?;
                Ok(Request::Stats)
            }
            _ => Err(ProtoError::Malformed("unknown request tag")),
        }
    }
}

impl Response {
    /// Encode into a raw (unsealed) payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::HelloAck(fp) => {
                buf.push(TAG_HELLO_ACK);
                fp.encode_into(&mut buf);
            }
            Response::PushAck { epoch, nodes, bytes } => {
                buf.push(TAG_PUSH_ACK);
                buf.put_u64_le(*epoch);
                buf.put_u64_le(*nodes);
                buf.put_u64_le(*bytes);
            }
            Response::DeltaNack { epoch } => {
                buf.push(TAG_DELTA_NACK);
                buf.put_u64_le(*epoch);
            }
            Response::Estimates { epoch, values } => {
                buf.push(TAG_ESTIMATES);
                buf.put_u64_le(*epoch);
                buf.put_u64_le(values.len() as u64);
                for &v in values {
                    buf.put_u64_le(v.to_bits());
                }
            }
            Response::Health { epoch, health } => {
                buf.push(TAG_HEALTH_RSP);
                buf.put_u64_le(*epoch);
                buf.put_u64_le(health.estimate.to_bits());
                buf.put_u64_le(health.variance.to_bits());
                buf.put_u64_le(health.saturation_events);
                buf.put_u64_le(health.saturated_counters);
                buf.put_u64_le(health.loss_fraction.to_bits());
                buf.put_u64_le(health.confidence.to_bits());
            }
            Response::Stats(s) => {
                buf.push(TAG_STATS_RSP);
                buf.put_u64_le(s.epoch);
                buf.put_u64_le(s.nodes);
                buf.put_u64_le(s.total_added);
                buf.put_u64_le(s.saturation_events);
                buf.put_u64_le(s.evictions);
                buf.put_u64_le(s.counters);
            }
            Response::Error(msg) => {
                buf.push(TAG_ERROR);
                let bytes = msg.as_bytes();
                buf.put_u64_le(bytes.len() as u64);
                buf.put_slice(bytes);
            }
        }
        buf
    }

    /// Decode a payload produced by [`Response::encode`].
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = ByteReader::new(payload);
        let tag = r.get_u8().ok_or(ProtoError::Malformed("empty payload"))?;
        match tag {
            TAG_HELLO_ACK => {
                let fp = SketchFingerprint::decode_from(&mut r)
                    .ok_or(ProtoError::Malformed("ack fingerprint"))?;
                expect_drained(&r)?;
                Ok(Response::HelloAck(fp))
            }
            TAG_PUSH_ACK => {
                let epoch = r.get_u64_le().ok_or(ProtoError::Malformed("ack epoch"))?;
                let nodes = r.get_u64_le().ok_or(ProtoError::Malformed("ack nodes"))?;
                let bytes = r.get_u64_le().ok_or(ProtoError::Malformed("ack bytes"))?;
                expect_drained(&r)?;
                Ok(Response::PushAck { epoch, nodes, bytes })
            }
            TAG_DELTA_NACK => {
                let epoch = r.get_u64_le().ok_or(ProtoError::Malformed("nack epoch"))?;
                expect_drained(&r)?;
                Ok(Response::DeltaNack { epoch })
            }
            TAG_ESTIMATES => {
                let epoch = r.get_u64_le().ok_or(ProtoError::Malformed("estimates epoch"))?;
                let n =
                    r.get_u64_le().ok_or(ProtoError::Malformed("estimate count"))? as usize;
                if r.remaining() != n.saturating_mul(8) {
                    return Err(ProtoError::Malformed("estimate list"));
                }
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    let bits = r.get_u64_le().ok_or(ProtoError::Malformed("estimate"))?;
                    values.push(f64::from_bits(bits));
                }
                Ok(Response::Estimates { epoch, values })
            }
            TAG_HEALTH_RSP => {
                let mut next =
                    |what| r.get_u64_le().ok_or(ProtoError::Malformed(what));
                let epoch = next("health epoch")?;
                let health = HealthReport {
                    estimate: f64::from_bits(next("health estimate")?),
                    variance: f64::from_bits(next("health variance")?),
                    saturation_events: next("health events")?,
                    saturated_counters: next("health counters")?,
                    loss_fraction: f64::from_bits(next("health loss")?),
                    confidence: f64::from_bits(next("health confidence")?),
                };
                expect_drained(&r)?;
                Ok(Response::Health { epoch, health })
            }
            TAG_STATS_RSP => {
                let mut next =
                    |what| r.get_u64_le().ok_or(ProtoError::Malformed(what));
                let s = ClusterStats {
                    epoch: next("stats epoch")?,
                    nodes: next("stats nodes")?,
                    total_added: next("stats total")?,
                    saturation_events: next("stats events")?,
                    evictions: next("stats evictions")?,
                    counters: next("stats counters")?,
                };
                expect_drained(&r)?;
                Ok(Response::Stats(s))
            }
            TAG_ERROR => {
                let n = r.get_u64_le().ok_or(ProtoError::Malformed("error length"))? as usize;
                let bytes = r.get_slice(n).ok_or(ProtoError::Malformed("error text"))?;
                let msg = String::from_utf8(bytes.to_vec())
                    .map_err(|_| ProtoError::Malformed("error text utf-8"))?;
                expect_drained(&r)?;
                Ok(Response::Error(msg))
            }
            _ => Err(ProtoError::Malformed("unknown response tag")),
        }
    }
}

fn expect_drained(r: &ByteReader<'_>) -> Result<(), ProtoError> {
    if r.remaining() != 0 {
        return Err(ProtoError::Malformed("trailing bytes"));
    }
    Ok(())
}

/// Write one frame: seal `payload` and prefix the body length.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> Result<(), ProtoError> {
    let mut body = payload.to_vec();
    seal(&mut body);
    if body.len() > MAX_FRAME_BYTES {
        return Err(ProtoError::Oversized(body.len() as u64));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Read one frame and return the validated payload (footer stripped).
/// `Ok(None)` on a clean end-of-stream at a frame boundary.
pub fn read_frame(r: &mut impl std::io::Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::Oversized(len as u64));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let payload = unseal(&body)?;
    Ok(Some(payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar::CaesarConfig;

    fn fp() -> SketchFingerprint {
        SketchFingerprint::of(&CaesarConfig::default())
    }

    #[test]
    fn requests_roundtrip() {
        let payload = SketchPayload {
            fingerprint: fp(),
            counters: vec![1, 2, 3],
            total_added: 6,
            saturation_events: 0,
            evictions: 2,
        };
        let delta = SketchDelta {
            fingerprint: fp(),
            base_epoch: 5,
            blocks: vec![(0, vec![3; caesar::DIRTY_BLOCK_COUNTERS])],
            total_added_delta: 3 * caesar::DIRTY_BLOCK_COUNTERS as u64,
            saturation_events_delta: 0,
            evictions_delta: 1,
        };
        for req in [
            Request::Hello(fp()),
            Request::PushSketch(payload),
            Request::PushDelta(delta),
            Request::Query(vec![]),
            Request::Query(vec![7, 8, u64::MAX]),
            Request::QueryHealth(42),
            Request::Stats,
        ] {
            let decoded = Request::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for rsp in [
            Response::HelloAck(fp()),
            Response::PushAck { epoch: 3, nodes: 2, bytes: 16_408 },
            Response::DeltaNack { epoch: 11 },
            Response::Estimates { epoch: 1, values: vec![-0.5, 1024.25, f64::INFINITY] },
            Response::Health {
                epoch: 9,
                health: HealthReport {
                    estimate: 12.5,
                    variance: 3.25,
                    saturation_events: 2,
                    saturated_counters: 1,
                    loss_fraction: 0.125,
                    confidence: 0.75,
                },
            },
            Response::Stats(ClusterStats {
                epoch: 4,
                nodes: 4,
                total_added: 1_000_000,
                saturation_events: 0,
                evictions: 512,
                counters: 23_438,
            }),
            Response::Error("sketch geometry mismatch: k is 3 here, 4 there".into()),
        ] {
            let decoded = Response::decode(&rsp.encode()).unwrap();
            assert_eq!(decoded, rsp);
        }
    }

    #[test]
    fn estimates_survive_the_wire_bit_for_bit() {
        let values = vec![0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1e300];
        let rsp = Response::Estimates { epoch: 0, values: values.clone() };
        match Response::decode(&rsp.encode()).unwrap() {
            Response::Estimates { values: got, .. } => {
                for (a, b) in values.iter().zip(&got) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn frames_roundtrip_and_reject_corruption() {
        let payload = Request::Query(vec![1, 2, 3]).encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = &wire[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(payload.clone()));
        // Clean EOF at the boundary.
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
        // Bit flip inside the body → checksum failure.
        let mut flipped = wire.clone();
        let n = flipped.len();
        flipped[n / 2] ^= 0x10;
        assert!(matches!(
            read_frame(&mut &flipped[..]),
            Err(ProtoError::Seal(SealError::BadChecksum))
        ));
        // Truncated mid-body.
        assert!(matches!(
            read_frame(&mut &wire[..wire.len() - 2]),
            Err(ProtoError::Io(_))
        ));
        // Nonsense length refuses before allocating.
        let huge = u32::MAX.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(matches!(Request::decode(&[]), Err(ProtoError::Malformed(_))));
        assert!(matches!(Request::decode(&[0x42]), Err(ProtoError::Malformed(_))));
        // Trailing garbage after a fixed-size message.
        let mut hello = Request::Hello(fp()).encode();
        hello.push(0);
        assert!(matches!(
            Request::decode(&hello),
            Err(ProtoError::Malformed("trailing bytes"))
        ));
        assert!(matches!(Response::decode(&[0x42]), Err(ProtoError::Malformed(_))));
    }
}
