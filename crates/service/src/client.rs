//! The measurement client: one API over two transports.
//!
//! [`MeasurementClient`] speaks [`crate::proto`] over anything that
//! implements [`Transport`]:
//!
//! * [`InProcess`] — single-threaded, no sockets: requests are
//!   encoded, handed to the service's frame entry point, and the
//!   response decoded. The full codec is exercised, so a passing
//!   in-process test pins the same bytes the TCP path ships.
//! * [`TcpTransport`] — a real `std::net::TcpStream` speaking
//!   length-prefixed sealed frames to a [`crate::TcpServer`].
//!
//! Connecting performs the Hello handshake: the server's fingerprint
//! is checked against the client's expected one with the typed
//! [`SketchFingerprint::expect_matches`], so an incompatible client
//! fails fast with a [`caesar::MergeError`] naming the field instead
//! of pushing sketches that can never merge.

use std::net::{TcpStream, ToSocketAddrs};

use caesar::{MergeError, SketchDelta, SketchFingerprint, SketchPayload};

use crate::proto::{
    read_frame, write_frame, ClusterStats, HealthReport, ProtoError, Request, Response,
};
use crate::server::MeasurementService;

/// Client-side failures.
#[derive(Debug)]
pub enum ServiceError {
    /// Transport or codec failure.
    Proto(ProtoError),
    /// The handshake found an incompatible aggregator.
    Incompatible(MergeError),
    /// The server refused the request (its rendered error message).
    Remote(String),
    /// The server answered with the wrong response variant.
    UnexpectedResponse,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Proto(e) => write!(f, "{e}"),
            ServiceError::Incompatible(e) => write!(f, "incompatible aggregator: {e}"),
            ServiceError::Remote(msg) => write!(f, "server refused: {msg}"),
            ServiceError::UnexpectedResponse => write!(f, "unexpected response variant"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ProtoError> for ServiceError {
    fn from(e: ProtoError) -> Self {
        ServiceError::Proto(e)
    }
}

/// One request/response round trip; how the bytes move is the
/// implementor's business.
pub trait Transport {
    /// Send `request`, wait for and return the response.
    fn round_trip(&mut self, request: &Request) -> Result<Response, ServiceError>;
}

/// In-process transport: drives a [`MeasurementService`] directly
/// through its frame-payload entry point (encode → handle → decode),
/// single-threaded, no sockets.
pub struct InProcess<'a> {
    service: &'a MeasurementService,
}

impl<'a> InProcess<'a> {
    /// Wrap a service.
    pub fn new(service: &'a MeasurementService) -> Self {
        Self { service }
    }
}

impl Transport for InProcess<'_> {
    fn round_trip(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let payload = self.service.handle_payload(&request.encode());
        Ok(Response::decode(&payload)?)
    }
}

/// Real-socket transport: length-prefixed sealed frames over a
/// `TcpStream`.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connect to a [`crate::TcpServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServiceError::Proto(ProtoError::Io(e.to_string())))?;
        // A frame is two small writes (length prefix + body); without
        // this, Nagle + delayed ACK stall every round trip ~80 ms.
        let _ = stream.set_nodelay(true);
        Ok(Self { stream })
    }
}

impl Transport for TcpTransport {
    fn round_trip(&mut self, request: &Request) -> Result<Response, ServiceError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or(ServiceError::Proto(ProtoError::Io("server closed".into())))?;
        Ok(Response::decode(&payload)?)
    }
}

/// A successful push acknowledgement: what the server reported back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushReceipt {
    /// Cluster-view epoch the push created.
    pub epoch: u64,
    /// Sketches folded into the view so far (deltas update an
    /// existing tap's contribution, so they do not bump this).
    pub nodes: u64,
    /// Server-measured decoded payload size, in bytes — the wire cost
    /// experiments chart, reported by the side that actually decoded
    /// it.
    pub bytes: u64,
}

/// Outcome of a [`MeasurementClient::push_delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaPush {
    /// The delta's base epoch matched and it was merged.
    Accepted(PushReceipt),
    /// The view moved on since the delta was diffed; nothing was
    /// applied. Full-push to recover.
    Stale {
        /// The server's current view epoch.
        epoch: u64,
    },
}

/// A handshaken measurement client over any [`Transport`].
pub struct MeasurementClient<T: Transport> {
    transport: T,
    server_fingerprint: SketchFingerprint,
}

impl<T: Transport> MeasurementClient<T> {
    /// Perform the Hello handshake: announce `expected`, receive the
    /// aggregator's fingerprint, and verify compatibility. An
    /// incompatible pairing fails here with the typed field-level
    /// [`MergeError`] — before any sketch bytes move.
    pub fn connect(mut transport: T, expected: &SketchFingerprint) -> Result<Self, ServiceError> {
        let server_fingerprint = match transport.round_trip(&Request::Hello(*expected))? {
            Response::HelloAck(fp) => fp,
            Response::Error(msg) => return Err(ServiceError::Remote(msg)),
            _ => return Err(ServiceError::UnexpectedResponse),
        };
        expected
            .expect_matches(&server_fingerprint)
            .map_err(ServiceError::Incompatible)?;
        Ok(Self { transport, server_fingerprint })
    }

    /// The aggregator's fingerprint learned during the handshake.
    pub fn server_fingerprint(&self) -> SketchFingerprint {
        self.server_fingerprint
    }

    /// Push one node's frozen sketch; returns the server's receipt
    /// (the epoch the merge created, total sketches merged, and the
    /// server-measured payload size).
    pub fn push_sketch(&mut self, sketch: &SketchPayload) -> Result<PushReceipt, ServiceError> {
        match self.transport.round_trip(&Request::PushSketch(sketch.clone()))? {
            Response::PushAck { epoch, nodes, bytes } => {
                Ok(PushReceipt { epoch, nodes, bytes })
            }
            Response::Error(msg) => Err(ServiceError::Remote(msg)),
            _ => Err(ServiceError::UnexpectedResponse),
        }
    }

    /// Push the increments since this tap's previous push. The server
    /// applies the delta only when its view epoch still equals the
    /// delta's `base_epoch`; otherwise nothing is applied and
    /// [`DeltaPush::Stale`] carries the current epoch — the tap
    /// recovers by falling back to [`MeasurementClient::push_sketch`].
    ///
    /// The recovery push must carry the tap's **unacked increment**,
    /// not its cumulative sketch: payload merges are additive, so
    /// re-pushing mass the view already acked would double-count it.
    pub fn push_delta(&mut self, delta: &SketchDelta) -> Result<DeltaPush, ServiceError> {
        match self.transport.round_trip(&Request::PushDelta(delta.clone()))? {
            Response::PushAck { epoch, nodes, bytes } => {
                Ok(DeltaPush::Accepted(PushReceipt { epoch, nodes, bytes }))
            }
            Response::DeltaNack { epoch } => Ok(DeltaPush::Stale { epoch }),
            Response::Error(msg) => Err(ServiceError::Remote(msg)),
            _ => Err(ServiceError::UnexpectedResponse),
        }
    }

    /// Recover from a [`DeltaPush::Stale`] NACK: re-push the refused
    /// delta's increment as a full [`SketchPayload`] frame, which the
    /// server applies unconditionally (full pushes carry no base
    /// epoch).
    ///
    /// The frame is built with
    /// [`SketchDelta::to_increment_payload`], so it carries **only
    /// the unacked increment** — never the tap's cumulative sketch.
    /// A NACK means the view's epoch moved on, not that the increment
    /// landed; re-pushing the cumulative sketch after a NACK would
    /// add every previously-acked epoch a second time. This method
    /// makes the NACK → resync cycle double-count-proof by
    /// construction: whatever mass the refused delta described enters
    /// the view exactly once.
    pub fn resync_after_nack(
        &mut self,
        delta: &SketchDelta,
    ) -> Result<PushReceipt, ServiceError> {
        self.push_sketch(&delta.to_increment_payload())
    }

    /// Batch flow-size query; returns the serving epoch and one
    /// clamped default-estimator size per flow, in request order.
    pub fn query(&mut self, flows: &[u64]) -> Result<(u64, Vec<f64>), ServiceError> {
        match self.transport.round_trip(&Request::Query(flows.to_vec()))? {
            Response::Estimates { epoch, values } => Ok((epoch, values)),
            Response::Error(msg) => Err(ServiceError::Remote(msg)),
            _ => Err(ServiceError::UnexpectedResponse),
        }
    }

    /// Health-annotated single-flow query.
    pub fn query_health(&mut self, flow: u64) -> Result<(u64, HealthReport), ServiceError> {
        match self.transport.round_trip(&Request::QueryHealth(flow))? {
            Response::Health { epoch, health } => Ok((epoch, health)),
            Response::Error(msg) => Err(ServiceError::Remote(msg)),
            _ => Err(ServiceError::UnexpectedResponse),
        }
    }

    /// Cluster view statistics.
    pub fn stats(&mut self) -> Result<ClusterStats, ServiceError> {
        match self.transport.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(msg) => Err(ServiceError::Remote(msg)),
            _ => Err(ServiceError::UnexpectedResponse),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::TcpServer;
    use caesar::{CaesarConfig, ConcurrentCaesar};
    use std::sync::Arc;

    fn cfg() -> CaesarConfig {
        CaesarConfig {
            cache_entries: 64,
            entry_capacity: 16,
            counters: 1024,
            k: 3,
            ..CaesarConfig::default()
        }
    }

    fn flows(n: u64, salt: u64) -> Vec<u64> {
        (0..n)
            .map(|i| (i % 50).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt))
            .collect()
    }

    #[test]
    fn in_process_push_then_query() {
        let svc = MeasurementService::new(cfg());
        let node = ConcurrentCaesar::build(cfg(), 2, &flows(5_000, 1));
        let mut client =
            MeasurementClient::connect(InProcess::new(&svc), &node.fingerprint()).unwrap();
        let payload = node.export_sketch();
        let receipt = client.push_sketch(&payload).unwrap();
        assert_eq!((receipt.epoch, receipt.nodes), (1, 1));
        assert_eq!(receipt.bytes, payload.encoded_len() as u64);
        let targets: Vec<u64> = flows(50, 1);
        let (qe, values) = client.query(&targets).unwrap();
        assert_eq!(qe, 1);
        // The service view now equals the node's own sketch, so the
        // served estimates are bit-identical to local queries.
        for (flow, served) in targets.iter().zip(&values) {
            assert_eq!(served.to_bits(), node.query(*flow).to_bits());
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.total_added, 5_000);
        assert_eq!(stats.nodes, 1);
    }

    #[test]
    fn handshake_rejects_incompatible_client_with_typed_error() {
        let svc = MeasurementService::new(cfg());
        let wrong = SketchFingerprint::of(&CaesarConfig { k: 4, ..cfg() });
        match MeasurementClient::connect(InProcess::new(&svc), &wrong) {
            Err(ServiceError::Incompatible(MergeError::Geometry { field: "k", .. })) => {}
            Err(other) => panic!("expected typed k mismatch, got {other:?}"),
            Ok(_) => panic!("incompatible handshake must not succeed"),
        }
    }

    #[test]
    fn loopback_tcp_matches_in_process_bit_for_bit() {
        let svc = Arc::new(MeasurementService::new(cfg()));
        let server = TcpServer::spawn(Arc::clone(&svc), "127.0.0.1:0").unwrap();

        let node_a = ConcurrentCaesar::build(cfg(), 1, &flows(3_000, 7));
        let node_b = ConcurrentCaesar::build(cfg(), 4, &flows(2_000, 99));
        let fp = node_a.fingerprint();

        let tcp = TcpTransport::connect(server.addr()).unwrap();
        let mut client = MeasurementClient::connect(tcp, &fp).unwrap();
        client.push_sketch(&node_a.export_sketch()).unwrap();
        let receipt = client.push_sketch(&node_b.export_sketch()).unwrap();
        assert_eq!((receipt.epoch, receipt.nodes), (2, 2));

        let targets: Vec<u64> = flows(50, 7).into_iter().chain(flows(50, 99)).collect();
        let (_, over_tcp) = client.query(&targets).unwrap();
        let mut local = MeasurementClient::connect(InProcess::new(&svc), &fp).unwrap();
        let (_, in_process) = local.query(&targets).unwrap();
        for (a, b) in over_tcp.iter().zip(&in_process) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let (he, health) = client.query_health(targets[0]).unwrap();
        assert_eq!(he, 2);
        assert!(!health.is_degraded());

        server.stop();
    }

    #[test]
    fn delta_pushes_apply_or_nack_on_stale_base() {
        let svc = Arc::new(MeasurementService::new(cfg()));
        let server = TcpServer::spawn(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let fp = SketchFingerprint::of(&cfg());
        let mut tap =
            MeasurementClient::connect(TcpTransport::connect(server.addr()).unwrap(), &fp)
                .unwrap();

        // Epoch 0 → 1: the tap's first (full) push.
        let mut node = ConcurrentCaesar::empty(cfg());
        node.merge(&ConcurrentCaesar::build(cfg(), 1, &flows(2_000, 3))).unwrap();
        let mut prev = node.export_sketch();
        let receipt = tap.push_sketch(&prev).unwrap();
        assert_eq!(receipt.epoch, 1);

        // Epoch 1 → 2: a low-churn epoch (one hot flow touches only
        // k counters), diffed against the epoch the tap just observed.
        node.merge(&ConcurrentCaesar::build(cfg(), 1, &[0xF00Du64; 1_000])).unwrap();
        let cur = node.export_sketch();
        let delta = SketchDelta::between(&prev, &cur, receipt.epoch).unwrap();
        let accepted = match tap.push_delta(&delta).unwrap() {
            DeltaPush::Accepted(r) => r,
            other => panic!("fresh base must apply, got {other:?}"),
        };
        assert_eq!(accepted.epoch, 2);
        assert_eq!(accepted.nodes, 1, "a delta is not a new node");
        assert_eq!(accepted.bytes, delta.encoded_len() as u64);
        assert!(
            accepted.bytes < prev.encoded_len() as u64,
            "delta must undercut the full payload it replaces"
        );
        prev = cur;

        // Another tap's full push moves the view to epoch 3 ...
        let mut other =
            MeasurementClient::connect(InProcess::new(&svc), &fp).unwrap();
        other
            .push_sketch(&ConcurrentCaesar::build(cfg(), 2, &flows(500, 9)).export_sketch())
            .unwrap();

        // ... so the tap's next delta (diffed against epoch 2) is
        // stale: typed NACK, nothing applied, a full push recovers.
        let increment = ConcurrentCaesar::build(cfg(), 1, &flows(700, 11));
        node.merge(&increment).unwrap();
        let cur = node.export_sketch();
        let stale = SketchDelta::between(&prev, &cur, accepted.epoch).unwrap();
        let before = svc.with_view(|sketch, _| sketch.sram().total_added());
        match tap.push_delta(&stale).unwrap() {
            DeltaPush::Stale { epoch } => assert_eq!(epoch, 3),
            other => panic!("stale base must NACK, got {other:?}"),
        }
        assert_eq!(
            svc.with_view(|sketch, _| sketch.sram().total_added()),
            before,
            "a NACKed delta leaves the view untouched"
        );
        // The recovery full-push carries the tap's unacked increment
        // (payload merges are additive — re-pushing acked mass would
        // double-count it).
        let receipt = tap.push_sketch(&increment.export_sketch()).unwrap();
        assert_eq!(receipt.epoch, 4);
        server.stop();
    }

    #[test]
    fn nack_resync_counts_the_increment_exactly_once() {
        let svc = Arc::new(MeasurementService::new(cfg()));
        let server = TcpServer::spawn(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let fp = SketchFingerprint::of(&cfg());
        let mut tap =
            MeasurementClient::connect(TcpTransport::connect(server.addr()).unwrap(), &fp)
                .unwrap();

        // Full push, then an accepted delta — epochs 1 and 2.
        let mut node = ConcurrentCaesar::empty(cfg());
        node.merge(&ConcurrentCaesar::build(cfg(), 1, &flows(2_000, 3))).unwrap();
        let mut prev = node.export_sketch();
        let receipt = tap.push_sketch(&prev).unwrap();
        node.merge(&ConcurrentCaesar::build(cfg(), 1, &flows(800, 5))).unwrap();
        let cur = node.export_sketch();
        let delta = SketchDelta::between(&prev, &cur, receipt.epoch).unwrap();
        let acked = match tap.push_delta(&delta).unwrap() {
            DeltaPush::Accepted(r) => r,
            other => panic!("fresh base must apply, got {other:?}"),
        };
        prev = cur;

        // A rival tap moves the view epoch under us ...
        let rival = ConcurrentCaesar::build(cfg(), 2, &flows(500, 9));
        MeasurementClient::connect(InProcess::new(&svc), &fp)
            .unwrap()
            .push_sketch(&rival.export_sketch())
            .unwrap();

        // ... so the next delta NACKs, and resync_after_nack recovers.
        node.merge(&ConcurrentCaesar::build(cfg(), 1, &flows(700, 11))).unwrap();
        let cur = node.export_sketch();
        let stale = SketchDelta::between(&prev, &cur, acked.epoch).unwrap();
        match tap.push_delta(&stale).unwrap() {
            DeltaPush::Stale { .. } => {}
            other => panic!("stale base must NACK, got {other:?}"),
        }
        let receipt = tap.resync_after_nack(&stale).unwrap();
        assert_eq!(receipt.bytes, stale.to_increment_payload().encoded_len() as u64);

        // The regression this guards: the recovered view must equal a
        // reference fed each increment exactly once. Re-pushing the
        // tap's cumulative sketch here would leave the view heavier by
        // every acked epoch's mass.
        let mut reference = ConcurrentCaesar::empty(cfg());
        reference.merge(&node).unwrap();
        reference.merge(&rival).unwrap();
        svc.with_view(|sketch, _| {
            assert_eq!(sketch.sram().snapshot(), reference.sram().snapshot());
            assert_eq!(sketch.sram().total_added(), reference.sram().total_added());
            assert_eq!(sketch.sram().saturations(), reference.sram().saturations());
        });
        server.stop();
    }

    #[test]
    fn remote_refusal_keeps_the_connection_usable() {
        let svc = Arc::new(MeasurementService::new(cfg()));
        let server = TcpServer::spawn(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let fp = SketchFingerprint::of(&cfg());
        let mut client =
            MeasurementClient::connect(TcpTransport::connect(server.addr()).unwrap(), &fp)
                .unwrap();
        let foreign =
            ConcurrentCaesar::build(CaesarConfig { seed: 1, ..cfg() }, 1, &[1, 2, 3])
                .export_sketch();
        match client.push_sketch(&foreign) {
            Err(ServiceError::Remote(msg)) => assert!(msg.contains("seed"), "{msg}"),
            other => panic!("expected remote refusal, got {other:?}"),
        }
        // Same connection still answers.
        let stats = client.stats().unwrap();
        assert_eq!(stats.nodes, 0);
        server.stop();
    }
}
