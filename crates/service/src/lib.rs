//! # service — the measurement query service
//!
//! Turns N independent CAESAR measurement nodes into one queryable
//! cluster view (DESIGN.md §4h):
//!
//! * each node builds its sketch locally and exports a
//!   [`caesar::SketchPayload`];
//! * payloads are pushed — in-process or over TCP — to a
//!   [`MeasurementService`] aggregator, which folds them with the
//!   saturation-aware merge ([`caesar::ConcurrentCaesar::merge_sketch`]);
//! * queries are answered against epoch-consistent snapshots of the
//!   merged view, with estimates crossing the wire as `f64` bits so a
//!   TCP answer is bit-identical to an in-process one.
//!
//! The wire format lives in [`proto`] (length-prefixed frames, each
//! body sealed with `support::bytesx`); [`server`] has the aggregator
//! and the `TcpListener` loop; [`client`] has the handshaken client
//! over either transport.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod supervised;

pub use client::{
    DeltaPush, InProcess, MeasurementClient, PushReceipt, ServiceError, TcpTransport, Transport,
};
pub use proto::{
    read_frame, write_frame, ClusterStats, HealthReport, ProtoError, Request, Response,
    MAX_FRAME_BYTES,
};
pub use server::{MeasurementService, TcpServer};
pub use supervised::{SupervisedTap, SyncOutcome, TapHealth};
