//! The aggregator side: a cluster view plus the loops that serve it.
//!
//! [`MeasurementService`] owns the merged [`ConcurrentCaesar`] behind
//! an `RwLock`; pushes take the write lock and bump the **epoch**,
//! queries take the read lock for their whole batch — so every answer
//! is served against one epoch-consistent snapshot of the view (a
//! push can never interleave mid-batch), and carries the epoch it was
//! served at.
//!
//! [`TcpServer`] is the real-socket loop: one `std::net::TcpListener`
//! accept thread, one handler thread per connection, frames in /
//! frames out until the peer closes. The in-process transport in
//! [`crate::client`] drives the exact same [`MeasurementService`]
//! entry point, so both paths answer bit-identically by construction.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;

use caesar::{CaesarConfig, ConcurrentCaesar, SketchFingerprint, SketchPayload};

use crate::proto::{read_frame, write_frame, ClusterStats, HealthReport, ProtoError, Request, Response};

struct View {
    sketch: ConcurrentCaesar,
    /// Bumps on every accepted push; every answer names the epoch it
    /// was served at so clients can reason about staleness.
    epoch: u64,
    /// Sketches merged so far.
    nodes: u64,
}

/// The measurement aggregator: merges pushed sketches into a cluster
/// view and answers queries against epoch-consistent snapshots of it.
pub struct MeasurementService {
    view: RwLock<View>,
    fingerprint: SketchFingerprint,
}

impl MeasurementService {
    /// An empty aggregator for the given fleet configuration (the
    /// merge identity — see [`ConcurrentCaesar::empty`]).
    ///
    /// # Panics
    /// Panics on invalid configurations.
    pub fn new(cfg: CaesarConfig) -> Self {
        let sketch = ConcurrentCaesar::empty(cfg);
        let fingerprint = sketch.fingerprint();
        Self {
            view: RwLock::new(View { sketch, epoch: 0, nodes: 0 }),
            fingerprint,
        }
    }

    /// The fingerprint every pushed sketch must match.
    pub fn fingerprint(&self) -> SketchFingerprint {
        self.fingerprint
    }

    /// Handle one decoded request. Infallible by design: refusals
    /// (incompatible sketch) come back as [`Response::Error`] so the
    /// connection survives them.
    pub fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Hello(_) => Response::HelloAck(self.fingerprint),
            Request::PushSketch(payload) => {
                let mut view = self.view.write().expect("view lock");
                match view.sketch.merge_sketch(payload) {
                    Ok(()) => {
                        view.epoch += 1;
                        view.nodes += 1;
                        Response::PushAck {
                            epoch: view.epoch,
                            nodes: view.nodes,
                            bytes: payload.encoded_len() as u64,
                        }
                    }
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::PushDelta(delta) => {
                let mut view = self.view.write().expect("view lock");
                // Optimistic concurrency: the delta was diffed against
                // a specific view epoch; if any other push landed in
                // between, applying it would interleave with state the
                // tap never saw. Refuse typed — the tap full-pushes.
                if delta.base_epoch != view.epoch {
                    return Response::DeltaNack { epoch: view.epoch };
                }
                match view.sketch.merge_delta(delta) {
                    Ok(()) => {
                        // A delta updates an existing tap's
                        // contribution; `nodes` counts sketches, so
                        // only the epoch bumps.
                        view.epoch += 1;
                        Response::PushAck {
                            epoch: view.epoch,
                            nodes: view.nodes,
                            bytes: delta.encoded_len() as u64,
                        }
                    }
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::Query(flows) => {
                let view = self.view.read().expect("view lock");
                Response::Estimates {
                    epoch: view.epoch,
                    values: view.sketch.query_all(flows),
                }
            }
            Request::QueryHealth(flow) => {
                let view = self.view.read().expect("view lock");
                Response::Health {
                    epoch: view.epoch,
                    health: HealthReport::of(&view.sketch.query_health(*flow)),
                }
            }
            Request::Stats => {
                let view = self.view.read().expect("view lock");
                Response::Stats(ClusterStats {
                    epoch: view.epoch,
                    nodes: view.nodes,
                    total_added: view.sketch.sram().total_added(),
                    saturation_events: view.sketch.sram().saturations(),
                    evictions: view.sketch.evictions(),
                    counters: view.sketch.sram().len() as u64,
                })
            }
        }
    }

    /// Frame-level entry point: decode a sealed-and-stripped request
    /// payload, handle it, encode the response payload. Decode
    /// failures become [`Response::Error`] payloads, never a dropped
    /// connection.
    pub fn handle_payload(&self, payload: &[u8]) -> Vec<u8> {
        let response = match Request::decode(payload) {
            Ok(request) => self.handle(&request),
            Err(e) => Response::Error(e.to_string()),
        };
        response.encode()
    }

    /// Convenience for in-process aggregation (no wire): merge a
    /// node's sketch directly. Same semantics as a `PushSketch` frame.
    pub fn push(&self, payload: &SketchPayload) -> Result<(u64, u64), caesar::MergeError> {
        let mut view = self.view.write().expect("view lock");
        view.sketch.merge_sketch(payload)?;
        view.epoch += 1;
        view.nodes += 1;
        Ok((view.epoch, view.nodes))
    }

    /// Run `f` against an epoch-consistent read snapshot of the view.
    pub fn with_view<T>(&self, f: impl FnOnce(&ConcurrentCaesar, u64) -> T) -> T {
        let view = self.view.read().expect("view lock");
        f(&view.sketch, view.epoch)
    }
}

/// A live TCP measurement service: accept loop on its own thread, one
/// handler thread per connection. Drop-safe shutdown via
/// [`TcpServer::stop`].
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `service`.
    pub fn spawn(service: Arc<MeasurementService>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            // Handler threads detach; they end when their peer closes.
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // A frame is two small writes (length prefix + body);
                // with Nagle on, the second queues behind the peer's
                // delayed ACK and every round trip costs ~80 ms.
                let _ = stream.set_nodelay(true);
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    let _ = serve_connection(&service, stream);
                });
            }
        });
        Ok(Self { addr, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address (with the OS-assigned port when spawned on
    /// port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. Connections already
    /// being served finish naturally when their peers close.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Serve one connection: frames in, frames out, until clean EOF or a
/// transport error.
fn serve_connection(service: &MeasurementService, mut stream: TcpStream) -> Result<(), ProtoError> {
    loop {
        let Some(payload) = read_frame(&mut stream)? else {
            return Ok(()); // peer closed between frames
        };
        let response = service.handle_payload(&payload);
        write_frame(&mut stream, &response)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CaesarConfig {
        CaesarConfig {
            cache_entries: 64,
            entry_capacity: 16,
            counters: 1024,
            k: 3,
            ..CaesarConfig::default()
        }
    }

    fn node_sketch(flows: &[u64]) -> SketchPayload {
        ConcurrentCaesar::build(cfg(), 2, flows).export_sketch()
    }

    #[test]
    fn push_bumps_epoch_and_answers_reflect_it() {
        let svc = MeasurementService::new(cfg());
        assert_eq!(svc.handle(&Request::Stats), Response::Stats(ClusterStats {
            epoch: 0,
            nodes: 0,
            total_added: 0,
            saturation_events: 0,
            evictions: 0,
            counters: 1024,
        }));
        let flows: Vec<u64> = (0..100).map(hash_flow).collect();
        let payload = node_sketch(&flows);
        let bytes = payload.encoded_len() as u64;
        let rsp = svc.handle(&Request::PushSketch(payload));
        assert_eq!(rsp, Response::PushAck { epoch: 1, nodes: 1, bytes });
        match svc.handle(&Request::Query(vec![flows[0]])) {
            Response::Estimates { epoch, values } => {
                assert_eq!(epoch, 1);
                assert_eq!(values.len(), 1);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn incompatible_push_is_refused_but_survivable() {
        let svc = MeasurementService::new(cfg());
        let foreign = ConcurrentCaesar::build(
            CaesarConfig { seed: 0xBAD, ..cfg() },
            1,
            &[1, 2, 3],
        )
        .export_sketch();
        match svc.handle(&Request::PushSketch(foreign)) {
            Response::Error(msg) => assert!(msg.contains("seed mismatch"), "{msg}"),
            other => panic!("wrong variant: {other:?}"),
        }
        // The view is untouched and the service keeps answering.
        match svc.handle(&Request::Stats) {
            Response::Stats(s) => assert_eq!((s.epoch, s.nodes, s.total_added), (0, 0, 0)),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn handle_payload_reports_garbage_as_error_response() {
        let svc = MeasurementService::new(cfg());
        let rsp = Response::decode(&svc.handle_payload(b"\xEEgarbage")).unwrap();
        assert!(matches!(rsp, Response::Error(_)));
    }

    fn hash_flow(i: u64) -> u64 {
        // Spread IDs like real flow hashes.
        i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)
    }
}
