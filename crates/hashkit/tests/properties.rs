//! Property tests for the hash toolbox, on the deterministic
//! `support::testkit` harness (see its docs for the replay knobs).

use hashkit::mix::{bucket, mix64};
use hashkit::sha1::Sha1;
use hashkit::{crc32, flowid, murmur, KCounterMap};
use support::rand::Rng;
use support::testkit::{for_each_seed, GenExt};

/// SHA-1 streaming equals one-shot under arbitrary chunking (the
/// padding paths are the classic place such hashes break).
#[test]
fn sha1_chunking_invariance() {
    for_each_seed(|rng| {
        let data = rng.bytes(0..400);
        let cuts = rng.vec_with(0..6, |r| r.gen_range(0usize..400));
        let mut sorted = cuts;
        sorted.push(0);
        sorted.push(data.len());
        sorted.iter_mut().for_each(|c| *c = (*c).min(data.len()));
        sorted.sort_unstable();
        let mut h = Sha1::new();
        for w in sorted.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        assert_eq!(h.finalize(), Sha1::digest(&data));
    });
}

/// CRC-32 incremental == one-shot for any split.
#[test]
fn crc32_incremental() {
    for_each_seed(|rng| {
        let data = rng.bytes(0..300);
        let split = rng.gen_range(0usize..300).min(data.len());
        let st = crc32::update(0xFFFF_FFFF, &data[..split]);
        let st = crc32::update(st, &data[split..]);
        assert_eq!(st ^ 0xFFFF_FFFF, crc32::crc32(&data));
    });
}

/// Murmur3 tail handling: extending the input always changes the
/// 128-bit hash (no absorbing states).
#[test]
fn murmur_extension_changes_hash() {
    for_each_seed(|rng| {
        let data = rng.bytes(0..64);
        let next: u8 = rng.gen();
        let seed: u32 = rng.gen();
        let a = murmur::murmur3_x64_128(&data, seed);
        let mut longer = data.clone();
        longer.push(next);
        let b = murmur::murmur3_x64_128(&longer, seed);
        assert_ne!(a, b);
    });
}

/// The Lemire bucket reduction is always in range and preserves
/// order of the scaled hash.
#[test]
fn bucket_in_range() {
    for_each_seed(|rng| {
        let h: u64 = rng.gen();
        let n = rng.gen_range(1usize..1_000_000);
        assert!(bucket(h, n) < n);
    });
}

/// mix64 is injective on random samples (it is a bijection).
#[test]
fn mix64_no_collisions() {
    for_each_seed(|rng| {
        let n = rng.gen_range(2usize..100);
        let xs: std::collections::HashSet<u64> = (0..n).map(|_| rng.gen()).collect();
        let hashed: std::collections::HashSet<u64> = xs.iter().map(|&x| mix64(x)).collect();
        assert_eq!(hashed.len(), xs.len());
    });
}

/// KCounterMap: distinct, in-range, deterministic for any geometry.
#[test]
fn kmap_invariants() {
    for_each_seed(|rng| {
        let k = rng.gen_range(1usize..10);
        let extra = rng.gen_range(0usize..200);
        let flow: u64 = rng.gen();
        let seed: u64 = rng.gen();
        let l = k + extra;
        let map = KCounterMap::new(k, l, seed);
        let idx = map.indices(flow);
        assert_eq!(idx.len(), k);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k);
        assert!(idx.iter().all(|&i| i < l));
        assert_eq!(idx, map.indices(flow));
    });
}

/// Flow IDs differ whenever any 5-tuple field differs (on random
/// samples; full injectivity is the hash's job).
#[test]
fn flow_id_field_sensitivity() {
    for_each_seed(|rng| {
        let a: (u32, u32, u16, u16, u8) =
            (rng.gen(), rng.gen(), rng.gen(), rng.gen(), rng.gen());
        let b: (u32, u32, u16, u16, u8) =
            (rng.gen(), rng.gen(), rng.gen(), rng.gen(), rng.gen());
        if a == b {
            return; // prop_assume!(a != b)
        }
        let ia = flowid::flow_id(a.0, a.1, a.2, a.3, a.4);
        let ib = flowid::flow_id(b.0, b.1, b.2, b.3, b.4);
        assert_ne!(ia, ib);
    });
}
