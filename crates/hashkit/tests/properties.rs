//! Property tests for the hash toolbox.

use hashkit::mix::{bucket, mix64};
use hashkit::sha1::Sha1;
use hashkit::{crc32, flowid, murmur, KCounterMap};
use proptest::prelude::*;

proptest! {
    /// SHA-1 streaming equals one-shot under arbitrary chunking (the
    /// padding paths are the classic place such hashes break).
    #[test]
    fn sha1_chunking_invariance(
        data in prop::collection::vec(any::<u8>(), 0..400),
        cuts in prop::collection::vec(0usize..400, 0..6),
    ) {
        let mut sorted = cuts.clone();
        sorted.push(0);
        sorted.push(data.len());
        sorted.iter_mut().for_each(|c| *c = (*c).min(data.len()));
        sorted.sort_unstable();
        let mut h = Sha1::new();
        for w in sorted.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    /// CRC-32 incremental == one-shot for any split.
    #[test]
    fn crc32_incremental(data in prop::collection::vec(any::<u8>(), 0..300), split in 0usize..300) {
        let split = split.min(data.len());
        let st = crc32::update(0xFFFF_FFFF, &data[..split]);
        let st = crc32::update(st, &data[split..]);
        prop_assert_eq!(st ^ 0xFFFF_FFFF, crc32::crc32(&data));
    }

    /// Murmur3 tail handling: extending the input always changes the
    /// 128-bit hash (no absorbing states).
    #[test]
    fn murmur_extension_changes_hash(
        data in prop::collection::vec(any::<u8>(), 0..64),
        next in any::<u8>(),
        seed in any::<u32>(),
    ) {
        let a = murmur::murmur3_x64_128(&data, seed);
        let mut longer = data.clone();
        longer.push(next);
        let b = murmur::murmur3_x64_128(&longer, seed);
        prop_assert_ne!(a, b);
    }

    /// The Lemire bucket reduction is always in range and preserves
    /// order of the scaled hash.
    #[test]
    fn bucket_in_range(h in any::<u64>(), n in 1usize..1_000_000) {
        prop_assert!(bucket(h, n) < n);
    }

    /// mix64 is injective on random samples (it is a bijection).
    #[test]
    fn mix64_no_collisions(xs in prop::collection::hash_set(any::<u64>(), 2..100)) {
        let hashed: std::collections::HashSet<u64> = xs.iter().map(|&x| mix64(x)).collect();
        prop_assert_eq!(hashed.len(), xs.len());
    }

    /// KCounterMap: distinct, in-range, deterministic for any geometry.
    #[test]
    fn kmap_invariants(
        k in 1usize..10,
        extra in 0usize..200,
        flow in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let l = k + extra;
        let map = KCounterMap::new(k, l, seed);
        let idx = map.indices(flow);
        prop_assert_eq!(idx.len(), k);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(idx.iter().all(|&i| i < l));
        prop_assert_eq!(idx, map.indices(flow));
    }

    /// Flow IDs differ whenever any 5-tuple field differs (on random
    /// samples; full injectivity is the hash's job).
    #[test]
    fn flow_id_field_sensitivity(
        a in (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), any::<u8>()),
        b in (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), any::<u8>()),
    ) {
        prop_assume!(a != b);
        let ia = flowid::flow_id(a.0, a.1, a.2, a.3, a.4);
        let ib = flowid::flow_id(b.0, b.1, b.2, b.3, b.4);
        prop_assert_ne!(ia, ib);
    }
}
