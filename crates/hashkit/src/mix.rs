//! Fast 64-bit avalanche finalizers.
//!
//! These are the primitives behind [`crate::MixFamily`] and
//! [`crate::kmap::KCounterMap`]: cheap (a handful of multiplies and
//! shifts), statistically strong, and fully deterministic, which is what
//! a line-rate measurement data path needs.

/// SplitMix64 step: advances `state`-like input to a well mixed output.
///
/// This is the finalizer of the SplitMix64 generator (Steele et al.),
/// known to pass BigCrush when used as a counter-mode generator.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Murmur3-style 64-bit finalizer ("fmix64").
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// Map a hash to a bucket in `[0, n)` without modulo bias, using the
/// widening-multiply ("Lemire") reduction.
#[inline]
pub fn bucket(hash: u64, n: usize) -> usize {
    debug_assert!(n > 0, "bucket count must be positive");
    (((hash as u128) * (n as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_sequence() {
        // First outputs of SplitMix64 seeded with 0 (published values).
        assert_eq!(splitmix64(0), 0xE220A8397B1DCDAF);
    }

    #[test]
    fn mix64_bijective_spot_check() {
        // fmix64 is a bijection; distinct inputs must map to distinct
        // outputs. Spot check a dense range.
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(mix64(x)));
        }
    }

    #[test]
    fn bucket_is_in_range_and_covers() {
        let n = 97;
        let mut hit = vec![false; n];
        for x in 0..100_000u64 {
            let b = bucket(mix64(x), n);
            assert!(b < n);
            hit[b] = true;
        }
        assert!(hit.iter().all(|&h| h), "all buckets should be reachable");
    }

    #[test]
    fn bucket_of_one_is_zero() {
        for x in [0u64, 1, u64::MAX, 0xDEADBEEF] {
            assert_eq!(bucket(x, 1), 0);
        }
    }

    #[test]
    fn bucket_uniformity_chi_square() {
        // Rough uniformity: chi-square over 64 buckets with 640k samples
        // should stay well under the 0.999 quantile (~114 for 63 dof).
        let n = 64;
        let samples = 640_000u64;
        let mut counts = vec![0f64; n];
        for x in 0..samples {
            counts[bucket(splitmix64(x), n)] += 1.0;
        }
        let expected = samples as f64 / n as f64;
        let chi2: f64 = counts.iter().map(|c| (c - expected).powi(2) / expected).sum();
        assert!(chi2 < 114.0, "chi2 = {chi2}");
    }
}
