//! CRC-32 (IEEE 802.3 polynomial, reflected) — the checksum real NICs
//! compute per frame; often reused by line cards as a cheap RSS-style
//! flow hash, so it belongs in the toolbox for trace tooling.

const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32/IEEE of `data`.
///
/// ```
/// // The classic CRC check value.
/// assert_eq!(hashkit::crc32::crc32(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental update: feed `state` (from a previous `update`, starting
/// at `0xFFFF_FFFF`) with more data. Finalize by XOR with `0xFFFF_FFFF`.
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414FA339);
        assert_eq!(crc32(b"a"), 0xE8B7BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"per-flow traffic measurement";
        for split in 0..data.len() {
            let state = update(0xFFFF_FFFF, &data[..split]);
            let state = update(state, &data[split..]);
            assert_eq!(state ^ 0xFFFF_FFFF, crc32(data), "split {split}");
        }
    }

    #[test]
    fn single_bit_sensitivity() {
        let a = crc32(b"\x00\x00\x00\x00");
        let b = crc32(b"\x00\x00\x00\x01");
        assert_ne!(a, b);
    }
}
