//! From-scratch SHA-1 (FIPS 180-1).
//!
//! The paper generates flow IDs from the 5-tuple header using SHA-1
//! (§6.1). SHA-1 is cryptographically broken for collision resistance,
//! but here it is only used as a well-distributed identifier hash,
//! exactly as the authors did.

/// Streaming SHA-1 state.
///
/// ```
/// use hashkit::sha1::Sha1;
/// let digest = Sha1::digest(b"abc");
/// assert_eq!(hashkit::sha1::to_hex(&digest), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Fresh hasher with the standard initialization vector.
    pub fn new() -> Self {
        Self {
            state: [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// One-shot digest truncated to the first 8 big-endian bytes.
    pub fn digest64(data: &[u8]) -> u64 {
        let d = Self::digest(data);
        u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.process_block(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process_block(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pad, process the final block(s), and return the 160-bit digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Append the 0x80 terminator.
        self.update(&[0x80]);
        // Pad with zeros until 8 bytes remain in the block.
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // The length update above must not count the padding: rewind.
        // (We track the true length separately, so simply overwrite the
        // last 8 bytes of the final block with the original bit length.)
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.process_block(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// Render a digest as lowercase hex.
pub fn to_hex(digest: &[u8]) -> String {
    let mut s = String::with_capacity(digest.len() * 2);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_message() {
        assert_eq!(
            to_hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            to_hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            to_hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn exactly_64_bytes() {
        // A message exactly one block long exercises the padding path
        // where the length block spills into a second block.
        let msg = [0x61u8; 64];
        assert_eq!(
            to_hex(&Sha1::digest(&msg)),
            "0098ba824b5c16427bd7a1122a5a442a25ec644d"
        );
    }

    #[test]
    fn fifty_five_and_fifty_six_bytes() {
        // 55 bytes: padding + length fit in one block.
        // 56 bytes: the terminator forces a second block.
        let m55 = [0x61u8; 55];
        let m56 = [0x61u8; 56];
        assert_eq!(
            to_hex(&Sha1::digest(&m55)),
            "c1c8bbdc22796e28c0e15163d20899b65621d65a"
        );
        assert_eq!(
            to_hex(&Sha1::digest(&m56)),
            "c2db330f6083854c99d4b5bfb6e8f29f201be699"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&Sha1::digest(&msg)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        // Feed in awkward chunk sizes.
        for chunk in [1usize, 3, 7, 63, 64, 65, 129] {
            let mut h = Sha1::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), Sha1::digest(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn digest64_is_prefix() {
        let d = Sha1::digest(b"flow-id");
        let hi = Sha1::digest64(b"flow-id");
        assert_eq!(hi.to_be_bytes(), d[..8]);
    }
}
