//! Identity hashing for already-hashed 64-bit keys.
//!
//! Flow IDs in this workspace are outputs of SHA-1 ⊕ APHash — they are
//! already uniformly distributed, so re-hashing them through SipHash in
//! `std::collections::HashMap` wastes cycles on the hottest path of the
//! whole simulator (one map lookup per packet). `IdHashMap` feeds the
//! key straight through, which the Rust perf guide calls out as the
//! right choice for random keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Hasher that returns the last 8 bytes written, as-is.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only sane for fixed-width integer keys; fold bytes so misuse
        // with longer keys still produces *a* hash.
        let mut v = self.0;
        for &b in bytes {
            v = (v << 8) | b as u64;
        }
        self.0 = v;
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = i;
    }
}

/// `BuildHasher` for [`IdentityHasher`].
pub type BuildIdentityHasher = BuildHasherDefault<IdentityHasher>;

/// `HashMap` keyed by pre-hashed `u64` IDs.
pub type IdHashMap<V> = HashMap<u64, V, BuildIdentityHasher>;

/// `HashSet` of pre-hashed `u64` IDs.
pub type IdHashSet = HashSet<u64, BuildIdentityHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: IdHashMap<u32> = IdHashMap::default();
        m.insert(0xDEAD_BEEF, 1);
        m.insert(42, 2);
        assert_eq!(m.get(&0xDEAD_BEEF), Some(&1));
        assert_eq!(m.get(&42), Some(&2));
        assert_eq!(m.get(&43), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn set_basics() {
        let mut s = IdHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
    }

    #[test]
    fn hasher_passes_u64_through() {
        let mut h = IdentityHasher::default();
        h.write_u64(0xABCD);
        assert_eq!(h.finish(), 0xABCD);
    }

    #[test]
    fn dense_keys_still_work() {
        // Identity hashing of dense keys is fine for correctness (the
        // std table mixes the low bits into bucket choice).
        let mut m: IdHashMap<u64> = IdHashMap::default();
        for k in 0..10_000u64 {
            m.insert(k, k * 2);
        }
        for k in 0..10_000u64 {
            assert_eq!(m[&k], k * 2);
        }
    }
}
