//! FNV-1a, a cheap byte-stream hash used as a secondary mixer and in
//! tests as an independent reference distribution.

/// FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice.
///
/// ```
/// use hashkit::fnv::fnv1a64;
/// // Known vector: fnv1a64("") is the offset basis.
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// ```
#[inline]
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// 64-bit FNV-1a over the little-endian bytes of a `u64` key.
#[inline]
pub fn fnv1a64_u64(key: u64) -> u64 {
    fnv1a64(&key.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn u64_wrapper_matches_bytes() {
        assert_eq!(fnv1a64_u64(0x0102030405060708), fnv1a64(&[8, 7, 6, 5, 4, 3, 2, 1]));
    }

    #[test]
    fn avalanche_on_single_bit() {
        let a = fnv1a64_u64(0);
        let b = fnv1a64_u64(1);
        assert_ne!(a, b);
    }
}
