//! AP hash (Arash Partow), the second flow-ID hash used by the paper.
//!
//! The classic 32-bit formulation alternates two mixing rules on even
//! and odd byte positions. We additionally provide a 64-bit variant that
//! applies the same alternation over 64-bit state, which is what the
//! flow-ID generator combines with SHA-1.

/// Classic 32-bit AP hash.
///
/// ```
/// use hashkit::aphash::aphash;
/// assert_eq!(aphash(b"abc"), aphash(b"abc"));
/// assert_ne!(aphash(b"abc"), aphash(b"abd"));
/// ```
pub fn aphash(data: &[u8]) -> u32 {
    let mut hash: u32 = 0xAAAA_AAAA;
    for (i, &b) in data.iter().enumerate() {
        if i & 1 == 0 {
            hash ^= (hash << 7) ^ (b as u32).wrapping_mul(hash >> 3);
        } else {
            hash ^= !((hash << 11).wrapping_add((b as u32) ^ (hash >> 5)));
        }
    }
    hash
}

/// 64-bit AP hash: same alternating structure over 64-bit state.
pub fn aphash64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xAAAA_AAAA_AAAA_AAAA;
    for (i, &b) in data.iter().enumerate() {
        if i & 1 == 0 {
            hash ^= (hash << 7) ^ (b as u64).wrapping_mul(hash >> 3);
        } else {
            hash ^= !((hash << 11).wrapping_add((b as u64) ^ (hash >> 5)));
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(aphash(b"10.0.0.1:80"), aphash(b"10.0.0.1:80"));
        assert_eq!(aphash64(b"10.0.0.1:80"), aphash64(b"10.0.0.1:80"));
    }

    #[test]
    fn empty_is_seed() {
        assert_eq!(aphash(b""), 0xAAAA_AAAA);
        assert_eq!(aphash64(b""), 0xAAAA_AAAA_AAAA_AAAA);
    }

    #[test]
    fn position_sensitivity() {
        // AP hash distinguishes permutations of the same bytes.
        assert_ne!(aphash(b"ab"), aphash(b"ba"));
        assert_ne!(aphash64(b"ab"), aphash64(b"ba"));
    }

    #[test]
    fn no_trivial_collisions_on_small_corpus() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..32u8 {
            for b in 0..32u8 {
                assert!(seen.insert(aphash64(&[a, b])), "collision at ({a},{b})");
            }
        }
    }
}
