//! MurmurHash3 x64 128-bit (Austin Appleby, public domain algorithm).
//!
//! Included as a second modern keyed hash for flow-ID generation and
//! for users who want a faster alternative to SHA-1⊕APHash with the
//! same distribution quality; verified against the reference
//! implementation's published vectors.

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// MurmurHash3 x64 128-bit of `data` under `seed`.
pub fn murmur3_x64_128(data: &[u8], seed: u32) -> (u64, u64) {
    let mut h1 = seed as u64;
    let mut h2 = seed as u64;
    let nblocks = data.len() / 16;

    for i in 0..nblocks {
        let b = &data[i * 16..i * 16 + 16];
        let mut k1 = u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"));
        let mut k2 = u64::from_le_bytes(b[8..16].try_into().expect("8 bytes"));

        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1
            .rotate_left(27)
            .wrapping_add(h2)
            .wrapping_mul(5)
            .wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2
            .rotate_left(31)
            .wrapping_add(h1)
            .wrapping_mul(5)
            .wrapping_add(0x3849_5ab5);
    }

    let tail = &data[nblocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for (i, &b) in tail.iter().enumerate() {
        if i < 8 {
            k1 |= (b as u64) << (8 * i);
        } else {
            k2 |= (b as u64) << (8 * (i - 8));
        }
    }
    if !tail.is_empty() {
        if tail.len() > 8 {
            k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
            h2 ^= k2;
        }
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// The first 64 bits of [`murmur3_x64_128`].
pub fn murmur3_64(data: &[u8], seed: u32) -> u64 {
    murmur3_x64_128(data, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(h: (u64, u64)) -> String {
        let mut s = String::new();
        for b in h.0.to_be_bytes().iter().chain(h.1.to_be_bytes().iter()) {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    #[test]
    fn reference_vectors() {
        // Published reference vectors for MurmurHash3_x64_128.
        assert_eq!(hex(murmur3_x64_128(b"", 0)), "00000000000000000000000000000000");
        assert_eq!(
            hex(murmur3_x64_128(b"hello", 0)),
            "cbd8a7b341bd9b025b1e906a48ae1d19"
        );
        assert_eq!(
            hex(murmur3_x64_128(b"hello, world", 0)),
            "342fac623a5ebc8e4cdcbc079642414d"
        );
        assert_eq!(
            hex(murmur3_x64_128(b"The quick brown fox jumps over the lazy dog.", 0)),
            "cd99481f9ee902c9695da1a38987b6e7"
        );
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(murmur3_x64_128(b"flow", 0), murmur3_x64_128(b"flow", 1));
    }

    #[test]
    fn all_tail_lengths_distinct() {
        let data = [0xABu8; 40];
        let mut seen = std::collections::HashSet::new();
        for len in 0..=40 {
            assert!(seen.insert(murmur3_x64_128(&data[..len], 7)), "len {len}");
        }
    }

    #[test]
    fn murmur64_is_first_half() {
        let (h1, _) = murmur3_x64_128(b"abc", 3);
        assert_eq!(murmur3_64(b"abc", 3), h1);
    }
}
