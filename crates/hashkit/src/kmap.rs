//! `KCounterMap`: the paper's `k` "different collision-free hash
//! functions" (§3.1).
//!
//! Every flow is mapped to `k` **fixed, distinct** counter indices in
//! `[0, L)`, determined only by the flow ID — even across repeated
//! evictions of the same flow the mapping never changes. "Collision
//! free" in the paper means the `k` counters of one flow are pairwise
//! distinct (different flows may and do share counters; that sharing is
//! exactly what the estimators de-noise).
//!
//! The implementation draws candidate indices from a per-flow keyed hash
//! stream and skips duplicates, which preserves the "uniformly random
//! k-subset" distribution the paper's analysis assumes
//! (`p_select = 1/L` per counter, §4.3).

use crate::mix::{bucket, mix64, splitmix64};

/// Upper bound on `k` supported by the allocation-free index paths
/// (`fill_indices`, `indices_iter`) and by the stack scratch buffers in
/// the eviction spread. The paper's configurations use `k ∈ [1, 8]`;
/// 64 leaves two orders of magnitude of headroom while keeping the
/// scratch arrays comfortably inside one page.
pub const K_MAX: usize = 64;

/// Lane width of the batch index-fill pass ([`KCounterMap::fill_indices_batch`],
/// [`KCounterMap::base_hashes`]): four independent 64-bit hash chains per
/// chunk, matching the `[u64; 4]` lane shape of the query sweep kernels.
pub const HASH_LANES: usize = 4;

/// Largest `k` served by the unrolled fixed-round fast path; beyond it
/// the general duplicate-skip loop runs (the paper's configurations top
/// out at `k = 8`).
const FIXED_K_MAX: usize = 8;

/// Weyl increment separating candidate rounds (golden-ratio constant).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Deterministic map from a 64-bit flow ID to `k` distinct counter
/// indices in `[0, L)`.
///
/// ```
/// use hashkit::KCounterMap;
/// let map = KCounterMap::new(3, 1000, 0xC0FFEE);
/// let a = map.indices(42);
/// let b = map.indices(42);
/// assert_eq!(a, b);                       // fixed per flow
/// assert_eq!(a.len(), 3);
/// let mut s = a.clone(); s.sort_unstable(); s.dedup();
/// assert_eq!(s.len(), 3);                 // pairwise distinct
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KCounterMap {
    k: usize,
    l: usize,
    seed: u64,
    /// `splitmix64(seed)`, folded into every flow hash. Cached at
    /// construction so the per-flow hot paths skip one mix round; the
    /// produced indices are bit-identical to recomputing it inline.
    mixed_seed: u64,
}

impl KCounterMap {
    /// Create a map of `k` distinct indices out of `l` counters.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > l`: fewer counters than mapped
    /// positions cannot be collision-free.
    pub fn new(k: usize, l: usize, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(k <= l, "k ({k}) cannot exceed the number of counters l ({l})");
        Self { k, l, seed, mixed_seed: splitmix64(seed) }
    }

    /// Number of mapped counters per flow.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of counters.
    #[inline]
    pub fn l(&self) -> usize {
        self.l
    }

    /// The `k` distinct counter indices for `flow_id`.
    pub fn indices(&self, flow_id: u64) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.k);
        self.indices_into(flow_id, &mut out);
        out
    }

    /// Write the `k` distinct indices into `out` (cleared first).
    ///
    /// Allocation-free once `out` has capacity `k`; callers keep a
    /// workhorse buffer. Prefer [`fill_indices`](Self::fill_indices)
    /// where a fixed stack buffer is available.
    pub fn indices_into(&self, flow_id: u64, out: &mut Vec<usize>) {
        out.clear();
        out.resize(self.k, 0);
        self.fill_indices(flow_id, out);
    }

    /// Write the `k` distinct indices into the first `k` slots of `out`
    /// and return `k`. This is the zero-allocation workhorse behind
    /// every other index accessor: the caller provides the storage
    /// (typically `[0usize; K_MAX]` on the stack, or a memo-table row).
    ///
    /// The emitted index sequence is bit-identical to
    /// [`indices`](Self::indices) — same hash stream, same
    /// duplicate-skip order.
    ///
    /// # Panics
    /// Panics if `out.len() < self.k()`.
    #[inline]
    pub fn fill_indices(&self, flow_id: u64, out: &mut [usize]) -> usize {
        assert!(out.len() >= self.k, "fill_indices scratch shorter than k");
        self.fill_from_base(self.base_hash(flow_id), out)
    }

    /// The per-flow base hash the candidate stream is derived from:
    /// `mix64(flow_id ^ splitmix64(seed))`. Exposed so batch callers can
    /// hoist this one mix out of the miss path (see
    /// [`base_hashes`](Self::base_hashes)) and resume index generation
    /// later via [`fill_indices_from_base`](Self::fill_indices_from_base).
    #[inline]
    pub fn base_hash(&self, flow_id: u64) -> u64 {
        mix64(flow_id ^ self.mixed_seed)
    }

    /// [`base_hash`](Self::base_hash) for a whole batch of flow keys in
    /// one restructured pass: the mix chains of [`HASH_LANES`] keys are
    /// interleaved per chunk so they have no serial dependency (the shape
    /// the autovectorizer / out-of-order core overlaps). Bit-identical to
    /// calling `base_hash` per key.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `flows`.
    #[inline]
    pub fn base_hashes(&self, flows: &[u64], out: &mut [u64]) {
        assert!(out.len() >= flows.len(), "base_hashes scratch shorter than flows");
        let ms = self.mixed_seed;
        let mut chunks = flows.chunks_exact(HASH_LANES);
        let mut o = 0usize;
        for chunk in chunks.by_ref() {
            let mut h = [0u64; HASH_LANES];
            for lane in 0..HASH_LANES {
                h[lane] = mix64(chunk[lane] ^ ms);
            }
            out[o..o + HASH_LANES].copy_from_slice(&h);
            o += HASH_LANES;
        }
        for &f in chunks.remainder() {
            out[o] = mix64(f ^ ms);
            o += 1;
        }
    }

    /// The round-`r` candidate index of the stream behind
    /// [`fill_indices`](Self::fill_indices):
    /// `bucket(mix64(base + r·GOLDEN), l)`. This is the primitive the
    /// lane sweeps fuse with their counter gather — when the first `k`
    /// rounds are pairwise distinct (the overwhelmingly common case)
    /// they *are* the flow's index row; a row with duplicates must be
    /// regenerated via
    /// [`fill_indices_from_base`](Self::fill_indices_from_base).
    #[inline(always)]
    pub fn candidate(&self, base: u64, round: u64) -> usize {
        bucket(mix64(base.wrapping_add(round.wrapping_mul(GOLDEN))), self.l)
    }

    /// [`fill_indices`](Self::fill_indices) resuming from a precomputed
    /// [`base_hash`](Self::base_hash). Same output, same panics.
    #[inline]
    pub fn fill_indices_from_base(&self, base: u64, out: &mut [usize]) -> usize {
        assert!(out.len() >= self.k, "fill_indices scratch shorter than k");
        self.fill_from_base(base, out)
    }

    /// Batch index fill: the `k` distinct indices of every flow in
    /// `flows`, written row-major into `out` (`out[i*k..(i+1)*k]` is flow
    /// `i`'s row). For `k <= 8` the candidate generation runs as a
    /// lane-structured pass over [`HASH_LANES`] flows at a time — all
    /// lane hash chains are independent — and only rows where a
    /// duplicate candidate landed (probability ≈ k²/2L per flow) fall
    /// back to the scalar duplicate-skip loop. Bit-identical to calling
    /// [`fill_indices`](Self::fill_indices) per flow.
    ///
    /// # Panics
    /// Panics if `out.len() < flows.len() * k`.
    pub fn fill_indices_batch(&self, flows: &[u64], out: &mut [usize]) {
        let k = self.k;
        assert!(
            out.len() >= flows.len().saturating_mul(k),
            "fill_indices_batch scratch shorter than flows.len()*k"
        );
        match k {
            1 => self.fill_batch_fixed::<1>(flows, out),
            2 => self.fill_batch_fixed::<2>(flows, out),
            3 => self.fill_batch_fixed::<3>(flows, out),
            4 => self.fill_batch_fixed::<4>(flows, out),
            5 => self.fill_batch_fixed::<5>(flows, out),
            6 => self.fill_batch_fixed::<6>(flows, out),
            7 => self.fill_batch_fixed::<7>(flows, out),
            8 => self.fill_batch_fixed::<8>(flows, out),
            _ => {
                for (i, &f) in flows.iter().enumerate() {
                    self.fill_indices(f, &mut out[i * k..(i + 1) * k]);
                }
            }
        }
    }

    /// One [`HASH_LANES`]-wide chunk of the batch fill with `k` lifted
    /// to a const generic: every loop fully unrolls, the candidate pass
    /// is round-major (each inner loop is four independent mix chains —
    /// the lane shape), and only rows where a duplicate candidate
    /// landed fall back to the canonical duplicate-skip loop, which
    /// restarts from round 0 and therefore reproduces exactly the
    /// sequence the scalar path would have emitted. This is the
    /// chunk-granular entry the query sweep inlines; the slice-granular
    /// [`fill_indices_batch`](Self::fill_indices_batch) is built on it.
    ///
    /// # Panics
    /// Panics (in debug builds) if `KC != self.k()`.
    ///
    /// `inline(always)`: this is the per-chunk body of every batch
    /// sweep; at ~10 ns/flow a non-inlined call (plus marshalling the
    /// row array through memory) is measurable, and LLVM's heuristic
    /// declines it because of the cold fallback branch.
    #[inline(always)]
    pub fn fill_indices_lanes<const KC: usize>(
        &self,
        flows: &[u64; HASH_LANES],
        out: &mut [[usize; KC]; HASH_LANES],
    ) {
        debug_assert_eq!(self.k, KC, "fill_indices_lanes arity mismatch");
        let mut bases = [0u64; HASH_LANES];
        for lane in 0..HASH_LANES {
            bases[lane] = mix64(flows[lane] ^ self.mixed_seed);
        }
        #[allow(clippy::needless_range_loop)] // `r` feeds the mix step AND indexes every lane's row
        for r in 0..KC {
            let step = (r as u64).wrapping_mul(GOLDEN);
            let mut h = [0u64; HASH_LANES];
            for lane in 0..HASH_LANES {
                h[lane] = mix64(bases[lane].wrapping_add(step));
            }
            for lane in 0..HASH_LANES {
                out[lane][r] = bucket(h[lane], self.l);
            }
        }
        for lane in 0..HASH_LANES {
            if has_duplicate(&out[lane]) {
                self.fill_general(bases[lane], &mut out[lane]);
            }
        }
    }

    /// [`fill_indices_batch`](Self::fill_indices_batch) monomorphized
    /// per `k`: lane chunks through
    /// [`fill_indices_lanes`](Self::fill_indices_lanes), scalar tail.
    fn fill_batch_fixed<const KC: usize>(&self, flows: &[u64], out: &mut [usize]) {
        let mut chunks = flows.chunks_exact(HASH_LANES);
        let mut row = 0usize;
        let mut rows = [[0usize; KC]; HASH_LANES];
        for chunk in chunks.by_ref() {
            let lanes: &[u64; HASH_LANES] = chunk.try_into().expect("exact chunk");
            self.fill_indices_lanes(lanes, &mut rows);
            for (lane, r) in rows.iter().enumerate() {
                out[(row + lane) * KC..(row + lane + 1) * KC].copy_from_slice(r);
            }
            row += HASH_LANES;
        }
        for &f in chunks.remainder() {
            self.fill_indices(f, &mut out[row * KC..(row + 1) * KC]);
            row += 1;
        }
    }

    /// Dispatch on `k`: paper-range `k` gets a fully unrolled candidate
    /// pass (independent hash chains, pairwise distinctness check, cold
    /// fallback); anything larger runs the general loop directly.
    #[inline]
    fn fill_from_base(&self, base: u64, out: &mut [usize]) -> usize {
        match self.k {
            1 => {
                out[0] = bucket(mix64(base), self.l);
                1
            }
            2 => self.fill_fixed::<2>(base, out),
            3 => self.fill_fixed::<3>(base, out),
            4 => self.fill_fixed::<4>(base, out),
            5 => self.fill_fixed::<5>(base, out),
            6 => self.fill_fixed::<6>(base, out),
            7 => self.fill_fixed::<7>(base, out),
            8 => self.fill_fixed::<8>(base, out),
            _ => self.fill_general(base, out),
        }
    }

    /// Unrolled fast path: the first `KC` candidate rounds are `KC`
    /// *independent* hash chains (no serial dependency between rounds,
    /// unlike the duplicate-skip loop whose trip count depends on the
    /// data), so the multiplies overlap. If the candidates are pairwise
    /// distinct — overwhelmingly likely for `k ≪ L` — they *are* the
    /// canonical output; otherwise the general loop regenerates the row
    /// from round 0, reproducing the exact duplicate-skip sequence.
    #[inline]
    fn fill_fixed<const KC: usize>(&self, base: u64, out: &mut [usize]) -> usize {
        debug_assert!((2..=FIXED_K_MAX).contains(&KC), "fill_fixed arity {KC}");
        let mut idx = [0usize; KC];
        for (r, slot) in idx.iter_mut().enumerate() {
            let h = mix64(base.wrapping_add((r as u64).wrapping_mul(GOLDEN)));
            *slot = bucket(h, self.l);
        }
        let mut distinct = true;
        for i in 1..KC {
            for j in 0..i {
                distinct &= idx[i] != idx[j];
            }
        }
        if distinct {
            out[..KC].copy_from_slice(&idx);
            KC
        } else {
            self.fill_general(base, out)
        }
    }

    /// The canonical duplicate-skip loop (the original `fill_indices`
    /// body): draw candidates round by round, keep the first `k` distinct
    /// ones. Every fast path above defers to this sequence's output.
    #[inline(never)]
    fn fill_general(&self, base: u64, out: &mut [usize]) -> usize {
        let mut filled = 0usize;
        let mut round: u64 = 0;
        while filled < self.k {
            let h = mix64(base.wrapping_add(round.wrapping_mul(GOLDEN)));
            let idx = bucket(h, self.l);
            if !out[..filled].contains(&idx) {
                out[filled] = idx;
                filled += 1;
            }
            round += 1;
            // With k <= l this terminates with probability 1; the debug
            // guard catches pathological misuse (k close to l with an
            // adversarial seed would still finish, just slowly).
            debug_assert!(round < 64 + 64 * self.k as u64, "excessive duplicate rounds");
        }
        filled
    }

    /// Iterator form of the index mapping: yields the `k` distinct
    /// indices in the same order as [`indices`](Self::indices) without
    /// touching the heap. Bounded by [`K_MAX`] because the dedup state
    /// lives in a fixed stack array.
    ///
    /// # Panics
    /// Panics if `self.k() > K_MAX`.
    #[inline]
    pub fn indices_iter(&self, flow_id: u64) -> KIndicesIter {
        assert!(
            self.k <= K_MAX,
            "indices_iter supports k <= {K_MAX} (got {})",
            self.k
        );
        let mut buf = [0usize; K_MAX];
        let n = self.fill_indices(flow_id, &mut buf);
        KIndicesIter { buf, n, pos: 0 }
    }

    /// The `r`-th (0-based) mapped counter of `flow_id`.
    pub fn index(&self, flow_id: u64, r: usize) -> usize {
        assert!(r < self.k);
        self.indices(flow_id)[r]
    }
}

/// Pairwise duplicate scan over one candidate row (`k <= 8`, so the
/// quadratic scan is at most 28 compares and branch-free).
#[inline]
fn has_duplicate(row: &[usize]) -> bool {
    let mut dup = false;
    for i in 1..row.len() {
        for j in 0..i {
            dup |= row[i] == row[j];
        }
    }
    dup
}

/// Iterator over a flow's `k` distinct counter indices; see
/// [`KCounterMap::indices_iter`]. The whole mapping is materialized
/// eagerly into a stack buffer (duplicate skipping needs lookback), so
/// iteration itself is branch-cheap.
#[derive(Debug, Clone)]
pub struct KIndicesIter {
    buf: [usize; K_MAX],
    n: usize,
    pos: usize,
}

impl Iterator for KIndicesIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.pos < self.n {
            let v = self.buf[self.pos];
            self.pos += 1;
            Some(v)
        } else {
            None
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.n - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for KIndicesIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn k_greater_than_l_panics() {
        KCounterMap::new(5, 4, 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_panics() {
        KCounterMap::new(0, 4, 0);
    }

    #[test]
    fn k_equals_l_yields_permutation() {
        let map = KCounterMap::new(8, 8, 7);
        let mut idx = map.indices(123);
        idx.sort_unstable();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_and_stable_for_many_flows() {
        let map = KCounterMap::new(3, 101, 1);
        for f in 0..5_000u64 {
            let a = map.indices(f);
            assert_eq!(a.len(), 3);
            let mut s = a.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3, "flow {f} had duplicate counters");
            assert_eq!(a, map.indices(f), "flow {f} mapping not stable");
        }
    }

    #[test]
    fn counter_selection_probability_is_uniform() {
        // Each counter should be selected with probability ~k/L across
        // flows (paper: p_select = 1/L per eviction unit share).
        let l = 64;
        let k = 3;
        let flows = 200_000u64;
        let map = KCounterMap::new(k, l, 99);
        let mut counts = vec![0f64; l];
        let mut buf = Vec::new();
        for f in 0..flows {
            map.indices_into(f, &mut buf);
            for &i in &buf {
                counts[i] += 1.0;
            }
        }
        let expected = flows as f64 * k as f64 / l as f64;
        let chi2: f64 = counts.iter().map(|c| (c - expected).powi(2) / expected).sum();
        // 0.999 quantile of chi2 with 63 dof is ~113.5.
        assert!(chi2 < 114.0, "chi2 = {chi2}");
    }

    #[test]
    fn indices_into_reuses_buffer() {
        let map = KCounterMap::new(4, 50, 3);
        let mut buf = vec![1, 2, 3, 4, 5, 6, 7];
        map.indices_into(9, &mut buf);
        assert_eq!(buf, map.indices(9));
    }

    #[test]
    fn fill_indices_matches_vec_api_bit_for_bit() {
        for (k, l, seed) in [(1usize, 7usize, 0u64), (3, 101, 1), (8, 8, 7), (5, 2048, 0xC0FFEE)] {
            let map = KCounterMap::new(k, l, seed);
            let mut buf = [usize::MAX; K_MAX];
            for f in 0..2_000u64 {
                let n = map.fill_indices(f, &mut buf);
                assert_eq!(n, k);
                assert_eq!(&buf[..n], map.indices(f).as_slice(), "flow {f}");
            }
        }
    }

    #[test]
    fn indices_iter_matches_vec_api() {
        let map = KCounterMap::new(4, 333, 9);
        for f in 0..1_000u64 {
            let it = map.indices_iter(f);
            assert_eq!(it.len(), 4);
            assert_eq!(it.collect::<Vec<_>>(), map.indices(f), "flow {f}");
        }
    }

    #[test]
    #[should_panic(expected = "scratch shorter than k")]
    fn fill_indices_rejects_short_scratch() {
        let map = KCounterMap::new(4, 50, 3);
        let mut buf = [0usize; 3];
        map.fill_indices(1, &mut buf);
    }

    #[test]
    fn fast_path_matches_general_loop_bit_for_bit() {
        // The unrolled fixed-k dispatch must reproduce the canonical
        // duplicate-skip sequence exactly, including on rows where the
        // first k candidates collide (small l makes collisions common).
        for k in 1..=8usize {
            for l in [k, k + 1, 2 * k + 1, 64, 2048] {
                let map = KCounterMap::new(k, l, 0xFEED ^ (k as u64) << 8 ^ l as u64);
                let mut fast = [usize::MAX; K_MAX];
                let mut slow = [usize::MAX; K_MAX];
                for f in 0..2_000u64 {
                    let n = map.fill_indices(f, &mut fast);
                    let m = map.fill_general(map.base_hash(f), &mut slow);
                    assert_eq!(n, m);
                    assert_eq!(&fast[..n], &slow[..m], "k={k} l={l} flow {f}");
                }
            }
        }
    }

    #[test]
    fn base_hashes_match_per_key_hash() {
        let map = KCounterMap::new(3, 997, 0xABCD);
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 64, 100] {
            let flows: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
            let mut out = vec![0u64; len];
            map.base_hashes(&flows, &mut out);
            for (i, &f) in flows.iter().enumerate() {
                assert_eq!(out[i], map.base_hash(f), "len {len} key {i}");
            }
        }
    }

    #[test]
    fn fill_indices_from_base_matches_fill_indices() {
        let map = KCounterMap::new(5, 333, 77);
        let mut a = [0usize; K_MAX];
        let mut b = [0usize; K_MAX];
        for f in 0..1_000u64 {
            let n = map.fill_indices(f, &mut a);
            let m = map.fill_indices_from_base(map.base_hash(f), &mut b);
            assert_eq!((n, &a[..n]), (m, &b[..m]), "flow {f}");
        }
    }

    #[test]
    fn fill_indices_batch_matches_per_flow_fill() {
        // Arbitrary slice lengths (including non-multiples of the lane
        // width and the empty slice) across paper-range and large k.
        for k in [1usize, 2, 3, 4, 8, 9, 12] {
            for l in [k + 1, 2 * k + 1, 101, 2048] {
                let map = KCounterMap::new(k, l, (k * 31 + l) as u64);
                for len in [0usize, 1, 3, 4, 5, 8, 11, 64, 257] {
                    let flows: Vec<u64> =
                        (0..len as u64).map(|i| mix64(i ^ 0x5A5A)).collect();
                    let mut batch = vec![usize::MAX; len * k];
                    map.fill_indices_batch(&flows, &mut batch);
                    let mut row = [0usize; K_MAX];
                    for (i, &f) in flows.iter().enumerate() {
                        let n = map.fill_indices(f, &mut row);
                        assert_eq!(
                            &batch[i * k..(i + 1) * k],
                            &row[..n],
                            "k={k} l={l} len={len} flow {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "fill_indices_batch scratch")]
    fn fill_indices_batch_rejects_short_scratch() {
        let map = KCounterMap::new(3, 100, 1);
        let mut out = [0usize; 5];
        map.fill_indices_batch(&[1, 2], &mut out);
    }

    #[test]
    fn different_seeds_give_different_mappings() {
        let a = KCounterMap::new(3, 1000, 1);
        let b = KCounterMap::new(3, 1000, 2);
        let differs = (0..100u64).any(|f| a.indices(f) != b.indices(f));
        assert!(differs);
    }
}
