//! `KCounterMap`: the paper's `k` "different collision-free hash
//! functions" (§3.1).
//!
//! Every flow is mapped to `k` **fixed, distinct** counter indices in
//! `[0, L)`, determined only by the flow ID — even across repeated
//! evictions of the same flow the mapping never changes. "Collision
//! free" in the paper means the `k` counters of one flow are pairwise
//! distinct (different flows may and do share counters; that sharing is
//! exactly what the estimators de-noise).
//!
//! The implementation draws candidate indices from a per-flow keyed hash
//! stream and skips duplicates, which preserves the "uniformly random
//! k-subset" distribution the paper's analysis assumes
//! (`p_select = 1/L` per counter, §4.3).

use crate::mix::{bucket, mix64, splitmix64};

/// Deterministic map from a 64-bit flow ID to `k` distinct counter
/// indices in `[0, L)`.
///
/// ```
/// use hashkit::KCounterMap;
/// let map = KCounterMap::new(3, 1000, 0xC0FFEE);
/// let a = map.indices(42);
/// let b = map.indices(42);
/// assert_eq!(a, b);                       // fixed per flow
/// assert_eq!(a.len(), 3);
/// let mut s = a.clone(); s.sort_unstable(); s.dedup();
/// assert_eq!(s.len(), 3);                 // pairwise distinct
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KCounterMap {
    k: usize,
    l: usize,
    seed: u64,
}

impl KCounterMap {
    /// Create a map of `k` distinct indices out of `l` counters.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > l`: fewer counters than mapped
    /// positions cannot be collision-free.
    pub fn new(k: usize, l: usize, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(k <= l, "k ({k}) cannot exceed the number of counters l ({l})");
        Self { k, l, seed }
    }

    /// Number of mapped counters per flow.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of counters.
    #[inline]
    pub fn l(&self) -> usize {
        self.l
    }

    /// The `k` distinct counter indices for `flow_id`.
    pub fn indices(&self, flow_id: u64) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.k);
        self.indices_into(flow_id, &mut out);
        out
    }

    /// Write the `k` distinct indices into `out` (cleared first).
    ///
    /// This is the allocation-free fast path for the per-eviction data
    /// path; callers keep a workhorse buffer.
    pub fn indices_into(&self, flow_id: u64, out: &mut Vec<usize>) {
        out.clear();
        let base = mix64(flow_id ^ splitmix64(self.seed));
        let mut round: u64 = 0;
        while out.len() < self.k {
            let h = mix64(base.wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let idx = bucket(h, self.l);
            if !out.contains(&idx) {
                out.push(idx);
            }
            round += 1;
            // With k <= l this terminates with probability 1; the debug
            // guard catches pathological misuse (k close to l with an
            // adversarial seed would still finish, just slowly).
            debug_assert!(round < 64 + 64 * self.k as u64, "excessive duplicate rounds");
        }
    }

    /// The `r`-th (0-based) mapped counter of `flow_id`.
    pub fn index(&self, flow_id: u64, r: usize) -> usize {
        assert!(r < self.k);
        self.indices(flow_id)[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn k_greater_than_l_panics() {
        KCounterMap::new(5, 4, 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_panics() {
        KCounterMap::new(0, 4, 0);
    }

    #[test]
    fn k_equals_l_yields_permutation() {
        let map = KCounterMap::new(8, 8, 7);
        let mut idx = map.indices(123);
        idx.sort_unstable();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_and_stable_for_many_flows() {
        let map = KCounterMap::new(3, 101, 1);
        for f in 0..5_000u64 {
            let a = map.indices(f);
            assert_eq!(a.len(), 3);
            let mut s = a.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3, "flow {f} had duplicate counters");
            assert_eq!(a, map.indices(f), "flow {f} mapping not stable");
        }
    }

    #[test]
    fn counter_selection_probability_is_uniform() {
        // Each counter should be selected with probability ~k/L across
        // flows (paper: p_select = 1/L per eviction unit share).
        let l = 64;
        let k = 3;
        let flows = 200_000u64;
        let map = KCounterMap::new(k, l, 99);
        let mut counts = vec![0f64; l];
        let mut buf = Vec::new();
        for f in 0..flows {
            map.indices_into(f, &mut buf);
            for &i in &buf {
                counts[i] += 1.0;
            }
        }
        let expected = flows as f64 * k as f64 / l as f64;
        let chi2: f64 = counts.iter().map(|c| (c - expected).powi(2) / expected).sum();
        // 0.999 quantile of chi2 with 63 dof is ~113.5.
        assert!(chi2 < 114.0, "chi2 = {chi2}");
    }

    #[test]
    fn indices_into_reuses_buffer() {
        let map = KCounterMap::new(4, 50, 3);
        let mut buf = vec![1, 2, 3, 4, 5, 6, 7];
        map.indices_into(9, &mut buf);
        assert_eq!(buf, map.indices(9));
    }

    #[test]
    fn different_seeds_give_different_mappings() {
        let a = KCounterMap::new(3, 1000, 1);
        let b = KCounterMap::new(3, 1000, 2);
        let differs = (0..100u64).any(|f| a.indices(f) != b.indices(f));
        assert!(differs);
    }
}
