//! `KCounterMap`: the paper's `k` "different collision-free hash
//! functions" (§3.1).
//!
//! Every flow is mapped to `k` **fixed, distinct** counter indices in
//! `[0, L)`, determined only by the flow ID — even across repeated
//! evictions of the same flow the mapping never changes. "Collision
//! free" in the paper means the `k` counters of one flow are pairwise
//! distinct (different flows may and do share counters; that sharing is
//! exactly what the estimators de-noise).
//!
//! The implementation draws candidate indices from a per-flow keyed hash
//! stream and skips duplicates, which preserves the "uniformly random
//! k-subset" distribution the paper's analysis assumes
//! (`p_select = 1/L` per counter, §4.3).

use crate::mix::{bucket, mix64, splitmix64};

/// Upper bound on `k` supported by the allocation-free index paths
/// (`fill_indices`, `indices_iter`) and by the stack scratch buffers in
/// the eviction spread. The paper's configurations use `k ∈ [1, 8]`;
/// 64 leaves two orders of magnitude of headroom while keeping the
/// scratch arrays comfortably inside one page.
pub const K_MAX: usize = 64;

/// Deterministic map from a 64-bit flow ID to `k` distinct counter
/// indices in `[0, L)`.
///
/// ```
/// use hashkit::KCounterMap;
/// let map = KCounterMap::new(3, 1000, 0xC0FFEE);
/// let a = map.indices(42);
/// let b = map.indices(42);
/// assert_eq!(a, b);                       // fixed per flow
/// assert_eq!(a.len(), 3);
/// let mut s = a.clone(); s.sort_unstable(); s.dedup();
/// assert_eq!(s.len(), 3);                 // pairwise distinct
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KCounterMap {
    k: usize,
    l: usize,
    seed: u64,
    /// `splitmix64(seed)`, folded into every flow hash. Cached at
    /// construction so the per-flow hot paths skip one mix round; the
    /// produced indices are bit-identical to recomputing it inline.
    mixed_seed: u64,
}

impl KCounterMap {
    /// Create a map of `k` distinct indices out of `l` counters.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > l`: fewer counters than mapped
    /// positions cannot be collision-free.
    pub fn new(k: usize, l: usize, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(k <= l, "k ({k}) cannot exceed the number of counters l ({l})");
        Self { k, l, seed, mixed_seed: splitmix64(seed) }
    }

    /// Number of mapped counters per flow.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of counters.
    #[inline]
    pub fn l(&self) -> usize {
        self.l
    }

    /// The `k` distinct counter indices for `flow_id`.
    pub fn indices(&self, flow_id: u64) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.k);
        self.indices_into(flow_id, &mut out);
        out
    }

    /// Write the `k` distinct indices into `out` (cleared first).
    ///
    /// Allocation-free once `out` has capacity `k`; callers keep a
    /// workhorse buffer. Prefer [`fill_indices`](Self::fill_indices)
    /// where a fixed stack buffer is available.
    pub fn indices_into(&self, flow_id: u64, out: &mut Vec<usize>) {
        out.clear();
        out.resize(self.k, 0);
        self.fill_indices(flow_id, out);
    }

    /// Write the `k` distinct indices into the first `k` slots of `out`
    /// and return `k`. This is the zero-allocation workhorse behind
    /// every other index accessor: the caller provides the storage
    /// (typically `[0usize; K_MAX]` on the stack, or a memo-table row).
    ///
    /// The emitted index sequence is bit-identical to
    /// [`indices`](Self::indices) — same hash stream, same
    /// duplicate-skip order.
    ///
    /// # Panics
    /// Panics if `out.len() < self.k()`.
    #[inline]
    pub fn fill_indices(&self, flow_id: u64, out: &mut [usize]) -> usize {
        assert!(out.len() >= self.k, "fill_indices scratch shorter than k");
        let base = mix64(flow_id ^ self.mixed_seed);
        let mut filled = 0usize;
        let mut round: u64 = 0;
        while filled < self.k {
            let h = mix64(base.wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let idx = bucket(h, self.l);
            if !out[..filled].contains(&idx) {
                out[filled] = idx;
                filled += 1;
            }
            round += 1;
            // With k <= l this terminates with probability 1; the debug
            // guard catches pathological misuse (k close to l with an
            // adversarial seed would still finish, just slowly).
            debug_assert!(round < 64 + 64 * self.k as u64, "excessive duplicate rounds");
        }
        filled
    }

    /// Iterator form of the index mapping: yields the `k` distinct
    /// indices in the same order as [`indices`](Self::indices) without
    /// touching the heap. Bounded by [`K_MAX`] because the dedup state
    /// lives in a fixed stack array.
    ///
    /// # Panics
    /// Panics if `self.k() > K_MAX`.
    #[inline]
    pub fn indices_iter(&self, flow_id: u64) -> KIndicesIter {
        assert!(
            self.k <= K_MAX,
            "indices_iter supports k <= {K_MAX} (got {})",
            self.k
        );
        let mut buf = [0usize; K_MAX];
        let n = self.fill_indices(flow_id, &mut buf);
        KIndicesIter { buf, n, pos: 0 }
    }

    /// The `r`-th (0-based) mapped counter of `flow_id`.
    pub fn index(&self, flow_id: u64, r: usize) -> usize {
        assert!(r < self.k);
        self.indices(flow_id)[r]
    }
}

/// Iterator over a flow's `k` distinct counter indices; see
/// [`KCounterMap::indices_iter`]. The whole mapping is materialized
/// eagerly into a stack buffer (duplicate skipping needs lookback), so
/// iteration itself is branch-cheap.
#[derive(Debug, Clone)]
pub struct KIndicesIter {
    buf: [usize; K_MAX],
    n: usize,
    pos: usize,
}

impl Iterator for KIndicesIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.pos < self.n {
            let v = self.buf[self.pos];
            self.pos += 1;
            Some(v)
        } else {
            None
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.n - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for KIndicesIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn k_greater_than_l_panics() {
        KCounterMap::new(5, 4, 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_panics() {
        KCounterMap::new(0, 4, 0);
    }

    #[test]
    fn k_equals_l_yields_permutation() {
        let map = KCounterMap::new(8, 8, 7);
        let mut idx = map.indices(123);
        idx.sort_unstable();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_and_stable_for_many_flows() {
        let map = KCounterMap::new(3, 101, 1);
        for f in 0..5_000u64 {
            let a = map.indices(f);
            assert_eq!(a.len(), 3);
            let mut s = a.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3, "flow {f} had duplicate counters");
            assert_eq!(a, map.indices(f), "flow {f} mapping not stable");
        }
    }

    #[test]
    fn counter_selection_probability_is_uniform() {
        // Each counter should be selected with probability ~k/L across
        // flows (paper: p_select = 1/L per eviction unit share).
        let l = 64;
        let k = 3;
        let flows = 200_000u64;
        let map = KCounterMap::new(k, l, 99);
        let mut counts = vec![0f64; l];
        let mut buf = Vec::new();
        for f in 0..flows {
            map.indices_into(f, &mut buf);
            for &i in &buf {
                counts[i] += 1.0;
            }
        }
        let expected = flows as f64 * k as f64 / l as f64;
        let chi2: f64 = counts.iter().map(|c| (c - expected).powi(2) / expected).sum();
        // 0.999 quantile of chi2 with 63 dof is ~113.5.
        assert!(chi2 < 114.0, "chi2 = {chi2}");
    }

    #[test]
    fn indices_into_reuses_buffer() {
        let map = KCounterMap::new(4, 50, 3);
        let mut buf = vec![1, 2, 3, 4, 5, 6, 7];
        map.indices_into(9, &mut buf);
        assert_eq!(buf, map.indices(9));
    }

    #[test]
    fn fill_indices_matches_vec_api_bit_for_bit() {
        for (k, l, seed) in [(1usize, 7usize, 0u64), (3, 101, 1), (8, 8, 7), (5, 2048, 0xC0FFEE)] {
            let map = KCounterMap::new(k, l, seed);
            let mut buf = [usize::MAX; K_MAX];
            for f in 0..2_000u64 {
                let n = map.fill_indices(f, &mut buf);
                assert_eq!(n, k);
                assert_eq!(&buf[..n], map.indices(f).as_slice(), "flow {f}");
            }
        }
    }

    #[test]
    fn indices_iter_matches_vec_api() {
        let map = KCounterMap::new(4, 333, 9);
        for f in 0..1_000u64 {
            let it = map.indices_iter(f);
            assert_eq!(it.len(), 4);
            assert_eq!(it.collect::<Vec<_>>(), map.indices(f), "flow {f}");
        }
    }

    #[test]
    #[should_panic(expected = "scratch shorter than k")]
    fn fill_indices_rejects_short_scratch() {
        let map = KCounterMap::new(4, 50, 3);
        let mut buf = [0usize; 3];
        map.fill_indices(1, &mut buf);
    }

    #[test]
    fn different_seeds_give_different_mappings() {
        let a = KCounterMap::new(3, 1000, 1);
        let b = KCounterMap::new(3, 1000, 2);
        let differs = (0..100u64).any(|f| a.indices(f) != b.indices(f));
        assert!(differs);
    }
}
