//! Flow-ID generation from the 5-tuple packet header.
//!
//! The paper (§6.1): "After capturing each packet, we extract the
//! information of the 5-tuple packet header to artificially generate
//! its unique flow ID, using SHA-1 and APHash functions." We follow the
//! same recipe: the 13-byte canonical 5-tuple encoding is hashed with
//! SHA-1 (upper 64 bits of the digest) and with the 64-bit AP hash, and
//! the two are combined so that a weakness in either function cannot
//! collapse the ID space.

use crate::{aphash::aphash64, sha1::Sha1};

/// Canonical 13-byte encoding of a 5-tuple:
/// `src_ip(4) | dst_ip(4) | src_port(2) | dst_port(2) | proto(1)`,
/// all big-endian.
pub fn encode_five_tuple(
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    proto: u8,
) -> [u8; 13] {
    let mut buf = [0u8; 13];
    buf[0..4].copy_from_slice(&src_ip.to_be_bytes());
    buf[4..8].copy_from_slice(&dst_ip.to_be_bytes());
    buf[8..10].copy_from_slice(&src_port.to_be_bytes());
    buf[10..12].copy_from_slice(&dst_port.to_be_bytes());
    buf[12] = proto;
    buf
}

/// 64-bit flow ID from a canonical 5-tuple encoding.
pub fn flow_id_from_bytes(tuple: &[u8]) -> u64 {
    Sha1::digest64(tuple) ^ aphash64(tuple).rotate_left(32)
}

/// 64-bit flow ID straight from 5-tuple fields.
///
/// ```
/// use hashkit::flowid::flow_id;
/// let a = flow_id(0x0A000001, 0x0A000002, 1234, 80, 6);
/// let b = flow_id(0x0A000001, 0x0A000002, 1234, 80, 6);
/// assert_eq!(a, b);
/// // Reversed direction is a different flow.
/// let c = flow_id(0x0A000002, 0x0A000001, 80, 1234, 6);
/// assert_ne!(a, c);
/// ```
pub fn flow_id(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, proto: u8) -> u64 {
    flow_id_from_bytes(&encode_five_tuple(src_ip, dst_ip, src_port, dst_port, proto))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_canonical() {
        let e = encode_five_tuple(0x01020304, 0x05060708, 0x1122, 0x3344, 17);
        assert_eq!(
            e,
            [1, 2, 3, 4, 5, 6, 7, 8, 0x11, 0x22, 0x33, 0x44, 17]
        );
    }

    #[test]
    fn every_field_matters() {
        let base = flow_id(1, 2, 3, 4, 6);
        assert_ne!(base, flow_id(9, 2, 3, 4, 6));
        assert_ne!(base, flow_id(1, 9, 3, 4, 6));
        assert_ne!(base, flow_id(1, 2, 9, 4, 6));
        assert_ne!(base, flow_id(1, 2, 3, 9, 6));
        assert_ne!(base, flow_id(1, 2, 3, 4, 17));
    }

    #[test]
    fn no_collisions_on_port_scan_corpus() {
        // 65k flows differing only in source port: the hardest nearby
        // inputs. A 64-bit ID space must not collide here.
        let mut seen = std::collections::HashSet::with_capacity(65536);
        for port in 0..=u16::MAX {
            assert!(
                seen.insert(flow_id(0x0A000001, 0x08080808, port, 443, 6)),
                "collision at port {port}"
            );
        }
    }
}
