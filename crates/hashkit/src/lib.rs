//! # hashkit — hash functions and k-way counter mapping for CAESAR
//!
//! The CAESAR paper generates a unique flow ID from the 5-tuple packet
//! header "using SHA-1 and APHash functions" (§6.1), and maps every flow
//! to `k` *distinct* ("collision-free") off-chip SRAM counters with `k`
//! different hash functions (§3.1).
//!
//! This crate provides, from scratch and with no external dependencies:
//!
//! * [`sha1::Sha1`] — the full SHA-1 digest (FIPS 180-1);
//! * [`aphash::aphash`] / [`aphash::aphash64`] — Arash Partow's AP hash;
//! * [`fnv::fnv1a64`] — FNV-1a, used as a cheap secondary mixer;
//! * [`mix::splitmix64`] / [`mix::mix64`] — fast avalanche finalizers,
//!   the workhorses for seeded per-flow hash families;
//! * [`kmap::KCounterMap`] — the deterministic map `flow_id -> k`
//!   distinct counter indices in `[0, L)` required by both CAESAR and
//!   the RCS baseline;
//! * [`flowid`] — 5-tuple → 64-bit flow ID generation exactly in the
//!   spirit of the paper (SHA-1 high half XOR APHash low half).
//!
//! All functions are deterministic, portable and endian-stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aphash;
pub mod crc32;
pub mod flowid;
pub mod flowmap;
pub mod fnv;
pub mod idhash;
pub mod kmap;
pub mod mix;
pub mod murmur;
pub mod sha1;

pub use flowmap::FlowSlotMap;
pub use idhash::{IdHashMap, IdHashSet};
pub use kmap::{KCounterMap, KIndicesIter, HASH_LANES, K_MAX};

/// A seeded 64-bit hash function over byte slices.
///
/// Implementors must be pure: the same `(seed, data)` pair always
/// produces the same output on every platform.
pub trait Hasher64 {
    /// Hash `data` under this function's fixed seed.
    fn hash64(&self, data: &[u8]) -> u64;
}

/// A family of independent seeded hash functions, indexed by `u64` seed.
///
/// Used to instantiate the `k` "different collision-free hash functions"
/// of the paper: member `i` of the family is an independent function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixFamily {
    seed: u64,
}

impl MixFamily {
    /// Create a family derived from a master `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Hash a 64-bit key under member `i` of the family.
    #[inline]
    pub fn hash_u64(&self, i: u64, key: u64) -> u64 {
        // Two rounds of splitmix-style finalization keyed by both the
        // family seed and the member index give independent, well mixed
        // outputs for adjacent members.
        let k = key ^ mix::splitmix64(self.seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        mix::mix64(k)
    }
}

impl Hasher64 for MixFamily {
    fn hash64(&self, data: &[u8]) -> u64 {
        let mut h = self.seed;
        for chunk in data.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            h = mix::mix64(h ^ u64::from_le_bytes(buf));
        }
        mix::mix64(h ^ data.len() as u64)
    }
}

/// SHA-1 as a [`Hasher64`] (seed prepended to the message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sha1Hasher {
    /// Seed mixed in ahead of the data.
    pub seed: u64,
}

impl Hasher64 for Sha1Hasher {
    fn hash64(&self, data: &[u8]) -> u64 {
        let mut h = sha1::Sha1::new();
        h.update(&self.seed.to_le_bytes());
        h.update(data);
        let d = h.finalize();
        u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
    }
}

/// MurmurHash3 x64-128 (first half) as a [`Hasher64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Murmur3Hasher {
    /// Murmur seed.
    pub seed: u32,
}

impl Hasher64 for Murmur3Hasher {
    fn hash64(&self, data: &[u8]) -> u64 {
        murmur::murmur3_64(data, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_family_members_differ() {
        let fam = MixFamily::new(42);
        let a = fam.hash_u64(0, 12345);
        let b = fam.hash_u64(1, 12345);
        let c = fam.hash_u64(2, 12345);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn mix_family_deterministic() {
        let f1 = MixFamily::new(7);
        let f2 = MixFamily::new(7);
        assert_eq!(f1.hash_u64(3, 99), f2.hash_u64(3, 99));
        assert_eq!(f1.hash64(b"flow"), f2.hash64(b"flow"));
    }

    #[test]
    fn mix_family_seed_changes_output() {
        let f1 = MixFamily::new(1);
        let f2 = MixFamily::new(2);
        assert_ne!(f1.hash_u64(0, 5), f2.hash_u64(0, 5));
    }

    #[test]
    fn hasher64_impls_are_deterministic_and_seeded() {
        let inputs: [&[u8]; 3] = [b"", b"flow", b"per-flow measurement"];
        for &data in &inputs {
            assert_eq!(Sha1Hasher { seed: 1 }.hash64(data), Sha1Hasher { seed: 1 }.hash64(data));
            assert_ne!(Sha1Hasher { seed: 1 }.hash64(data), Sha1Hasher { seed: 2 }.hash64(data));
            assert_eq!(
                Murmur3Hasher { seed: 7 }.hash64(data),
                Murmur3Hasher { seed: 7 }.hash64(data)
            );
        }
        // The three families disagree with each other (independence
        // smoke test).
        let a = Sha1Hasher { seed: 0 }.hash64(b"x");
        let b = Murmur3Hasher { seed: 0 }.hash64(b"x");
        let c = MixFamily::new(0).hash64(b"x");
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn hash64_handles_unaligned_lengths() {
        let fam = MixFamily::new(0);
        // Every length from 0..=17 must hash without panicking and the
        // outputs must be pairwise distinct for distinct inputs.
        let mut seen = std::collections::HashSet::new();
        for len in 0..=17usize {
            let data: Vec<u8> = (0..len as u8).collect();
            assert!(seen.insert(fam.hash64(&data)), "collision at len {len}");
        }
    }
}
