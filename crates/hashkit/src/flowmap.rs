//! A bounded-capacity open-addressing `flow -> slot` index.
//!
//! The cache table resolves one `flow_id -> slot` lookup per packet —
//! the single hottest map operation in the simulator. A general-purpose
//! `HashMap` (even behind [`crate::IdHashMap`]'s identity hasher) pays
//! for growth machinery, SwissTable control groups, and bucket
//! indirection on every probe. The cache's index needs none of that:
//! its population is bounded by the entry count fixed at construction,
//! keys are 64-bit flow IDs, and values are small slot numbers.
//!
//! [`FlowSlotMap`] exploits those bounds: a flat power-of-two table at
//! load factor ≤ 1/4, Fibonacci-hashed home buckets, and linear probing
//! with **backward-shift deletion** (a removal pulls displaced chain
//! entries back toward their home buckets instead of leaving a
//! tombstone), so lookups touch a single flat bucket array with no
//! marker walking, probe chains never degrade under churn, and the
//! table never reallocates after construction.
//!
//! The map is **not observable** in anything it indexes for: iteration
//! order is arbitrary, exactly like a hash map's. Callers that need
//! deterministic output must order by their own data, not by this map.

/// Bucket marker: never a legal slot value.
const EMPTY: u32 = u32::MAX;

/// Largest slot value storable (`u32::MAX - 1`); the largest value is
/// reserved as the empty-bucket marker.
pub const FLOW_SLOT_MAX: u32 = u32::MAX - 1;

/// Fibonacci multiplier (odd part of 2^64 / φ) — spreads structured
/// keys (test traces use small consecutive flow IDs) across buckets
/// without assuming the pre-hashed uniformity real flow IDs have.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// One probe bucket: a key and its bound slot (or [`EMPTY`]). 16
/// bytes, so a probe touches a single cache line for both fields.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    key: u64,
    slot: u32,
}

const VACANT: Bucket = Bucket { key: 0, slot: EMPTY };

/// Fixed-capacity open-addressing map from `u64` flow IDs to `u32`
/// slot numbers. See the module docs for the design.
#[derive(Debug, Clone)]
pub struct FlowSlotMap {
    /// Power-of-two bucket array; every index is taken `& (len - 1)`,
    /// which also lets the compiler elide the bounds checks.
    buckets: Box<[Bucket]>,
    shift: u32,
    len: usize,
}

impl FlowSlotMap {
    /// Build a map that can hold up to `max_entries` bindings without
    /// ever reallocating. The backing table is sized to four times the
    /// capacity (rounded up to a power of two), keeping probe chains
    /// near length one at every legal fill level — the table trades a
    /// few KiB of memory for a hot path that almost never probes twice.
    pub fn with_capacity(max_entries: usize) -> Self {
        let cap = (max_entries.max(1) * 4).next_power_of_two();
        Self {
            buckets: vec![VACANT; cap].into_boxed_slice(),
            shift: 64 - cap.trailing_zeros(),
            len: 0,
        }
    }

    /// Number of live bindings.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no flow is bound.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Home bucket of `flow`.
    #[inline]
    fn home(&self, flow: u64) -> usize {
        (flow.wrapping_mul(PHI) >> self.shift) as usize
    }

    /// The slot bound to `flow`, if any.
    #[inline]
    pub fn get(&self, flow: u64) -> Option<u32> {
        let buckets = &self.buckets;
        let mask = buckets.len() - 1;
        let mut i = self.home(flow);
        loop {
            let b = buckets[i & mask];
            if b.key == flow && b.slot != EMPTY {
                return Some(b.slot);
            }
            if b.slot == EMPTY {
                return None;
            }
            i += 1;
        }
    }

    /// Bind `flow` to `slot`, returning the previously bound slot if
    /// the flow was already present (its binding is replaced).
    ///
    /// # Panics
    /// Panics if inserting a new flow would exceed the construction
    /// capacity, or if `slot > FLOW_SLOT_MAX`.
    pub fn insert(&mut self, flow: u64, slot: u32) -> Option<u32> {
        assert!(slot <= FLOW_SLOT_MAX, "slot {slot} collides with the empty marker");
        let mask = self.buckets.len() - 1;
        let mut i = self.home(flow);
        loop {
            let b = self.buckets[i & mask];
            if b.slot == EMPTY {
                assert!(
                    self.len <= mask / 2,
                    "FlowSlotMap over capacity: {} live bindings",
                    self.len
                );
                self.buckets[i & mask] = Bucket { key: flow, slot };
                self.len += 1;
                return None;
            }
            if b.key == flow {
                self.buckets[i & mask].slot = slot;
                return Some(b.slot);
            }
            i += 1;
        }
    }

    /// Unbind `flow`, returning its slot if it was present.
    pub fn remove(&mut self, flow: u64) -> Option<u32> {
        let mask = self.buckets.len() - 1;
        let mut i = self.home(flow);
        loop {
            let b = self.buckets[i & mask];
            if b.slot == EMPTY {
                return None;
            }
            if b.key == flow {
                self.backward_shift(i & mask);
                self.len -= 1;
                return Some(b.slot);
            }
            i += 1;
        }
    }

    /// Close the gap opened at bucket `gap`: walk the probe chain that
    /// follows and pull each entry displaced past the gap back into it,
    /// so no lookup's chain is ever severed and no tombstone is needed.
    fn backward_shift(&mut self, mut gap: usize) {
        let mask = self.buckets.len() - 1;
        let mut j = gap;
        loop {
            j = (j + 1) & mask;
            let b = self.buckets[j];
            if b.slot == EMPTY {
                break;
            }
            let home = self.home(b.key);
            // The entry at `j` may move into the gap iff its home
            // bucket lies at or before the gap along its probe path —
            // i.e. its displacement covers the gap.
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(gap) & mask) {
                self.buckets[gap] = b;
                gap = j;
            }
        }
        self.buckets[gap] = VACANT;
    }

    /// Drop every binding (capacity is retained).
    pub fn clear(&mut self) {
        self.buckets.fill(VACANT);
        self.len = 0;
    }

    /// Iterate live `(flow, slot)` bindings in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.buckets
            .iter()
            .filter(|b| b.slot != EMPTY)
            .map(|b| (b.key, b.slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn basic_bindings() {
        let mut m = FlowSlotMap::with_capacity(8);
        assert!(m.is_empty());
        assert_eq!(m.insert(7, 3), None);
        assert_eq!(m.insert(0, 0), None); // flow 0 is a legal key
        assert_eq!(m.get(7), Some(3));
        assert_eq!(m.get(0), Some(0));
        assert_eq!(m.get(8), None);
        assert_eq!(m.insert(7, 5), Some(3), "rebind returns old slot");
        assert_eq!(m.get(7), Some(5));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(7), Some(5));
        assert_eq!(m.remove(7), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn churn_matches_reference_model() {
        // Random insert/remove/get churn against std HashMap; keys are
        // drawn from a small universe to force collisions, removals,
        // and backward shifts across wrapped probe chains.
        let mut m = FlowSlotMap::with_capacity(64);
        let mut model: HashMap<u64, u32> = HashMap::new();
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for step in 0..200_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let flow = x % 97;
            match x >> 62 {
                0 | 1 => {
                    if model.len() < 64 || model.contains_key(&flow) {
                        let slot = (step % 1000) as u32;
                        assert_eq!(m.insert(flow, slot), model.insert(flow, slot));
                    }
                }
                2 => assert_eq!(m.remove(flow), model.remove(&flow)),
                _ => assert_eq!(m.get(flow), model.get(&flow).copied()),
            }
            assert_eq!(m.len(), model.len());
        }
        let mut got: Vec<_> = m.iter().collect();
        let mut want: Vec<_> = model.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn full_population_churn() {
        // The cache's replacement regime: the map sits at its exact
        // construction capacity while every step removes one flow and
        // inserts another. Must never panic or lose a binding.
        let mut m = FlowSlotMap::with_capacity(32);
        let mut model: HashMap<u64, u32> = HashMap::new();
        for f in 0..32u64 {
            m.insert(f, f as u32);
            model.insert(f, f as u32);
        }
        let mut x = 7u64;
        for next_flow in 32u64..100_032 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let victim = *model.keys().nth((x % 32) as usize % model.len()).unwrap();
            let slot = model[&victim];
            assert_eq!(m.remove(victim), model.remove(&victim));
            assert_eq!(m.insert(next_flow, slot), model.insert(next_flow, slot));
            assert_eq!(m.len(), 32);
        }
        for (&f, &s) in &model {
            assert_eq!(m.get(f), Some(s));
        }
    }

    #[test]
    fn clear_resets() {
        let mut m = FlowSlotMap::with_capacity(4);
        m.insert(1, 1);
        m.insert(2, 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
        m.insert(3, 3);
        assert_eq!(m.get(3), Some(3));
    }

    #[test]
    fn colliding_keys_probe_through() {
        // Keys equal mod 2^k collide under low-bit bucketing; Fibonacci
        // hashing must still resolve them, including through deletes.
        let mut m = FlowSlotMap::with_capacity(16);
        let keys: Vec<u64> = (0..16u64).map(|i| i << 32).collect();
        for (s, &k) in keys.iter().enumerate() {
            m.insert(k, s as u32);
        }
        for (s, &k) in keys.iter().enumerate() {
            assert_eq!(m.get(k), Some(s as u32));
        }
        for &k in keys.iter().step_by(2) {
            m.remove(k);
        }
        for (s, &k) in keys.iter().enumerate() {
            let want = if s % 2 == 0 { None } else { Some(s as u32) };
            assert_eq!(m.get(k), want);
        }
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn over_capacity_rejected() {
        let mut m = FlowSlotMap::with_capacity(4);
        for f in 0..100u64 {
            m.insert(f, 0);
        }
    }

    #[test]
    #[should_panic(expected = "collides with the empty marker")]
    fn marker_slot_rejected() {
        let mut m = FlowSlotMap::with_capacity(4);
        m.insert(1, u32::MAX);
    }
}
