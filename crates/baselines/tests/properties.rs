//! Property tests for the baseline schemes, on the deterministic
//! `support::testkit` harness.

use baselines::braids::min_sum_decode;
use baselines::{DiscoScale, LossModel, Rcs, RcsConfig, SacCounter};
use hashkit::KCounterMap;
use support::rand::{rngs::StdRng, Rng, SeedableRng};
use support::testkit::{for_each_seed, GenExt};

/// DISCO's floor-compression property holds for any calibration:
/// `d(compress_floor(t)) ≤ t < d(compress_floor(t)+1)`.
#[test]
fn disco_floor_property() {
    for_each_seed(|rng| {
        let bits = rng.gen_range(2u32..16);
        let max_value = rng.gen_range(100.0f64..1e8);
        let t = rng.gen_range(0.0f64..1e8);
        let s = DiscoScale::for_bits(bits, max_value);
        let t = t.min(max_value);
        let c = s.compress_floor(t);
        assert!(s.decompress(c) <= t + 1e-6);
        if c < s.c_max() {
            assert!(s.decompress(c + 1) > t - 1e-6);
        }
    });
}

/// DISCO decompress is monotone for any geometry.
#[test]
fn disco_monotone() {
    for_each_seed(|rng| {
        let bits = rng.gen_range(1u32..12);
        let max_value = rng.gen_range(10.0f64..1e7);
        let s = DiscoScale::for_bits(bits, max_value);
        for c in 0..s.c_max() {
            assert!(s.decompress(c + 1) > s.decompress(c));
        }
    });
}

/// Bulk DISCO updates never exceed the scale ceiling and never
/// move the counter backwards.
#[test]
fn disco_bulk_bounded() {
    for_each_seed(|rng| {
        let bits = rng.gen_range(2u32..10);
        let start = rng.gen_range(0u64..1024);
        let units = rng.gen_range(0u64..100_000);
        let seed: u64 = rng.gen();
        let s = DiscoScale::for_bits(bits, 1e6);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let start = start.min(s.c_max());
        let c = s.apply_bulk(start, units, &mut rng2);
        assert!(c >= start);
        assert!(c <= s.c_max());
    });
}

/// SAC estimates never exceed the representable maximum and mode-0
/// counting is exact.
#[test]
fn sac_bounded_and_exact_in_mode_zero() {
    for_each_seed(|rng| {
        let a_bits = rng.gen_range(2u32..12);
        let mode_bits = rng.gen_range(1u32..6);
        let r = rng.gen_range(1u32..4);
        let units = rng.gen_range(0u64..100_000);
        let seed: u64 = rng.gen();
        let mut c = SacCounter::new(a_bits, mode_bits, r);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let exact_limit = (1u64 << a_bits) - 1;
        c.add(units, &mut rng2);
        assert!(c.estimate() <= c.max_value() + 1e-9);
        if units <= exact_limit {
            assert_eq!(c.estimate(), units as f64);
        }
    });
}

/// Lossless RCS conserves every packet into the counter array and
/// its CSM estimates are finite for every flow.
#[test]
fn rcs_conserves() {
    for_each_seed(|rng| {
        let flows = rng.vec_with(1..3000, |r| r.gen_range(0u64..64));
        let counters = rng.gen_range(8usize..256);
        let k = rng.gen_range(1usize..6);
        let seed: u64 = rng.gen();
        let k = k.min(counters);
        let mut r = Rcs::new(RcsConfig {
            counters,
            k,
            loss: LossModel::Lossless,
            seed,
        });
        for &f in &flows {
            r.record(f);
        }
        assert_eq!(r.stats().recorded as usize, flows.len());
        for f in 0..64u64 {
            assert!(r.estimate_csm(f).is_finite());
        }
    });
}

/// min-sum decoding of a noiseless system with dedicated counters
/// (k distinct counters per id, no sharing) is exact.
#[test]
fn min_sum_exact_on_disjoint_graphs() {
    for_each_seed(|rng| {
        let sizes = rng.vec_with(1..40, |r| r.gen_range(0u64..10_000));
        // Give each id its own pair of counters: trivially decodable.
        let n = sizes.len();
        let mut values = vec![0u64; n * 2];
        for (i, &x) in sizes.iter().enumerate() {
            values[i * 2] = x;
            values[i * 2 + 1] = x;
        }
        let ids: Vec<u64> = (0..n as u64).collect();
        let est = min_sum_decode(
            &values,
            &ids,
            |id, buf| {
                buf.clear();
                buf.push(id as usize * 2);
                buf.push(id as usize * 2 + 1);
            },
            2,
            10,
            0.0,
        );
        for (i, &x) in sizes.iter().enumerate() {
            assert!((est[i] - x as f64).abs() < 1e-9, "id {}: {} vs {}", i, x, est[i]);
        }
    });
}

/// min-sum estimates are always within [min_size, max counter].
#[test]
fn min_sum_estimates_bounded() {
    for_each_seed(|rng| {
        let sizes = rng.vec_with(2..60, |r| r.gen_range(1u64..500));
        let counters = rng.gen_range(4usize..64);
        let seed: u64 = rng.gen();
        let map = KCounterMap::new(2, counters, seed);
        let mut values = vec![0u64; counters];
        let ids: Vec<u64> = (0..sizes.len() as u64).collect();
        for (&id, &x) in ids.iter().zip(&sizes) {
            for idx in map.indices(id) {
                values[idx] += x; // worst case: full mass to each (CB adds per counter)
            }
        }
        let max_counter = *values.iter().max().expect("non-empty") as f64;
        let est = min_sum_decode(
            &values,
            &ids,
            |id, buf| map.indices_into(id, buf),
            2,
            30,
            1.0,
        );
        for &e in &est {
            assert!(e >= 1.0 - 1e-9);
            assert!(e <= max_counter + 1e-9);
            assert!(e.is_finite());
        }
    });
}
