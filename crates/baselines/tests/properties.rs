//! Property tests for the baseline schemes.

use baselines::braids::min_sum_decode;
use baselines::{DiscoScale, LossModel, Rcs, RcsConfig, SacCounter};
use hashkit::KCounterMap;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    /// DISCO's floor-compression property holds for any calibration:
    /// `d(compress_floor(t)) ≤ t < d(compress_floor(t)+1)`.
    #[test]
    fn disco_floor_property(
        bits in 2u32..16,
        max_value in 100.0f64..1e8,
        t in 0.0f64..1e8,
    ) {
        let s = DiscoScale::for_bits(bits, max_value);
        let t = t.min(max_value);
        let c = s.compress_floor(t);
        prop_assert!(s.decompress(c) <= t + 1e-6);
        if c < s.c_max() {
            prop_assert!(s.decompress(c + 1) > t - 1e-6);
        }
    }

    /// DISCO decompress is monotone for any geometry.
    #[test]
    fn disco_monotone(bits in 1u32..12, max_value in 10.0f64..1e7) {
        let s = DiscoScale::for_bits(bits, max_value);
        for c in 0..s.c_max() {
            prop_assert!(s.decompress(c + 1) > s.decompress(c));
        }
    }

    /// Bulk DISCO updates never exceed the scale ceiling and never
    /// move the counter backwards.
    #[test]
    fn disco_bulk_bounded(
        bits in 2u32..10,
        start in 0u64..1024,
        units in 0u64..100_000,
        seed in any::<u64>(),
    ) {
        let s = DiscoScale::for_bits(bits, 1e6);
        let mut rng = StdRng::seed_from_u64(seed);
        let start = start.min(s.c_max());
        let c = s.apply_bulk(start, units, &mut rng);
        prop_assert!(c >= start);
        prop_assert!(c <= s.c_max());
    }

    /// SAC estimates never exceed the representable maximum and mode-0
    /// counting is exact.
    #[test]
    fn sac_bounded_and_exact_in_mode_zero(
        a_bits in 2u32..12,
        mode_bits in 1u32..6,
        r in 1u32..4,
        units in 0u64..100_000,
        seed in any::<u64>(),
    ) {
        let mut c = SacCounter::new(a_bits, mode_bits, r);
        let mut rng = StdRng::seed_from_u64(seed);
        let exact_limit = (1u64 << a_bits) - 1;
        c.add(units, &mut rng);
        prop_assert!(c.estimate() <= c.max_value() + 1e-9);
        if units <= exact_limit {
            prop_assert_eq!(c.estimate(), units as f64);
        }
    }

    /// Lossless RCS conserves every packet into the counter array and
    /// its CSM estimates are finite for every flow.
    #[test]
    fn rcs_conserves(
        flows in prop::collection::vec(0u64..64, 1..3000),
        counters in 8usize..256,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let k = k.min(counters);
        let mut r = Rcs::new(RcsConfig {
            counters,
            k,
            loss: LossModel::Lossless,
            seed,
        });
        for &f in &flows {
            r.record(f);
        }
        prop_assert_eq!(r.stats().recorded as usize, flows.len());
        for f in 0..64u64 {
            prop_assert!(r.estimate_csm(f).is_finite());
        }
    }

    /// min-sum decoding of a noiseless system with dedicated counters
    /// (k distinct counters per id, no sharing) is exact.
    #[test]
    fn min_sum_exact_on_disjoint_graphs(
        sizes in prop::collection::vec(0u64..10_000, 1..40),
        seed in any::<u64>(),
    ) {
        // Give each id its own pair of counters: trivially decodable.
        let n = sizes.len();
        let mut values = vec![0u64; n * 2];
        for (i, &x) in sizes.iter().enumerate() {
            values[i * 2] = x;
            values[i * 2 + 1] = x;
        }
        let ids: Vec<u64> = (0..n as u64).collect();
        let _ = seed;
        let est = min_sum_decode(
            &values,
            &ids,
            |id, buf| {
                buf.clear();
                buf.push(id as usize * 2);
                buf.push(id as usize * 2 + 1);
            },
            2,
            10,
            0.0,
        );
        for (i, &x) in sizes.iter().enumerate() {
            prop_assert!((est[i] - x as f64).abs() < 1e-9, "id {}: {} vs {}", i, x, est[i]);
        }
    }

    /// min-sum estimates are always within [min_size, max counter].
    #[test]
    fn min_sum_estimates_bounded(
        sizes in prop::collection::vec(1u64..500, 2..60),
        counters in 4usize..64,
        seed in any::<u64>(),
    ) {
        let map = KCounterMap::new(2, counters, seed);
        let mut values = vec![0u64; counters];
        let ids: Vec<u64> = (0..sizes.len() as u64).collect();
        for (&id, &x) in ids.iter().zip(&sizes) {
            for idx in map.indices(id) {
                values[idx] += x; // worst case: full mass to each (CB adds per counter)
            }
        }
        let max_counter = *values.iter().max().expect("non-empty") as f64;
        let est = min_sum_decode(
            &values,
            &ids,
            |id, buf| map.indices_into(id, buf),
            2,
            30,
            1.0,
        );
        for &e in &est {
            prop_assert!(e >= 1.0 - 1e-9);
            prop_assert!(e <= max_counter + 1e-9);
            prop_assert!(e.is_finite());
        }
    }
}
