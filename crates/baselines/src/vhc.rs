//! VHC — Virtual HyperLogLog Counter (Zhou et al., GLOBECOM 2017;
//! §2.1 ref \[41\]).
//!
//! The most compact member of the counter-sharing family the paper
//! surveys: a pool of `m` tiny (5-bit) HyperLogLog registers is shared
//! by all flows; each flow owns a *virtual* counter of `s` registers
//! drawn from the pool by hashing. A packet picks one of its flow's
//! virtual registers uniformly, draws a random 64-bit value, and
//! max-updates the register with the value's geometric rank — exactly
//! one register write per packet ("slightly more than 1 memory access
//! per packet", §2.1).
//!
//! Estimation mirrors CAESAR's de-noising at the cardinality level:
//! the flow's raw HLL estimate counts its own packets plus the pool's
//! background, so
//!
//! ```text
//! n̂_f = m·s/(m−s) · ( Ê_s/s − Ê_m/m )
//! ```
//!
//! where `Ê_s` is the HLL estimate over the virtual registers and
//! `Ê_m` over the whole pool.

use hashkit::mix::bucket;
use hashkit::MixFamily;
use support::rand::{rngs::StdRng, Rng, SeedableRng};

/// VHC configuration.
#[derive(Debug, Clone, Copy)]
pub struct VhcConfig {
    /// Physical registers in the shared pool (`m`).
    pub registers: usize,
    /// Virtual registers per flow (`s`), a power of two ≥ 16.
    pub virtual_registers: usize,
    /// Seed for register selection and packet randomness.
    pub seed: u64,
}

impl Default for VhcConfig {
    fn default() -> Self {
        Self {
            registers: 1 << 16,
            virtual_registers: 256,
            seed: 0x7AC,
        }
    }
}

impl VhcConfig {
    /// Pool memory in bits (5-bit HLL registers).
    pub fn memory_bits(&self) -> u64 {
        self.registers as u64 * 5
    }
}

/// The VHC sketch.
///
/// ```
/// use baselines::{Vhc, VhcConfig};
/// let mut vhc = Vhc::new(VhcConfig { registers: 4096, virtual_registers: 256, seed: 1 });
/// for _ in 0..20_000 {
///     vhc.record(9);
/// }
/// let est = vhc.query(9);
/// assert!((est - 20_000.0).abs() / 20_000.0 < 0.25);
/// ```
#[derive(Debug)]
pub struct Vhc {
    cfg: VhcConfig,
    registers: Vec<u8>,
    family: MixFamily,
    rng: StdRng,
    packets: u64,
}

/// HyperLogLog bias-correction constant for `s` registers.
fn alpha(s: usize) -> f64 {
    match s {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / s as f64),
    }
}

/// Raw HLL estimate with the standard small-range (linear counting)
/// correction. The classic intermediate bias zone (2.5·s to ~5·s
/// items) is left uncorrected, as in the original HLL — VHC inherits
/// it; HLL++-style empirical correction is out of scope for a
/// baseline.
fn hll_estimate(regs: impl Iterator<Item = u8>, s: usize) -> f64 {
    let mut inv_sum = 0.0f64;
    let mut zeros = 0usize;
    for r in regs {
        inv_sum += 2f64.powi(-(r as i32));
        if r == 0 {
            zeros += 1;
        }
    }
    let raw = alpha(s) * (s as f64) * (s as f64) / inv_sum;
    if raw <= 2.5 * s as f64 && zeros > 0 {
        s as f64 * (s as f64 / zeros as f64).ln()
    } else {
        raw
    }
}

impl Vhc {
    /// Build an empty sketch.
    ///
    /// # Panics
    /// Panics if `s < 16`, `s` is not a power of two, or `s ≥ m`.
    pub fn new(cfg: VhcConfig) -> Self {
        let s = cfg.virtual_registers;
        assert!(s >= 16, "need at least 16 virtual registers");
        assert!(s.is_power_of_two(), "virtual registers must be a power of two");
        assert!(s < cfg.registers, "virtual set must be smaller than the pool");
        Self {
            registers: vec![0; cfg.registers],
            family: MixFamily::new(cfg.seed ^ 0x7AC1),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x7AC2),
            packets: 0,
            cfg,
        }
    }

    /// The `j`-th virtual register of `flow` — direct hashing with
    /// replacement, as in the original VHC (the odd same-register
    /// repeat within a virtual counter is harmless under max-merge and
    /// keeps the per-packet work O(1)).
    #[inline]
    fn register_of(&self, flow: u64, j: usize) -> usize {
        bucket(self.family.hash_u64(j as u64, flow), self.cfg.registers)
    }

    /// The configuration in use.
    pub fn config(&self) -> &VhcConfig {
        &self.cfg
    }

    /// Packets recorded so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Record one packet of `flow`: one register max-update.
    pub fn record(&mut self, flow: u64) {
        self.packets += 1;
        let s = self.cfg.virtual_registers;
        let pick = self.rng.gen_range(0..s);
        let reg = self.register_of(flow, pick);
        // Geometric rank of a fresh random value: ρ = leading position
        // of the first 1 bit, capped to the 5-bit register range.
        let rank = (self.rng.gen::<u64>().trailing_zeros() + 1).min(31) as u8;
        if rank > self.registers[reg] {
            self.registers[reg] = rank;
        }
    }

    /// Estimated size of `flow` (clamped non-negative). Recomputes the
    /// pool-wide estimate on every call; when querying many flows,
    /// compute [`Vhc::total_estimate`] once and use
    /// [`Vhc::query_with_total`].
    pub fn query(&self, flow: u64) -> f64 {
        self.query_with_total(flow, self.total_estimate())
    }

    /// Estimated size of `flow` given a precomputed pool estimate
    /// (from [`Vhc::total_estimate`]).
    pub fn query_with_total(&self, flow: u64, total: f64) -> f64 {
        let m = self.cfg.registers as f64;
        let s = self.cfg.virtual_registers;
        let own = hll_estimate(
            (0..s).map(|j| self.registers[self.register_of(flow, j)]),
            s,
        );
        let sf = s as f64;
        let est = m * sf / (m - sf) * (own / sf - total / m);
        est.max(0.0)
    }

    /// HLL estimate of the total packet population (diagnostic).
    pub fn total_estimate(&self) -> f64 {
        hll_estimate(self.registers.iter().copied(), self.cfg.registers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(v: &mut Vhc, flow: u64, packets: u64) {
        for _ in 0..packets {
            v.record(flow);
        }
    }

    #[test]
    fn single_flow_tracks_hll_accuracy() {
        // One flow, idle pool: error is the HLL bound ~1.04/√s ≈ 6.5%.
        let mut v = Vhc::new(VhcConfig::default());
        fill(&mut v, 42, 100_000);
        let est = v.query(42);
        let rel = (est - 100_000.0).abs() / 100_000.0;
        assert!(rel < 0.2, "est = {est}");
    }

    #[test]
    fn denoises_background_traffic() {
        let mut v = Vhc::new(VhcConfig::default());
        // Background: 2000 flows of 100 packets each fill the pool.
        for f in 0..2000u64 {
            fill(&mut v, f, 100);
        }
        fill(&mut v, 0xE1E, 50_000);
        let est = v.query(0xE1E);
        let rel = (est - 50_000.0).abs() / 50_000.0;
        assert!(rel < 0.3, "est = {est}");
    }

    #[test]
    fn unseen_flow_reads_near_zero() {
        let mut v = Vhc::new(VhcConfig::default());
        for f in 0..500u64 {
            fill(&mut v, f, 200);
        }
        let est = v.query(0xDEAD_BEEF);
        // The de-noising subtracts the expected background; an unseen
        // flow's estimate must be small relative to real flows.
        assert!(est < 100.0, "est = {est}");
    }

    #[test]
    fn total_estimate_tracks_population() {
        // Needs (a) a population past the classic HLL bias zone
        // (2.5m..5m items) and (b) enough flows that every register is
        // in some flow's virtual set — uncovered registers read as
        // zeros and depress the pool estimate (a real VHC artifact at
        // tiny flow counts, irrelevant at trace scale).
        let mut v = Vhc::new(VhcConfig::default());
        for f in 0..5000u64 {
            fill(&mut v, f, 140);
        }
        let total = v.total_estimate();
        let rel = (total - 700_000.0).abs() / 700_000.0;
        assert!(rel < 0.1, "total = {total}");
    }

    #[test]
    fn one_register_write_per_packet() {
        // The §2.1 claim: memory accesses per packet ≈ 1. Structural
        // here — record touches exactly one register — so check the
        // register growth is bounded by packets.
        let mut v = Vhc::new(VhcConfig { registers: 4096, virtual_registers: 64, seed: 1 });
        fill(&mut v, 7, 1000);
        let touched = v.registers.iter().filter(|&&r| r > 0).count();
        assert!(touched <= 64, "only the virtual set may be touched, got {touched}");
    }

    #[test]
    fn memory_is_five_bits_per_register() {
        let cfg = VhcConfig { registers: 1024, ..VhcConfig::default() };
        assert_eq!(cfg.memory_bits(), 5 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Vhc::new(VhcConfig { virtual_registers: 100, ..VhcConfig::default() });
    }
}
