//! CEDAR — shared estimators with a bounded relative error
//! (Tsidon, Hanniel, Keslassy, INFOCOM 2012; §2.1 ref \[30\]).
//!
//! Where SAC/ANLS/DISCO pick a geometric scale, CEDAR derives the
//! *optimal* shared estimator ladder for a target relative error `δ`:
//! every counter stores an index into a shared array `A` of estimator
//! values with differences chosen so the estimation error is uniform
//! across the range:
//!
//! ```text
//! A[0] = 0,    A[i+1] = A[i] + (1 + 2δ²A[i]) / (1 − δ²)
//! ```
//!
//! A unit increment moves a counter from `i` to `i+1` with probability
//! `1/(A[i+1] − A[i])`, keeping `E[A[index]]` equal to the true count.

use support::rand::Rng;

/// A CEDAR estimator ladder shared by many counters.
#[derive(Debug, Clone)]
pub struct CedarScale {
    ladder: Vec<f64>,
    delta: f64,
}

impl CedarScale {
    /// Build the ladder for counter-index width `bits` and target
    /// relative error `delta`.
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1` and `1 ≤ bits ≤ 24`.
    pub fn new(bits: u32, delta: f64) -> Self {
        assert!((1..=24).contains(&bits), "index bits must be 1..=24");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let steps = 1usize << bits;
        let mut ladder = Vec::with_capacity(steps);
        let mut a = 0.0f64;
        for _ in 0..steps {
            ladder.push(a);
            a += (1.0 + 2.0 * delta * delta * a) / (1.0 - delta * delta);
        }
        Self { ladder, delta }
    }

    /// The target relative error.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of ladder steps (counter states).
    pub fn steps(&self) -> usize {
        self.ladder.len()
    }

    /// Largest representable estimate.
    pub fn max_value(&self) -> f64 {
        *self.ladder.last().expect("non-empty ladder")
    }

    /// The estimate a counter at `index` represents.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn estimate(&self, index: usize) -> f64 {
        self.ladder[index]
    }

    /// Apply one unit to a counter at `index`, returning the new index.
    pub fn increment<R: Rng + ?Sized>(&self, index: usize, rng: &mut R) -> usize {
        if index + 1 >= self.ladder.len() {
            return index; // saturated
        }
        let gap = self.ladder[index + 1] - self.ladder[index];
        if gap <= 1.0 || rng.gen::<f64>() < 1.0 / gap {
            index + 1
        } else {
            index
        }
    }

    /// Apply `units` of traffic to a counter at `index`.
    pub fn add<R: Rng + ?Sized>(&self, mut index: usize, units: u64, rng: &mut R) -> usize {
        for _ in 0..units {
            index = self.increment(index, rng);
            if index + 1 >= self.ladder.len() {
                break;
            }
        }
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use support::rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn ladder_is_monotone_with_unit_start() {
        let s = CedarScale::new(8, 0.1);
        assert_eq!(s.estimate(0), 0.0);
        // The first steps are ≈ 1/(1−δ²) ≈ 1.01: near-exact counting.
        assert!((s.estimate(1) - 1.0101).abs() < 0.001);
        for i in 0..s.steps() - 1 {
            assert!(s.estimate(i + 1) > s.estimate(i));
        }
    }

    #[test]
    fn smaller_delta_means_shorter_range() {
        let tight = CedarScale::new(8, 0.05);
        let loose = CedarScale::new(8, 0.3);
        assert!(loose.max_value() > tight.max_value());
    }

    #[test]
    fn counting_is_unbiased() {
        let s = CedarScale::new(10, 0.1);
        let n = 20_000u64;
        assert!(s.max_value() > n as f64, "range {}", s.max_value());
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 300;
        let mean: f64 = (0..trials)
            .map(|_| s.estimate(s.add(0, n, &mut rng)))
            .sum::<f64>()
            / trials as f64;
        let rel = (mean - n as f64).abs() / n as f64;
        assert!(rel < 0.03, "mean = {mean}");
    }

    #[test]
    fn relative_error_is_near_target() {
        // CEDAR's whole point: the relative std stays ≈ δ across the
        // range (up to the Gaussian approximation).
        let delta = 0.15;
        let s = CedarScale::new(10, delta);
        let mut rng = StdRng::seed_from_u64(9);
        for &n in &[1_000u64, 10_000, 50_000] {
            if s.max_value() < 2.0 * n as f64 {
                continue;
            }
            let trials = 300;
            let vals: Vec<f64> = (0..trials)
                .map(|_| s.estimate(s.add(0, n, &mut rng)))
                .collect();
            let mean = vals.iter().sum::<f64>() / trials as f64;
            let var =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / trials as f64;
            let rel_std = var.sqrt() / mean;
            assert!(
                rel_std < 1.5 * delta,
                "n = {n}: rel std {rel_std} vs target {delta}"
            );
        }
    }

    #[test]
    fn saturation_is_stable() {
        let s = CedarScale::new(4, 0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let top = s.add(0, 10_000_000, &mut rng);
        assert_eq!(top, s.steps() - 1);
        assert_eq!(s.add(top, 100, &mut rng), top);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn bad_delta_rejected() {
        CedarScale::new(8, 1.5);
    }
}
