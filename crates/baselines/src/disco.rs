//! The DISCO/SAC-style geometric counter scale that CASE inherits.
//!
//! A `b`-bit counter stores a compressed value `c ∈ 0..=c_max`
//! representing the real count
//!
//! ```text
//! d(c) = ((1 + a)^c − 1) / a
//! ```
//!
//! (the classic Morris/SAC/DISCO "stretchable" scale: geometric spacing
//! with growth factor `1 + a`). One unit of traffic bumps the counter
//! from `c` to `c + 1` with probability `1 / (d(c+1) − d(c))`, which
//! makes `d(c)` an unbiased estimator of the units applied — at the
//! cost of the power operations the CAESAR paper criticizes (§2.3) and
//! of rapidly growing quantization noise.

use support::rand::Rng;

/// A calibrated geometric counter scale.
///
/// `decompress(c) = gain · ((1+a)^c − 1)/a`. The `gain` prefactor is 1
/// except in the degenerate one-step case (`c_max = 1`), where the
/// geometric family pins `d(1) = 1` and only a gain can stretch the
/// single step across the value range — the regime an
/// under-provisioned CASE lands in (Fig. 5).
#[derive(Debug, Clone, Copy)]
pub struct DiscoScale {
    a: f64,
    gain: f64,
    c_max: u64,
}

impl DiscoScale {
    /// Build a scale with explicit growth parameter `a > 0` and counter
    /// ceiling `c_max ≥ 1`.
    pub fn new(a: f64, c_max: u64) -> Self {
        assert!(a > 0.0, "growth parameter must be positive");
        assert!(c_max >= 1, "counter must have at least one step");
        Self { a, gain: 1.0, c_max }
    }

    /// Calibrate `a` so a `bits`-wide counter (`c_max = 2^bits − 1`)
    /// spans `max_value`: solve `d(c_max) = max_value` by bisection
    /// (the mapping is monotone in `a`).
    ///
    /// # Panics
    /// Panics if `max_value ≤ c_max` would need no compression at all
    /// (use a unit scale instead) — except that for tiny counters we
    /// still build the scale, since CASE under-provisioned is exactly
    /// the regime Fig. 5 studies.
    pub fn for_bits(bits: u32, max_value: f64) -> Self {
        assert!((1..=63).contains(&bits), "bits must be in 1..=63");
        assert!(max_value >= 1.0, "max_value must be at least 1");
        let c_max = (1u64 << bits) - 1;
        if max_value <= c_max as f64 {
            // No compression needed: degenerate near-linear scale.
            return Self::new(1e-9, c_max);
        }
        if c_max == 1 {
            // One step: only the gain can span the range.
            return Self { a: 1.0, gain: max_value, c_max };
        }
        let target = max_value;
        let d_max = |a: f64| ((1.0 + a).powf(c_max as f64) - 1.0) / a;
        let (mut lo, mut hi) = (1e-12f64, 1.0f64);
        // Grow `hi` until the scale covers the target.
        while d_max(hi) < target {
            hi *= 2.0;
            assert!(hi < 1e12, "cannot calibrate scale to {target}");
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if d_max(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Self::new(0.5 * (lo + hi), c_max)
    }

    /// The growth parameter `a`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Largest storable compressed value.
    pub fn c_max(&self) -> u64 {
        self.c_max
    }

    /// Decompression `d(c)`: the real count represented by `c`.
    pub fn decompress(&self, c: u64) -> f64 {
        let c = c.min(self.c_max);
        if self.a < 1e-8 {
            // Near-linear regime: d(c) → c as a → 0.
            return self.gain * c as f64;
        }
        self.gain * ((1.0 + self.a).powf(c as f64) - 1.0) / self.a
    }

    /// Probability that one unit bumps the counter from `c` to `c + 1`.
    /// Zero once the counter is saturated.
    pub fn increment_probability(&self, c: u64) -> f64 {
        if c >= self.c_max {
            return 0.0;
        }
        let gap = self.decompress(c + 1) - self.decompress(c);
        (1.0 / gap).min(1.0)
    }

    /// Apply `units` of traffic to compressed value `c`, returning the
    /// new compressed value. Each unit performs one probabilistic
    /// increment trial (the SAC-style unit-at-a-time update).
    pub fn apply<R: Rng + ?Sized>(&self, mut c: u64, units: u64, rng: &mut R) -> u64 {
        for _ in 0..units {
            if c >= self.c_max {
                break;
            }
            if rng.gen::<f64>() < self.increment_probability(c) {
                c += 1;
            }
        }
        c
    }

    /// Compression `d⁻¹(t)`: the largest compressed value whose
    /// decompression does not exceed `t`.
    pub fn compress_floor(&self, t: f64) -> u64 {
        if t <= 0.0 {
            return 0;
        }
        let c = if self.a < 1e-8 {
            (t / self.gain).floor()
        } else {
            // d(c) = g((1+a)^c − 1)/a  ⇒  c = ln(1 + a·t/g)/ln(1+a)
            (1.0 + self.a * t / self.gain).ln() / (1.0 + self.a).ln()
        };
        let mut c = (c.floor().max(0.0) as u64).min(self.c_max);
        // Repair float rounding at bucket boundaries so the floor
        // property d(c) ≤ t < d(c+1) holds exactly.
        while c > 0 && self.decompress(c) > t {
            c -= 1;
        }
        while c < self.c_max && self.decompress(c + 1) <= t {
            c += 1;
        }
        c
    }

    /// Bulk update, the CASE-style closed form: compute `d(c) + units`,
    /// compress it back with probabilistic rounding so the update stays
    /// unbiased, all in O(1) — two power/log operations on hardware
    /// (one `log` to compress, one `pow` to decompress the boundary).
    pub fn apply_bulk<R: Rng + ?Sized>(&self, c: u64, units: u64, rng: &mut R) -> u64 {
        if c >= self.c_max || units == 0 {
            return c.min(self.c_max);
        }
        let target = self.decompress(c) + units as f64;
        let lo = self.compress_floor(target);
        if lo >= self.c_max {
            return self.c_max;
        }
        let d_lo = self.decompress(lo);
        let gap = self.decompress(lo + 1) - d_lo;
        let p = ((target - d_lo) / gap).clamp(0.0, 1.0);
        if rng.gen::<f64>() < p {
            lo + 1
        } else {
            lo
        }
    }

    /// Power/log operations one bulk update costs on real hardware.
    pub const BULK_POW_OPS: u64 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;
    use support::rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn decompress_is_monotone_and_anchored() {
        let s = DiscoScale::for_bits(8, 100_000.0);
        assert_eq!(s.decompress(0), 0.0);
        for c in 0..255 {
            assert!(s.decompress(c + 1) > s.decompress(c));
        }
        // Calibration: the top of the scale reaches max_value.
        assert!((s.decompress(255) - 100_000.0).abs() / 100_000.0 < 1e-6);
    }

    #[test]
    fn near_linear_when_bits_suffice() {
        let s = DiscoScale::for_bits(20, 1000.0);
        // 2^20 − 1 ≫ 1000: no compression, d(c) ≈ c.
        assert!((s.decompress(500) - 500.0).abs() < 1.0);
        assert!((s.increment_probability(500) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unbiased_compression() {
        // E[d(c after N units)] ≈ N.
        let s = DiscoScale::for_bits(8, 50_000.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n_units = 5_000u64;
        let trials = 400;
        let mean: f64 = (0..trials)
            .map(|_| s.decompress(s.apply(0, n_units, &mut rng)))
            .sum::<f64>()
            / trials as f64;
        let rel = (mean - n_units as f64).abs() / n_units as f64;
        assert!(rel < 0.05, "mean = {mean}");
    }

    #[test]
    fn one_bit_counter_is_all_or_nothing() {
        // The Fig. 5 regime: c_max = 1 means d(1) = max_value; almost
        // every mouse flow stays at 0.
        let s = DiscoScale::for_bits(1, 100_000.0);
        assert_eq!(s.c_max(), 1);
        assert!((s.decompress(1) - 100_000.0).abs() / 1e5 < 1e-6);
        let p = s.increment_probability(0);
        assert!(p < 2e-5, "p = {p}");
    }

    #[test]
    fn saturated_counter_stops() {
        let s = DiscoScale::for_bits(2, 100.0);
        let mut rng = StdRng::seed_from_u64(9);
        let c = s.apply(3, 10_000, &mut rng);
        assert_eq!(c, 3);
        assert_eq!(s.increment_probability(3), 0.0);
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn zero_bits_rejected() {
        DiscoScale::for_bits(0, 10.0);
    }

    #[test]
    fn compress_floor_inverts_decompress() {
        let s = DiscoScale::for_bits(8, 100_000.0);
        for c in 0..=255u64 {
            assert_eq!(s.compress_floor(s.decompress(c)), c, "at c = {c}");
        }
        assert_eq!(s.compress_floor(-1.0), 0);
        assert_eq!(s.compress_floor(1e12), 255);
    }

    #[test]
    fn bulk_update_is_unbiased() {
        let s = DiscoScale::for_bits(8, 50_000.0);
        let mut rng = StdRng::seed_from_u64(17);
        let n_units = 5_000u64;
        let trials = 400;
        let mean: f64 = (0..trials)
            .map(|_| s.decompress(s.apply_bulk(0, n_units, &mut rng)))
            .sum::<f64>()
            / trials as f64;
        let rel = (mean - n_units as f64).abs() / n_units as f64;
        assert!(rel < 0.05, "mean = {mean}");
    }

    #[test]
    fn bulk_matches_unit_updates_in_expectation() {
        // Apply 40 units in one bulk step vs 40 unit trials: both must
        // average to ≈ 40 decompressed.
        let s = DiscoScale::for_bits(6, 10_000.0);
        let mut rng = StdRng::seed_from_u64(23);
        let trials = 3000;
        let bulk: f64 = (0..trials)
            .map(|_| s.decompress(s.apply_bulk(0, 40, &mut rng)))
            .sum::<f64>()
            / trials as f64;
        let unit: f64 = (0..trials)
            .map(|_| s.decompress(s.apply(0, 40, &mut rng)))
            .sum::<f64>()
            / trials as f64;
        assert!((bulk - 40.0).abs() < 4.0, "bulk mean = {bulk}");
        assert!((unit - 40.0).abs() < 4.0, "unit mean = {unit}");
    }

    #[test]
    fn bulk_saturates() {
        let s = DiscoScale::for_bits(2, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.apply_bulk(3, 1000, &mut rng), 3);
        assert_eq!(s.apply_bulk(0, 1_000_000, &mut rng), 3);
    }
}
