//! Cache-Assisted Stretchable Estimator (CASE).
//!
//! Li, Wu, Pan, Dai, Lu, Liu, "CASE: Cache-assisted stretchable
//! estimator for high speed per-flow measurement", INFOCOM 2016.
//!
//! CASE shares CAESAR's cache front-end, but off-chip it keeps **one
//! counter per flow** (one-to-one mapping, so `L ≥ Q`, §2.3) storing a
//! DISCO-compressed value: an eviction of `v` units performs `v`
//! probabilistic [`DiscoScale`] increment trials, each costing a power
//! operation. Under an equal memory budget the per-flow counters get
//! only 1–2 bits, the compression scale must span the largest flow,
//! and nearly every flow reads back as 0 — the Fig. 5 collapse.

use crate::disco::DiscoScale;
use cachesim::{CacheConfig, CachePolicy, CacheStats, CacheTable};
use hashkit::IdHashMap;
use support::rand::{rngs::StdRng, SeedableRng};

/// CASE configuration.
#[derive(Debug, Clone, Copy)]
pub struct CaseConfig {
    /// Off-chip counters `L` (must be ≥ the number of distinct flows
    /// for every flow to be measurable).
    pub counters: usize,
    /// Bits per off-chip counter.
    pub counter_bits: u32,
    /// Largest flow size the compression scale must span.
    pub max_expected_flow: f64,
    /// On-chip cache entries `M`.
    pub cache_entries: usize,
    /// Per-entry cache capacity `y`.
    pub entry_capacity: u64,
    /// Cache replacement policy.
    pub policy: CachePolicy,
    /// RNG seed for the probabilistic increments.
    pub seed: u64,
}

impl Default for CaseConfig {
    fn default() -> Self {
        Self {
            counters: 1_014_601,
            counter_bits: 2,
            max_expected_flow: 100_000.0,
            cache_entries: 20_000,
            entry_capacity: 54,
            policy: CachePolicy::Lru,
            seed: 0xCA5E,
        }
    }
}

impl CaseConfig {
    /// Off-chip SRAM size in KB.
    pub fn sram_kb(&self) -> f64 {
        self.counters as f64 * self.counter_bits as f64 / (1024.0 * 8.0)
    }
}

/// Statistics of a CASE run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStats {
    /// Cache-side counters.
    pub cache: CacheStats,
    /// Eviction events applied off-chip.
    pub evictions: u64,
    /// Probabilistic increment trials = power operations performed.
    pub pow_ops: u64,
    /// Off-chip accesses (read + write per eviction).
    pub sram_accesses: u64,
    /// Flows that could not get a counter (`Q > L`).
    pub unassigned_flows: u64,
}

/// The CASE sketch.
///
/// ```
/// use baselines::{Case, CaseConfig};
/// let mut case = Case::new(CaseConfig {
///     counters: 64,
///     counter_bits: 16,        // generous: near-exact compression
///     max_expected_flow: 10_000.0,
///     cache_entries: 8,
///     entry_capacity: 4,
///     ..CaseConfig::default()
/// });
/// for _ in 0..500 {
///     case.record(7);
/// }
/// case.finish();
/// assert!((case.query(7) - 500.0).abs() < 25.0);
/// ```
#[derive(Debug)]
pub struct Case {
    cfg: CaseConfig,
    cache: CacheTable,
    scale: DiscoScale,
    /// Compressed per-flow counter values.
    counters: Vec<u64>,
    /// One-to-one flow → counter assignment.
    assignment: IdHashMap<u32>,
    rng: StdRng,
    evictions: u64,
    pow_ops: u64,
    sram_accesses: u64,
    unassigned: u64,
    finished: bool,
}

impl Case {
    /// Build the sketch; the DISCO scale is calibrated to span
    /// `max_expected_flow` with `counter_bits` bits.
    pub fn new(cfg: CaseConfig) -> Self {
        assert!(cfg.counters > 0, "CASE needs at least one counter");
        let cache = CacheTable::new(CacheConfig {
            entries: cfg.cache_entries,
            entry_capacity: cfg.entry_capacity,
            policy: cfg.policy,
            seed: cfg.seed ^ 0xCA5E_CA5E,
        });
        Self {
            cache,
            scale: DiscoScale::for_bits(cfg.counter_bits, cfg.max_expected_flow),
            counters: vec![0; cfg.counters],
            assignment: IdHashMap::default(),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x0D15C0),
            evictions: 0,
            pow_ops: 0,
            sram_accesses: 0,
            unassigned: 0,
            finished: false,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CaseConfig {
        &self.cfg
    }

    /// The calibrated compression scale.
    pub fn scale(&self) -> &DiscoScale {
        &self.scale
    }

    /// Construction phase: one packet of `flow`.
    ///
    /// # Panics
    /// Panics if called after [`Case::finish`].
    pub fn record(&mut self, flow: u64) {
        assert!(!self.finished, "record() after finish(): the sketch is read-only");
        if let Some(ev) = self.cache.record(flow) {
            self.apply_eviction(ev.flow, ev.value);
        }
    }

    /// End of measurement: dump the cache.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        for ev in self.cache.drain() {
            self.apply_eviction(ev.flow, ev.value);
        }
        self.finished = true;
    }

    fn apply_eviction(&mut self, flow: u64, value: u64) {
        self.evictions += 1;
        let slot = match self.assignment.get(&flow) {
            Some(&s) => s,
            None => {
                if self.assignment.len() >= self.cfg.counters {
                    // No counter left: the flow is unmeasurable, which
                    // is the paper's point about one-to-one mappings.
                    self.unassigned += 1;
                    return;
                }
                let s = self.assignment.len() as u32;
                self.assignment.insert(flow, s);
                s
            }
        };
        let c = self.counters[slot as usize];
        self.counters[slot as usize] = self.scale.apply_bulk(c, value, &mut self.rng);
        // The closed-form bulk update costs one log (compress) and one
        // pow (boundary decompress); the counter is one read + write.
        self.pow_ops += DiscoScale::BULK_POW_OPS;
        self.sram_accesses += 2;
    }

    /// Query phase: decompress the flow's counter; flows that never got
    /// a counter (or were never seen) estimate 0.
    pub fn query(&self, flow: u64) -> f64 {
        match self.assignment.get(&flow) {
            Some(&s) => self.scale.decompress(self.counters[s as usize]),
            None => 0.0,
        }
    }

    /// Run statistics.
    pub fn stats(&self) -> CaseStats {
        CaseStats {
            cache: self.cache.stats(),
            evictions: self.evictions,
            pow_ops: self.pow_ops,
            sram_accesses: self.sram_accesses,
            unassigned_flows: self.unassigned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(counters: usize, bits: u32) -> CaseConfig {
        CaseConfig {
            counters,
            counter_bits: bits,
            max_expected_flow: 10_000.0,
            cache_entries: 64,
            entry_capacity: 8,
            ..CaseConfig::default()
        }
    }

    #[test]
    fn generous_counters_estimate_well() {
        // 20-bit counters need no compression: estimates ≈ exact.
        let mut c = Case::new(cfg(128, 20));
        for _ in 0..500 {
            c.record(1);
        }
        for _ in 0..50 {
            c.record(2);
        }
        c.finish();
        assert!((c.query(1) - 500.0).abs() < 5.0, "{}", c.query(1));
        assert!((c.query(2) - 50.0).abs() < 5.0, "{}", c.query(2));
    }

    #[test]
    fn starved_counters_collapse_to_zero() {
        // The Fig. 5 regime: 1-bit counters spanning 10⁴ — mice flows
        // essentially always read back 0.
        let mut c = Case::new(cfg(128, 1));
        for f in 0..100u64 {
            for _ in 0..5 {
                c.record(f);
            }
        }
        c.finish();
        let zeros = (0..100u64).filter(|&f| c.query(f) == 0.0).count();
        assert!(zeros >= 95, "only {zeros} flows read 0");
    }

    #[test]
    fn unseen_flow_is_zero() {
        let mut c = Case::new(cfg(16, 8));
        c.record(1);
        c.finish();
        assert_eq!(c.query(999), 0.0);
    }

    #[test]
    fn counter_exhaustion_counts_unassigned() {
        let mut c = Case::new(cfg(2, 8));
        for f in 0..10u64 {
            for _ in 0..8 {
                c.record(f); // capacity 8 forces an overflow eviction each
            }
        }
        c.finish();
        assert!(c.stats().unassigned_flows > 0);
        assert_eq!(c.assignment.len(), 2);
    }

    #[test]
    fn pow_ops_track_evictions() {
        let mut c = Case::new(cfg(64, 8));
        for _ in 0..100 {
            c.record(7);
        }
        c.finish();
        // 100 packets at capacity 8: 12 overflow evictions + the final
        // dump, two power ops each.
        let st = c.stats();
        assert_eq!(st.pow_ops, st.evictions * DiscoScale::BULK_POW_OPS);
        assert!(st.evictions >= 12);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn record_after_finish_panics() {
        let mut c = Case::new(cfg(4, 4));
        c.finish();
        c.record(1);
    }
}
