//! ANLS — Adaptive Non-Linear Sampling (Hu et al., INFOCOM 2008;
//! §2.1 ref \[13\]).
//!
//! A single-counter compressor that samples each arriving unit with a
//! probability that *decays with the current counter value*: with the
//! counter at `c`, a unit bumps it with probability `p(c) = b^(−c)`.
//! The inverse mapping recovers the count:
//!
//! ```text
//! f(c) = (b^c − 1) / (b − 1)
//! ```
//!
//! (geometric sum of the expected number of units each step absorbed).
//! Compared to the DISCO/Morris scale the update needs one power
//! evaluation per arrival, which is why the CAESAR paper lumps ANLS
//! with the computation-heavy compression family.

use support::rand::Rng;

/// An ANLS counter: stored value plus the global decay base.
#[derive(Debug, Clone, Copy)]
pub struct AnlsCounter {
    c: u32,
    c_max: u32,
    b: f64,
}

impl AnlsCounter {
    /// A zeroed counter with decay base `b > 1` and `bits` of storage.
    ///
    /// # Panics
    /// Panics unless `b > 1` and `1 ≤ bits ≤ 31`.
    pub fn new(bits: u32, b: f64) -> Self {
        assert!((1..=31).contains(&bits), "bits must be 1..=31");
        assert!(b > 1.0, "decay base must exceed 1");
        Self { c: 0, c_max: (1u32 << bits) - 1, b }
    }

    /// Pick `b` so a `bits`-wide counter spans `max_value`.
    pub fn for_range(bits: u32, max_value: f64) -> Self {
        assert!(max_value >= 1.0);
        let c_max = ((1u64 << bits.min(31)) - 1) as f64;
        // Solve (b^c_max − 1)/(b − 1) = max_value by bisection.
        let f = |b: f64| ((b).powf(c_max) - 1.0) / (b - 1.0);
        let (mut lo, mut hi) = (1.0 + 1e-9, 2.0f64);
        while f(hi) < max_value {
            hi = 1.0 + (hi - 1.0) * 2.0;
            assert!(hi < 1e6, "cannot span {max_value}");
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) < max_value {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Self::new(bits, 0.5 * (lo + hi))
    }

    /// The decay base in use.
    pub fn base(&self) -> f64 {
        self.b
    }

    /// Stored (compressed) value.
    pub fn stored(&self) -> u32 {
        self.c
    }

    /// Unbiased estimate `f(c) = (b^c − 1)/(b − 1)`.
    pub fn estimate(&self) -> f64 {
        ((self.b).powf(self.c as f64) - 1.0) / (self.b - 1.0)
    }

    /// Largest representable estimate.
    pub fn max_value(&self) -> f64 {
        ((self.b).powf(self.c_max as f64) - 1.0) / (self.b - 1.0)
    }

    /// Apply one unit: bump with probability `b^(−c)`.
    pub fn increment<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.c >= self.c_max {
            return;
        }
        if rng.gen::<f64>() < (self.b).powf(-(self.c as f64)) {
            self.c += 1;
        }
    }

    /// Apply `units` of traffic.
    pub fn add<R: Rng + ?Sized>(&mut self, units: u64, rng: &mut R) {
        for _ in 0..units {
            self.increment(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use support::rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn estimate_formula_anchors() {
        let c = AnlsCounter::new(8, 2.0);
        assert_eq!(c.estimate(), 0.0);
        let mut c2 = c;
        c2.c = 3;
        // (2³ − 1)/(2 − 1) = 7.
        assert_eq!(c2.estimate(), 7.0);
    }

    #[test]
    fn unbiased_counting() {
        let n = 30_000u64;
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 300;
        let mean: f64 = (0..trials)
            .map(|_| {
                let mut c = AnlsCounter::for_range(12, 1e6);
                c.add(n, &mut rng);
                c.estimate()
            })
            .sum::<f64>()
            / trials as f64;
        let rel = (mean - n as f64).abs() / n as f64;
        assert!(rel < 0.05, "mean = {mean}");
    }

    #[test]
    fn range_calibration() {
        let c = AnlsCounter::for_range(8, 100_000.0);
        let rel = (c.max_value() - 100_000.0).abs() / 100_000.0;
        assert!(rel < 1e-6, "max {}", c.max_value());
        assert!(c.base() > 1.0);
    }

    #[test]
    fn saturation_is_stable() {
        let mut c = AnlsCounter::new(2, 3.0); // c_max = 3
        let mut rng = StdRng::seed_from_u64(1);
        c.add(1_000_000, &mut rng);
        assert_eq!(c.stored(), 3);
        let before = c.estimate();
        c.add(1000, &mut rng);
        assert_eq!(c.estimate(), before);
    }

    #[test]
    #[should_panic(expected = "decay base")]
    fn base_below_one_rejected() {
        AnlsCounter::new(8, 0.9);
    }
}
