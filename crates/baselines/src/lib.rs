//! # baselines — the schemes CAESAR is evaluated against
//!
//! Both comparison schemes of the paper's §6, implemented from scratch:
//!
//! * [`rcs`] — **Randomized Counter Sharing** (Li, Chen, Ling,
//!   INFOCOM'11): cache-free; every packet increments one uniformly
//!   random counter among the flow's `k` mapped counters, so every
//!   packet costs one off-chip SRAM access. Under line-rate arrivals
//!   the ingress queue drops packets (Fig. 7); under the paper's
//!   "lossless assumption" it is the accuracy reference (Fig. 6).
//!   Estimators: CSM (counter sum minus noise) and the slow
//!   search-based MLE the paper mentions.
//! * [`case`] — **Cache-Assisted Stretchable Estimator** (Li et al.,
//!   INFOCOM'16): same cache front-end as CAESAR but a one-to-one
//!   flow→counter mapping with [`disco`]-style stretchable compression
//!   (probabilistic, power-operation-based increments). One-to-one
//!   mapping means `L ≥ Q` counters, so an equal memory budget buys
//!   only 1–2 bits per counter and the estimates collapse (Fig. 5).
//! * [`disco`] — the DISCO/SAC-style geometric counter scale CASE
//!   inherits: a `b`-bit counter value `c` represents
//!   `d(c) = ((1+a)^c − 1)/a` and is bumped with probability
//!   `1/(d(c+1) − d(c))` per unit, which keeps `E[d(c)]` equal to the
//!   true count.
//! * [`sampling`] — the NetFlow-style packet sampler of §2.2: sample
//!   with probability `p`, estimate `c/p`; included so the paper's
//!   "filtered mice" criticism of samplers can be quantified.
//! * [`braids`] — Counter Braids (§2.1): two braided counter layers
//!   decoded offline by min-sum message passing.
//! * [`sac`] — Small Active Counters (§2.1): the mantissa/exponent
//!   single-counter compressor the stretchable family started from.
//! * [`anls`] — Adaptive Non-Linear Sampling (§2.1): geometric-decay
//!   probabilistic counting with one power evaluation per arrival.
//! * [`cedar`] — CEDAR (§2.1): the shared estimator ladder with a
//!   uniform target relative error across the range.
//! * [`vhc`] — Virtual HyperLogLog Counter (§2.1): per-flow virtual
//!   HLL counters over a shared 5-bit register pool, one register
//!   write per packet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anls;
pub mod braids;
pub mod case;
pub mod cedar;
pub mod disco;
pub mod rcs;
pub mod sac;
pub mod sampling;
pub mod vhc;

pub use anls::AnlsCounter;
pub use braids::{BraidsConfig, CounterBraids};
pub use cedar::CedarScale;
pub use case::{Case, CaseConfig};
pub use disco::DiscoScale;
pub use rcs::{LossModel, Rcs, RcsConfig};
pub use sac::SacCounter;
pub use sampling::{SampledCounter, SamplingConfig};
pub use vhc::{Vhc, VhcConfig};
