//! Packet-sampling baseline (§2.2).
//!
//! The paper's related work covers the NetFlow-style samplers it aims
//! to displace: sample each packet independently with probability `p`,
//! keep an exact table of sampled flows, and estimate `x̂ = c/p`. The
//! two structural weaknesses the paper cites — small flows are filtered
//! out entirely and the sampled-flow table still needs per-flow state —
//! both fall out of this implementation and are quantified by the
//! `ext_sampling` experiment.

use hashkit::IdHashMap;
use support::rand::{rngs::StdRng, Rng, SeedableRng};

/// Sampling configuration.
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig {
    /// Per-packet sampling probability `p ∈ (0, 1]`.
    pub rate: f64,
    /// Optional cap on the sampled-flow table (0 = unbounded). When
    /// the table is full, packets of new flows are dropped — the
    /// memory-bounded regime a line card actually runs in.
    pub max_entries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            rate: 0.01,
            max_entries: 0,
            seed: 0x5A5A,
        }
    }
}

/// Statistics of a sampling run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SamplingStats {
    /// Packets offered.
    pub offered: u64,
    /// Packets sampled into the table.
    pub sampled: u64,
    /// Sampled packets dropped because the table was full.
    pub table_overflow: u64,
}

/// NetFlow-style sampled per-flow counter.
#[derive(Debug)]
pub struct SampledCounter {
    cfg: SamplingConfig,
    counts: IdHashMap<u64>,
    rng: StdRng,
    stats: SamplingStats,
}

impl SampledCounter {
    /// Build an empty sampler.
    ///
    /// # Panics
    /// Panics unless `0 < rate <= 1`.
    pub fn new(cfg: SamplingConfig) -> Self {
        assert!(
            cfg.rate > 0.0 && cfg.rate <= 1.0,
            "sampling rate must be in (0,1], got {}",
            cfg.rate
        );
        Self {
            counts: IdHashMap::default(),
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: SamplingStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SamplingConfig {
        &self.cfg
    }

    /// Offer one packet of `flow`; returns `true` if it was sampled.
    pub fn record(&mut self, flow: u64) -> bool {
        self.stats.offered += 1;
        if self.cfg.rate < 1.0 && self.rng.gen::<f64>() >= self.cfg.rate {
            return false;
        }
        if self.cfg.max_entries > 0
            && self.counts.len() >= self.cfg.max_entries
            && !self.counts.contains_key(&flow)
        {
            self.stats.table_overflow += 1;
            return false;
        }
        *self.counts.entry(flow).or_insert(0) += 1;
        self.stats.sampled += 1;
        true
    }

    /// Estimated flow size `x̂ = c/p` (0 for unsampled flows — the
    /// "filtered mice" failure mode).
    pub fn query(&self, flow: u64) -> f64 {
        self.counts.get(&flow).copied().unwrap_or(0) as f64 / self.cfg.rate
    }

    /// Model standard deviation of the estimate at true size `x`:
    /// `sqrt(x(1−p)/p)` (binomial thinning).
    pub fn std_dev(&self, x: f64) -> f64 {
        (x * (1.0 - self.cfg.rate) / self.cfg.rate).max(0.0).sqrt()
    }

    /// Probability a flow of size `x` is missed entirely: `(1−p)^x`.
    pub fn miss_probability(&self, x: u64) -> f64 {
        (1.0 - self.cfg.rate).powi(x.min(i32::MAX as u64) as i32)
    }

    /// Number of flows in the table.
    pub fn table_entries(&self) -> usize {
        self.counts.len()
    }

    /// Table memory in bytes (8-byte flow ID + 4-byte count per entry,
    /// the usual NetFlow record lower bound).
    pub fn memory_bytes(&self) -> usize {
        self.counts.len() * 12
    }

    /// Run statistics.
    pub fn stats(&self) -> SamplingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_rate_is_exact() {
        let mut s = SampledCounter::new(SamplingConfig { rate: 1.0, ..Default::default() });
        for _ in 0..250 {
            s.record(1);
        }
        assert_eq!(s.query(1), 250.0);
        assert_eq!(s.query(2), 0.0);
    }

    #[test]
    fn estimates_are_unbiased_for_elephants() {
        let mut s = SampledCounter::new(SamplingConfig { rate: 0.05, seed: 3, ..Default::default() });
        let x = 100_000u64;
        for _ in 0..x {
            s.record(9);
        }
        let est = s.query(9);
        let tol = 4.0 * s.std_dev(x as f64);
        assert!((est - x as f64).abs() < tol, "est = {est} (tol {tol})");
    }

    #[test]
    fn mice_are_filtered() {
        let mut s = SampledCounter::new(SamplingConfig { rate: 0.01, seed: 7, ..Default::default() });
        // 1000 flows of one packet each: at p = 1%, ≈ 990 vanish.
        for f in 0..1000u64 {
            s.record(f);
        }
        let missed = (0..1000u64).filter(|&f| s.query(f) == 0.0).count();
        assert!(missed > 950, "only {missed} mice filtered");
        assert!((s.miss_probability(1) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn sampling_rate_realized() {
        let mut s = SampledCounter::new(SamplingConfig { rate: 0.2, seed: 1, ..Default::default() });
        for i in 0..100_000u64 {
            s.record(i % 50);
        }
        let realized = s.stats().sampled as f64 / s.stats().offered as f64;
        assert!((realized - 0.2).abs() < 0.01, "realized rate {realized}");
    }

    #[test]
    fn bounded_table_drops_new_flows() {
        let mut s = SampledCounter::new(SamplingConfig {
            rate: 1.0,
            max_entries: 10,
            ..Default::default()
        });
        for f in 0..100u64 {
            s.record(f);
        }
        assert_eq!(s.table_entries(), 10);
        assert_eq!(s.stats().table_overflow, 90);
        assert_eq!(s.memory_bytes(), 120);
        // Existing flows keep counting even when the table is full.
        assert!(s.record(5));
        assert_eq!(s.query(5), 2.0);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn zero_rate_rejected() {
        SampledCounter::new(SamplingConfig { rate: 0.0, ..Default::default() });
    }
}
