//! Randomized Counter Sharing (RCS).
//!
//! Li, Chen and Ling, "Fast and compact per-flow traffic measurement
//! through randomized counter sharing", INFOCOM 2011 — the scheme
//! CAESAR generalizes (CAESAR with `y = 1` degenerates to RCS, §6.3.3).
//!
//! Construction: each flow owns a *storage vector* of `k` distinct
//! counters out of `L` (same [`hashkit::KCounterMap`] as CAESAR); every
//! packet increments **one uniformly random** counter of its flow's
//! vector. No cache: every packet is an off-chip SRAM read-modify-write,
//! which is why the real system drops packets at line rate.
//!
//! Query: CSM sums the vector and subtracts the expected noise
//! `k·n/L`; MLE maximizes the Gaussian-approximated likelihood by
//! ternary search (the "extremely slow" binary-search estimator the
//! CAESAR paper declines to plot in Fig. 6).

use hashkit::KCounterMap;
use memsim::{IngressQueue, QueueReport, QueueState};
use support::rand::{rngs::StdRng, Rng, SeedableRng};

/// How packets are lost on their way into RCS.
#[derive(Debug, Clone, Copy)]
pub enum LossModel {
    /// The paper's "lossless assumption" (Fig. 6): off-chip SRAM keeps
    /// up with the line, nothing is dropped.
    Lossless,
    /// Drop each packet independently with this probability — the
    /// paper's empirical rates are 2/3 and 9/10 (Fig. 7).
    Uniform(f64),
    /// Drop according to a deterministic D/D/1/B ingress queue whose
    /// service time is the SRAM access; loss 2/3 and 9/10 emerge from
    /// SRAM 3× / 10× slower than arrivals.
    Queue(IngressQueue),
}

/// RCS configuration.
#[derive(Debug, Clone, Copy)]
pub struct RcsConfig {
    /// Total SRAM counters `L` (the RCS paper's `m`).
    pub counters: usize,
    /// Storage-vector length per flow (the RCS paper's `l`; CAESAR's `k`).
    pub k: usize,
    /// Loss behaviour.
    pub loss: LossModel,
    /// RNG seed (counter choice per packet + uniform loss).
    pub seed: u64,
}

impl Default for RcsConfig {
    fn default() -> Self {
        Self {
            counters: 23_438,
            k: 3,
            loss: LossModel::Lossless,
            seed: 0x5C5_5EED,
        }
    }
}

/// Statistics of an RCS run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RcsStats {
    /// Packets offered to the scheme.
    pub offered: u64,
    /// Packets actually recorded (survived loss).
    pub recorded: u64,
    /// Packets lost before recording.
    pub lost: u64,
    /// Off-chip SRAM accesses (one per recorded packet).
    pub sram_accesses: u64,
}

impl RcsStats {
    /// Realized loss rate.
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.lost as f64 / self.offered as f64
        }
    }
}

/// The RCS sketch.
///
/// ```
/// use baselines::{LossModel, Rcs, RcsConfig};
/// let mut rcs = Rcs::new(RcsConfig {
///     counters: 1024,
///     k: 3,
///     loss: LossModel::Lossless,
///     seed: 1,
/// });
/// for _ in 0..900 {
///     rcs.record(42);
/// }
/// let est = rcs.estimate_csm(42);
/// assert!((est - 900.0).abs() < 20.0);
/// ```
#[derive(Debug)]
pub struct Rcs {
    cfg: RcsConfig,
    counters: Vec<u64>,
    kmap: KCounterMap,
    rng: StdRng,
    idx_buf: Vec<usize>,
    queue: Option<QueueState>,
    stats: RcsStats,
}

impl Rcs {
    /// Build an empty sketch.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > counters`, or a uniform loss rate is
    /// outside `[0, 1)`.
    pub fn new(cfg: RcsConfig) -> Self {
        if let LossModel::Uniform(p) = cfg.loss {
            assert!((0.0..1.0).contains(&p), "loss rate must be in [0,1), got {p}");
        }
        let queue = match cfg.loss {
            LossModel::Queue(q) => Some(q.start()),
            _ => None,
        };
        Self {
            counters: vec![0; cfg.counters],
            kmap: KCounterMap::new(cfg.k, cfg.counters, cfg.seed ^ 0x5C5_0001),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x7C5),
            idx_buf: Vec::with_capacity(cfg.k),
            queue,
            stats: RcsStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RcsConfig {
        &self.cfg
    }

    /// Offer one packet of `flow`. Returns `true` if it was recorded.
    pub fn record(&mut self, flow: u64) -> bool {
        self.stats.offered += 1;
        let accepted = match self.cfg.loss {
            LossModel::Lossless => true,
            LossModel::Uniform(p) => self.rng.gen::<f64>() >= p,
            LossModel::Queue(_) => self
                .queue
                .as_mut()
                .expect("queue state present for Queue loss model")
                .offer(),
        };
        if !accepted {
            self.stats.lost += 1;
            return false;
        }
        self.kmap.indices_into(flow, &mut self.idx_buf);
        let r = self.rng.gen_range(0..self.idx_buf.len());
        self.counters[self.idx_buf[r]] += 1;
        self.stats.recorded += 1;
        self.stats.sram_accesses += 1;
        true
    }

    /// Run statistics.
    pub fn stats(&self) -> RcsStats {
        self.stats
    }

    /// The queue report when the queue loss model is active.
    pub fn queue_report(&self) -> Option<QueueReport> {
        self.queue.as_ref().map(|q| q.report())
    }

    /// Raw values of `flow`'s storage vector.
    pub fn counters_of(&self, flow: u64) -> Vec<u64> {
        self.kmap
            .indices(flow)
            .into_iter()
            .map(|i| self.counters[i])
            .collect()
    }

    /// Expected noise per counter `n/L` (recorded packets only — lost
    /// packets never reached the counters).
    pub fn noise_per_counter(&self) -> f64 {
        self.stats.recorded as f64 / self.cfg.counters as f64
    }

    /// CSM estimate: `x̂ = Σ v_i − k·n/L` (RCS paper Eq. CSM).
    pub fn estimate_csm(&self, flow: u64) -> f64 {
        let sum: u64 = self.counters_of(flow).iter().sum();
        sum as f64 - self.cfg.k as f64 * self.noise_per_counter()
    }

    /// CSM estimate clamped to physically possible sizes.
    pub fn query(&self, flow: u64) -> f64 {
        self.estimate_csm(flow).max(0.0)
    }

    /// Search-based MLE. Models each storage-vector counter as
    /// `N(x/k + n/L, x·(1/k)(1−1/k) + n/L)` and maximizes the
    /// log-likelihood over `x ∈ [0, k·max(v_i)]`. Accurate but orders
    /// of magnitude slower than CSM — the paper calls the equivalent
    /// binary search "extremely slow".
    ///
    /// The maximizer is found by **bracketed root-finding on the
    /// likelihood derivative** (Illinois false position) instead of the
    /// 200-iteration ternary scan this started as: with
    /// `μ(x) = x/k + m`, `v(x) = a·x + c`, `a = (1/k)(1−1/k)`,
    ///
    /// ```text
    /// dll/dx = Σ_i [ −a/(2v) + (w_i−μ)/(v·k) + a·(w_i−μ)²/(2v²) ]
    /// ```
    ///
    /// which is positive left of the mode and negative right of it on
    /// the (unimodal in practice) likelihood, so the sign change
    /// brackets the argmax. Superlinear convergence gets machine-level
    /// accuracy in ~1/10 the likelihood evaluations of the ternary
    /// scan; the argmax is pinned against a ternary reference by
    /// `mle_matches_ternary_reference_argmax`.
    pub fn estimate_mle(&self, flow: u64) -> f64 {
        let w = self.counters_of(flow);
        let k = self.cfg.k as f64;
        let noise_mean = self.noise_per_counter();
        // Noise in a counter is approximately Poisson(n/L): variance
        // equals its mean.
        let noise_var = noise_mean.max(1e-9);
        let a = (1.0 / k) * (1.0 - 1.0 / k);
        // dll(x): derivative of the Gaussian log-likelihood. The
        // `.max(1e-9)` variance clamp of the likelihood is inert on
        // x ≥ 0 (v = a·x + noise_var ≥ noise_var ≥ 1e-9), so dll is
        // smooth over the whole bracket.
        let dll = |x: f64| -> f64 {
            let mu = x / k + noise_mean;
            let v = (x * a + noise_var).max(1e-9);
            w.iter()
                .map(|&wi| {
                    let d = wi as f64 - mu;
                    -a / (2.0 * v) + d / (v * k) + a * d * d / (2.0 * v * v)
                })
                .sum()
        };
        let hi0 = k * w.iter().copied().max().unwrap_or(0) as f64 + 1.0;
        let (mut lo, mut hi) = (0.0f64, hi0);
        let mut flo = dll(lo);
        let mut fhi = dll(hi);
        // Edge modes: likelihood decreasing from the start → 0;
        // increasing through the whole bracket → the upper edge.
        if flo <= 0.0 {
            return 0.0;
        }
        if fhi >= 0.0 {
            return hi;
        }
        // Illinois false position on [lo, hi] with flo > 0 > fhi:
        // secant steps with end-value halving on stagnation, so the
        // bracket provably shrinks (regula falsi alone can pin one
        // end on smooth convex stretches).
        let tol = 1e-9 * (1.0 + hi0);
        let mut side: i8 = 0;
        for _ in 0..100 {
            let x = (lo * fhi - hi * flo) / (fhi - flo);
            if !x.is_finite() || x <= lo || x >= hi {
                // Degenerate secant: fall back to bisection.
                let mid = 0.5 * (lo + hi);
                let fm = dll(mid);
                if fm > 0.0 {
                    lo = mid;
                    flo = fm;
                } else {
                    hi = mid;
                    fhi = fm;
                }
                side = 0;
            } else {
                let fx = dll(x);
                if fx > 0.0 {
                    lo = x;
                    flo = fx;
                    if side == 1 {
                        fhi *= 0.5;
                    }
                    side = 1;
                } else {
                    hi = x;
                    fhi = fx;
                    if side == -1 {
                        flo *= 0.5;
                    }
                    side = -1;
                }
            }
            if hi - lo <= tol {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless(counters: usize, k: usize) -> Rcs {
        Rcs::new(RcsConfig {
            counters,
            k,
            loss: LossModel::Lossless,
            seed: 42,
        })
    }

    #[test]
    fn single_flow_recovery() {
        let mut r = lossless(1024, 3);
        for _ in 0..900 {
            r.record(5);
        }
        let est = r.estimate_csm(5);
        assert!((est - 900.0).abs() < 10.0, "est = {est}");
    }

    #[test]
    fn counters_conserve_recorded_packets() {
        let mut r = lossless(128, 3);
        for i in 0..5000u64 {
            r.record(i % 17);
        }
        let total: u64 = r.counters.iter().sum();
        assert_eq!(total, 5000);
        assert_eq!(r.stats().recorded, 5000);
    }

    #[test]
    fn uniform_loss_drops_expected_fraction() {
        let mut r = Rcs::new(RcsConfig {
            counters: 1024,
            k: 3,
            loss: LossModel::Uniform(2.0 / 3.0),
            seed: 7,
        });
        for _ in 0..60_000 {
            r.record(1);
        }
        let rate = r.stats().loss_rate();
        assert!((rate - 2.0 / 3.0).abs() < 0.01, "loss = {rate}");
        // Raw CSM sees only the surviving third.
        let est = r.estimate_csm(1);
        assert!((est - 20_000.0).abs() < 1_500.0, "est = {est}");
    }

    #[test]
    fn queue_loss_emerges_from_latency_ratio() {
        let q = IngressQueue { arrival_ns: 1.0, service_ns: 10.0, capacity: 64 };
        let mut r = Rcs::new(RcsConfig {
            counters: 1024,
            k: 3,
            loss: LossModel::Queue(q),
            seed: 7,
        });
        for _ in 0..200_000 {
            r.record(1);
        }
        let rate = r.stats().loss_rate();
        assert!((rate - 0.9).abs() < 0.01, "loss = {rate}");
    }

    #[test]
    fn mle_close_to_csm_on_clean_data() {
        let mut r = lossless(2048, 3);
        for _ in 0..1200 {
            r.record(9);
        }
        for i in 0..2000u64 {
            r.record(100 + (i % 60));
        }
        let csm = r.estimate_csm(9);
        let mle = r.estimate_mle(9);
        assert!(
            (csm - mle).abs() < 0.15 * csm.abs().max(10.0),
            "csm {csm} vs mle {mle}"
        );
    }

    /// The ternary-scan reference the bracketed solver replaced:
    /// 200 iterations of ternary search on the same Gaussian
    /// log-likelihood. Kept here to pin the argmax.
    fn mle_ternary_reference(r: &Rcs, flow: u64) -> f64 {
        let w = r.counters_of(flow);
        let k = r.cfg.k as f64;
        let noise_mean = r.noise_per_counter();
        let noise_var = noise_mean.max(1e-9);
        let ll = |x: f64| -> f64 {
            let mu = x / k + noise_mean;
            let var = (x * (1.0 / k) * (1.0 - 1.0 / k) + noise_var).max(1e-9);
            w.iter()
                .map(|&wi| {
                    let d = wi as f64 - mu;
                    -0.5 * (2.0 * std::f64::consts::PI * var).ln() - d * d / (2.0 * var)
                })
                .sum()
        };
        let mut lo = 0.0f64;
        let mut hi = k * w.iter().copied().max().unwrap_or(0) as f64 + 1.0;
        for _ in 0..200 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if ll(m1) < ll(m2) {
                lo = m1;
            } else {
                hi = m2;
            }
        }
        0.5 * (lo + hi)
    }

    #[test]
    fn mle_matches_ternary_reference_argmax() {
        // Fixed skewed trace: flows 0..40 with sizes 25·(f+1), plus a
        // heavy flow and background noise.
        let mut r = lossless(2048, 3);
        for f in 0..40u64 {
            for _ in 0..25 * (f + 1) {
                r.record(f);
            }
        }
        for i in 0..8000u64 {
            r.record(1000 + (i % 300));
        }
        // Every recorded flow plus an unseen one; the bracketed solver
        // must land on the ternary scan's argmax everywhere.
        for f in (0..40u64).chain([1010, 0xDEAD]) {
            let fast = r.estimate_mle(f);
            let reference = mle_ternary_reference(&r, f);
            let tol = 1e-6 * (1.0 + reference.abs());
            assert!(
                (fast - reference).abs() <= tol,
                "flow {f}: bracketed {fast} vs ternary {reference}"
            );
        }
    }

    #[test]
    fn mle_edge_modes_zero_and_empty() {
        // Untouched sketch: all counters zero, n = 0 → likelihood flat
        // in noise, derivative at 0 non-positive → estimate 0.
        let r = lossless(256, 3);
        assert_eq!(r.estimate_mle(7), 0.0);
    }

    #[test]
    fn unseen_flow_near_zero() {
        let mut r = lossless(4096, 3);
        for i in 0..3000u64 {
            r.record(i % 30);
        }
        assert!(r.query(0xDEAD) < 15.0);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn bad_loss_rate_rejected() {
        Rcs::new(RcsConfig {
            loss: LossModel::Uniform(1.5),
            ..RcsConfig::default()
        });
    }

    #[test]
    fn per_packet_cost_is_one_sram_access() {
        let mut r = lossless(64, 4);
        for i in 0..1000u64 {
            r.record(i % 5);
        }
        assert_eq!(r.stats().sram_accesses, 1000);
    }
}
