//! SAC — Small Active Counters (Stanojević, INFOCOM 2007).
//!
//! First of the single-counter compression schemes §2.1 surveys
//! (SAC → ANLS → DISCO → CEDAR → ICE-Buckets all share the idea). A
//! `q`-bit counter is split into an `A`-part (mantissa, `q−l` bits) and
//! a `mode` part (exponent, `l` bits); the counter represents
//! `A · 2^(r·mode)`. An arriving unit increments `A` with probability
//! `2^(−r·mode)`; when `A` overflows, the counter renormalizes by
//! halving `A` `r` times and bumping `mode`. Unbiased, constant-space,
//! and — like every member of the family — paying for range with
//! rapidly growing variance and per-update randomness.

use support::rand::Rng;

/// A small active counter.
///
/// ```
/// use baselines::SacCounter;
/// use support::rand::{rngs::StdRng, SeedableRng};
/// let mut c = SacCounter::new(8, 4, 1); // 12 bits total
/// let mut rng = StdRng::seed_from_u64(1);
/// c.add(100, &mut rng);
/// assert_eq!(c.estimate(), 100.0); // exact while in mode 0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SacCounter {
    /// Mantissa value `A`.
    a: u64,
    /// Exponent value `mode`.
    mode: u32,
    /// Mantissa width in bits.
    a_bits: u32,
    /// Exponent width in bits.
    mode_bits: u32,
    /// Renormalization stride `r` (each mode step scales by `2^r`).
    r: u32,
}

impl SacCounter {
    /// A zeroed counter with the given geometry.
    ///
    /// # Panics
    /// Panics on zero widths, a stride of 0, or widths above 32 bits.
    pub fn new(a_bits: u32, mode_bits: u32, r: u32) -> Self {
        assert!((1..=32).contains(&a_bits), "mantissa width must be 1..=32");
        assert!((1..=16).contains(&mode_bits), "exponent width must be 1..=16");
        assert!(r >= 1, "stride must be at least 1");
        Self { a: 0, mode: 0, a_bits, mode_bits, r }
    }

    /// Storage width in bits.
    pub fn bits(&self) -> u32 {
        self.a_bits + self.mode_bits
    }

    /// Largest mantissa value.
    fn a_max(&self) -> u64 {
        (1u64 << self.a_bits) - 1
    }

    /// Largest exponent value.
    fn mode_max(&self) -> u32 {
        (1u32 << self.mode_bits) - 1
    }

    /// Largest representable estimate.
    pub fn max_value(&self) -> f64 {
        self.a_max() as f64 * 2f64.powi((self.r * self.mode_max()) as i32)
    }

    /// The current scale `2^(r·mode)`.
    fn scale(&self) -> f64 {
        2f64.powi((self.r * self.mode) as i32)
    }

    /// Unbiased estimate of the units applied so far.
    pub fn estimate(&self) -> f64 {
        self.a as f64 * self.scale()
    }

    /// Apply one unit: increments `A` with probability `2^(−r·mode)`.
    pub fn increment<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.mode > 0 && rng.gen::<f64>() >= 1.0 / self.scale() {
            return;
        }
        self.a += 1;
        if self.a > self.a_max() {
            if self.mode >= self.mode_max() {
                // Saturated: clamp (the scheme's documented limit).
                self.a = self.a_max();
                return;
            }
            // Renormalize: A /= 2^r, mode += 1.
            self.a >>= self.r;
            self.mode += 1;
        }
    }

    /// Apply `units` of traffic.
    pub fn add<R: Rng + ?Sized>(&mut self, units: u64, rng: &mut R) {
        for _ in 0..units {
            self.increment(rng);
        }
    }

    /// True when the counter can no longer grow.
    pub fn is_saturated(&self) -> bool {
        self.mode == self.mode_max() && self.a == self.a_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use support::rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn exact_while_in_mode_zero() {
        let mut c = SacCounter::new(8, 4, 1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            c.increment(&mut rng);
        }
        assert_eq!(c.estimate(), 200.0);
    }

    #[test]
    fn unbiased_past_renormalization() {
        // 12-bit counters (8 mantissa + 4 mode) counting 50k units.
        let trials = 300;
        let n = 50_000u64;
        let mut rng = StdRng::seed_from_u64(7);
        let mean: f64 = (0..trials)
            .map(|_| {
                let mut c = SacCounter::new(8, 4, 1);
                c.add(n, &mut rng);
                c.estimate()
            })
            .sum::<f64>()
            / trials as f64;
        let rel = (mean - n as f64).abs() / n as f64;
        assert!(rel < 0.05, "mean = {mean}");
    }

    #[test]
    fn stride_two_covers_more_range() {
        let narrow = SacCounter::new(8, 4, 1);
        let wide = SacCounter::new(8, 4, 2);
        assert!(wide.max_value() > narrow.max_value());
        assert_eq!(narrow.bits(), wide.bits());
    }

    #[test]
    fn saturates_at_max() {
        let mut c = SacCounter::new(2, 2, 1); // tiny: max 3·2³ = 24
        let mut rng = StdRng::seed_from_u64(3);
        c.add(100_000, &mut rng);
        assert!(c.is_saturated());
        assert_eq!(c.estimate(), c.max_value());
    }

    #[test]
    fn variance_grows_with_mode() {
        // The family's cost: deep-mode counters are noisy. Check the
        // coefficient of variation grows between 1k and 100k units.
        let mut rng = StdRng::seed_from_u64(9);
        let cv = |n: u64, rng: &mut StdRng| {
            let trials = 200;
            let vals: Vec<f64> = (0..trials)
                .map(|_| {
                    let mut c = SacCounter::new(6, 4, 1);
                    c.add(n, rng);
                    c.estimate()
                })
                .collect();
            let mean = vals.iter().sum::<f64>() / trials as f64;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / trials as f64;
            var.sqrt() / mean
        };
        let small = cv(1_000, &mut rng);
        let large = cv(100_000, &mut rng);
        assert!(large > small, "cv {small} -> {large}");
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        SacCounter::new(8, 4, 0);
    }
}
