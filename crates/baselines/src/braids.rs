//! Counter Braids (Lu, Montanari, Prabhakar et al., SIGMETRICS 2008).
//!
//! The third related scheme of §2.1: a two-layer braided counter
//! architecture. Every flow hashes to `k1` small layer-1 counters;
//! when a layer-1 counter overflows, the carry "braids" into `k2`
//! wider layer-2 counters keyed by the layer-1 counter's index. Decoding
//! recovers exact flow sizes (with enough counters) by min-sum message
//! passing over the bipartite flow↔counter graph — the same algorithm
//! decodes layer 2 (where layer-1 counters play the role of flows).
//!
//! The CAESAR paper's criticisms, both observable here: "per-arrival
//! packet updates at least three counters" (every packet costs `k1`
//! off-chip read-modify-writes — worse than RCS's one), and decoding
//! requires the full flow list and many iterations (offline only).

use hashkit::KCounterMap;

/// Counter Braids configuration.
#[derive(Debug, Clone, Copy)]
pub struct BraidsConfig {
    /// Layer-1 counters (small, e.g. 8-bit).
    pub layer1_counters: usize,
    /// Bits per layer-1 counter.
    pub layer1_bits: u32,
    /// Layer-1 hashes per flow (`k1`, ≥ 2 for decodability).
    pub k1: usize,
    /// Layer-2 counters (wide).
    pub layer2_counters: usize,
    /// Bits per layer-2 counter.
    pub layer2_bits: u32,
    /// Layer-2 hashes per layer-1 counter (`k2`).
    pub k2: usize,
    /// Hash seed.
    pub seed: u64,
}

impl Default for BraidsConfig {
    fn default() -> Self {
        Self {
            layer1_counters: 8192,
            layer1_bits: 8,
            k1: 3,
            layer2_counters: 1024,
            layer2_bits: 56,
            k2: 2,
            seed: 0xB8A1D5,
        }
    }
}

impl BraidsConfig {
    /// Total memory in bits.
    pub fn memory_bits(&self) -> u64 {
        self.layer1_counters as u64 * self.layer1_bits as u64
            + self.layer2_counters as u64 * self.layer2_bits as u64
    }
}

/// Statistics of a Counter Braids run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BraidsStats {
    /// Packets recorded.
    pub packets: u64,
    /// Off-chip counter accesses (k1 per packet + carries).
    pub accesses: u64,
    /// Layer-1 overflow carries into layer 2.
    pub carries: u64,
}

/// The Counter Braids sketch.
#[derive(Debug)]
pub struct CounterBraids {
    cfg: BraidsConfig,
    layer1: Vec<u64>,
    layer2: Vec<u64>,
    map1: KCounterMap,
    map2: KCounterMap,
    l1_max: u64,
    stats: BraidsStats,
}

impl CounterBraids {
    /// Build an empty braid.
    ///
    /// # Panics
    /// Panics on degenerate configurations (zero counters, `k` of 0,
    /// or `k` exceeding the layer size).
    pub fn new(cfg: BraidsConfig) -> Self {
        assert!(cfg.k1 >= 1 && cfg.k1 <= cfg.layer1_counters);
        assert!(cfg.k2 >= 1 && cfg.k2 <= cfg.layer2_counters);
        assert!((1..=63).contains(&cfg.layer1_bits));
        assert!((1..=63).contains(&cfg.layer2_bits));
        Self {
            layer1: vec![0; cfg.layer1_counters],
            layer2: vec![0; cfg.layer2_counters],
            map1: KCounterMap::new(cfg.k1, cfg.layer1_counters, cfg.seed ^ 0xB1),
            map2: KCounterMap::new(cfg.k2, cfg.layer2_counters, cfg.seed ^ 0xB2),
            l1_max: (1u64 << cfg.layer1_bits) - 1,
            stats: BraidsStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BraidsConfig {
        &self.cfg
    }

    /// Record one packet of `flow`: increment its `k1` layer-1
    /// counters, carrying overflows into layer 2.
    pub fn record(&mut self, flow: u64) {
        self.stats.packets += 1;
        // Workhorse buffer omitted deliberately: k1 is tiny and the
        // braid is an offline baseline, not the hot path.
        for idx in self.map1.indices(flow) {
            self.stats.accesses += 1;
            self.layer1[idx] += 1;
            if self.layer1[idx] > self.l1_max {
                // Overflow: wrap and braid one carry into layer 2.
                self.layer1[idx] = 0;
                self.stats.carries += 1;
                for idx2 in self.map2.indices(idx as u64) {
                    self.stats.accesses += 1;
                    self.layer2[idx2] += 1;
                }
            }
        }
    }

    /// Run statistics.
    pub fn stats(&self) -> BraidsStats {
        self.stats
    }

    /// Decode all flows by two-stage min-sum message passing: first
    /// recover each layer-1 counter's carry count from layer 2, then
    /// recover flow sizes from the reconstructed layer-1 values.
    ///
    /// Returns estimates in the order of `flows`.
    pub fn decode(&self, flows: &[u64], iterations: usize) -> Vec<f64> {
        // Stage 1: layer-1 counter indices are the "flows" of layer 2.
        let l1_ids: Vec<u64> = (0..self.cfg.layer1_counters as u64).collect();
        let carries = min_sum_decode(
            &self.layer2,
            &l1_ids,
            |id, buf| self.map2.indices_into(id, buf),
            self.cfg.k2,
            iterations,
            0.0, // a layer-1 counter may never have overflowed
        );
        // Reconstruct the true layer-1 values.
        let full: Vec<u64> = self
            .layer1
            .iter()
            .zip(&carries)
            .map(|(&stored, &carry)| stored + carry.round().max(0.0) as u64 * (self.l1_max + 1))
            .collect();
        // Stage 2: flows over the reconstructed layer 1.
        min_sum_decode(
            &full,
            flows,
            |id, buf| self.map1.indices_into(id, buf),
            self.cfg.k1,
            iterations,
            1.0, // every queried flow sent at least one packet
        )
    }
}

/// Min-sum (message-passing) decoding of a sparse count system: each of
/// `ids` contributed its unknown non-negative size to `k` of the
/// `values` counters.
///
/// The canonical Counter Braids decoder, with one message per edge:
///
/// * counter→flow: `μ_{c→f} = v_c − Σ_{f'≠f} m_{f'→c}` (what the
///   counter has left after the other flows' claims);
/// * flow→counter: `m_{f→c} = max(0, min_{c'≠c} μ_{c'→f})` — the
///   receiving counter is excluded, which is what makes the iteration
///   converge instead of feeding estimates back to themselves.
///
/// Messages start at 0 (lower bounds); successive iterations alternate
/// upper/lower bounds that squeeze onto the exact sizes when the graph
/// is sparse enough (Lu et al.'s asymptotic-optimality result). The
/// final estimate is `min_c μ_{c→f}`, clamped non-negative.
///
/// # Panics
/// Panics if `k < 2` — with one counter per id the exclusion rule is
/// empty and the system is undecodable.
pub fn min_sum_decode(
    values: &[u64],
    ids: &[u64],
    mut indices_of: impl FnMut(u64, &mut Vec<usize>),
    k: usize,
    iterations: usize,
    min_size: f64,
) -> Vec<f64> {
    assert!(k >= 2, "min-sum decoding needs k >= 2");
    // Flattened adjacency: edges of flow f are flow_edges[f*k..(f+1)*k].
    let mut flow_edges: Vec<usize> = Vec::with_capacity(ids.len() * k);
    let mut buf = Vec::with_capacity(k);
    for &id in ids {
        indices_of(id, &mut buf);
        debug_assert_eq!(buf.len(), k);
        flow_edges.extend_from_slice(&buf);
    }

    // One flow→counter message per edge, initialized to the lower
    // bound `min_size` (every present flow has at least one packet;
    // the Counter Braids analysis leans on exactly this clamp). Double-buffered: every round reads only the previous
    // round's messages (the analysis assumes synchronous updates).
    let mut msg: Vec<f64> = vec![min_size; flow_edges.len()];
    let mut next_msg: Vec<f64> = vec![0.0; flow_edges.len()];
    let mut counter_sum: Vec<f64> = vec![0.0; values.len()];
    let mut mu = vec![0.0f64; k];

    for _ in 0..iterations {
        // Per-counter sum of incoming messages.
        counter_sum.iter_mut().for_each(|v| *v = 0.0);
        for (e, &c) in flow_edges.iter().enumerate() {
            counter_sum[c] += msg[e];
        }
        // Synchronous flow updates.
        let mut changed = false;
        for f in 0..ids.len() {
            let base = f * k;
            for j in 0..k {
                let c = flow_edges[base + j];
                mu[j] = values[c] as f64 - (counter_sum[c] - msg[base + j]);
            }
            for j in 0..k {
                // min over the other counters' μ.
                let mut next = f64::MAX;
                for (j2, &m) in mu.iter().enumerate() {
                    if j2 != j {
                        next = next.min(m);
                    }
                }
                let next = next.max(min_size);
                if (next - msg[base + j]).abs() > 1e-9 {
                    changed = true;
                }
                next_msg[base + j] = next;
            }
        }
        std::mem::swap(&mut msg, &mut next_msg);
        if !changed {
            break;
        }
    }

    // Final beliefs: min over all incoming μ.
    counter_sum.iter_mut().for_each(|v| *v = 0.0);
    for (e, &c) in flow_edges.iter().enumerate() {
        counter_sum[c] += msg[e];
    }
    let mut est = vec![0.0f64; ids.len()];
    for (f, e) in est.iter_mut().enumerate() {
        let base = f * k;
        let mut best = f64::MAX;
        for j in 0..k {
            let c = flow_edges[base + j];
            best = best.min(values[c] as f64 - (counter_sum[c] - msg[base + j]));
        }
        *e = best.max(min_size);
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use support::rand::{rngs::StdRng, Rng, SeedableRng};

    fn sizes(n: usize, seed: u64) -> Vec<(u64, u64)> {
        // Heavy-tailed-ish sizes over distinct flow IDs.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let size = if rng.gen::<f64>() < 0.9 {
                    rng.gen_range(1..=5)
                } else {
                    rng.gen_range(50..=3000)
                };
                (hashkit::mix::mix64(i as u64 + 1), size)
            })
            .collect()
    }

    fn build_and_decode(cfg: BraidsConfig, flows: &[(u64, u64)]) -> Vec<f64> {
        let mut cb = CounterBraids::new(cfg);
        for &(f, x) in flows {
            for _ in 0..x {
                cb.record(f);
            }
        }
        let ids: Vec<u64> = flows.iter().map(|&(f, _)| f).collect();
        cb.decode(&ids, 100)
    }

    #[test]
    fn exact_recovery_without_carries() {
        // 200 flows into 1024 wide layer-1 counters (no overflow):
        // validates the min-sum decoder in isolation.
        let flows = sizes(200, 1);
        let est = build_and_decode(
            BraidsConfig {
                layer1_counters: 1024,
                layer1_bits: 32,
                layer2_counters: 256,
                ..BraidsConfig::default()
            },
            &flows,
        );
        for (i, &(_, x)) in flows.iter().enumerate() {
            assert!(
                (est[i] - x as f64).abs() < 0.5,
                "flow {i}: actual {x}, decoded {}",
                est[i]
            );
        }
    }

    #[test]
    fn recovery_through_carries_with_proper_dimensioning() {
        // 8-bit layer 1 with elephants up to 3000: carries flow into a
        // generously sized layer 2 (more layer-2 counters than layer-1
        // counters that ever overflow). The two-stage decode must stay
        // accurate for all flows.
        let flows = sizes(200, 1);
        let est = build_and_decode(
            BraidsConfig {
                layer1_counters: 1024,
                layer1_bits: 8,
                layer2_counters: 1024,
                ..BraidsConfig::default()
            },
            &flows,
        );
        let total: u64 = flows.iter().map(|&(_, x)| x).sum();
        let mut abs_err = 0.0;
        for (i, &(_, x)) in flows.iter().enumerate() {
            abs_err += (est[i] - x as f64).abs();
        }
        let agg = abs_err / total as f64;
        assert!(agg < 0.05, "aggregate relative error {agg} too high");
    }

    #[test]
    fn carries_reach_layer_two() {
        // 4-bit layer-1 counters overflow fast.
        let mut cb = CounterBraids::new(BraidsConfig {
            layer1_counters: 64,
            layer1_bits: 4,
            layer2_counters: 32,
            ..BraidsConfig::default()
        });
        for _ in 0..500 {
            cb.record(42);
        }
        assert!(cb.stats().carries > 0);
        assert!(cb.layer2.iter().any(|&c| c > 0));
        // Decoding still recovers the flow through the carries.
        let est = cb.decode(&[42], 100);
        assert!((est[0] - 500.0).abs() < 1.0, "decoded {}", est[0]);
    }

    #[test]
    fn per_packet_cost_is_k1_accesses() {
        let mut cb = CounterBraids::new(BraidsConfig {
            layer1_bits: 32, // no carries
            ..BraidsConfig::default()
        });
        for i in 0..1000u64 {
            cb.record(i % 7);
        }
        assert_eq!(cb.stats().accesses, 3000);
    }

    #[test]
    fn overloaded_braid_overestimates_gracefully() {
        // Far too few counters: min-sum cannot disentangle, but the
        // count-min-style bound keeps estimates finite upper bounds.
        let flows = sizes(500, 2);
        let est = build_and_decode(
            BraidsConfig {
                layer1_counters: 64,
                layer2_counters: 32,
                ..BraidsConfig::default()
            },
            &flows,
        );
        for (i, &(_, x)) in flows.iter().enumerate() {
            assert!(est[i].is_finite());
            // Upper-bound property of the decoder (within fp slack).
            assert!(est[i] >= x as f64 - 0.5, "flow {i}: {x} vs {}", est[i]);
        }
    }

    #[test]
    fn conservation_in_layer1_modulo_carries() {
        let mut cb = CounterBraids::new(BraidsConfig {
            layer1_counters: 256,
            layer1_bits: 6,
            layer2_counters: 64,
            ..BraidsConfig::default()
        });
        let n = 5_000u64;
        for i in 0..n {
            cb.record(i % 40);
        }
        let l1: u64 = cb.layer1.iter().sum();
        let carries = cb.stats().carries;
        assert_eq!(l1 + carries * 64, n * 3, "mass conserved across layers");
    }

    #[test]
    fn memory_accounting() {
        let cfg = BraidsConfig::default();
        assert_eq!(
            cfg.memory_bits(),
            8192 * 8 + 1024 * 56
        );
    }
}
