//! Probe: min-sum decodability vs layer-1 load (scratch tool).

use baselines::braids::{BraidsConfig, CounterBraids};
use support::rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let q = 2000usize;
    let mut rng = StdRng::seed_from_u64(1);
    let flows: Vec<(u64, u64)> = (0..q)
        .map(|i| {
            let size = if rng.gen::<f64>() < 0.9 {
                rng.gen_range(1..=5)
            } else {
                rng.gen_range(50..=3000)
            };
            (hashkit::mix::mix64(i as u64 + 1), size)
        })
        .collect();
    for ratio in [0.8f64, 1.0, 1.2, 1.5, 2.0, 3.0, 5.0] {
        let m1 = (q as f64 * ratio) as usize;
        let mut cb = CounterBraids::new(BraidsConfig {
            layer1_counters: m1,
            layer1_bits: 32, // isolate layer-1 decoding
            layer2_counters: 64,
            ..BraidsConfig::default()
        });
        for &(f, x) in &flows {
            for _ in 0..x {
                cb.record(f);
            }
        }
        let ids: Vec<u64> = flows.iter().map(|&(f, _)| f).collect();
        for iters in [50usize, 200, 1000] {
            let est = cb.decode(&ids, iters);
            let exact = flows
                .iter()
                .zip(&est)
                .filter(|(&(_, x), &e)| (e - x as f64).abs() < 0.5)
                .count();
            let total: u64 = flows.iter().map(|&(_, x)| x).sum();
            let abs: f64 = flows
                .iter()
                .zip(&est)
                .map(|(&(_, x), &e)| (e - x as f64).abs())
                .sum();
            print!("  m1/Q={ratio} iters={iters}: exact {exact}/{q}, aggRE {:.4}", abs / total as f64);
        }
        println!();
    }
}
