//! Shared fixtures for the benchmark suites.
//!
//! Three Criterion harnesses live in `benches/`:
//!
//! * `figures` — regenerates each paper figure (Fig. 3–8 + headline)
//!   end-to-end, one bench per figure, at the `Tiny` scale;
//! * `micro` — the hot paths: per-packet record, hashing, counter
//!   mapping, estimators;
//! * `ablations` — the design choices DESIGN.md calls out: `k`, entry
//!   capacity `y`, replacement policy, cache size `M`, SRAM size `L`.

use caesar::{Caesar, CaesarConfig};
use flowtrace::synth::{SynthConfig, TraceGenerator};
use flowtrace::{FlowId, Trace};
use std::collections::HashMap;

/// A deterministic benchmark trace: ~2 K flows, ~75 K packets.
pub fn bench_trace() -> (Trace, HashMap<FlowId, u64>) {
    TraceGenerator::new(SynthConfig::small()).generate()
}

/// A larger trace for throughput measurements (~20 K flows).
pub fn big_bench_trace() -> (Trace, HashMap<FlowId, u64>) {
    TraceGenerator::new(SynthConfig {
        num_flows: 20_000,
        ..SynthConfig::default()
    })
    .generate()
}

/// The line-rate ingest trace: ~400 flows, ~1.6 M packets.
///
/// This is the paper's operating regime for the construction phase —
/// the on-chip cache is sized to the resident working set, so nearly
/// every packet is absorbed on-chip and the measured cost is the ingest
/// pipeline itself (routing, cache hit path, eviction writeback) rather
/// than cache-thrash churn. The `concurrent_build` before/after numbers
/// (`linerate_4` vs `linerate_replay_4`) are taken here.
pub fn linerate_bench_trace() -> (Trace, HashMap<FlowId, u64>) {
    TraceGenerator::new(SynthConfig {
        num_flows: 400,
        mean_flow_size: 4000.0,
        ..SynthConfig::default()
    })
    .generate()
}

/// The benchmark CAESAR geometry (paper operating point, bench scale).
pub fn bench_config() -> CaesarConfig {
    CaesarConfig {
        cache_entries: 512,
        entry_capacity: 54,
        counters: 2048,
        k: 3,
        ..CaesarConfig::default()
    }
}

/// Run a full construction phase over the trace.
pub fn build_sketch(cfg: CaesarConfig, trace: &Trace) -> Caesar {
    let mut c = Caesar::new(cfg);
    for p in &trace.packets {
        c.record(p.flow);
    }
    c.finish();
    c
}

/// Average relative error of the sketch against ground truth over
/// flows of at least `min` packets.
pub fn sketch_are(sketch: &Caesar, truth: &HashMap<FlowId, u64>, min: u64) -> f64 {
    let mut n = 0usize;
    let mut sum = 0.0;
    for (&f, &x) in truth {
        if x >= min {
            n += 1;
            sum += (sketch.query(f) - x as f64).abs() / x as f64;
        }
    }
    sum / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (trace, truth) = bench_trace();
        assert!(!trace.packets.is_empty());
        let sketch = build_sketch(bench_config(), &trace);
        let are = sketch_are(&sketch, &truth, 1000);
        assert!(are.is_finite());
    }
}
