//! Hot-path microbenchmarks: the per-packet and per-eviction costs the
//! Fig. 8 model prices, measured for real on the host CPU.

use baselines::{Case, CaseConfig, DiscoScale, LossModel, Rcs, RcsConfig};
use bench::{bench_config, bench_trace, build_sketch};
use caesar::estimator::{csm, mlm, EstimateParams};
use caesar::{Caesar, Estimator};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hashkit::{aphash::aphash64, fnv::fnv1a64, sha1::Sha1, KCounterMap};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

fn hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    let tuple = [0u8; 13];
    g.throughput(Throughput::Elements(1));
    g.bench_function("sha1_13B_tuple", |b| b.iter(|| black_box(Sha1::digest64(&tuple))));
    g.bench_function("aphash64_13B_tuple", |b| b.iter(|| black_box(aphash64(&tuple))));
    g.bench_function("fnv1a64_13B_tuple", |b| b.iter(|| black_box(fnv1a64(&tuple))));
    let map = KCounterMap::new(3, 23_437, 7);
    let mut buf = Vec::with_capacity(3);
    let mut i = 0u64;
    g.bench_function("kmap_indices_k3", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            map.indices_into(black_box(i), &mut buf);
            black_box(buf.len())
        })
    });
    g.finish();
}

fn record_paths(c: &mut Criterion) {
    let (trace, _) = bench_trace();
    let mut g = c.benchmark_group("record");
    g.throughput(Throughput::Elements(trace.num_packets() as u64));
    g.sample_size(20);

    g.bench_function("caesar_trace", |b| {
        b.iter(|| black_box(build_sketch(bench_config(), &trace)))
    });
    g.bench_function("rcs_trace", |b| {
        b.iter(|| {
            let mut r = Rcs::new(RcsConfig {
                counters: 2048,
                k: 3,
                loss: LossModel::Lossless,
                seed: 1,
            });
            for p in &trace.packets {
                r.record(p.flow);
            }
            black_box(r.stats().recorded)
        })
    });
    g.bench_function("case_trace", |b| {
        b.iter(|| {
            let mut cs = Case::new(CaseConfig {
                counters: trace.num_flows,
                counter_bits: 10,
                max_expected_flow: trace.num_packets() as f64,
                cache_entries: 512,
                entry_capacity: 54,
                ..CaseConfig::default()
            });
            for p in &trace.packets {
                cs.record(p.flow);
            }
            cs.finish();
            black_box(cs.stats().evictions)
        })
    });
    g.finish();
}

fn estimators(c: &mut Criterion) {
    let (trace, truth) = bench_trace();
    let sketch: Caesar = build_sketch(bench_config(), &trace);
    let flows: Vec<u64> = truth.keys().copied().collect();
    let mut g = c.benchmark_group("estimators");
    g.throughput(Throughput::Elements(flows.len() as u64));
    g.bench_function("caesar_query_csm_all_flows", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &f in &flows {
                acc += sketch.estimate(f, Estimator::Csm).value;
            }
            black_box(acc)
        })
    });
    g.bench_function("caesar_query_mlm_all_flows", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &f in &flows {
                acc += sketch.estimate(f, Estimator::Mlm).value;
            }
            black_box(acc)
        })
    });

    // RCS's search-based MLE: the paper calls it "extremely slow";
    // quantify it against closed-form CSM.
    let mut rcs = Rcs::new(RcsConfig {
        counters: 2048,
        k: 3,
        loss: LossModel::Lossless,
        seed: 1,
    });
    for p in &trace.packets {
        rcs.record(p.flow);
    }
    let sample: Vec<u64> = flows.iter().copied().take(200).collect();
    g.throughput(Throughput::Elements(sample.len() as u64));
    g.bench_function("rcs_csm_200_flows", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &f in &sample {
                acc += rcs.estimate_csm(f);
            }
            black_box(acc)
        })
    });
    g.bench_function("rcs_mle_search_200_flows", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &f in &sample {
                acc += rcs.estimate_mle(f);
            }
            black_box(acc)
        })
    });
    g.finish();

    // Raw estimator kernels on fixed counter values.
    let params = EstimateParams { k: 3, y: 54, counters: 2048, total_packets: 75_000 };
    let w = [150u64, 160, 140];
    let mut g = c.benchmark_group("estimator_kernels");
    g.bench_function("csm_kernel", |b| b.iter(|| black_box(csm::estimate(&w, &params))));
    g.bench_function("mlm_kernel", |b| b.iter(|| black_box(mlm::estimate(&w, &params))));
    g.finish();
}

fn disco_ops(c: &mut Criterion) {
    let scale = DiscoScale::for_bits(10, 1e7);
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("disco");
    g.bench_function("apply_bulk_54_units", |b| {
        b.iter(|| black_box(scale.apply_bulk(black_box(500), 54, &mut rng)))
    });
    g.bench_function("apply_unit_trials_54_units", |b| {
        b.iter(|| black_box(scale.apply(black_box(500), 54, &mut rng)))
    });
    let mut x = 0u64;
    g.bench_function("decompress", |b| {
        b.iter(|| {
            x = (x + 1) % 1024;
            black_box(scale.decompress(x))
        })
    });
    g.finish();

    let mut rng2 = StdRng::seed_from_u64(2);
    c.bench_function("cache_record_hit", |b| {
        let mut cache = cachesim::CacheTable::new(cachesim::CacheConfig::lru(512, 1 << 30));
        for f in 0..512u64 {
            cache.record(f);
        }
        b.iter(|| {
            let f = rng2.gen_range(0..512u64);
            black_box(cache.record(f))
        })
    });
}

criterion_group!(benches, hashing, record_paths, estimators, disco_ops);
criterion_main!(benches);
