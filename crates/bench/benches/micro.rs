//! Hot-path microbenchmarks: the per-packet and per-eviction costs the
//! Fig. 8 model prices, measured for real on the host CPU.
//!
//! Runs on the vendored `support::timing::Harness`; sub-microsecond
//! kernels use `bench_n` batching so a sample is long enough for the
//! timer. Bench names are stable across harness changes.

use baselines::{Case, CaseConfig, DiscoScale, LossModel, Rcs, RcsConfig};
use bench::{bench_config, bench_trace, build_sketch};
use caesar::estimator::{csm, mlm, EstimateParams};
use caesar::update::spread_eviction;
use caesar::{AtomicCounterArray, Caesar, CounterArray, Estimator, WritebackBuffer};
use hashkit::{aphash::aphash64, fnv::fnv1a64, sha1::Sha1, KCounterMap, K_MAX};
use std::hint::black_box;
use support::rand::{rngs::StdRng, Rng, SeedableRng};
use support::timing::Harness;

fn hashing() {
    let mut g = Harness::new("hashing");
    let tuple = [0u8; 13];
    g.bench_n("sha1_13B_tuple", 100_000, || {
        black_box(Sha1::digest64(&tuple));
    });
    g.bench_n("aphash64_13B_tuple", 100_000, || {
        black_box(aphash64(&tuple));
    });
    g.bench_n("fnv1a64_13B_tuple", 100_000, || {
        black_box(fnv1a64(&tuple));
    });
    let map = KCounterMap::new(3, 23_437, 7);
    let mut buf = Vec::with_capacity(3);
    let mut i = 0u64;
    g.bench_n("kmap_indices_k3", 100_000, || {
        i = i.wrapping_add(1);
        map.indices_into(black_box(i), &mut buf);
        black_box(buf.len());
    });
    // The allocation-free hot-path form: fixed stack scratch, no Vec
    // bookkeeping at all (PR 3 pair for kmap_indices_k3).
    let mut fill = [0usize; K_MAX];
    let mut j = 0u64;
    g.bench_n("kmap_fill_indices_k3", 100_000, || {
        j = j.wrapping_add(1);
        map.fill_indices(black_box(j), &mut fill);
        black_box(fill[0]);
    });
    g.finish();
}

fn record_paths() {
    let (trace, _) = bench_trace();
    let mut g = Harness::new("record");

    g.bench("caesar_trace", || {
        black_box(build_sketch(bench_config(), &trace));
    });
    // Prefetched batch ingest over the same packets (PR 3 pair for
    // caesar_trace; byte-identical sketch, see hotpath_equivalence).
    let batch_flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    g.bench("caesar_trace_batch", || {
        let mut c = Caesar::new(bench_config());
        c.record_batch(&batch_flows);
        c.finish();
        black_box(c.stats().evictions);
    });
    // The per-eviction spread kernel in isolation (zero-alloc scratch).
    let mut sram = CounterArray::new(2048, 32);
    let idx = [17usize, 701, 1400];
    let mut srng = StdRng::seed_from_u64(9);
    g.bench_n("spread_eviction_k3_54u", 100_000, || {
        black_box(spread_eviction(&mut sram, &idx, 54, &mut srng));
    });
    g.bench("rcs_trace", || {
        let mut r = Rcs::new(RcsConfig {
            counters: 2048,
            k: 3,
            loss: LossModel::Lossless,
            seed: 1,
        });
        for p in &trace.packets {
            r.record(p.flow);
        }
        black_box(r.stats().recorded);
    });
    g.bench("case_trace", || {
        let mut cs = Case::new(CaseConfig {
            counters: trace.num_flows,
            counter_bits: 10,
            max_expected_flow: trace.num_packets() as f64,
            cache_entries: 512,
            entry_capacity: 54,
            ..CaseConfig::default()
        });
        for p in &trace.packets {
            cs.record(p.flow);
        }
        cs.finish();
        black_box(cs.stats().evictions);
    });
    g.finish();
}

fn estimators() {
    let (trace, truth) = bench_trace();
    let sketch: Caesar = build_sketch(bench_config(), &trace);
    let flows: Vec<u64> = truth.keys().copied().collect();
    let mut g = Harness::new("estimators");
    g.bench("caesar_query_csm_all_flows", || {
        let mut acc = 0.0;
        for &f in &flows {
            acc += sketch.estimate(f, Estimator::Csm).value;
        }
        black_box(acc);
    });
    g.bench("caesar_query_mlm_all_flows", || {
        let mut acc = 0.0;
        for &f in &flows {
            acc += sketch.estimate(f, Estimator::Mlm).value;
        }
        black_box(acc);
    });
    // PR 3 pairs: the zero-alloc batch engine, sequential and 4-way
    // (the 4-way width resolves against available_parallelism, so on a
    // 1-core host it measures the batch kernel itself).
    g.bench("caesar_query_csm_all_flows_batch", || {
        black_box(sketch.estimate_all(&flows, Estimator::Csm));
    });
    g.bench("caesar_query_mlm_all_flows_batch", || {
        black_box(sketch.estimate_all(&flows, Estimator::Mlm));
    });
    g.bench("caesar_query_csm_all_flows_par4", || {
        black_box(sketch.estimate_all_threads(&flows, Estimator::Csm, 4));
    });
    g.bench("caesar_query_mlm_all_flows_par4", || {
        black_box(sketch.estimate_all_threads(&flows, Estimator::Mlm, 4));
    });

    // RCS's search-based MLE: the paper calls it "extremely slow";
    // quantify it against closed-form CSM.
    let mut rcs = Rcs::new(RcsConfig {
        counters: 2048,
        k: 3,
        loss: LossModel::Lossless,
        seed: 1,
    });
    for p in &trace.packets {
        rcs.record(p.flow);
    }
    let sample: Vec<u64> = flows.iter().copied().take(200).collect();
    g.bench("rcs_csm_200_flows", || {
        let mut acc = 0.0;
        for &f in &sample {
            acc += rcs.estimate_csm(f);
        }
        black_box(acc);
    });
    g.bench("rcs_mle_search_200_flows", || {
        let mut acc = 0.0;
        for &f in &sample {
            acc += rcs.estimate_mle(f);
        }
        black_box(acc);
    });
    g.finish();

    // Raw estimator kernels on fixed counter values.
    let params = EstimateParams { k: 3, y: 54, counters: 2048, total_packets: 75_000 };
    let w = [150u64, 160, 140];
    let mut g = Harness::new("estimator_kernels");
    g.bench_n("csm_kernel", 100_000, || {
        black_box(csm::estimate(&w, &params));
    });
    g.bench_n("mlm_kernel", 100_000, || {
        black_box(mlm::estimate(&w, &params));
    });
    // Prepared (constants-hoisted) kernels the batch engine runs.
    let csm_prep = csm::Prepared::new(&params);
    g.bench_n("csm_kernel_prepared", 100_000, || {
        black_box(csm_prep.estimate(&w));
    });
    let mlm_prep = mlm::Prepared::new(&params);
    g.bench_n("mlm_kernel_prepared", 100_000, || {
        black_box(mlm_prep.estimate(&w));
    });
    g.finish();
}

fn disco_ops() {
    let scale = DiscoScale::for_bits(10, 1e7);
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = Harness::new("disco");
    g.bench_n("apply_bulk_54_units", 10_000, || {
        black_box(scale.apply_bulk(black_box(500), 54, &mut rng));
    });
    g.bench_n("apply_unit_trials_54_units", 10_000, || {
        black_box(scale.apply(black_box(500), 54, &mut rng));
    });
    let mut x = 0u64;
    g.bench_n("decompress", 100_000, || {
        x = (x + 1) % 1024;
        black_box(scale.decompress(x));
    });
    g.finish();

    let mut rng2 = StdRng::seed_from_u64(2);
    let mut g = Harness::new("cache");
    let mut cache = cachesim::CacheTable::new(cachesim::CacheConfig::lru(512, 1 << 30));
    for f in 0..512u64 {
        cache.record(f);
    }
    g.bench_n("cache_record_hit", 100_000, || {
        let f = rng2.gen_range(0..512u64);
        black_box(cache.record(f));
    });
    g.finish();
}

fn sram_writeback() {
    // The per-eviction off-chip write path: one relaxed-CAS `add` per
    // counter versus staging through a coalescing writeback buffer.
    let mut g = Harness::new("atomic_sram");
    let a = AtomicCounterArray::new(2048, 32);
    let mut i = 0u64;
    g.bench_n("add_hot64", 100_000, || {
        i = i.wrapping_add(1);
        a.add((i % 64) as usize, 1);
    });
    let mut wb = WritebackBuffer::new(1024);
    g.bench_n("writeback_push_hot64", 100_000, || {
        i = i.wrapping_add(1);
        wb.push((i % 64) as usize, 1, &a);
    });
    let updates: Vec<(usize, u64)> = (0..1024u64).map(|j| ((j % 64) as usize, 1)).collect();
    g.bench_n("add_batch_1024_uncoalesced", 1_000, || {
        a.add_batch(black_box(&updates));
    });
    g.finish();
}

fn spsc_transport() {
    // Raw hand-off cost of the PR 4 ring: per-item push/pop round trips
    // and the batched producer/consumer forms the shard workers use.
    // Single-threaded on purpose — this prices the atomics and index
    // arithmetic, not scheduling.
    let mut g = Harness::new("spsc");
    let (mut tx, mut rx) = support::spsc::ring::<u64>(4096);
    let mut i = 0u64;
    g.bench_n("push_pop_1", 100_000, || {
        i = i.wrapping_add(1);
        assert!(tx.try_push(i).is_ok());
        black_box(rx.try_pop());
    });
    let chunk: Vec<u64> = (0..1024u64).collect();
    let mut buf: Vec<u64> = Vec::with_capacity(1024);
    g.bench_n("push_slice_pop_batch_1024", 1_000, || {
        assert_eq!(tx.push_slice(black_box(&chunk)), chunk.len());
        buf.clear();
        assert_eq!(rx.pop_batch(&mut buf, 1024), chunk.len());
        black_box(buf.len());
    });
    g.finish();
}

fn main() {
    hashing();
    record_paths();
    estimators();
    disco_ops();
    sram_writeback();
    spsc_transport();
}
