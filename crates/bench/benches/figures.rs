//! One bench per paper figure: measures the full regeneration of each
//! figure at the `Tiny` scale (the figure content itself is validated
//! by the experiment crate's tests; here we pin the cost of
//! regeneration and catch pathological slowdowns).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{fig3, fig4, fig5, fig6, fig7, fig8, headline, Scale};
use std::hint::black_box;

fn figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig3_distribution", |b| {
        b.iter(|| black_box(fig3::run(Scale::Tiny)))
    });
    g.bench_function("fig4_caesar_accuracy", |b| {
        b.iter(|| black_box(fig4::run(Scale::Tiny)))
    });
    g.bench_function("fig5_case_accuracy", |b| {
        b.iter(|| black_box(fig5::run(Scale::Tiny)))
    });
    g.bench_function("fig6_rcs_lossless", |b| {
        b.iter(|| black_box(fig6::run(Scale::Tiny)))
    });
    g.bench_function("fig7_rcs_lossy", |b| {
        b.iter(|| black_box(fig7::run(Scale::Tiny)))
    });
    g.bench_function("fig8_processing_time", |b| {
        b.iter(|| black_box(fig8::run(Scale::Tiny)))
    });
    g.bench_function("headline_are", |b| {
        b.iter(|| black_box(headline::run(Scale::Tiny)))
    });
    g.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
