//! One bench per paper figure: measures the full regeneration of each
//! figure at the `Tiny` scale (the figure content itself is validated
//! by the experiment crate's tests; here we pin the cost of
//! regeneration and catch pathological slowdowns).
//!
//! Runs on the vendored `support::timing::Harness` (criterion is not
//! available offline); one JSON line per bench on stdout. Bench names
//! are stable across harness changes.

use experiments::{fig3, fig4, fig5, fig6, fig7, fig8, headline, Scale};
use std::hint::black_box;
use support::timing::Harness;

fn main() {
    let mut g = Harness::new("figures");
    g.sample_size(10);

    g.bench("fig3_distribution", || {
        black_box(fig3::run(Scale::Tiny));
    });
    g.bench("fig4_caesar_accuracy", || {
        black_box(fig4::run(Scale::Tiny));
    });
    g.bench("fig5_case_accuracy", || {
        black_box(fig5::run(Scale::Tiny));
    });
    g.bench("fig6_rcs_lossless", || {
        black_box(fig6::run(Scale::Tiny));
    });
    g.bench("fig7_rcs_lossy", || {
        black_box(fig7::run(Scale::Tiny));
    });
    g.bench("fig8_processing_time", || {
        black_box(fig8::run(Scale::Tiny));
    });
    g.bench("headline_are", || {
        black_box(headline::run(Scale::Tiny));
    });
    g.finish();
}
