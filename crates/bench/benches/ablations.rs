//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each bench measures construction throughput for one point of the
//! design space and prints the resulting accuracy (large-flow ARE)
//! once, so a single `cargo bench --bench ablations` run yields both
//! sides of every trade-off:
//!
//! * `k` — mapped counters per flow (paper uses 3);
//! * `y` — cache entry capacity (paper uses 2·n/Q);
//! * replacement policy — LRU vs random vs FIFO;
//! * `M` — cache entries (eviction rate vs on-chip budget);
//! * `L` — SRAM counters (sharing noise vs off-chip budget).
//!
//! Runs on the vendored `support::timing::Harness`; group/name pairs
//! match the old criterion ids (`ablate_k/3`, `ablate_policy/lru`, …).

use bench::{bench_config, bench_trace, big_bench_trace, build_sketch, sketch_are};
use caesar::{Caesar, PackedCaesar};
use cachesim::CachePolicy;
use std::hint::black_box;
use support::timing::Harness;

fn ablate_k() {
    let (trace, truth) = bench_trace();
    let mut g = Harness::new("ablate_k");
    for k in [1usize, 2, 3, 5, 8] {
        let cfg = caesar::CaesarConfig { k, ..bench_config() };
        let sketch = build_sketch(cfg, &trace);
        eprintln!(
            "[ablate_k] k={k}: large-flow ARE = {:.3}, SRAM writes = {}",
            sketch_are(&sketch, &truth, 1000),
            sketch.stats().sram_writes
        );
        g.bench(&k.to_string(), || {
            black_box(build_sketch(cfg, &trace));
        });
    }
    g.finish();
}

fn ablate_entry_capacity() {
    let (trace, truth) = bench_trace();
    let mut g = Harness::new("ablate_y");
    for y in [4u64, 16, 54, 128, 512] {
        let cfg = caesar::CaesarConfig { entry_capacity: y, ..bench_config() };
        let sketch = build_sketch(cfg, &trace);
        let st = sketch.stats();
        eprintln!(
            "[ablate_y] y={y}: ARE = {:.3}, evictions = {} (overflow {}, replacement {})",
            sketch_are(&sketch, &truth, 1000),
            st.evictions,
            st.cache.overflow_evictions,
            st.cache.replacement_evictions
        );
        g.bench(&y.to_string(), || {
            black_box(build_sketch(cfg, &trace));
        });
    }
    g.finish();
}

fn ablate_policy() {
    let (trace, truth) = bench_trace();
    let mut g = Harness::new("ablate_policy");
    for (name, policy) in [
        ("lru", CachePolicy::Lru),
        ("random", CachePolicy::Random),
        ("fifo", CachePolicy::Fifo),
    ] {
        let cfg = caesar::CaesarConfig { policy, ..bench_config() };
        let sketch = build_sketch(cfg, &trace);
        eprintln!(
            "[ablate_policy] {name}: ARE = {:.3}, hit rate = {:.3}",
            sketch_are(&sketch, &truth, 1000),
            sketch.stats().cache.hit_rate()
        );
        g.bench(name, || {
            black_box(build_sketch(cfg, &trace));
        });
    }
    g.finish();
}

fn ablate_cache_size() {
    let (trace, _truth) = bench_trace();
    let mut g = Harness::new("ablate_cache_size");
    for m in [32usize, 128, 512, 2048] {
        let cfg = caesar::CaesarConfig { cache_entries: m, ..bench_config() };
        let sketch = build_sketch(cfg, &trace);
        let st = sketch.stats();
        eprintln!(
            "[ablate_cache_size] M={m}: hit rate = {:.3}, SRAM writes/pkt = {:.3}",
            st.cache.hit_rate(),
            st.sram_writes as f64 / trace.num_packets() as f64
        );
        g.bench(&m.to_string(), || {
            black_box(build_sketch(cfg, &trace));
        });
    }
    g.finish();
}

fn ablate_sram_size() {
    let (trace, truth) = big_bench_trace();
    let mut g = Harness::new("ablate_sram");
    for l in [512usize, 2048, 8192, 32768] {
        let cfg = caesar::CaesarConfig {
            cache_entries: 2048,
            counters: l,
            ..bench_config()
        };
        let sketch = build_sketch(cfg, &trace);
        eprintln!(
            "[ablate_sram] L={l} ({:.1} KB): large-flow ARE = {:.3}",
            cfg.sram_kb(),
            sketch_are(&sketch, &truth, 1000)
        );
        g.bench(&l.to_string(), || {
            black_box(build_sketch(cfg, &trace));
        });
    }
    g.finish();
}

/// Packed-SRAM ingest ablation (DESIGN.md §4i): the bit-packed backing
/// stores the `L` counters in `L·b` bits instead of `L·64`, but every
/// eviction write pays a shift/mask read-modify-write in the CPU model.
/// Prices that trade at a small and a large `L` so EXPERIMENTS.md can
/// record a keep/drop verdict for packed storage on the ingest path.
fn ablate_ingest_backing() {
    let (small, _) = bench_trace();
    let (big, _) = big_bench_trace();
    let mut g = Harness::new("ingest_backing");
    for (scale, trace, cfg) in [
        ("small_l", &small, bench_config()),
        (
            "large_l",
            &big,
            caesar::CaesarConfig {
                cache_entries: 2048,
                counters: 32_768,
                ..bench_config()
            },
        ),
    ] {
        let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
        eprintln!(
            "[ingest_backing] {scale}: L={}, word {:.1} KB vs packed {:.1} KB",
            cfg.counters,
            cfg.counters as f64 * 8.0 / 1024.0,
            cfg.sram_kb()
        );
        g.bench(&format!("word_{scale}"), || {
            let mut c = Caesar::new(cfg);
            c.record_batch(&flows);
            c.finish();
            black_box(c.stats().evictions);
        });
        g.bench(&format!("packed_{scale}"), || {
            let mut c = PackedCaesar::new(cfg);
            c.record_batch(&flows);
            c.finish();
            black_box(c.stats().evictions);
        });
    }
    g.finish();
}

fn main() {
    ablate_k();
    ablate_entry_capacity();
    ablate_policy();
    ablate_cache_size();
    ablate_sram_size();
    ablate_ingest_backing();
}
