//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each bench measures construction throughput for one point of the
//! design space and prints the resulting accuracy (large-flow ARE)
//! once, so a single `cargo bench --bench ablations` run yields both
//! sides of every trade-off:
//!
//! * `k` — mapped counters per flow (paper uses 3);
//! * `y` — cache entry capacity (paper uses 2·n/Q);
//! * replacement policy — LRU vs random vs FIFO;
//! * `M` — cache entries (eviction rate vs on-chip budget);
//! * `L` — SRAM counters (sharing noise vs off-chip budget).

use bench::{bench_config, bench_trace, big_bench_trace, build_sketch, sketch_are};
use cachesim::CachePolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn ablate_k(c: &mut Criterion) {
    let (trace, truth) = bench_trace();
    let mut g = c.benchmark_group("ablate_k");
    g.throughput(Throughput::Elements(trace.num_packets() as u64));
    g.sample_size(10);
    for k in [1usize, 2, 3, 5, 8] {
        let cfg = caesar::CaesarConfig { k, ..bench_config() };
        let sketch = build_sketch(cfg, &trace);
        eprintln!(
            "[ablate_k] k={k}: large-flow ARE = {:.3}, SRAM writes = {}",
            sketch_are(&sketch, &truth, 1000),
            sketch.stats().sram_writes
        );
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(build_sketch(cfg, &trace)))
        });
    }
    g.finish();
}

fn ablate_entry_capacity(c: &mut Criterion) {
    let (trace, truth) = bench_trace();
    let mut g = c.benchmark_group("ablate_y");
    g.throughput(Throughput::Elements(trace.num_packets() as u64));
    g.sample_size(10);
    for y in [4u64, 16, 54, 128, 512] {
        let cfg = caesar::CaesarConfig { entry_capacity: y, ..bench_config() };
        let sketch = build_sketch(cfg, &trace);
        let st = sketch.stats();
        eprintln!(
            "[ablate_y] y={y}: ARE = {:.3}, evictions = {} (overflow {}, replacement {})",
            sketch_are(&sketch, &truth, 1000),
            st.evictions,
            st.cache.overflow_evictions,
            st.cache.replacement_evictions
        );
        g.bench_with_input(BenchmarkId::from_parameter(y), &y, |b, _| {
            b.iter(|| black_box(build_sketch(cfg, &trace)))
        });
    }
    g.finish();
}

fn ablate_policy(c: &mut Criterion) {
    let (trace, truth) = bench_trace();
    let mut g = c.benchmark_group("ablate_policy");
    g.throughput(Throughput::Elements(trace.num_packets() as u64));
    g.sample_size(10);
    for (name, policy) in [
        ("lru", CachePolicy::Lru),
        ("random", CachePolicy::Random),
        ("fifo", CachePolicy::Fifo),
    ] {
        let cfg = caesar::CaesarConfig { policy, ..bench_config() };
        let sketch = build_sketch(cfg, &trace);
        eprintln!(
            "[ablate_policy] {name}: ARE = {:.3}, hit rate = {:.3}",
            sketch_are(&sketch, &truth, 1000),
            sketch.stats().cache.hit_rate()
        );
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| black_box(build_sketch(cfg, &trace)))
        });
    }
    g.finish();
}

fn ablate_cache_size(c: &mut Criterion) {
    let (trace, _truth) = bench_trace();
    let mut g = c.benchmark_group("ablate_cache_size");
    g.throughput(Throughput::Elements(trace.num_packets() as u64));
    g.sample_size(10);
    for m in [32usize, 128, 512, 2048] {
        let cfg = caesar::CaesarConfig { cache_entries: m, ..bench_config() };
        let sketch = build_sketch(cfg, &trace);
        let st = sketch.stats();
        eprintln!(
            "[ablate_cache_size] M={m}: hit rate = {:.3}, SRAM writes/pkt = {:.3}",
            st.cache.hit_rate(),
            st.sram_writes as f64 / trace.num_packets() as f64
        );
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(build_sketch(cfg, &trace)))
        });
    }
    g.finish();
}

fn ablate_sram_size(c: &mut Criterion) {
    let (trace, truth) = big_bench_trace();
    let mut g = c.benchmark_group("ablate_sram");
    g.throughput(Throughput::Elements(trace.num_packets() as u64));
    g.sample_size(10);
    for l in [512usize, 2048, 8192, 32768] {
        let cfg = caesar::CaesarConfig {
            cache_entries: 2048,
            counters: l,
            ..bench_config()
        };
        let sketch = build_sketch(cfg, &trace);
        eprintln!(
            "[ablate_sram] L={l} ({:.1} KB): large-flow ARE = {:.3}",
            cfg.sram_kb(),
            sketch_are(&sketch, &truth, 1000)
        );
        g.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, _| {
            b.iter(|| black_box(build_sketch(cfg, &trace)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_k,
    ablate_entry_capacity,
    ablate_policy,
    ablate_cache_size,
    ablate_sram_size
);
criterion_main!(benches);
