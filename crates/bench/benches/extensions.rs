//! Benchmarks for the systems built beyond the paper's core: Counter
//! Braids (construction + min-sum decode), SAC counters, the sampling
//! baseline, the sharded concurrent build, epoch rotation, and the
//! event-driven pipeline model.

use baselines::{
    AnlsCounter, BraidsConfig, CedarScale, CounterBraids, LossModel, Rcs, RcsConfig,
    SacCounter, SampledCounter, SamplingConfig, Vhc, VhcConfig,
};
use bench::{bench_config, bench_trace};
use caesar::epochs::EpochedCaesar;
use caesar::ConcurrentCaesar;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memsim::{PacketWork, Pipeline};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn braids(c: &mut Criterion) {
    let (trace, truth) = bench_trace();
    let mut g = c.benchmark_group("braids");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.num_packets() as u64));
    let cfg = BraidsConfig {
        layer1_counters: trace.num_flows * 3,
        layer2_counters: trace.num_flows / 4,
        ..BraidsConfig::default()
    };
    g.bench_function("construct", |b| {
        b.iter(|| {
            let mut cb = CounterBraids::new(cfg);
            for p in &trace.packets {
                cb.record(p.flow);
            }
            black_box(cb.stats().accesses)
        })
    });
    let mut cb = CounterBraids::new(cfg);
    for p in &trace.packets {
        cb.record(p.flow);
    }
    let ids: Vec<u64> = truth.keys().copied().collect();
    g.throughput(Throughput::Elements(ids.len() as u64));
    g.bench_function("min_sum_decode", |b| {
        b.iter(|| black_box(cb.decode(&ids, 60)))
    });
    g.finish();
}

fn sac_and_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_counter");
    let mut rng = StdRng::seed_from_u64(1);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("sac_10k_units", |b| {
        b.iter(|| {
            let mut s = SacCounter::new(8, 4, 1);
            s.add(10_000, &mut rng);
            black_box(s.estimate())
        })
    });
    let anls_proto = AnlsCounter::for_range(12, 1e6);
    g.bench_function("anls_10k_units", |b| {
        b.iter(|| {
            let mut a = anls_proto;
            a.add(10_000, &mut rng);
            black_box(a.estimate())
        })
    });
    let cedar = CedarScale::new(12, 0.1);
    g.bench_function("cedar_10k_units", |b| {
        b.iter(|| black_box(cedar.estimate(cedar.add(0, 10_000, &mut rng))))
    });
    g.finish();

    let (trace, _) = bench_trace();
    let mut g = c.benchmark_group("vhc");
    g.sample_size(20);
    g.throughput(Throughput::Elements(trace.num_packets() as u64));
    g.bench_function("record_trace", |b| {
        b.iter(|| {
            let mut v = Vhc::new(VhcConfig {
                registers: 1 << 14,
                virtual_registers: 128,
                seed: 1,
            });
            for p in &trace.packets {
                v.record(p.flow);
            }
            black_box(v.total_estimate())
        })
    });
    g.finish();

    let (trace, _) = bench_trace();
    let mut g = c.benchmark_group("sampling");
    g.sample_size(20);
    g.throughput(Throughput::Elements(trace.num_packets() as u64));
    g.bench_function("netflow_p01_trace", |b| {
        b.iter(|| {
            let mut s = SampledCounter::new(SamplingConfig {
                rate: 0.01,
                ..SamplingConfig::default()
            });
            for p in &trace.packets {
                s.record(p.flow);
            }
            black_box(s.table_entries())
        })
    });
    g.finish();
}

fn concurrent_and_epochs(c: &mut Criterion) {
    let (trace, _) = bench_trace();
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    let mut g = c.benchmark_group("concurrent_build");
    g.sample_size(10);
    g.throughput(Throughput::Elements(flows.len() as u64));
    for shards in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &s| {
            b.iter(|| black_box(ConcurrentCaesar::build(bench_config(), s, &flows)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("epochs");
    g.sample_size(10);
    g.bench_function("rotate_8_epochs", |b| {
        b.iter(|| {
            let mut e = EpochedCaesar::new(bench_config(), 8);
            for chunk in flows.chunks(flows.len() / 8) {
                for &f in chunk {
                    e.record(f);
                }
                e.rotate();
            }
            black_box(e.epochs().count())
        })
    });
    g.finish();
}

fn pipeline_and_rcs(c: &mut Criterion) {
    let mut g = c.benchmark_group("timing_models");
    let n = 200_000usize;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("pipeline_200k_events", |b| {
        b.iter(|| {
            let p = Pipeline::default();
            black_box(p.run((0..n).map(|i| {
                if i % 20 == 0 {
                    PacketWork { writebacks: 6, compute_ns: 0.0 }
                } else {
                    PacketWork::HIT
                }
            })))
        })
    });
    let (trace, _) = bench_trace();
    g.throughput(Throughput::Elements(trace.num_packets() as u64));
    g.bench_function("rcs_lossy_queue_trace", |b| {
        b.iter(|| {
            let mut r = Rcs::new(RcsConfig {
                counters: 2048,
                k: 3,
                loss: LossModel::Queue(memsim::IngressQueue {
                    arrival_ns: 1.0,
                    service_ns: 10.0,
                    capacity: 64,
                }),
                seed: 3,
            });
            for p in &trace.packets {
                r.record(p.flow);
            }
            black_box(r.stats().loss_rate())
        })
    });
    g.finish();
}

criterion_group!(benches, braids, sac_and_sampling, concurrent_and_epochs, pipeline_and_rcs);
criterion_main!(benches);
