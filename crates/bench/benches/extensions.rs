//! Benchmarks for the systems built beyond the paper's core: Counter
//! Braids (construction + min-sum decode), SAC counters, the sampling
//! baseline, the sharded concurrent build, epoch rotation, and the
//! event-driven pipeline model.
//!
//! Runs on the vendored `support::timing::Harness`; bench names are
//! stable across harness changes.

use baselines::{
    AnlsCounter, BraidsConfig, CedarScale, CounterBraids, LossModel, Rcs, RcsConfig,
    SacCounter, SampledCounter, SamplingConfig, Vhc, VhcConfig,
};
use bench::{bench_config, bench_trace, linerate_bench_trace};
use caesar::epochs::{EpochedCaesar, EpochedConcurrentCaesar};
use caesar::{
    BuildMode, Caesar, CaesarConfig, ConcurrentCaesar, Estimator, OnlineCaesar, SketchDelta,
    ThreadedCaesar,
};
use experiments::zoo::{online_engine, stress_plan, zoo_config, ONLINE_SHARDS};
use flowtrace::zoo::{standard_zoo, ZOO_SEED};
use memsim::{PacketWork, Pipeline};
use service::{InProcess, MeasurementClient, MeasurementService, TcpServer, TcpTransport};
use std::hint::black_box;
use support::rand::{rngs::StdRng, SeedableRng};
use support::timing::Harness;

fn braids() {
    let (trace, truth) = bench_trace();
    let mut g = Harness::new("braids");
    let cfg = BraidsConfig {
        layer1_counters: trace.num_flows * 3,
        layer2_counters: trace.num_flows / 4,
        ..BraidsConfig::default()
    };
    g.bench("construct", || {
        let mut cb = CounterBraids::new(cfg);
        for p in &trace.packets {
            cb.record(p.flow);
        }
        black_box(cb.stats().accesses);
    });
    let mut cb = CounterBraids::new(cfg);
    for p in &trace.packets {
        cb.record(p.flow);
    }
    let ids: Vec<u64> = truth.keys().copied().collect();
    g.bench("min_sum_decode", || {
        black_box(cb.decode(&ids, 60));
    });
    g.finish();
}

fn sac_and_sampling() {
    let mut g = Harness::new("single_counter");
    let mut rng = StdRng::seed_from_u64(1);
    g.bench_n("sac_10k_units", 100, {
        let rng = &mut rng;
        move || {
            let mut s = SacCounter::new(8, 4, 1);
            s.add(10_000, rng);
            black_box(s.estimate());
        }
    });
    let mut rng = StdRng::seed_from_u64(1);
    let anls_proto = AnlsCounter::for_range(12, 1e6);
    g.bench_n("anls_10k_units", 100, {
        let rng = &mut rng;
        move || {
            let mut a = anls_proto;
            a.add(10_000, rng);
            black_box(a.estimate());
        }
    });
    let mut rng = StdRng::seed_from_u64(1);
    let cedar = CedarScale::new(12, 0.1);
    g.bench_n("cedar_10k_units", 100, {
        let rng = &mut rng;
        move || {
            black_box(cedar.estimate(cedar.add(0, 10_000, rng)));
        }
    });
    g.finish();

    let (trace, _) = bench_trace();
    let mut g = Harness::new("vhc");
    g.bench("record_trace", || {
        let mut v = Vhc::new(VhcConfig {
            registers: 1 << 14,
            virtual_registers: 128,
            seed: 1,
        });
        for p in &trace.packets {
            v.record(p.flow);
        }
        black_box(v.total_estimate());
    });
    g.finish();

    let mut g = Harness::new("sampling");
    g.bench("netflow_p01_trace", || {
        let mut s = SampledCounter::new(SamplingConfig {
            rate: 0.01,
            ..SamplingConfig::default()
        });
        for p in &trace.packets {
            s.record(p.flow);
        }
        black_box(s.table_entries());
    });
    g.finish();
}

fn concurrent_and_epochs() {
    let (trace, _) = bench_trace();
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    // Stable names "1"/"2"/"4" keep measuring the default build path —
    // now the single-pass partitioned pipeline. `replay_*` pins the
    // seed's O(T·n) scan-and-filter implementation for the before/after
    // trajectory (BENCH_PR2.json), `stream_4` the mpsc overlap variant.
    let mut g = Harness::new("concurrent_build");
    for shards in [1usize, 2, 4] {
        g.bench(&shards.to_string(), || {
            black_box(ConcurrentCaesar::build(bench_config(), shards, &flows));
        });
    }
    for shards in [1usize, 4] {
        g.bench(&format!("replay_{shards}"), || {
            black_box(ConcurrentCaesar::build_replay(bench_config(), shards, &flows));
        });
    }
    g.bench("stream_4", || {
        black_box(ConcurrentCaesar::build_stream(
            bench_config(),
            4,
            flows.iter().copied(),
        ));
    });
    // The PR 4 ring transport: worker-per-shard loops draining SPSC
    // rings in batches, striped writeback merged once at finish.
    g.bench("pinned_4", || {
        black_box(ConcurrentCaesar::build_with_mode(
            bench_config(),
            4,
            &flows,
            BuildMode::Pinned,
        ));
    });
    // The headline before/after pair: the line-rate regime (cache sized
    // to the working set) isolates the ingest pipeline itself, which is
    // what the O(n)-partition fix targets — the `replay` defect is pure
    // redundant scan work there.
    let (linerate, _) = linerate_bench_trace();
    let lflows: Vec<u64> = linerate.packets.iter().map(|p| p.flow).collect();
    g.bench("linerate_4", || {
        black_box(ConcurrentCaesar::build(bench_config(), 4, &lflows));
    });
    g.bench("linerate_replay_4", || {
        black_box(ConcurrentCaesar::build_replay(bench_config(), 4, &lflows));
    });
    g.bench("linerate_stream_4", || {
        black_box(ConcurrentCaesar::build_stream(
            bench_config(),
            4,
            lflows.iter().copied(),
        ));
    });
    g.finish();

    // The PR 5 supervised online engine: same SPSC/striped-writeback
    // machinery as `stream_4`/`pinned_4`, but single-owner, supervised
    // and non-terminating. `steady_state_*` is the packet-at-a-time
    // offer loop incl. epoch merges and the final drain — the
    // before/after pair for the fault-tolerance tax is
    // online/steady_state_4 vs concurrent_build/stream_4 in the same
    // trajectory file. `snapshot_roundtrip_4` prices a mid-stream
    // checkpoint (serialize + restore + one resumed epoch).
    let mut g = Harness::new("online");
    for shards in [1usize, 4] {
        g.bench(&format!("steady_state_{shards}"), || {
            let mut o = OnlineCaesar::new(bench_config(), shards);
            for &f in &flows {
                o.offer(f);
            }
            black_box(o.finish());
        });
    }
    // The detached-thread runtime: same offer loop as
    // `steady_state_*`, but the shard workers are real OS threads
    // under heartbeat supervision, so this prices the thread-runtime
    // tax (ring hand-off, heartbeat stores, supervised drains) against
    // online/steady_state_N in the same trajectory file.
    for shards in [1usize, 4] {
        g.bench(&format!("threaded_steady_state_{shards}"), || {
            let mut t = ThreadedCaesar::new(bench_config(), shards);
            t.offer_batch(&flows);
            black_box(t.finish());
        });
    }
    g.bench("snapshot_roundtrip_4", || {
        let mut o = OnlineCaesar::new(bench_config(), 4);
        let half = flows.len() / 2;
        for &f in &flows[..half] {
            o.offer(f);
        }
        let snap = o.snapshot();
        let mut o = OnlineCaesar::restore(&snap).expect("bench restore");
        for &f in &flows[half..] {
            o.offer(f);
        }
        black_box((snap.len(), o.finish()));
    });
    g.finish();

    let mut g = Harness::new("epochs");
    g.bench("rotate_8_epochs", || {
        let mut e = EpochedCaesar::new(bench_config(), 8);
        for chunk in flows.chunks(flows.len() / 8) {
            for &f in chunk {
                e.record(f);
            }
            e.rotate();
        }
        black_box(e.epochs().count());
    });
    g.bench("rotate_8_epochs_concurrent_4", || {
        let mut e = EpochedConcurrentCaesar::new(bench_config(), 4, 8);
        for chunk in flows.chunks(flows.len() / 8) {
            for &f in chunk {
                e.record(f);
            }
            e.rotate();
        }
        black_box(e.epochs().count());
    });
    g.finish();
}

fn parallel_query() {
    // The PR 3 batch query engine against the concurrent sketch's
    // atomic SRAM: per-call sweep (the "before") vs the zero-alloc
    // batch kernel at widths 1/2/4. Thread widths resolve against
    // available_parallelism, and results are bit-identical at every
    // width (tests/hotpath_equivalence.rs), so the numbers isolate
    // kernel + scheduling cost, never accuracy.
    let (trace, truth) = bench_trace();
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    let sketch = ConcurrentCaesar::build(bench_config(), 4, &flows);
    let population: Vec<u64> = truth.keys().copied().collect();
    let mut g = Harness::new("parallel_query");
    for (label, estimator) in [("csm", Estimator::Csm), ("mlm", Estimator::Mlm)] {
        g.bench(&format!("{label}_per_call"), || {
            let mut acc = 0.0;
            for &f in &population {
                acc += sketch.estimate(f, estimator).value;
            }
            black_box(acc);
        });
        for t in [1usize, 2, 4] {
            g.bench(&format!("{label}_batch_t{t}"), || {
                black_box(sketch.estimate_all_threads(&population, estimator, t));
            });
        }
    }
    g.finish();
}

fn pipeline_and_rcs() {
    let mut g = Harness::new("timing_models");
    let n = 200_000usize;
    g.bench("pipeline_200k_events", || {
        let p = Pipeline::default();
        black_box(p.run((0..n).map(|i| {
            if i % 20 == 0 {
                PacketWork { writebacks: 6, compute_ns: 0.0 }
            } else {
                PacketWork::HIT
            }
        })));
    });
    let (trace, _) = bench_trace();
    g.bench("rcs_lossy_queue_trace", || {
        let mut r = Rcs::new(RcsConfig {
            counters: 2048,
            k: 3,
            loss: LossModel::Queue(memsim::IngressQueue {
                arrival_ns: 1.0,
                service_ns: 10.0,
                capacity: 64,
            }),
            seed: 3,
        });
        for p in &trace.packets {
            r.record(p.flow);
        }
        black_box(r.stats().loss_rate());
    });
    g.finish();
}

fn zoo_ingest() {
    // The PR 6 workload zoo: one sequential-ingest bench per family at
    // a fixed ~2 K-flow scale, each sketch sized from its own trace by
    // `experiments::zoo::zoo_config` so every family runs at the
    // paper's intensive operating point. The per-family numbers price
    // how each traffic *shape* loads the cache/SRAM pipeline (the CDN
    // shape is nearly all cache hits, the mouse flood nearly all
    // evictions). `mouse_flood_online_stressed` additionally prices
    // the supervised online path under its shipped stress plan
    // (stalled shard-0 lane, tail-drop ring) — the cost of shedding,
    // not just recording.
    let zoo = standard_zoo(2_000).expect("standard zoo parameters are valid");
    let mut g = Harness::new("zoo_ingest");
    for w in &zoo {
        let (trace, _) = w.generate(ZOO_SEED);
        let cfg = zoo_config(&trace);
        g.bench(w.name(), || {
            let mut c = Caesar::new(cfg);
            for p in &trace.packets {
                c.record(p.flow);
            }
            c.finish();
            black_box(c.sram().total_added());
        });
    }
    let mouse = &zoo[4];
    let (trace, _) = mouse.generate(ZOO_SEED);
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    let cfg = zoo_config(&trace);
    let plan = stress_plan(mouse.name());
    g.bench("mouse_flood_online_stressed", || {
        let mut o = online_engine(cfg, &plan, ONLINE_SHARDS);
        o.offer_batch(&flows);
        o.merge_now();
        black_box(o.stats().dropped);
    });
    g.finish();
}

fn zoo_merge_and_service() {
    // PR 7: the cluster-view path. `zoo_merge` prices folding three
    // taps' frozen sketches into an empty cluster view, per family —
    // merge cost is O(L) counter adds and the per-family `zoo_config`
    // geometry makes L a function of traffic shape, so families
    // differ. `service` prices the wire: payload codec, the in-process
    // push + 64-flow query through the full frame path, and the same
    // query over a live loopback TCP socket.
    let zoo = standard_zoo(2_000).expect("standard zoo parameters are valid");
    let mut g = Harness::new("zoo_merge");
    let mut cdn_setup = None;
    for w in &zoo {
        let (trace, _) = w.generate(ZOO_SEED);
        let cfg = zoo_config(&trace);
        let packets: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
        let mut slices: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for (i, &f) in packets.iter().enumerate() {
            slices[i % 3].push(f);
        }
        let payloads: Vec<caesar::SketchPayload> = slices
            .iter()
            .map(|s| ConcurrentCaesar::build(cfg, 2, s).export_sketch())
            .collect();
        g.bench(&format!("merge_3_taps_{}", w.name()), || {
            let mut cluster = ConcurrentCaesar::empty(cfg);
            for p in &payloads {
                cluster.merge_sketch(p).expect("same fleet config");
            }
            black_box(cluster.sram().total_added());
        });
        if w.name() == "cdn" {
            let flow_sample: Vec<u64> = packets.iter().step_by(97).take(64).copied().collect();
            cdn_setup = Some((cfg, payloads, flow_sample));
        }
    }
    g.finish();

    let (cfg, payloads, flow_sample) = cdn_setup.expect("zoo has the cdn family");
    let mut g = Harness::new("service");
    g.bench("payload_encode_decode", || {
        let bytes = payloads[0].encode();
        black_box(caesar::SketchPayload::decode(&bytes).expect("round trip"));
    });
    g.bench("inprocess_push3_query64", || {
        let svc = MeasurementService::new(cfg);
        let mut client =
            MeasurementClient::connect(InProcess::new(&svc), &svc.fingerprint()).expect("hello");
        for p in &payloads {
            client.push_sketch(p).expect("push");
        }
        let (_, values) = client.query(&flow_sample).expect("query");
        black_box(values);
    });
    let svc = std::sync::Arc::new(MeasurementService::new(cfg));
    for p in &payloads {
        svc.push(p).expect("push");
    }
    let server = TcpServer::spawn(std::sync::Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let mut client = MeasurementClient::connect(
        TcpTransport::connect(server.addr()).expect("connect"),
        &svc.fingerprint(),
    )
    .expect("hello");
    g.bench("tcp_query64_round_trip", || {
        let (_, values) = client.query(&flow_sample).expect("query");
        black_box(values);
    });
    g.finish();
    drop(client);
    server.stop();
}

/// Emit a frame size as a pseudo-result in the trajectory JSON schema:
/// the `*_bytes_*` names carry **bytes, not nanoseconds** in the `ns`
/// fields, so size wins land in `BENCH_PR*.json` next to the time wins
/// and ride the same diff tooling.
fn emit_bytes(group: &str, name: &str, bytes: usize) {
    let r = support::timing::BenchResult {
        group: group.to_string(),
        name: name.to_string(),
        median_ns: bytes as u128,
        min_ns: bytes as u128,
        max_ns: bytes as u128,
        samples: 1,
    };
    println!("{}", r.to_json());
}

fn checkpoint_and_delta() {
    // PR 9: epoch-delta checkpoints. A full `snapshot_into` re-seals
    // all L counters every epoch; `checkpoint_delta_into` seals only
    // the blocks dirtied since the last checkpoint. Both sides of each
    // pair ingest the same low-churn epoch (256 packets of one hot
    // flow, then a drain) before serializing into a reused buffer, so
    // the measured gap is serialization cost alone. The headline pair
    // is `snapshot_full_large_l` vs `delta_low_churn_large_l` at
    // L=32768, with the matching frame sizes in the `*_bytes_*`
    // pseudo-results.
    let mut g = Harness::new("checkpoint");
    for (tag, l) in [("small_l", 2_048usize), ("large_l", 32_768)] {
        let cfg = CaesarConfig {
            cache_entries: 64,
            entry_capacity: 16,
            counters: l,
            k: 3,
            seed: 0x9E37 ^ l as u64,
            ..CaesarConfig::default()
        };
        let hot = hashkit::mix::mix64(7);
        let warm_engine = || {
            // Broad churn warms counters across the whole array before
            // the chain is anchored.
            let mut o = OnlineCaesar::new(cfg, 2);
            for i in 0..(l as u64 * 2) {
                o.offer(hashkit::mix::mix64(i));
            }
            o.merge_now();
            o
        };

        let mut full = warm_engine();
        let mut buf = Vec::new();
        full.snapshot_into(&mut buf);
        let full_bytes = buf.len();
        g.bench(&format!("snapshot_full_{tag}"), || {
            for _ in 0..256 {
                full.offer(hot);
            }
            full.merge_now();
            full.snapshot_into(&mut buf);
            black_box(buf.len());
        });

        let mut chained = warm_engine();
        let mut dbuf = Vec::new();
        chained.snapshot_into(&mut dbuf); // anchor the chain
        let mut delta_bytes = 0usize;
        g.bench(&format!("delta_low_churn_{tag}"), || {
            for _ in 0..256 {
                chained.offer(hot);
            }
            chained.merge_now();
            chained.checkpoint_delta_into(&mut dbuf).expect("anchored chain");
            delta_bytes = dbuf.len();
            black_box(delta_bytes);
        });
        // Size pseudo-results only for benches that actually ran, so a
        // CAESAR_BENCH_FILTER run never emits stale byte counts.
        if g.results().iter().any(|r| r.name == format!("snapshot_full_{tag}")) {
            emit_bytes("checkpoint", &format!("snapshot_bytes_{tag}"), full_bytes);
        }
        if g.results().iter().any(|r| r.name == format!("delta_low_churn_{tag}")) {
            emit_bytes("checkpoint", &format!("delta_bytes_{tag}"), delta_bytes);
        }
    }
    g.finish();
}

fn service_delta() {
    // PR 9: wire cost of keeping the cluster view fresh. After its
    // first full push, a tap re-ships one low-churn interval (a burst
    // over 8 hot flows — the steady-state case where only a few flows
    // moved between epochs) either as a whole `SketchPayload` (the
    // unacked-increment sketch — the PR 8 protocol, and still the NACK
    // recovery path) or as a `SketchDelta` carrying only the dirtied
    // counter blocks. Both refresh benches pay the same service setup
    // and initial push; the `*_bytes` pseudo-results record the frame
    // sizes behind the time gap.
    let (trace, _) = bench_trace();
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    let cfg = bench_config();
    let mut tap = ConcurrentCaesar::build(cfg, 2, &flows);
    let prev = tap.export_sketch();
    let interval: Vec<u64> = (0..2_000u64).map(|i| hashkit::mix::mix64(i % 8)).collect();
    let increment_sketch = ConcurrentCaesar::build(cfg, 2, &interval);
    let increment = increment_sketch.export_sketch();
    tap.merge(&increment_sketch).expect("same fleet config");
    let cur = tap.export_sketch();
    let delta = SketchDelta::between(&prev, &cur, 1).expect("cumulative extends acked");

    let mut g = Harness::new("service_delta");
    g.bench("delta_between_encode_decode", || {
        let d = SketchDelta::between(&prev, &cur, 1).expect("cumulative extends acked");
        let bytes = d.encode();
        black_box(SketchDelta::decode(&bytes).expect("round trip"));
    });
    g.bench("inprocess_refresh_full_push", || {
        let svc = MeasurementService::new(cfg);
        let mut client =
            MeasurementClient::connect(InProcess::new(&svc), &svc.fingerprint()).expect("hello");
        client.push_sketch(&prev).expect("push");
        black_box(client.push_sketch(&increment).expect("push"));
    });
    g.bench("inprocess_refresh_delta_push", || {
        let svc = MeasurementService::new(cfg);
        let mut client =
            MeasurementClient::connect(InProcess::new(&svc), &svc.fingerprint()).expect("hello");
        client.push_sketch(&prev).expect("push");
        black_box(client.push_delta(&delta).expect("delta push"));
    });
    if !g.results().is_empty() {
        emit_bytes("service_delta", "full_payload_bytes", increment.encoded_len());
        emit_bytes("service_delta", "delta_payload_bytes", delta.encoded_len());
    }
    g.finish();
}

fn main() {
    braids();
    sac_and_sampling();
    concurrent_and_epochs();
    parallel_query();
    pipeline_and_rcs();
    zoo_ingest();
    zoo_merge_and_service();
    checkpoint_and_delta();
    service_delta();
}
