//! Ingest-cost decomposition on the canonical bench trace.
//!
//! Reports min-of-N wall times for the full `record_batch` ingest and
//! for the cache-table layer alone, so a perf session can see where
//! the ingest budget goes before reaching for the harness. Min-of-N in
//! one process is far more noise-tolerant than comparing separate
//! harness runs on a busy host.
//!
//! Run with: `cargo run --release --offline -p bench --example profile_ingest`

use bench::{bench_config, bench_trace};
use caesar::Caesar;
use std::hint::black_box;
use std::time::Instant;

fn min_of<R>(n: usize, mut f: impl FnMut() -> R) -> std::time::Duration {
    let mut best = std::time::Duration::MAX;
    for _ in 0..n {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed());
    }
    best
}

fn main() {
    let (trace, _) = bench_trace();
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    println!("packets = {}", flows.len());

    let full = min_of(15, || {
        let mut c = Caesar::new(bench_config());
        c.record_batch(&flows);
        c.finish();
        c.stats().evictions
    });
    println!("record_batch full (min of 15): {full:?}");

    let cfg = bench_config();
    let cache_only = min_of(15, || {
        let mut cache = cachesim::CacheTable::new(cachesim::CacheConfig {
            entries: cfg.cache_entries,
            entry_capacity: cfg.entry_capacity,
            policy: cfg.policy,
            seed: cfg.seed,
        });
        let mut acc = 0u32;
        for &f in &flows {
            acc ^= cache.record_slotted(f).slot;
        }
        acc
    });
    println!("cache only (min of 15): {cache_only:?}");
}
