//! Vendored `sched_setaffinity` shim: pin the calling thread to one
//! CPU, with a loud no-op fallback on hosts that cannot.
//!
//! `std::thread` has no affinity API and the workspace vendors all of
//! its dependencies (no `libc` crate), so this module declares the one
//! glibc symbol it needs directly. `support` is the single crate in
//! the workspace where `unsafe` is allowed (see `mem`, `spsc`); the
//! safety argument is local and small: we pass glibc a correctly
//! sized, fully initialized, stack-owned CPU mask and never retain
//! pointers past the call.
//!
//! Why pinning matters here: the sharded ingest pipeline
//! (`BuildMode::Pinned`, and the detached-thread online runtime's
//! shard workers) wants shard→core placement so each worker's cache
//! working set — its eviction accumulator and its ring's consumer-side
//! lines — stays resident on one L1/L2 instead of migrating with the
//! scheduler. On a host without real parallelism (or a non-Linux OS)
//! pinning is useless-to-harmful, so [`pin_current_thread`] degrades
//! to a no-op that warns **once** rather than failing the build or the
//! run: placement is an optimization, never a correctness dependency.

use std::sync::atomic::{AtomicBool, Ordering};

/// Outcome of a pin request, for callers that want to surface
/// placement in diagnostics (the bench harness logs it; the ingest
/// paths ignore it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinOutcome {
    /// The calling thread is now bound to the requested CPU.
    Pinned(usize),
    /// The host cannot pin (non-Linux, or the syscall refused — e.g.
    /// the CPU is outside the process's cpuset). The thread runs
    /// wherever the scheduler likes; a one-time warning was printed.
    Unsupported,
}

/// One warning per process, not one per worker thread: a 64-shard
/// build on a macOS laptop should say "no pinning" once, not 64 times.
static WARNED: AtomicBool = AtomicBool::new(false);

fn warn_once(reason: &str) {
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!("support::affinity: thread pinning unavailable ({reason}); running unpinned");
    }
}

#[cfg(target_os = "linux")]
mod sys {
    /// Matches glibc's `cpu_set_t`: a 1024-bit mask (128 bytes) laid
    /// out as machine words. 1024 CPUs is the glibc compile-time
    /// default; hosts beyond that need the dynamically-sized API,
    /// which nothing in this workspace's deployment range requires.
    pub const CPU_SET_WORDS: usize = 1024 / (8 * core::mem::size_of::<usize>());

    #[repr(C)]
    pub struct CpuSet {
        pub bits: [usize; CPU_SET_WORDS],
    }

    extern "C" {
        /// glibc wrapper over the `sched_setaffinity` syscall. With
        /// `pid == 0` it applies to the **calling thread** (glibc
        /// passes the thread's TID), which is exactly the semantics a
        /// per-worker pin wants.
        pub fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
    }
}

/// Bind the calling thread to `cpu` (a logical CPU index as the kernel
/// numbers them). Returns [`PinOutcome::Unsupported`] — after warning
/// once per process — when the host has no affinity API or rejects the
/// request; it never panics and never blocks.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(cpu: usize) -> PinOutcome {
    let mut set = sys::CpuSet { bits: [0; sys::CPU_SET_WORDS] };
    let word_bits = 8 * core::mem::size_of::<usize>();
    if cpu >= sys::CPU_SET_WORDS * word_bits {
        warn_once("requested CPU index exceeds the 1024-bit cpu_set_t");
        return PinOutcome::Unsupported;
    }
    set.bits[cpu / word_bits] |= 1usize << (cpu % word_bits);
    // SAFETY: `set` is a fully initialized, correctly sized (`repr(C)`,
    // 128-byte) mask that outlives the call; pid 0 targets the calling
    // thread; glibc only reads `cpusetsize` bytes through the pointer.
    let rc = unsafe { sys::sched_setaffinity(0, core::mem::size_of::<sys::CpuSet>(), &set) };
    if rc == 0 {
        PinOutcome::Pinned(cpu)
    } else {
        warn_once("sched_setaffinity returned an error for this CPU");
        PinOutcome::Unsupported
    }
}

/// Non-Linux fallback: no affinity syscall to make. Warns once, then
/// quietly lets every subsequent call through as a no-op.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_cpu: usize) -> PinOutcome {
    warn_once("no sched_setaffinity on this OS");
    PinOutcome::Unsupported
}

/// Pin the calling thread for shard `shard` of a `shards`-wide build:
/// shard *i* goes to CPU `i % host_parallelism()`, so shard count may
/// exceed core count without requesting nonexistent CPUs. The standard
/// placement for both `BuildMode::Pinned` and the threaded online
/// runtime's workers.
pub fn pin_shard(shard: usize, _shards: usize) -> PinOutcome {
    let cores = crate::par::host_parallelism();
    if cores <= 1 {
        // One hardware thread: pinning changes nothing and the syscall
        // noise would only alarm. Quietly a no-op, no warning — this is
        // the expected state on small CI hosts, not a surprise.
        return PinOutcome::Unsupported;
    }
    pin_current_thread(shard % cores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_current_thread_is_pinned_or_loud_noop() {
        // Cannot assert which outcome on an arbitrary host — only that
        // the call returns (no hang, no panic) and is coherent.
        match pin_current_thread(0) {
            PinOutcome::Pinned(cpu) => assert_eq!(cpu, 0),
            PinOutcome::Unsupported => {}
        }
    }

    #[test]
    fn out_of_range_cpu_is_rejected_not_ub() {
        assert_eq!(pin_current_thread(1 << 20), PinOutcome::Unsupported);
    }

    #[test]
    fn pin_shard_wraps_shard_over_cores() {
        // shard index far beyond any real core count must still map
        // into range (or no-op on a 1-core host) — never panic.
        let _ = pin_shard(97, 128);
    }

    #[test]
    fn pinned_thread_still_computes() {
        // Whatever the outcome, the thread keeps working afterwards.
        let handle = std::thread::spawn(|| {
            let _ = pin_shard(1, 4);
            (0..1000u64).sum::<u64>()
        });
        assert_eq!(handle.join().unwrap(), 499_500);
    }
}
