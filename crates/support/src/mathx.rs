//! Math polyfills for the few special functions `std::f64` lacks.
//!
//! The workspace previously pulled `libm` for `erf` (Gaussian CDF in
//! the confidence intervals) plus `pow`/`log` (which `std::f64`
//! already provides — those call sites now use `powf`/`ln` directly).
//! `erf` here is computed to near machine precision with the classic
//! series / continued-fraction split, so the confidence-interval
//! numbers are indistinguishable from the `libm` build.

use std::f64::consts::PI;

/// Error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Maclaurin series for `|x| < 2.5` (fast convergence, benign
/// cancellation), `1 − erfc(x)` via a Lentz continued fraction for the
/// tail. Absolute error is below `1e-14` everywhere.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return -erf(-x);
    }
    if x < 2.5 {
        // erf(x) = 2/√π · Σ_{n≥0} (−1)ⁿ x^(2n+1) / (n! (2n+1))
        let x2 = x * x;
        let mut term = x; // (−1)ⁿ x^(2n+1) / n!
        let mut sum = x; // n = 0 contribution: x / 1
        let mut n = 1.0f64;
        loop {
            term *= -x2 / n;
            let add = term / (2.0 * n + 1.0);
            sum += add;
            if add.abs() < 1e-17 * sum.abs().max(1e-300) || n > 200.0 {
                break;
            }
            n += 1.0;
        }
        (2.0 / PI.sqrt()) * sum
    } else {
        1.0 - erfc(x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, accurate in
/// the far tail where `1 − erf(x)` would cancel to zero.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 2.5 {
        return 1.0 - erf(x);
    }
    // Continued fraction (valid for x > 0):
    //   erfc(x) = e^(−x²)/√π · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + …))))
    // evaluated with the modified Lentz algorithm.
    let tiny = 1e-300;
    let mut f = x.max(tiny);
    let mut c = f;
    let mut d = 0.0f64;
    for i in 1..300 {
        let a = i as f64 / 2.0; // partial numerators 1/2, 1, 3/2, 2, …
        let b = x; // partial denominators are all x
        d = b + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / PI.sqrt() / f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values (Abramowitz & Stegun table / mpmath).
        let cases = [
            (0.0, 0.0),
            (0.1, 0.1124629160182849),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-12, "erf({x}) = {}", erf(x));
            assert!((erf(-x) + want).abs() < 1e-12, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_tail_is_accurate() {
        // erfc(3) and erfc(5): the 1 − erf path would lose all digits.
        assert!((erfc(3.0) - 2.209049699858544e-5).abs() / 2.209049699858544e-5 < 1e-10);
        assert!((erfc(5.0) - 1.5374597944280351e-12).abs() / 1.5374597944280351e-12 < 1e-9);
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for x in [0.0, 0.3, 1.0, 2.4999, 2.5, 2.5001, 4.0, 8.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x = {x}");
        }
    }

    #[test]
    fn erf_is_monotone_across_the_series_cf_seam() {
        let mut prev = erf(2.40);
        let mut x = 2.40;
        while x < 2.60 {
            x += 0.001;
            let v = erf(x);
            assert!(v >= prev, "non-monotone at {x}");
            prev = v;
        }
    }

    #[test]
    fn erf_saturates() {
        assert!((erf(10.0) - 1.0).abs() < 1e-15);
        assert!((erf(-10.0) + 1.0).abs() < 1e-15);
        assert!(erf(f64::NAN).is_nan());
    }
}
