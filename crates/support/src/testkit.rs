//! Deterministic property-test harness — the workspace's replacement
//! for `proptest`.
//!
//! Philosophy: instead of strategy combinators plus shrinking, each
//! property is a closure over a seeded [`StdRng`]; the harness runs it
//! for a fixed number of derived seeds. Failures are **reproducible by
//! construction**: the harness prints the failing `seed=0x…` and the
//! exact environment variables that replay just that case.
//!
//! ```text
//! property failed: seed=0x243f6a8885a308d3 (case 17/96)
//! replay with: CAESAR_TEST_SEED=0x243f6a8885a308d3 CAESAR_TEST_CASES=1 cargo test <name>
//! ```
//!
//! Environment knobs:
//! * `CAESAR_TEST_SEED`  — run only this seed (hex `0x…` or decimal);
//! * `CAESAR_TEST_CASES` — override the per-property case count.

use crate::rand::{Rng, SeedableRng, StdRng};
use hashkit::mix::splitmix64;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default cases per property. `proptest`'s default is 256; 96 keeps
/// the suite fast while the fixed seed schedule means every run covers
/// the identical set — more cases add breadth, not reproducibility.
pub const DEFAULT_CASES: u32 = 96;

/// Base seed of the derived-seed schedule (π in hex, by tradition).
pub const BASE_SEED: u64 = 0x243F_6A88_85A3_08D3;

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64 (decimal or 0x-hex), got {raw:?}"),
    }
}

/// Run `property` with [`DEFAULT_CASES`] derived seeds.
pub fn for_each_seed<F: FnMut(&mut StdRng)>(property: F) {
    for_each_seed_n(DEFAULT_CASES, property);
}

/// Run `property` with `cases` derived seeds (respecting the
/// `CAESAR_TEST_SEED` / `CAESAR_TEST_CASES` overrides).
pub fn for_each_seed_n<F: FnMut(&mut StdRng)>(cases: u32, mut property: F) {
    if let Some(seed) = env_u64("CAESAR_TEST_SEED") {
        let cases = env_u64("CAESAR_TEST_CASES").unwrap_or(1) as u32;
        for case in 0..cases {
            let case_seed = if case == 0 { seed } else { splitmix64(seed ^ case as u64) };
            run_one(case_seed, case, cases, &mut property);
        }
        return;
    }
    let cases = env_u64("CAESAR_TEST_CASES").map(|c| c as u32).unwrap_or(cases);
    for case in 0..cases {
        // Derived schedule: splitmix of (base ^ index) decorrelates
        // neighbouring cases completely.
        let seed = splitmix64(BASE_SEED ^ u64::from(case));
        run_one(seed, case, cases, &mut property);
    }
}

fn run_one<F: FnMut(&mut StdRng)>(seed: u64, case: u32, cases: u32, property: &mut F) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(seed);
        property(&mut rng);
    }));
    if let Err(panic) = result {
        eprintln!("property failed: seed=0x{seed:016x} (case {case}/{cases})");
        eprintln!(
            "replay with: CAESAR_TEST_SEED=0x{seed:016x} CAESAR_TEST_CASES=1 cargo test <name>"
        );
        resume_unwind(panic);
    }
}

/// Ergonomic generators for property inputs, `proptest`-strategy
/// equivalents expressed as plain method calls on the case RNG.
pub trait GenExt: Rng + Sized {
    /// A length drawn from `range` (uniform).
    fn len_in(&mut self, range: Range<usize>) -> usize {
        self.gen_range(range)
    }

    /// `Vec<u8>` with a length drawn from `range`.
    fn bytes(&mut self, range: Range<usize>) -> Vec<u8> {
        let n = self.len_in(range);
        let mut out = vec![0u8; n];
        self.fill_bytes(&mut out);
        out
    }

    /// `Vec<T>` with a length drawn from `range`, elements from `f`.
    fn vec_with<T>(&mut self, range: Range<usize>, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        let n = self.len_in(range);
        (0..n).map(|_| f(self)).collect()
    }

    /// One element of a non-empty slice, by value.
    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        assert!(!options.is_empty(), "pick needs at least one option");
        options[self.gen_range(0..options.len())]
    }
}

impl<R: Rng> GenExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_schedule_is_deterministic() {
        let mut a = Vec::new();
        for_each_seed_n(5, |rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        for_each_seed_n(5, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 5, "cases must see distinct seeds");
    }

    #[test]
    fn failing_property_panics_through() {
        let hit = std::panic::catch_unwind(|| {
            for_each_seed_n(3, |_rng| panic!("intentional"));
        });
        assert!(hit.is_err());
    }

    #[test]
    fn generators_respect_ranges() {
        for_each_seed_n(16, |rng| {
            let v = rng.bytes(0..40);
            assert!(v.len() < 40);
            let xs = rng.vec_with(1..10, |r| r.gen_range(5u64..7));
            assert!(!xs.is_empty() && xs.len() < 10);
            assert!(xs.iter().all(|&x| (5..7).contains(&x)));
            let p = rng.pick(&[1u8, 2, 3]);
            assert!((1..=3).contains(&p));
        });
    }
}
