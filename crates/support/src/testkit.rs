//! Deterministic property-test harness — the workspace's replacement
//! for `proptest`.
//!
//! Philosophy: instead of strategy combinators plus shrinking, each
//! property is a closure over a seeded [`StdRng`]; the harness runs it
//! for a fixed number of derived seeds. Failures are **reproducible by
//! construction**: the harness prints the failing `seed=0x…` and the
//! exact environment variables that replay just that case.
//!
//! ```text
//! property failed: seed=0x243f6a8885a308d3 (case 17/96)
//! replay with: CAESAR_TEST_SEED=0x243f6a8885a308d3 CAESAR_TEST_CASES=1 cargo test <name>
//! ```
//!
//! Environment knobs:
//! * `CAESAR_TEST_SEED`  — run only this seed (hex `0x…` or decimal);
//! * `CAESAR_TEST_CASES` — override the per-property case count.

use crate::rand::{Rng, SeedableRng, StdRng};
use hashkit::mix::splitmix64;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default cases per property. `proptest`'s default is 256; 96 keeps
/// the suite fast while the fixed seed schedule means every run covers
/// the identical set — more cases add breadth, not reproducibility.
pub const DEFAULT_CASES: u32 = 96;

/// Base seed of the derived-seed schedule (π in hex, by tradition).
pub const BASE_SEED: u64 = 0x243F_6A88_85A3_08D3;

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64 (decimal or 0x-hex), got {raw:?}"),
    }
}

/// Run `property` with [`DEFAULT_CASES`] derived seeds.
pub fn for_each_seed<F: FnMut(&mut StdRng)>(property: F) {
    for_each_seed_n(DEFAULT_CASES, property);
}

/// Run `property` with `cases` derived seeds (respecting the
/// `CAESAR_TEST_SEED` / `CAESAR_TEST_CASES` overrides).
pub fn for_each_seed_n<F: FnMut(&mut StdRng)>(cases: u32, mut property: F) {
    if let Some(seed) = env_u64("CAESAR_TEST_SEED") {
        let cases = env_u64("CAESAR_TEST_CASES").unwrap_or(1) as u32;
        for case in 0..cases {
            let case_seed = if case == 0 { seed } else { splitmix64(seed ^ case as u64) };
            run_one(case_seed, case, cases, &mut property);
        }
        return;
    }
    let cases = env_u64("CAESAR_TEST_CASES").map(|c| c as u32).unwrap_or(cases);
    for case in 0..cases {
        // Derived schedule: splitmix of (base ^ index) decorrelates
        // neighbouring cases completely.
        let seed = splitmix64(BASE_SEED ^ u64::from(case));
        run_one(seed, case, cases, &mut property);
    }
}

fn run_one<F: FnMut(&mut StdRng)>(seed: u64, case: u32, cases: u32, property: &mut F) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(seed);
        property(&mut rng);
    }));
    if let Err(panic) = result {
        eprintln!("property failed: seed=0x{seed:016x} (case {case}/{cases})");
        eprintln!(
            "replay with: CAESAR_TEST_SEED=0x{seed:016x} CAESAR_TEST_CASES=1 cargo test <name>"
        );
        resume_unwind(panic);
    }
}

/// Ergonomic generators for property inputs, `proptest`-strategy
/// equivalents expressed as plain method calls on the case RNG.
pub trait GenExt: Rng + Sized {
    /// A length drawn from `range` (uniform).
    fn len_in(&mut self, range: Range<usize>) -> usize {
        self.gen_range(range)
    }

    /// `Vec<u8>` with a length drawn from `range`.
    fn bytes(&mut self, range: Range<usize>) -> Vec<u8> {
        let n = self.len_in(range);
        let mut out = vec![0u8; n];
        self.fill_bytes(&mut out);
        out
    }

    /// `Vec<T>` with a length drawn from `range`, elements from `f`.
    fn vec_with<T>(&mut self, range: Range<usize>, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        let n = self.len_in(range);
        (0..n).map(|_| f(self)).collect()
    }

    /// One element of a non-empty slice, by value.
    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        assert!(!options.is_empty(), "pick needs at least one option");
        options[self.gen_range(0..options.len())]
    }
}

impl<R: Rng> GenExt for R {}

// ---------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------

/// Panic payload of an injected worker fault. Supervisors and tests
/// match on this string to distinguish scheduled faults from genuine
/// bugs surfacing inside a fault-tolerance test.
pub const INJECTED_PANIC: &str = "testkit: injected worker panic";

/// Where a scheduled fault fires inside a supervised runtime.
///
/// Each site has its own tick counter per shard; the runtime reports
/// ticks via [`FaultInjector::tick`] and the injector answers "does a
/// fault fire *now*?". Because ticks are logical events (packets
/// processed, pump attempts, flushes) rather than wall-clock time, the
/// whole fault schedule is deterministic: the same plan against the
/// same input stream fires at exactly the same points on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Panic the shard worker between two packets of a drain batch.
    WorkerPanic,
    /// Wedge the shard's ring consumer: once fired, the lane consumes
    /// nothing until the watchdog fails it over (sticky — models a
    /// hung thread, not a hiccup).
    RingStall,
    /// Force the shard's saturation tally up without touching counter
    /// words — deterministically exercising the saturation-degradation
    /// path with no mass-accounting side effects.
    ForceSaturation,
    /// Hang the shard's worker *thread* at a batch boundary: it stops
    /// heartbeating and drains nothing until the supervisor fences it
    /// out (generation bump), at which point the hung thread exits.
    /// Thread-aware counterpart of [`FaultSite::RingStall`] — the stall
    /// is a property of a real OS thread, detected by wall-clock
    /// heartbeat deadlines rather than logical watchdog ticks.
    WorkerHang,
    /// Delay the shard's worker thread once, at a batch boundary, for
    /// roughly one heartbeat interval: late heartbeats that must *not*
    /// trip failover. Exercises the deadline margin (a slow worker is
    /// degraded, not dead).
    SlowDrain,
}

/// One scheduled fault: fire at the `at_tick`-th tick (0-based) of
/// `site` on `shard`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Injection site.
    pub site: FaultSite,
    /// Target shard.
    pub shard: usize,
    /// 0-based tick ordinal at which the fault fires.
    pub at_tick: u64,
}

/// A fault that actually fired, with the tick it fired at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// The scheduled event.
    pub event: FaultEvent,
}

/// Deterministic fault-injection schedule for supervised runtimes.
///
/// The inert injector ([`FaultInjector::none`]) never fires and is the
/// production default; tests build schedules explicitly
/// ([`FaultInjector::with_events`]) or derive them from a case RNG
/// ([`FaultInjector::random_plan`]) so every property case exercises a
/// different but reproducible fault pattern.
#[derive(Debug, Default)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    /// Tick counters keyed by `(site, shard)`.
    ticks: std::collections::BTreeMap<(FaultSite, usize), u64>,
    fired: Vec<FiredFault>,
    stalled: Vec<usize>,
}

impl FaultInjector {
    /// An injector that never fires (the production default).
    pub fn none() -> Self {
        Self::default()
    }

    /// An injector firing exactly the given schedule.
    pub fn with_events(events: Vec<FaultEvent>) -> Self {
        Self { events, ..Self::default() }
    }

    /// Derive a random schedule from a property-case RNG: for each
    /// shard, with probability ~1/2 one `WorkerPanic` somewhere in the
    /// first `horizon` packet ticks, and with probability ~1/4 one
    /// `RingStall` pump tick. Deterministic per RNG state.
    pub fn random_plan(rng: &mut StdRng, shards: usize, horizon: u64) -> Self {
        let horizon = horizon.max(1);
        let mut events = Vec::new();
        for shard in 0..shards {
            if rng.gen_bool(0.5) {
                events.push(FaultEvent {
                    site: FaultSite::WorkerPanic,
                    shard,
                    at_tick: rng.gen_range(0..horizon),
                });
            }
            if rng.gen_bool(0.25) {
                events.push(FaultEvent {
                    site: FaultSite::RingStall,
                    shard,
                    at_tick: rng.gen_range(0..horizon.min(64)),
                });
            }
        }
        Self::with_events(events)
    }

    /// Derive a random *thread* chaos schedule: per shard, ~1/2 chance
    /// of a `WorkerPanic` somewhere in the first `horizon` packet
    /// ticks, ~1/4 chance of a `WorkerHang` and ~1/4 of a `SlowDrain`
    /// within the first few batch boundaries. The schedule itself is
    /// deterministic per RNG state; on a threaded runtime the *batch
    /// boundaries* at which hang/slow ticks are consumed depend on
    /// scheduling, so chaos tests assert invariants (exact loss
    /// accounting, failover counts), not byte-identity.
    pub fn random_thread_plan(rng: &mut StdRng, shards: usize, horizon: u64) -> Self {
        let horizon = horizon.max(1);
        let mut events = Vec::new();
        for shard in 0..shards {
            if rng.gen_bool(0.5) {
                events.push(FaultEvent {
                    site: FaultSite::WorkerPanic,
                    shard,
                    at_tick: rng.gen_range(0..horizon),
                });
            }
            if rng.gen_bool(0.25) {
                events.push(FaultEvent {
                    site: FaultSite::WorkerHang,
                    shard,
                    at_tick: rng.gen_range(0..8),
                });
            }
            if rng.gen_bool(0.25) {
                events.push(FaultEvent {
                    site: FaultSite::SlowDrain,
                    shard,
                    at_tick: rng.gen_range(0..8),
                });
            }
        }
        Self::with_events(events)
    }

    /// True when the injector has no scheduled events at all (cheap
    /// fast-path check for hot loops).
    pub fn is_inert(&self) -> bool {
        self.events.is_empty()
    }

    /// Advance the `(site, shard)` tick counter and report whether a
    /// scheduled fault fires at this tick. Fired events are consumed
    /// (each fires once) and logged; `RingStall` additionally marks the
    /// shard sticky-stalled (see [`FaultInjector::is_stalled`]).
    pub fn tick(&mut self, site: FaultSite, shard: usize) -> bool {
        if self.events.is_empty() {
            return false;
        }
        let counter = self.ticks.entry((site, shard)).or_insert(0);
        let now = *counter;
        *counter += 1;
        let hit = self
            .events
            .iter()
            .position(|e| e.site == site && e.shard == shard && e.at_tick == now);
        match hit {
            Some(i) => {
                let event = self.events.swap_remove(i);
                self.fired.push(FiredFault { event });
                if site == FaultSite::RingStall && !self.stalled.contains(&shard) {
                    self.stalled.push(shard);
                }
                true
            }
            None => false,
        }
    }

    /// True once a `RingStall` has fired for `shard` (sticky until
    /// [`FaultInjector::clear_stall`]).
    pub fn is_stalled(&self, shard: usize) -> bool {
        self.stalled.contains(&shard)
    }

    /// Un-wedge `shard` (the watchdog calls this once failover has
    /// taken responsibility for the lane).
    pub fn clear_stall(&mut self, shard: usize) {
        self.stalled.retain(|&s| s != shard);
    }

    /// Every fault that has fired so far, in firing order.
    pub fn fired(&self) -> &[FiredFault] {
        &self.fired
    }

    /// Number of fired faults at `site`.
    pub fn fired_at(&self, site: FaultSite) -> usize {
        self.fired.iter().filter(|f| f.event.site == site).count()
    }

    /// Scheduled events that have not fired (e.g. ticks never reached).
    pub fn pending(&self) -> &[FaultEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_schedule_is_deterministic() {
        let mut a = Vec::new();
        for_each_seed_n(5, |rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        for_each_seed_n(5, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 5, "cases must see distinct seeds");
    }

    #[test]
    fn failing_property_panics_through() {
        let hit = std::panic::catch_unwind(|| {
            for_each_seed_n(3, |_rng| panic!("intentional"));
        });
        assert!(hit.is_err());
    }

    #[test]
    fn injector_fires_scheduled_events_once() {
        let mut inj = FaultInjector::with_events(vec![
            FaultEvent { site: FaultSite::WorkerPanic, shard: 1, at_tick: 2 },
            FaultEvent { site: FaultSite::RingStall, shard: 0, at_tick: 0 },
        ]);
        assert!(!inj.is_inert());
        // Shard 0 panics never fire; shard 1 fires at its 3rd tick only.
        assert!(!inj.tick(FaultSite::WorkerPanic, 0));
        assert!(!inj.tick(FaultSite::WorkerPanic, 1));
        assert!(!inj.tick(FaultSite::WorkerPanic, 1));
        assert!(inj.tick(FaultSite::WorkerPanic, 1));
        assert!(!inj.tick(FaultSite::WorkerPanic, 1), "events fire once");
        // Stall is sticky until cleared.
        assert!(!inj.is_stalled(0));
        assert!(inj.tick(FaultSite::RingStall, 0));
        assert!(inj.is_stalled(0));
        inj.clear_stall(0);
        assert!(!inj.is_stalled(0));
        assert_eq!(inj.fired().len(), 2);
        assert_eq!(inj.fired_at(FaultSite::WorkerPanic), 1);
        assert!(inj.pending().is_empty());
        // The inert injector never fires and never allocates counters.
        let mut none = FaultInjector::none();
        for _ in 0..100 {
            assert!(!none.tick(FaultSite::WorkerPanic, 0));
        }
        assert!(none.fired().is_empty());
    }

    #[test]
    fn thread_sites_tick_independently() {
        // WorkerHang/SlowDrain have their own per-shard tick counters:
        // a hang scheduled at batch tick 1 must not be consumed by
        // packet ticks or by the other thread site.
        let mut inj = FaultInjector::with_events(vec![
            FaultEvent { site: FaultSite::WorkerHang, shard: 0, at_tick: 1 },
            FaultEvent { site: FaultSite::SlowDrain, shard: 0, at_tick: 0 },
        ]);
        assert!(!inj.tick(FaultSite::WorkerPanic, 0));
        assert!(inj.tick(FaultSite::SlowDrain, 0));
        assert!(!inj.tick(FaultSite::WorkerHang, 0));
        assert!(inj.tick(FaultSite::WorkerHang, 0));
        assert_eq!(inj.fired_at(FaultSite::WorkerHang), 1);
        assert_eq!(inj.fired_at(FaultSite::SlowDrain), 1);
        assert!(!inj.is_stalled(0), "thread sites do not set the sticky ring stall");
    }

    #[test]
    fn random_thread_plan_is_deterministic_per_seed() {
        let plan = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            FaultInjector::random_thread_plan(&mut rng, 4, 1000).pending().to_vec()
        };
        assert_eq!(plan(11), plan(11));
        let sizes: Vec<usize> = (0..32).map(|s| plan(s).len()).collect();
        assert!(sizes.iter().any(|&n| n > 0));
        assert!(sizes.iter().all(|&n| n <= 12));
    }

    #[test]
    fn random_plan_is_deterministic_per_seed() {
        let plan = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            FaultInjector::random_plan(&mut rng, 4, 1000).pending().to_vec()
        };
        assert_eq!(plan(9), plan(9));
        // Across many seeds, at least one plan has events and at least
        // one is empty (probabilities are 1/2 and 1/4 per shard).
        let sizes: Vec<usize> = (0..32).map(|s| plan(s).len()).collect();
        assert!(sizes.iter().any(|&n| n > 0));
        assert!(sizes.iter().all(|&n| n <= 8));
    }

    #[test]
    fn generators_respect_ranges() {
        for_each_seed_n(16, |rng| {
            let v = rng.bytes(0..40);
            assert!(v.len() < 40);
            let xs = rng.vec_with(1..10, |r| r.gen_range(5u64..7));
            assert!(!xs.is_empty() && xs.len() < 10);
            assert!(xs.iter().all(|&x| (5..7).contains(&x)));
            let p = rng.pick(&[1u8, 2, 3]);
            assert!((1..=3).contains(&p));
        });
    }
}
