//! Tiny self-contained benchmark harness — the workspace's replacement
//! for `criterion`, so `cargo bench` compiles and runs offline.
//!
//! Protocol per benchmark: one warmup invocation to touch caches, then
//! `samples` timed invocations; report the **median** (robust to a
//! stray scheduler hiccup) plus min/max. Output is one JSON line per
//! benchmark on stdout:
//!
//! ```text
//! {"group":"figures","name":"fig3_distribution","median_ns":…,"min_ns":…,"max_ns":…,"samples":5}
//! ```
//!
//! Environment knobs:
//! * `CAESAR_BENCH_SAMPLES` — samples per benchmark (default 5);
//! * `CAESAR_BENCH_WARMUP`  — warmup invocations (default 1);
//! * `CAESAR_BENCH_FILTER`  — comma-separated substrings matched
//!   against `group/name`; non-matching benchmarks are skipped
//!   entirely (no warmup, no samples, no output). Used by
//!   `scripts/check.sh --quick-bench` to time just the smoke kernels.
//!
//! Bench names are part of the repo's public trajectory (future
//! `BENCH_*.json` comparisons) — keep them stable.

use crate::json::Json;
use std::time::Instant;

/// One benchmark group (mirrors a criterion group; the group name
/// prefixes every emitted line).
pub struct Harness {
    group: String,
    samples: u32,
    warmup: u32,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

/// The measured summary for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Group this benchmark belongs to.
    pub group: String,
    /// Stable benchmark name.
    pub name: String,
    /// Median wall time per invocation, nanoseconds.
    pub median_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Number of timed samples.
    pub samples: u32,
}

impl BenchResult {
    /// The JSON line emitted for this result.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("group", self.group.as_str().into()),
            ("name", self.name.as_str().into()),
            ("median_ns", (self.median_ns as f64).into()),
            ("min_ns", (self.min_ns as f64).into()),
            ("max_ns", (self.max_ns as f64).into()),
            ("samples", u64::from(self.samples).into()),
        ])
    }
}

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

impl Harness {
    /// Start a group. Sample/warmup counts come from the environment.
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_string(),
            samples: env_u32("CAESAR_BENCH_SAMPLES", 5),
            warmup: env_u32("CAESAR_BENCH_WARMUP", 1),
            filter: std::env::var("CAESAR_BENCH_FILTER")
                .ok()
                .filter(|s| !s.trim().is_empty()),
            results: Vec::new(),
        }
    }

    /// Restrict the group to benchmarks whose `group/name` contains one
    /// of the comma-separated substrings (`None` runs everything).
    /// `new()` seeds this from `CAESAR_BENCH_FILTER`; this setter is
    /// the env-free handle for tests.
    pub fn filter(&mut self, pattern: Option<&str>) -> &mut Self {
        self.filter = pattern
            .map(str::to_string)
            .filter(|s| !s.trim().is_empty());
        self
    }

    fn selected(&self, name: &str) -> bool {
        match &self.filter {
            None => true,
            Some(pats) => {
                let full = format!("{}/{}", self.group, name);
                pats.split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .any(|p| full.contains(p))
            }
        }
    }

    /// Override the sample count (criterion's `sample_size` analogue).
    pub fn sample_size(&mut self, samples: u32) -> &mut Self {
        self.samples = env_u32("CAESAR_BENCH_SAMPLES", samples.max(1));
        self
    }

    /// Time `f`, print its JSON line immediately, and remember the
    /// result for [`Harness::finish`].
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !self.selected(name) {
            return self;
        }
        for _ in 0..self.warmup {
            f();
        }
        let mut times: Vec<u128> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_nanos()
            })
            .collect();
        times.sort_unstable();
        let result = BenchResult {
            group: self.group.clone(),
            name: name.to_string(),
            median_ns: times[times.len() / 2],
            min_ns: times[0],
            max_ns: times[times.len() - 1],
            samples: self.samples,
        };
        println!("{}", result.to_json());
        self.results.push(result);
        self
    }

    /// Like [`Harness::bench`], but each timed sample invokes `f`
    /// `iters` times and reports the **per-invocation** time — for
    /// operations too fast for a single timer read (hashing, counter
    /// reads). Criterion's internal batching analogue.
    pub fn bench_n<F: FnMut()>(&mut self, name: &str, iters: u32, mut f: F) -> &mut Self {
        if !self.selected(name) {
            return self;
        }
        let iters = iters.max(1);
        for _ in 0..self.warmup.saturating_mul(iters).min(1_000_000) {
            f();
        }
        let mut times: Vec<u128> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t0.elapsed().as_nanos() / u128::from(iters)
            })
            .collect();
        times.sort_unstable();
        let result = BenchResult {
            group: self.group.clone(),
            name: name.to_string(),
            median_ns: times[times.len() / 2],
            min_ns: times[0],
            max_ns: times[times.len() - 1],
            samples: self.samples,
        };
        println!("{}", result.to_json());
        self.results.push(result);
        self
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// End the group (prints a human-readable summary to stderr).
    pub fn finish(&self) {
        eprintln!("# group {} — {} benchmarks", self.group, self.results.len());
        for r in &self.results {
            eprintln!(
                "#   {:<40} median {:>12} ns (min {}, max {}, n={})",
                r.name, r.median_ns, r.min_ns, r.max_ns, r.samples
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut h = Harness::new("unit");
        h.sample_size(3);
        let mut calls = 0u32;
        h.bench("noop", || calls += 1);
        // warmup (>=1) + 3 samples
        assert!(calls >= 4, "calls = {calls}");
        let r = &h.results()[0];
        assert_eq!(r.name, "noop");
        assert_eq!(r.group, "unit");
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut h = Harness::new("grp");
        h.sample_size(1);
        h.filter(Some("grp/keep,other_group"));
        let mut kept = 0u32;
        let mut skipped = 0u32;
        h.bench("keep_me", || kept += 1);
        h.bench("drop_me", || skipped += 1);
        h.bench_n("drop_me_too", 10, || skipped += 1);
        assert!(kept >= 2, "kept = {kept}"); // warmup + 1 sample
        assert_eq!(skipped, 0);
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].name, "keep_me");
        // Clearing the filter re-admits everything.
        h.filter(None);
        h.bench("drop_me", || skipped += 1);
        assert!(skipped >= 2);
    }

    #[test]
    fn json_line_shape_is_stable() {
        let r = BenchResult {
            group: "g".into(),
            name: "n".into(),
            median_ns: 10,
            min_ns: 5,
            max_ns: 20,
            samples: 3,
        };
        assert_eq!(
            r.to_json().to_string(),
            "{\"group\":\"g\",\"max_ns\":20,\"median_ns\":10,\"min_ns\":5,\"name\":\"n\",\"samples\":3}"
        );
    }
}
