//! Order-preserving parallel map over `std::thread::scope` — the
//! workspace's replacement for `rayon`'s `par_iter().map().collect()`.
//!
//! Items are split into one contiguous chunk per worker, each worker
//! maps its chunk in order, and results are reassembled positionally,
//! so the output is **identical to the sequential map** regardless of
//! scheduling — determinism the figure pipeline depends on.

use std::num::NonZeroUsize;

/// The machine's available parallelism, probed **once per process**.
///
/// `std::thread::available_parallelism` is not cheap on Linux: under
/// cgroup CPU quotas it re-reads sysfs/procfs on every call (~10 µs
/// measured), which is real overhead for code that resolves a thread
/// width per batch sweep. The effective core count cannot change in
/// ways this workspace cares about mid-run, so memoize it.
pub fn host_parallelism() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .max(1)
    })
}

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped to the item count.
fn default_threads(items: usize) -> usize {
    host_parallelism().min(items).max(1)
}

/// Map `f` over `items` in parallel, preserving input order.
///
/// Equivalent to `items.iter().map(f).collect()` but spread over
/// threads. `f` runs exactly once per item; panics in workers propagate
/// to the caller.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_threads(items, default_threads(items.len()), f)
}

/// [`par_map`] with an explicit worker count (used by tests; `1` gives
/// the plain sequential map).
pub fn par_map_threads<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(items.len(), || None);
    let f = &f;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        // Pair each input chunk with the matching slice of the output
        // so workers write results straight into place.
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            handles.push(s.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
            }));
        }
        for h in handles {
            h.join().expect("par_map worker panicked");
        }
    });
    out.into_iter().map(|v| v.expect("all slots filled")).collect()
}

/// Route `items` into `parts` buckets with **one** O(n) pass,
/// preserving the input order within each bucket.
///
/// This is the ingest half of a sharded pipeline: partition the stream
/// once by an RSS-style hash, then let each worker consume only its own
/// bucket — total work O(n + n/T per worker) instead of the
/// O(T·n) "every worker replays the whole stream and filters" pattern.
/// Because the split is by *key* (not by position), the per-bucket
/// subsequence is independent of how many workers later consume it,
/// which keeps downstream state machines deterministic.
///
/// The classifier is the expensive half (an RSS hash per item), so it
/// runs exactly once per item and the item is routed immediately —
/// no second pass, no cached key array. Each bucket is pre-reserved at
/// the balanced size `n/parts` plus slack, so a near-uniform classifier
/// (the RSS case) routes with at most one growth step per bucket.
///
/// # Panics
/// Panics if `parts == 0`, or if `part_of` returns an index `>= parts`.
pub fn partition_by<T, F>(items: &[T], parts: usize, part_of: F) -> Vec<Vec<T>>
where
    T: Clone,
    F: Fn(&T) -> usize,
{
    assert!(parts >= 1, "partition_by needs at least one part");
    // n/parts + 12.5% slack + a floor for tiny inputs.
    let reserve = items.len() / parts + items.len() / (parts * 8) + 8;
    let mut out: Vec<Vec<T>> = (0..parts).map(|_| Vec::with_capacity(reserve)).collect();
    for item in items {
        let p = part_of(item);
        assert!(p < parts, "part_of returned {p} for {parts} parts");
        out[p].push(item.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 7, 64] {
            assert_eq!(par_map_threads(&items, threads, |x| x * x), seq);
        }
        assert_eq!(par_map(&items, |x| x * x), seq);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = vec![];
        assert_eq!(par_map(&none, |x| x + 1), Vec::<u32>::new());
        assert_eq!(par_map(&[41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(par_map_threads(&[1, 2, 3], 100, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn partition_routes_and_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let parts = partition_by(&items, 7, |&x| (x % 7) as usize);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), items.len());
        for (p, bucket) in parts.iter().enumerate() {
            // Right bucket, ascending (= input) order.
            assert!(bucket.iter().all(|&x| (x % 7) as usize == p));
            assert!(bucket.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn partition_concat_of_single_part_is_identity() {
        let items: Vec<u32> = (0..50).rev().collect();
        let parts = partition_by(&items, 1, |_| 0);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], items);
    }

    #[test]
    fn partition_empty_input_gives_empty_parts() {
        let parts = partition_by::<u8, _>(&[], 4, |_| 0);
        assert_eq!(parts, vec![Vec::<u8>::new(); 4]);
    }

    #[test]
    fn partition_conserves_counts_with_more_parts_than_items() {
        // Regression (empty-shard edge): when `parts` exceeds the
        // number of distinct keys — or the input length outright —
        // every item must still land in exactly one bucket and the
        // surplus buckets must come back empty, not be dropped,
        // merged, or panicked over.
        let items: Vec<u64> = (0..10).collect();

        // parts > distinct keys: 3 distinct keys into 32 parts.
        let parts = partition_by(&items, 32, |&x| (x % 3) as usize);
        assert_eq!(parts.len(), 32);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), items.len());
        assert_eq!(parts.iter().filter(|b| !b.is_empty()).count(), 3);
        for bucket in &parts[3..] {
            assert!(bucket.is_empty(), "surplus buckets must stay empty");
        }

        // parts > input length: identity routing of 10 items into 64.
        let parts = partition_by(&items, 64, |&x| x as usize);
        assert_eq!(parts.len(), 64);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), items.len());
        for (i, bucket) in parts.iter().enumerate() {
            if i < items.len() {
                assert_eq!(bucket.as_slice(), &[i as u64], "bucket {i}");
            } else {
                assert!(bucket.is_empty(), "bucket {i}");
            }
        }

        // Degenerate skew: everything into one of many buckets.
        let parts = partition_by(&items, 16, |_| 11);
        assert_eq!(parts[11], items);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), items.len());
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn partition_zero_parts_rejected() {
        partition_by(&[1u8], 0, |_| 0);
    }

    #[test]
    #[should_panic(expected = "part_of returned")]
    fn partition_out_of_range_part_rejected() {
        partition_by(&[1u8], 2, |_| 5);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let _ = par_map_threads(&items, 4, |&x| {
            assert!(x != 7, "boom");
            x
        });
    }
}
