//! Order-preserving parallel map over `std::thread::scope` — the
//! workspace's replacement for `rayon`'s `par_iter().map().collect()`.
//!
//! Items are split into one contiguous chunk per worker, each worker
//! maps its chunk in order, and results are reassembled positionally,
//! so the output is **identical to the sequential map** regardless of
//! scheduling — determinism the figure pipeline depends on.

use std::num::NonZeroUsize;

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped to the item count.
fn default_threads(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items)
        .max(1)
}

/// Map `f` over `items` in parallel, preserving input order.
///
/// Equivalent to `items.iter().map(f).collect()` but spread over
/// threads. `f` runs exactly once per item; panics in workers propagate
/// to the caller.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_threads(items, default_threads(items.len()), f)
}

/// [`par_map`] with an explicit worker count (used by tests; `1` gives
/// the plain sequential map).
pub fn par_map_threads<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(items.len(), || None);
    let f = &f;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        // Pair each input chunk with the matching slice of the output
        // so workers write results straight into place.
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            handles.push(s.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
            }));
        }
        for h in handles {
            h.join().expect("par_map worker panicked");
        }
    });
    out.into_iter().map(|v| v.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 7, 64] {
            assert_eq!(par_map_threads(&items, threads, |x| x * x), seq);
        }
        assert_eq!(par_map(&items, |x| x * x), seq);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = vec![];
        assert_eq!(par_map(&none, |x| x + 1), Vec::<u32>::new());
        assert_eq!(par_map(&[41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(par_map_threads(&[1, 2, 3], 100, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let _ = par_map_threads(&items, 4, |&x| {
            assert!(x != 7, "boom");
            x
        });
    }
}
