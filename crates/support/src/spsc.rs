//! Fixed-capacity lock-free single-producer/single-consumer ring.
//!
//! The sharded ingest pipeline's transport: the RSS front end (one
//! producer) hands each shard worker (one consumer) its flow
//! subsequence over a bounded ring instead of a `std::sync::mpsc`
//! channel. The design is the classic Lamport queue with the two
//! standard refinements high-throughput SPSC queues use:
//!
//! * **cache-line-padded head/tail** ([`CachePadded`]) so the
//!   producer's tail store and the consumer's head store never
//!   false-share one line (the dominant cost of a naive ring);
//! * **batched acquire/release with position caching**: each side
//!   keeps a local copy of the *other* side's index and only re-loads
//!   the shared atomic when its cached view says the ring is
//!   full/empty, so a `push`/`pop` is typically one `Release` store
//!   plus plain loads — no RMW instructions anywhere. The batch ops
//!   ([`Producer::push_slice`], [`Consumer::pop_batch`]) amortize even
//!   that store over many items.
//!
//! Memory ordering argument: the producer writes the slot *then*
//! publishes it with a `Release` store of `tail`; the consumer
//! `Acquire`-loads `tail` before reading the slot, which gives the
//! happens-before edge for the payload. Symmetrically, the consumer
//! reads the slot *then* `Release`-stores `head`; the producer
//! `Acquire`-loads `head` before overwriting a slot. Indices increase
//! monotonically (they never wrap modulo capacity — a `u64`-style
//! monotonic `usize` cannot overflow in any realistic run), so
//! "full" is exactly `tail - head == capacity` and "empty" is
//! `tail == head`.
//!
//! This module contains `unsafe` (the slot array is `UnsafeCell<
//! MaybeUninit<T>>`); `support` is the one crate in the workspace
//! allowed to (see `mem`). The safety argument is local: the producer
//! only writes slots in `head + capacity > i >= tail` (unpublished),
//! the consumer only reads slots in `head <= i < tail` (published and
//! not yet consumed), and the `Producer`/`Consumer` handles are unique
//! (not `Clone`), so each slot has exactly one writer and one reader
//! with a Release/Acquire edge between them.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads and aligns a value to 128 bytes — two x86 cache lines, because
/// adjacent-line prefetchers pull pairs of lines and would otherwise
/// re-introduce false sharing between logically separate hot words.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// The shared ring state. Owned by an `Arc` held from both endpoints.
struct Ring<T> {
    /// Slot storage; length is `cap_mask + 1` (a power of two).
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `buf.len() - 1`; slot of position `i` is `i & cap_mask`.
    cap_mask: usize,
    /// Logical capacity as requested by the caller (`<= buf.len()`):
    /// the ring reports full at `tail - head == capacity`, so
    /// `with_capacity(1)` really is a one-element ring even though the
    /// storage is rounded to a power of two.
    capacity: usize,
    /// Next position the consumer will read. Written by the consumer
    /// (Release), read by the producer (Acquire).
    head: CachePadded<AtomicUsize>,
    /// Next position the producer will write. Written by the producer
    /// (Release), read by the consumer (Acquire).
    tail: CachePadded<AtomicUsize>,
    /// Set when either endpoint is dropped.
    closed: AtomicBool,
}

// SAFETY: the ring transfers `T` values across threads (producer
// writes, consumer reads, Release/Acquire edge in between), which is
// exactly the `T: Send` contract. No `&T` is ever shared concurrently.
unsafe impl<T: Send> Sync for Ring<T> {}
unsafe impl<T: Send> Send for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Exclusive access here (last Arc owner): drop any values that
        // were produced but never consumed.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = self.buf[i & self.cap_mask].get();
            // SAFETY: positions in `head..tail` hold initialized values
            // nobody consumed; we have `&mut self`, so no other reader.
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// The producing endpoint of an SPSC ring. Not `Clone`: single
/// producer by construction.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Local (uncontended) copy of our own `tail`.
    tail: usize,
    /// Cached view of the consumer's `head`; refreshed only when the
    /// cached view says the ring is full.
    head_cache: usize,
}

/// The consuming endpoint of an SPSC ring. Not `Clone`: single
/// consumer by construction.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Local copy of our own `head`.
    head: usize,
    /// Cached view of the producer's `tail`; refreshed only when the
    /// cached view says the ring is empty.
    tail_cache: usize,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Producer")
            .field("capacity", &self.ring.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Consumer")
            .field("capacity", &self.ring.capacity)
            .finish_non_exhaustive()
    }
}

/// Create a bounded SPSC ring holding at most `capacity` in-flight
/// items (`capacity >= 1`; storage rounds up to a power of two but the
/// in-flight bound is exact).
///
/// # Panics
/// Panics if `capacity == 0`.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity >= 1, "spsc ring needs capacity >= 1");
    let storage = capacity.next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..storage).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring = Arc::new(Ring {
        buf,
        cap_mask: storage - 1,
        capacity,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
    });
    (
        Producer { ring: Arc::clone(&ring), tail: 0, head_cache: 0 },
        Consumer { ring, head: 0, tail_cache: 0 },
    )
}

/// Adaptive wait used by the blocking push/pop paths: brief on-core
/// spinning first (the common case: the peer is one store away), then
/// yields to the scheduler so a single-hardware-thread host makes
/// progress instead of burning the peer's timeslice.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Fresh backoff (starts at the cheapest wait).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wait once, escalating from `spin_loop` hints to
    /// `thread::yield_now`.
    ///
    /// On a single-hardware-thread host the spin phase is skipped
    /// outright: the peer can only make progress once we give up the
    /// core, so every spin cycle is time *added* to the wait.
    pub fn wait(&mut self) {
        if self.step < 6 && crate::par::host_parallelism() > 1 {
            for _ in 0..(1 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// Reset to the cheap end after progress was made.
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

impl<T: Send> Producer<T> {
    /// The ring's in-flight bound.
    pub fn capacity(&self) -> usize {
        self.ring.capacity
    }

    /// True once the consumer endpoint has been dropped; pushed items
    /// would never be consumed.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }

    /// Free slots according to the (possibly stale) cached view,
    /// refreshing the view from the consumer only when the cached view
    /// cannot satisfy a request for `want` slots. The cached view is a
    /// lower bound (the consumer's real `head` only moves forward), so
    /// skipping the refresh is always safe — it just under-reports.
    #[inline]
    fn free_slots_for(&mut self, want: usize) -> usize {
        let free = self.ring.capacity - (self.tail - self.head_cache);
        if free >= want.max(1) {
            return free;
        }
        self.head_cache = self.ring.head.0.load(Ordering::Acquire);
        self.ring.capacity - (self.tail - self.head_cache)
    }

    /// Free slots, refreshing the cached view when it reads zero.
    #[inline]
    fn free_slots(&mut self) -> usize {
        self.free_slots_for(1)
    }

    /// Write `v` into the (known-free) slot at `self.tail` and publish
    /// it.
    #[inline]
    fn write(&mut self, v: T) {
        let slot = self.ring.buf[self.tail & self.ring.cap_mask].get();
        // SAFETY: `free_slots() > 0` established `tail - head <
        // capacity`, so this slot is unpublished (producer-owned), and
        // we are the only producer.
        unsafe { (*slot).write(v) };
        self.tail += 1;
        self.ring.tail.0.store(self.tail, Ordering::Release);
    }

    /// Non-blocking push. Returns `Err(v)` when the ring is full.
    #[inline]
    pub fn try_push(&mut self, v: T) -> Result<(), T> {
        if self.free_slots() == 0 {
            return Err(v);
        }
        self.write(v);
        Ok(())
    }

    /// Blocking push: spins/yields until a slot frees up. Returns
    /// `Err(v)` only if the consumer endpoint is gone (the value would
    /// never be read) — the ring equivalent of a `SendError`.
    pub fn push(&mut self, mut v: T) -> Result<(), T> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_push(v) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    if self.is_closed() {
                        // Full and the consumer is gone: it will never
                        // drain.
                        return Err(back);
                    }
                    v = back;
                    backoff.wait();
                }
            }
        }
    }

    /// Seal the ring from the producer side **without** consuming the
    /// endpoint: sets the close flag so a blocking consumer loop
    /// ([`Consumer::pop`], [`Consumer::pop_batch_blocking`]) terminates
    /// once it drains the already-published prefix. The supervised
    /// threaded runtime's failover path needs exactly this shape — stop
    /// a (possibly wedged) worker's intake while keeping the producer
    /// handle alive to account for what was in flight. Pushing after a
    /// seal is permitted but pointless: a well-behaved consumer treats
    /// closed-and-drained as final and will never see the new items.
    pub fn seal(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }

    /// Items currently published but unconsumed, from the producer's
    /// exact view of its own tail and a fresh `Acquire` load of the
    /// consumer's head. Unlike [`Producer::try_push`]'s cached check
    /// this always refreshes, so it is an exact snapshot at the moment
    /// of the load (the consumer may of course drain more immediately
    /// after).
    pub fn in_flight(&mut self) -> usize {
        self.head_cache = self.ring.head.0.load(Ordering::Acquire);
        self.tail - self.head_cache
    }

    /// Push as many items from `src` as currently fit, with **at most
    /// one** head acquire and **one** tail release for the whole batch.
    /// Returns how many were pushed (a prefix of `src`). The head is
    /// re-acquired only when the cached view cannot fit all of `src`,
    /// so a full-slice push is never truncated by cache staleness.
    pub fn push_slice(&mut self, src: &[T]) -> usize
    where
        T: Copy,
    {
        let n = self.free_slots_for(src.len()).min(src.len());
        for (i, &v) in src[..n].iter().enumerate() {
            let pos = self.tail + i;
            let slot = self.ring.buf[pos & self.ring.cap_mask].get();
            // SAFETY: `pos < tail + free_slots()`, i.e. within the
            // producer-owned unpublished range; single producer.
            unsafe { (*slot).write(v) };
        }
        if n > 0 {
            self.tail += n;
            self.ring.tail.0.store(self.tail, Ordering::Release);
        }
        n
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T: Send> Consumer<T> {
    /// The ring's in-flight bound.
    pub fn capacity(&self) -> usize {
        self.ring.capacity
    }

    /// True once the producer endpoint has been dropped. Items already
    /// published are still poppable; drain until [`Consumer::is_empty`]
    /// before treating the stream as finished.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }

    /// True when no published item is waiting (refreshes the cached
    /// producer index).
    pub fn is_empty(&mut self) -> bool {
        self.available() == 0
    }

    /// Published items waiting, refreshing the cached view from the
    /// producer only when the cached view cannot satisfy a request for
    /// `want` items. Like the producer's free-slot cache, the cached
    /// view only under-reports, never over-reports.
    #[inline]
    fn available_for(&mut self, want: usize) -> usize {
        let avail = self.tail_cache - self.head;
        if avail >= want.max(1) {
            return avail;
        }
        self.tail_cache = self.ring.tail.0.load(Ordering::Acquire);
        self.tail_cache - self.head
    }

    /// Published items waiting, refreshing the cached view when it
    /// reads empty.
    #[inline]
    fn available(&mut self) -> usize {
        self.available_for(1)
    }

    /// Non-blocking pop.
    #[inline]
    pub fn try_pop(&mut self) -> Option<T> {
        if self.available() == 0 {
            return None;
        }
        let slot = self.ring.buf[self.head & self.ring.cap_mask].get();
        // SAFETY: `head < tail` (published, unconsumed) and we are the
        // only consumer; the Acquire load of `tail` in `available`
        // ordered the producer's slot write before this read.
        let v = unsafe { (*slot).assume_init_read() };
        self.head += 1;
        self.ring.head.0.store(self.head, Ordering::Release);
        Some(v)
    }

    /// Pop up to `max` items into `out`, with **at most one** tail
    /// acquire and **one** head release for the whole batch. Returns
    /// how many were appended. The tail is re-acquired only when the
    /// cached view holds fewer than `max` items, so a full-batch drain
    /// is never truncated by cache staleness.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let n = self.available_for(max).min(max);
        out.reserve(n);
        for i in 0..n {
            let pos = self.head + i;
            let slot = self.ring.buf[pos & self.ring.cap_mask].get();
            // SAFETY: positions `head..head + n <= tail` are published
            // and unconsumed; single consumer; ordering as in try_pop.
            out.push(unsafe { (*slot).assume_init_read() });
        }
        if n > 0 {
            self.head += n;
            self.ring.head.0.store(self.head, Ordering::Release);
        }
        n
    }

    /// Blocking pop for a streaming consumer loop: waits (spin, then
    /// yield) until an item arrives, and returns `None` only when the
    /// producer is gone **and** the ring is fully drained — the ring
    /// equivalent of iterating a closed channel.
    pub fn pop(&mut self) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            // Check closed *after* an empty observation: the producer
            // publishes items before dropping, so closed + empty is
            // final. (Ordering: `closed` is stored Release on drop and
            // loaded Acquire here, after the failed tail refresh.)
            if self.is_closed() && self.is_empty() {
                return None;
            }
            backoff.wait();
        }
    }

    /// Blocking batch pop: like [`Consumer::pop`] but fills `out` with
    /// up to `max` items. Returns 0 only on closed-and-drained.
    pub fn pop_batch_blocking(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut backoff = Backoff::new();
        loop {
            let n = self.pop_batch(out, max);
            if n > 0 {
                return n;
            }
            if self.is_closed() && self.is_empty() {
                return 0;
            }
            backoff.wait();
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_roundtrip_within_capacity() {
        let (mut tx, mut rx) = ring::<u64>(8);
        for i in 0..8 {
            tx.try_push(i).expect("fits");
        }
        assert!(tx.try_push(99).is_err(), "9th push must report full");
        for i in 0..8 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn capacity_is_exact_even_when_storage_rounds_up() {
        // Capacity 5 rounds storage to 8 but the in-flight bound must
        // stay 5.
        let (mut tx, mut rx) = ring::<u32>(5);
        for i in 0..5 {
            tx.try_push(i).expect("fits");
        }
        assert!(tx.try_push(5).is_err());
        assert_eq!(rx.try_pop(), Some(0));
        tx.try_push(5).expect("one slot freed");
        assert!(tx.try_push(6).is_err());
        assert_eq!(tx.capacity(), 5);
        assert_eq!(rx.capacity(), 5);
    }

    #[test]
    fn capacity_one_ping_pongs() {
        let (mut tx, mut rx) = ring::<u8>(1);
        for round in 0..100u8 {
            tx.try_push(round).expect("empty ring");
            assert!(tx.try_push(255).is_err(), "capacity 1 is full");
            assert_eq!(rx.try_pop(), Some(round));
        }
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let _ = ring::<u8>(0);
    }

    #[test]
    fn batch_push_pop_preserve_order() {
        let (mut tx, mut rx) = ring::<u64>(16);
        let src: Vec<u64> = (0..10).collect();
        assert_eq!(tx.push_slice(&src), 10);
        assert_eq!(tx.push_slice(&src), 6, "only 6 slots left");
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 12), 12);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1]);
        out.clear();
        assert_eq!(rx.pop_batch(&mut out, 100), 4);
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(rx.pop_batch(&mut out, 100), 0);
    }

    #[test]
    fn closed_and_drained_terminates_consumer() {
        let (mut tx, mut rx) = ring::<u64>(4);
        tx.try_push(1).expect("fits");
        tx.try_push(2).expect("fits");
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.pop(), Some(1), "published items survive close");
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None, "closed + drained");
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch_blocking(&mut out, 8), 0);
    }

    #[test]
    fn push_fails_once_consumer_is_gone() {
        let (mut tx, rx) = ring::<u64>(1);
        tx.try_push(7).expect("fits");
        drop(rx);
        assert_eq!(tx.push(8), Err(8), "full ring with no consumer");
    }

    #[test]
    fn unconsumed_items_are_dropped_with_the_ring() {
        // Drop counting through Arc strong counts.
        let marker = Arc::new(());
        let (mut tx, rx) = ring::<Arc<()>>(4);
        for _ in 0..3 {
            tx.try_push(Arc::clone(&marker)).expect("fits");
        }
        assert_eq!(Arc::strong_count(&marker), 4);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&marker), 1, "ring dropped its 3");
    }

    #[test]
    fn producer_dropped_mid_slice_delivers_exact_prefix() {
        // A producer that dies between two push_slice calls (or after a
        // truncated one) must leave the consumer with *exactly* the
        // published prefix — no phantom items, no lost ones.
        let (mut tx, mut rx) = ring::<u64>(8);
        let src: Vec<u64> = (0..20).collect();
        let pushed = tx.push_slice(&src);
        assert_eq!(pushed, 8, "truncated to capacity");
        drop(tx); // "crash" mid-stream
        assert!(rx.is_closed());
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch_blocking(&mut out, 100), 8);
        assert_eq!(out, src[..8], "exact published prefix, in order");
        assert_eq!(rx.pop_batch_blocking(&mut out, 100), 0, "closed + drained");
    }

    #[test]
    fn consumer_dropped_while_producer_blocked_at_capacity_one() {
        // The nastiest shutdown edge: a capacity-1 ring, the producer
        // parked inside blocking push(), and the consumer endpoint
        // drops without ever draining. The push must return Err with
        // the undelivered value instead of spinning forever.
        let (mut tx, rx) = ring::<u64>(1);
        tx.try_push(1).expect("fits");
        let waiter = std::thread::spawn(move || {
            // Blocks: ring is full. Unblocked only by the close flag.
            tx.push(2)
        });
        // Give the producer a moment to actually park in the backoff
        // loop, then kill the consumer.
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(rx);
        let res = waiter.join().expect("producer thread exits cleanly");
        assert_eq!(res, Err(2), "undelivered value comes back to the caller");
    }

    #[test]
    fn loss_accounting_is_exact_under_full_backpressure() {
        // 40k packets against a tiny ring with a consumer that only
        // drains every 64th offer: every packet is either delivered or
        // counted as shed, with zero slack.
        let (mut tx, mut rx) = ring::<u64>(16);
        let total = 40_000u64;
        let mut shed = 0u64;
        let mut delivered = 0u64;
        let mut checksum = 0u64;
        let mut buf = Vec::new();
        for i in 0..total {
            match tx.try_push(i) {
                Ok(()) => {}
                Err(_) => shed += 1,
            }
            if i % 64 == 0 {
                buf.clear();
                let n = rx.pop_batch(&mut buf, 8);
                delivered += n as u64;
                checksum += buf.iter().sum::<u64>();
            }
        }
        drop(tx);
        loop {
            buf.clear();
            let n = rx.pop_batch_blocking(&mut buf, 64);
            if n == 0 {
                break;
            }
            delivered += n as u64;
            checksum += buf.iter().sum::<u64>();
        }
        assert_eq!(delivered + shed, total, "exact conservation");
        assert!(shed > 0, "the tiny ring must have shed under this load");
        assert!(checksum > 0);
    }

    #[test]
    fn cross_thread_stream_conserves_everything() {
        // 100k u64s through a small ring with blocking ops on both
        // sides; sum and order must survive exactly.
        let (mut tx, mut rx) = ring::<u64>(64);
        let n = 100_000u64;
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..n {
                    tx.push(i).expect("consumer alive");
                }
            });
            let mut expected = 0u64;
            let mut buf = Vec::with_capacity(256);
            loop {
                buf.clear();
                if rx.pop_batch_blocking(&mut buf, 256) == 0 {
                    break;
                }
                for &v in &buf {
                    assert_eq!(v, expected, "order violated");
                    expected += 1;
                }
            }
            assert_eq!(expected, n, "every item delivered exactly once");
        });
    }

    #[test]
    fn sealed_ring_terminates_consumer_after_exact_prefix() {
        // seal() must behave like a producer drop for the consumer —
        // published items drain, then the stream ends — while the
        // producer handle stays alive for post-mortem accounting.
        let (mut tx, mut rx) = ring::<u64>(8);
        for i in 0..5 {
            tx.try_push(i).expect("fits");
        }
        tx.seal();
        assert!(rx.is_closed(), "seal raises the close flag");
        assert_eq!(tx.in_flight(), 5, "producer still sees its backlog");
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch_blocking(&mut out, 100), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4], "exact sealed prefix");
        assert_eq!(rx.pop(), None, "sealed + drained is final");
        assert_eq!(tx.in_flight(), 0, "drain visible from the producer");
    }

    #[test]
    fn seal_unblocks_a_parked_consumer() {
        // A consumer parked in pop_batch_blocking on an empty ring must
        // wake and terminate when the producer seals from its own
        // thread (the failover path: supervisor seals a lane whose
        // worker is waiting for input that will never come).
        let (mut tx, mut rx) = ring::<u64>(4);
        let waiter = std::thread::spawn(move || {
            let mut out = Vec::new();
            rx.pop_batch_blocking(&mut out, 16)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.seal();
        assert_eq!(waiter.join().expect("consumer exits"), 0);
        assert!(tx.is_closed());
    }

    #[test]
    fn producer_in_flight_tracks_push_and_pop() {
        let (mut tx, mut rx) = ring::<u64>(4);
        assert_eq!(tx.in_flight(), 0);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.in_flight(), 2);
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(tx.in_flight(), 1, "fresh head load sees the pop");
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        for _ in 0..10 {
            b.wait(); // must not hang or panic past the spin phase
        }
        b.reset();
        b.wait();
    }

    #[test]
    fn stale_index_caches_do_not_truncate_batches() {
        // Regression: after many single push/pop round trips the
        // producer's cached head (and the consumer's cached tail) lag
        // far behind reality. A whole-slice push into an actually-empty
        // ring — and a full-batch pop of what was pushed — must still
        // complete in one call, not be truncated to the stale view.
        let (mut tx, mut rx) = ring::<u64>(1024);
        for i in 0..700u64 {
            tx.try_push(i).unwrap();
            assert_eq!(rx.try_pop(), Some(i));
        }
        // Ring is empty, but tx.head_cache is ~700 stale.
        let chunk: Vec<u64> = (0..1024).collect();
        assert_eq!(tx.push_slice(&chunk), 1024, "full-capacity push");
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 1024), 1024, "full-capacity pop");
        assert_eq!(out, chunk);
    }
}
