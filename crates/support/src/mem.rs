//! Memory-hierarchy hints for the batch hot paths.
//!
//! The only primitive here is a **safe** software-prefetch wrapper: on
//! `x86_64` it lowers to `prefetcht0` (fetch into all cache levels), on
//! every other architecture it compiles to nothing. Prefetching is a
//! pure hint — it never faults, never changes observable state — so the
//! wrapper is sound to expose safely even though the intrinsic itself
//! is `unsafe` (this crate is the one place in the workspace allowed to
//! contain `unsafe` — here and in [`crate::spsc`]; all downstream
//! crates `forbid(unsafe_code)`).
//!
//! Callers issue the hint one batch element *ahead* of the element they
//! are processing, overlapping the DRAM/SRAM access latency of element
//! `i + 1` with the compute of element `i` (see `caesar`'s
//! `record_batch` and `DESIGN.md` §4d).

/// Hint the CPU to pull the cache line holding `r` into L1 (T0).
///
/// No-op on non-`x86_64` targets. Safe: prefetch cannot fault even on
/// dangling addresses, and `&T` is always a valid address anyway.
#[inline(always)]
pub fn prefetch_read<T: ?Sized>(r: &T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
            r as *const T as *const i8,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = r;
}

/// Prefetch element `idx` of `slice` if it is in bounds; silently does
/// nothing otherwise. The bounds tolerance lets batch loops hint
/// `i + 1` without a trailing-edge special case.
#[inline(always)]
pub fn prefetch_index<T>(slice: &[T], idx: usize) {
    if let Some(r) = slice.get(idx) {
        prefetch_read(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_pure_hint() {
        let v = vec![1u64, 2, 3];
        prefetch_read(&v[0]);
        prefetch_index(&v, 2);
        prefetch_index(&v, 999); // out of bounds: no-op, no panic
        assert_eq!(v, [1, 2, 3]);
    }
}
