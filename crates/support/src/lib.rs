//! Vendored support shims so the workspace builds **offline** with zero
//! crates.io dependencies.
//!
//! Policy (see `CONTRIBUTING.md`): every external crate the workspace
//! used to pull from crates.io is replaced here by a narrow,
//! deterministic, from-scratch implementation of exactly the surface
//! the workspace needs:
//!
//! | was            | now                               |
//! |----------------|-----------------------------------|
//! | `rand`         | [`rand`] — xoshiro256** `StdRng` seeded via SplitMix64 |
//! | `libm`         | `std::f64` methods + [`mathx`] (`erf`/`erfc`) |
//! | `bytes`        | [`bytesx`] (`ByteReader`, `PutBytes`) |
//! | `serde`        | [`json`] (hand-rolled value model, writer, parser) |
//! | `rayon`        | [`par`] (`par_map` over `std::thread::scope`) |
//! | `crossbeam`    | `std::thread::scope` (call sites migrated directly) + [`spsc`] (lock-free bounded SPSC ring) |
//! | `parking_lot`  | `std::sync::Mutex` (call sites migrated directly) |
//! | `proptest`     | [`testkit`] (deterministic seeded property harness) |
//! | `core_affinity`| [`affinity`] (direct `sched_setaffinity` shim, loud no-op elsewhere) |
//! | `criterion`    | [`timing`] (warmup + median-of-N bench harness) |
//!
//! Everything here is seeded and reproducible: the same seed produces
//! the same stream on every platform, which the workspace's regression
//! pins and determinism tests rely on.

pub mod affinity;
pub mod bytesx;
pub mod json;
pub mod mathx;
pub mod mem;
pub mod par;
pub mod rand;
pub mod spsc;
pub mod testkit;
pub mod timing;
