//! Drop-in replacement for the narrow slice of the `rand` crate the
//! workspace uses: a seedable [`StdRng`] (xoshiro256\*\* seeded through
//! the SplitMix64 stream, the construction recommended by the xoshiro
//! authors), the [`Rng`]/[`SeedableRng`] traits, and
//! [`seq::SliceRandom`] for Fisher–Yates shuffles.
//!
//! Unlike `rand`'s `StdRng` (which documents *no* cross-version stream
//! stability), this generator's stream is **frozen**: the regression
//! pins in `tests/regression.rs` depend on it, so any change here is a
//! measurement-behaviour change and must update those pins explicitly.

use hashkit::mix::splitmix64;

/// Golden-ratio increment of the SplitMix64 stream.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Types seedable from a single `u64` (the only constructor the
/// workspace uses — everything is explicitly seeded, never from OS
/// entropy, so runs are reproducible by construction).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A minimal random-number interface: one required method
/// ([`Rng::next_u64`]), everything else derived from it.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 2^-53: the standard "take the top 53 bits" construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample a value of a primitive type uniformly over its full range
    /// (`f64`/`f32` sample `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a `Range` or `RangeInclusive`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        self.next_f64() < p
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Uniform sampling over a type's "natural" domain (full integer range,
/// `[0, 1)` for floats) — the shim's analogue of `rand`'s `Standard`
/// distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                // Take high bits: xoshiro's upper bits are the strongest.
                (rng.next_u64() >> (64 - <$t>::BITS.min(64))) as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over an interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire widening reduction: unbiased enough for
                // simulation (bias < 2^-64 relative) and deterministic.
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: raw bits are already uniform.
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let v = lo + rng.next_f64() * (hi - lo);
        // Guard against rounding up to the open bound.
        if v < hi {
            v
        } else {
            lo
        }
    }
    #[inline]
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The workspace's standard generator: xoshiro256\*\* (Blackman &
/// Vigna), 256-bit state, period 2²⁵⁶−1, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Four successive outputs of the SplitMix64 stream, as the
        // xoshiro reference code recommends for seeding.
        let mut s = [0u64; 4];
        for (i, slot) in s.iter_mut().enumerate() {
            *slot = splitmix64(seed.wrapping_add((i as u64).wrapping_mul(GOLDEN)));
        }
        if s == [0; 4] {
            s[0] = GOLDEN; // all-zero state is the one forbidden point
        }
        Self { s }
    }
}

impl StdRng {
    /// The raw 256-bit generator state, for crash-consistent snapshots.
    ///
    /// Together with [`StdRng::from_state`] this lets a long-running
    /// pipeline serialize its generator mid-stream and resume with a
    /// byte-identical continuation of the same stream. The state words
    /// are part of the frozen-stream contract (see module docs): a
    /// snapshot taken by one build of the workspace restores under any
    /// other build.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured by [`StdRng::state`].
    ///
    /// The all-zero state is the single forbidden point of xoshiro256\*\*
    /// (the stream would be constant zero); it is mapped to the same
    /// canonical non-zero state `seed_from_u64` uses, so a corrupted
    /// snapshot cannot wedge the generator.
    #[inline]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            Self { s: [GOLDEN, 0, 0, 0] }
        } else {
            Self { s }
        }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Generator types re-exported under the `rand`-style path.
pub mod rngs {
    pub use super::StdRng;
}

/// Slice helpers, `rand::seq`-style.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleUniform::sample_inclusive(rng, 0usize, i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::SampleUniform::sample_exclusive(rng, 0usize, self.len());
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn stream_is_frozen() {
        // Pin the first outputs for seed 0: any change to seeding or
        // the generator core is a workspace-wide behaviour change.
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let repeat: Vec<u64> = (0..3).map(|_| again.next_u64()).collect();
        assert_eq!(first, repeat);
        // Seed words are the published SplitMix64 stream for seed 0.
        let s = StdRng::seed_from_u64(0).s;
        assert_eq!(s[0], 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = r.gen_range(10usize..20);
            assert!((10..20).contains(&a));
            let b = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&b));
            let c = r.gen_range(1u64..=1);
            assert_eq!(c, 1);
            let d = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 10usize;
        let samples = 100_000;
        let mut counts = vec![0u32; n];
        for _ in 0..samples {
            counts[r.gen_range(0..n)] += 1;
        }
        let expected = samples as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 0.05 * expected,
                "bucket {i}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01, "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.gen_range(5usize..5);
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = StdRng::seed_from_u64(11);
        v.shuffle(&mut r);
        let mut w: Vec<u32> = (0..100).collect();
        let mut r2 = StdRng::seed_from_u64(11);
        w.shuffle(&mut r2);
        assert_eq!(v, w, "same seed, same permutation");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "100 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let v = [1u8, 2, 3, 4];
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = v.choose(&mut r).expect("non-empty");
            seen[(x - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut r = StdRng::seed_from_u64(2);
        for len in 0..33 {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len {len}");
            }
        }
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut r = StdRng::seed_from_u64(77);
        for _ in 0..13 {
            r.next_u64();
        }
        let snap = r.state();
        let ahead: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        let mut resumed = StdRng::from_state(snap);
        let replay: Vec<u64> = (0..16).map(|_| resumed.next_u64()).collect();
        assert_eq!(ahead, replay, "restored rng must continue the exact stream");
        // All-zero state is remapped, never wedged.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_generic<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut r = StdRng::seed_from_u64(4);
        let _ = takes_generic(&mut r);
        let _ = takes_generic(&mut &mut r);
        let _ = takes_unsized(&mut r);
    }
}
