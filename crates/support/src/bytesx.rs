//! Little-endian byte codec helpers — the workspace's replacement for
//! the `bytes` crate in `flowtrace::binfmt`.
//!
//! Writers push onto a plain `Vec<u8>` through [`PutBytes`]; readers
//! walk a borrowed slice with [`ByteReader`], which length-checks every
//! read so decoders can surface truncation as an error instead of a
//! panic.

/// Appending little-endian primitives to a byte buffer.
pub trait PutBytes {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl PutBytes for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A checked cursor over a byte slice. Every `get_*` returns `None`
/// once the input runs dry, so decoders never panic on truncated data.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Wrap a slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Read exactly `N` bytes.
    pub fn get_array<const N: usize>(&mut self) -> Option<[u8; N]> {
        if self.buf.len() < N {
            return None;
        }
        let (head, tail) = self.buf.split_at(N);
        self.buf = tail;
        let mut out = [0u8; N];
        out.copy_from_slice(head);
        Some(out)
    }

    /// Read exactly `n` bytes as a borrowed slice.
    pub fn get_slice(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    /// Read a single byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.get_array::<1>().map(|[b]| b)
    }

    /// Read a little-endian `u16`.
    pub fn get_u16_le(&mut self) -> Option<u16> {
        self.get_array::<2>().map(u16::from_le_bytes)
    }

    /// Read a little-endian `u32`.
    pub fn get_u32_le(&mut self) -> Option<u32> {
        self.get_array::<4>().map(u32::from_le_bytes)
    }

    /// Read a little-endian `u64`.
    pub fn get_u64_le(&mut self) -> Option<u64> {
        self.get_array::<8>().map(u64::from_le_bytes)
    }
}

/// Magic tag of a sealed buffer footer (`b"CSRB"` — CAESAR blob —
/// followed by a format version byte pair).
const SEAL_MAGIC: u32 = u32::from_le_bytes(*b"CSRB");
/// Footer layout version. Bump when the footer itself (not the
/// payload) changes shape.
const SEAL_VERSION: u16 = 1;
/// Footer length: magic (4) + version (2) + payload len (8) + fnv (8).
const SEAL_FOOTER_LEN: usize = 4 + 2 + 8 + 8;

use hashkit::fnv::fnv1a64;

/// Append a crash-consistency footer — `magic, version, payload_len,
/// fnv1a64(payload)` — to `payload` in place. A sealed buffer is
/// self-validating: [`unseal`] refuses truncated, over-long, or
/// bit-flipped blobs instead of letting a decoder misparse them.
pub fn seal(payload: &mut Vec<u8>) {
    let len = payload.len() as u64;
    let sum = fnv1a64(payload);
    payload.put_u32_le(SEAL_MAGIC);
    payload.put_u16_le(SEAL_VERSION);
    payload.put_u64_le(len);
    payload.put_u64_le(sum);
}

/// Why [`unseal`] rejected a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// Shorter than a footer, or payload length disagrees with the
    /// buffer length.
    Truncated,
    /// Footer magic or version mismatch — not a sealed buffer (or a
    /// future format).
    BadMagic,
    /// Payload bytes do not hash to the recorded checksum.
    BadChecksum,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::Truncated => write!(f, "sealed buffer truncated"),
            SealError::BadMagic => write!(f, "sealed buffer magic/version mismatch"),
            SealError::BadChecksum => write!(f, "sealed buffer checksum mismatch"),
        }
    }
}

impl std::error::Error for SealError {}

/// Validate a buffer produced by [`seal`] and return the payload slice
/// (footer stripped).
pub fn unseal(buf: &[u8]) -> Result<&[u8], SealError> {
    if buf.len() < SEAL_FOOTER_LEN {
        return Err(SealError::Truncated);
    }
    let (payload, footer) = buf.split_at(buf.len() - SEAL_FOOTER_LEN);
    let mut r = ByteReader::new(footer);
    let magic = r.get_u32_le().ok_or(SealError::Truncated)?;
    let version = r.get_u16_le().ok_or(SealError::Truncated)?;
    let len = r.get_u64_le().ok_or(SealError::Truncated)?;
    let sum = r.get_u64_le().ok_or(SealError::Truncated)?;
    if magic != SEAL_MAGIC || version != SEAL_VERSION {
        return Err(SealError::BadMagic);
    }
    if len != payload.len() as u64 {
        return Err(SealError::Truncated);
    }
    if sum != fnv1a64(payload) {
        return Err(SealError::BadChecksum);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"tail");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u16_le(), Some(0xBEEF));
        assert_eq!(r.get_u32_le(), Some(0xDEAD_BEEF));
        assert_eq!(r.get_u64_le(), Some(0x0123_4567_89AB_CDEF));
        assert_eq!(r.get_array::<4>(), Some(*b"tail"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_returns_none_not_panic() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.get_u16_le(), Some(0x0201));
        assert_eq!(r.get_u32_le(), None, "only 1 byte left");
        assert_eq!(r.remaining(), 1, "failed read consumes nothing");
        assert_eq!(r.get_array::<1>(), Some([3]));
    }

    #[test]
    fn little_endian_layout_is_pinned() {
        let mut buf = Vec::new();
        buf.put_u32_le(1);
        assert_eq!(buf, [1, 0, 0, 0]);
    }

    #[test]
    fn seal_unseal_round_trip() {
        let mut buf = b"snapshot payload".to_vec();
        let payload = buf.clone();
        seal(&mut buf);
        assert_eq!(buf.len(), payload.len() + SEAL_FOOTER_LEN);
        assert_eq!(unseal(&buf), Ok(payload.as_slice()));
        // Empty payload seals too.
        let mut empty = Vec::new();
        seal(&mut empty);
        assert_eq!(unseal(&empty), Ok(&[][..]));
    }

    #[test]
    fn unseal_rejects_corruption() {
        let mut buf = vec![7u8; 100];
        seal(&mut buf);
        // Bit flip in the payload.
        let mut flipped = buf.clone();
        flipped[50] ^= 0x01;
        assert_eq!(unseal(&flipped), Err(SealError::BadChecksum));
        // Truncation (drops footer bytes): the footer window shifts,
        // so this surfaces as *some* error (magic lands on garbage).
        assert!(unseal(&buf[..buf.len() - 1]).is_err());
        // Extra garbage after the footer shifts the parse window.
        let mut padded = buf.clone();
        padded.push(0);
        assert_ne!(unseal(&padded), Ok(&buf[..100]));
        // Magic smashed.
        let n = buf.len();
        let mut bad = buf.clone();
        bad[n - SEAL_FOOTER_LEN] ^= 0xFF;
        assert_eq!(unseal(&bad), Err(SealError::BadMagic));
        // Too short to even hold a footer.
        assert_eq!(unseal(&[1, 2, 3]), Err(SealError::Truncated));
    }
}
