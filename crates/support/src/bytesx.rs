//! Little-endian byte codec helpers — the workspace's replacement for
//! the `bytes` crate in `flowtrace::binfmt`.
//!
//! Writers push onto a plain `Vec<u8>` through [`PutBytes`]; readers
//! walk a borrowed slice with [`ByteReader`], which length-checks every
//! read so decoders can surface truncation as an error instead of a
//! panic.

/// Appending little-endian primitives to a byte buffer.
pub trait PutBytes {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl PutBytes for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A checked cursor over a byte slice. Every `get_*` returns `None`
/// once the input runs dry, so decoders never panic on truncated data.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Wrap a slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Read exactly `N` bytes.
    pub fn get_array<const N: usize>(&mut self) -> Option<[u8; N]> {
        if self.buf.len() < N {
            return None;
        }
        let (head, tail) = self.buf.split_at(N);
        self.buf = tail;
        let mut out = [0u8; N];
        out.copy_from_slice(head);
        Some(out)
    }

    /// Read a little-endian `u16`.
    pub fn get_u16_le(&mut self) -> Option<u16> {
        self.get_array::<2>().map(u16::from_le_bytes)
    }

    /// Read a little-endian `u32`.
    pub fn get_u32_le(&mut self) -> Option<u32> {
        self.get_array::<4>().map(u32::from_le_bytes)
    }

    /// Read a little-endian `u64`.
    pub fn get_u64_le(&mut self) -> Option<u64> {
        self.get_array::<8>().map(u64::from_le_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"tail");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u16_le(), Some(0xBEEF));
        assert_eq!(r.get_u32_le(), Some(0xDEAD_BEEF));
        assert_eq!(r.get_u64_le(), Some(0x0123_4567_89AB_CDEF));
        assert_eq!(r.get_array::<4>(), Some(*b"tail"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_returns_none_not_panic() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.get_u16_le(), Some(0x0201));
        assert_eq!(r.get_u32_le(), None, "only 1 byte left");
        assert_eq!(r.remaining(), 1, "failed read consumes nothing");
        assert_eq!(r.get_array::<1>(), Some([3]));
    }

    #[test]
    fn little_endian_layout_is_pinned() {
        let mut buf = Vec::new();
        buf.put_u32_le(1);
        assert_eq!(buf, [1, 0, 0, 0]);
    }
}
