//! A hand-rolled JSON value model, writer, and parser — the workspace's
//! replacement for `serde`/`serde_json`.
//!
//! The workspace only ever needed *data-out* (bench lines, config
//! snapshots) and one *data-in* path (config round-trip), so this is a
//! ~200-line recursive-descent affair rather than a serialization
//! framework: types implement [`ToJson`] by hand, and readers pattern
//! match on [`Json`].

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve insertion order is not required by
/// any consumer, so a `BTreeMap` keeps output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`; the workspace's counters
    /// fit in 53 bits wherever they round-trip through JSON).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a numeric value (rejects fractional parts).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;

    /// Compact one-line JSON text.
    fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null") // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{it}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}
impl std::error::Error for ParseError {}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError { at: pos, msg: "trailing characters" });
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str, msg: &'static str) -> Result<(), ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError { at: *pos, msg })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(ParseError { at: *pos, msg: "unexpected end of input" });
    };
    match c {
        b'n' => expect(b, pos, "null", "expected null").map(|()| Json::Null),
        b't' => expect(b, pos, "true", "expected true").map(|()| Json::Bool(true)),
        b'f' => expect(b, pos, "false", "expected false").map(|()| Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError { at: *pos, msg: "expected , or ]" }),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(ParseError { at: *pos, msg: "expected :" });
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(ParseError { at: *pos, msg: "expected , or }" }),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => Err(ParseError { at: *pos, msg: "unexpected character" }),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(ParseError { at: *pos, msg: "expected string" });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(ParseError { at: *pos, msg: "unterminated string" });
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err(ParseError { at: *pos, msg: "unterminated escape" });
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if *pos + 4 > b.len() {
                            return Err(ParseError { at: *pos, msg: "short \\u escape" });
                        }
                        let hex = std::str::from_utf8(&b[*pos..*pos + 4])
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError { at: *pos, msg: "bad \\u escape" })?;
                        *pos += 4;
                        // Surrogates are not produced by our writer;
                        // map unpaired ones to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(ParseError { at: *pos, msg: "unknown escape" }),
                }
            }
            _ => {
                // Re-decode UTF-8: back up and take the full char.
                *pos -= 1;
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| ParseError { at: *pos, msg: "invalid utf-8" })?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(ParseError { at: start, msg: "invalid number" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::obj([
            ("name", "fig3_distribution".into()),
            ("median_ns", 1.25e9.into()),
            ("samples", 10u64.into()),
            ("ok", true.into()),
            ("tags", vec!["a", "b\"c"].into()),
            ("nothing", Json::Null),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).expect("parses"), doc);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-7.0).to_string(), "-7");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn escapes_control_characters() {
        let j = Json::Str("a\nb\t\"c\"\\\u{1}".to_string());
        let text = j.to_string();
        assert_eq!(text, "\"a\\nb\\t\\\"c\\\"\\\\\\u0001\"");
        assert_eq!(parse(&text).expect("parses"), j);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] } ").expect("parses");
        assert_eq!(v.get("a").and_then(|a| match a {
            Json::Arr(x) => x.first().and_then(Json::as_f64),
            _ => None,
        }), Some(1.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn object_output_is_deterministic() {
        let a = Json::obj([("z", 1u64.into()), ("a", 2u64.into())]);
        assert_eq!(a.to_string(), "{\"a\":2,\"z\":1}");
    }
}
