//! Scratch probe: how does CAESAR/RCS accuracy depend on L and the
//! flow-size threshold? Used to calibrate the figure tests.

use experiments::runner::{caesar_config, run_caesar, score_caesar, trace_for};
use experiments::Scale;
use caesar::Estimator;
use metrics::ScatterPoint;

fn are_over(points: &[ScatterPoint], min: u64) -> (usize, f64) {
    let sel: Vec<&ScatterPoint> = points.iter().filter(|p| p.actual >= min).collect();
    if sel.is_empty() {
        return (0, f64::NAN);
    }
    let are = sel
        .iter()
        .map(|p| (p.estimated - p.actual as f64).abs() / p.actual as f64)
        .sum::<f64>()
        / sel.len() as f64;
    (sel.len(), are)
}

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("default") => Scale::Default,
        _ => Scale::Tiny,
    };
    let shared = trace_for(scale);
    let (trace, truth) = (&shared.0, &shared.1);
    println!("Q={} n={}", truth.len(), trace.num_packets());
    let base = caesar_config(scale);
    for mult in [1usize, 4, 16] {
        let cfg = caesar::CaesarConfig {
            counters: base.counters * mult,
            ..base
        };
        let sketch = run_caesar(cfg, trace);
        let series = score_caesar(&sketch, truth, Estimator::Csm);
        print!("CAESAR L={} ({}x, {:.1} KB): ", cfg.counters, mult, cfg.sram_kb());
        for min in [1u64, 10, 100, 1000, 4000] {
            let (n, are) = are_over(series.points(), min);
            print!(" ARE[x>={min}]={are:.3}({n})");
        }
        println!();

        use baselines::{LossModel, Rcs, RcsConfig};
        for loss in [0.0f64, 2.0 / 3.0, 0.9] {
            let mut rcs = Rcs::new(RcsConfig {
                counters: cfg.counters,
                k: 3,
                loss: if loss == 0.0 {
                    LossModel::Lossless
                } else {
                    LossModel::Uniform(loss)
                },
                seed: 1,
            });
            for p in &trace.packets {
                rcs.record(p.flow);
            }
            let series = experiments::runner::score_rcs(&rcs, truth);
            print!("  RCS loss={loss:.2}: ");
            for min in [1u64, 10, 100, 1000, 4000] {
                let (n, are) = are_over(series.points(), min);
                print!(" ARE[x>={min}]={are:.3}({n})");
            }
            println!();
        }
    }
}
