//! Figure 3: heavy-tailed flow-size distribution of the trace.
//!
//! The paper plots the distribution of the 1,014,601 flow sizes and
//! observes a heavy tail; §4.2 additionally leans on ">92% of flows
//! below the mean" and §6.2 on ">95% below `y = 2·n/Q`". This module
//! regenerates the histogram/CCDF and checks both tail fractions.

use crate::plot::{Chart, Series};
use crate::report::{f, Csv, TextTable};
use crate::runner::trace_for;
use crate::scale::Scale;
use flowtrace::stats::{ccdf, histogram, tail_exponent, FlowStats, HistogramBin};

/// Figure 3 result.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Summary statistics of the flow sizes.
    pub stats: FlowStats,
    /// Flow-size histogram (unit bins to 64, geometric beyond).
    pub histogram: Vec<HistogramBin>,
    /// CCDF points.
    pub ccdf: Vec<(u64, f64)>,
    /// Fitted power-law tail exponent.
    pub tail_exponent: f64,
}

/// Regenerate Figure 3 at the given scale.
pub fn run(scale: Scale) -> Fig3Result {
    let shared = trace_for(scale);
    let truth = &shared.1;
    let sizes: Vec<u64> = truth.values().copied().collect();
    Fig3Result {
        stats: FlowStats::from_sizes(&sizes),
        histogram: histogram(&sizes, 64),
        ccdf: ccdf(&sizes),
        tail_exponent: tail_exponent(&sizes),
    }
}

impl Fig3Result {
    /// Text rendering of the distribution summary.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["quantity", "value", "paper"]);
        t.row(vec!["flows (Q)".to_string(), self.stats.num_flows.to_string(), "1,014,601 (full)".into()]);
        t.row(vec!["packets (n)".to_string(), self.stats.total_packets.to_string(), "27,720,011 (full)".into()]);
        t.row(vec!["mean flow size".to_string(), f(self.stats.mean), "27.32".into()]);
        t.row(vec!["median flow size".to_string(), self.stats.median.to_string(), "heavy tail: small".into()]);
        t.row(vec!["max flow size".to_string(), self.stats.max.to_string(), "-".into()]);
        t.row(vec![
            "frac below mean".to_string(),
            f(self.stats.frac_below_mean),
            "> 0.92 (§4.2)".into(),
        ]);
        t.row(vec![
            "frac below 2·mean (y)".to_string(),
            f(self.stats.frac_below_twice_mean),
            "> 0.95 (§6.2)".into(),
        ]);
        t.row(vec!["tail exponent (pmf)".to_string(), f(self.tail_exponent), "heavy-tailed".into()]);
        format!("Figure 3 — flow-size distribution\n{}", t.render())
    }

    /// CSV series: histogram and CCDF.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut hist = Csv::new(&["size", "size_end", "count"]);
        for b in &self.histogram {
            hist.row(&[b.size.to_string(), b.size_end.to_string(), b.count.to_string()]);
        }
        let mut cc = Csv::new(&["size", "ccdf"]);
        for &(s, p) in &self.ccdf {
            cc.row(&[s.to_string(), format!("{p:.6e}")]);
        }
        vec![
            ("fig3_histogram.csv".into(), hist.to_string()),
            ("fig3_ccdf.csv".into(), cc.to_string()),
        ]
    }

    /// SVG rendering of the distribution (log-log size/count scatter
    /// plus the CCDF curve).
    pub fn to_svg(&self) -> Vec<(String, String)> {
        let hist: Vec<(f64, f64)> = self
            .histogram
            .iter()
            .filter(|b| b.count > 0)
            .map(|b| (b.size as f64, b.count as f64))
            .collect();
        let chart = Chart::new(
            "Fig. 3 — flow size distribution",
            "flow size (packets)",
            "number of flows",
        )
        .log_log()
        .push(Series::scatter("flows per size", "#1f77b4", hist));
        let cc: Vec<(f64, f64)> = self
            .ccdf
            .iter()
            .filter(|&&(_, p)| p > 0.0)
            .map(|&(s, p)| (s as f64, p))
            .collect();
        let ccdf_chart = Chart::new(
            "Fig. 3 — CCDF",
            "flow size (packets)",
            "P(size >= x)",
        )
        .log_log()
        .push(Series::line("CCDF", "#d62728", cc));
        vec![
            ("fig3_distribution.svg".into(), chart.render_svg()),
            ("fig3_ccdf.svg".into(), ccdf_chart.render_svg()),
        ]
    }

    /// The paper's two tail-fraction claims, as pass/fail.
    pub fn matches_paper_shape(&self) -> bool {
        self.stats.frac_below_mean > 0.92 && self.stats.frac_below_twice_mean > 0.95
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_reproduces_tail_fractions() {
        let r = run(Scale::Tiny);
        assert!(r.matches_paper_shape(), "{}", r.render());
        assert!(r.stats.mean > 20.0 && r.stats.mean < 40.0);
    }

    #[test]
    fn histogram_covers_all_flows() {
        let r = run(Scale::Tiny);
        let total: u64 = r.histogram.iter().map(|b| b.count).sum();
        assert_eq!(total as usize, r.stats.num_flows);
    }

    #[test]
    fn render_and_csv_nonempty() {
        let r = run(Scale::Tiny);
        assert!(r.render().contains("Figure 3"));
        let csv = r.to_csv();
        assert_eq!(csv.len(), 2);
        assert!(csv[0].1.lines().count() > 10);
    }
}
