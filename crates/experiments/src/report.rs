//! Text-table and CSV rendering for experiment results.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<w$} ", c, w = width[i]);
            }
            out.push_str("|\n");
        };
        fmt_row(&mut out, &self.header);
        for (i, w) in width.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i == cols - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// A CSV document under construction.
#[derive(Debug, Clone, Default)]
pub struct Csv {
    lines: Vec<String>,
}

impl Csv {
    /// CSV with a header line.
    pub fn new(header: &[&str]) -> Self {
        Self {
            lines: vec![header.join(",")],
        }
    }

    /// Append a row of already-formatted cells.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.lines.push(cells.join(","));
        self
    }

}

impl std::fmt::Display for Csv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

/// Format a float with sensible experiment precision.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["scheme", "ARE"]);
        t.row(vec!["CAESAR-CSM", "25.2%"]);
        t.row(vec!["RCS", "67.7%"]);
        let s = t.render();
        assert!(s.contains("| CAESAR-CSM | 25.2% |"));
        assert!(s.contains("| scheme"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_row() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn csv_builds() {
        let mut c = Csv::new(&["x", "y"]);
        c.row(&["1".into(), "2".into()]);
        assert_eq!(c.to_string(), "x,y\n1,2\n");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.12345), "0.1235");
        assert_eq!(f(7.4912), "7.49");
        assert_eq!(f(123456.7), "123457");
        assert_eq!(pct(0.2523), "25.23%");
    }
}
