//! Shared machinery: trace caching and scheme drivers.

use crate::scale::{Scale, PAPER_MEAN_FLOW};
use baselines::{Case, Rcs};
use caesar::{Caesar, CaesarConfig, ConcurrentCaesar, Estimator};
use flowtrace::{FlowId, Trace};
use metrics::ScatterSeries;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use support::par::{par_map, partition_by};

/// A generated trace plus its ground truth, shared between figures.
pub type SharedTrace = Arc<(Trace, HashMap<FlowId, u64>)>;

static TRACE_CACHE: Mutex<Vec<(Scale, bool, SharedTrace)>> = Mutex::new(Vec::new());

fn cached_trace(scale: Scale, bursty: bool) -> SharedTrace {
    let mut cache = TRACE_CACHE.lock().expect("trace cache poisoned");
    if let Some((_, _, t)) = cache.iter().find(|(s, b, _)| *s == scale && *b == bursty) {
        return Arc::clone(t);
    }
    let mut cfg = scale.synth_config();
    if bursty {
        cfg.order = flowtrace::synth::ArrivalOrder::PerFlowBursts;
    }
    let gen = flowtrace::synth::TraceGenerator::new(cfg);
    let t = Arc::new(gen.generate());
    cache.push((scale, bursty, Arc::clone(&t)));
    t
}

/// The synthetic trace for `scale` with uniformly shuffled arrivals
/// (the paper's analysis assumption), generated once per process.
pub fn trace_for(scale: Scale) -> SharedTrace {
    cached_trace(scale, false)
}

/// The same flow population with per-flow burst arrivals — the
/// high-temporal-locality replay Fig. 8's timing sweep uses (real
/// captures replayed in order keep flows bursty; a global shuffle
/// destroys the locality every cache depends on).
pub fn bursty_trace_for(scale: Scale) -> SharedTrace {
    cached_trace(scale, true)
}

/// The CAESAR configuration every accuracy figure uses at `scale`
/// (the Fig. 4 operating point: 91.55 KB-equivalent SRAM, k = 3,
/// y = ⌊2·n/Q⌋).
pub fn caesar_config(scale: Scale) -> CaesarConfig {
    CaesarConfig {
        cache_entries: scale.cache_entries(),
        entry_capacity: (2.0 * PAPER_MEAN_FLOW).floor() as u64,
        counters: scale.caesar_counters(),
        k: 3,
        ..CaesarConfig::default()
    }
}

/// Run CAESAR over the trace and return the finished sketch.
pub fn run_caesar(cfg: CaesarConfig, trace: &Trace) -> Caesar {
    let mut c = Caesar::new(cfg);
    for p in &trace.packets {
        c.record(p.flow);
    }
    c.finish();
    c
}

/// Route the trace's packet stream into RSS-style per-shard flow
/// batches with one O(n) pass — the same flow→shard map
/// [`ConcurrentCaesar`] uses, exposed so custom replays (throughput
/// studies, figure sweeps) can reuse the ingest partition without
/// rebuilding a sketch.
pub fn shard_flows(trace: &Trace, shards: usize, seed: u64) -> Vec<Vec<u64>> {
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    partition_by(&flows, shards, |&f| {
        ConcurrentCaesar::shard_of(f, shards, seed)
    })
}

/// Run the sharded construction phase over the trace and return the
/// finished sketch (the multi-core analogue of [`run_caesar`]).
pub fn run_caesar_sharded(cfg: CaesarConfig, shards: usize, trace: &Trace) -> ConcurrentCaesar {
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    ConcurrentCaesar::build(cfg, shards, &flows)
}

/// Score a finished CAESAR sketch against ground truth with the given
/// estimator, in parallel over flows.
pub fn score_caesar(
    sketch: &Caesar,
    truth: &HashMap<FlowId, u64>,
    estimator: Estimator,
) -> ScatterSeries {
    let mut pairs: Vec<(FlowId, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
    pairs.sort_unstable(); // deterministic order for reproducible output
    let points: Vec<(u64, f64)> =
        par_map(&pairs, |&(f, x)| (x, sketch.estimate(f, estimator).clamped()));
    let mut series = ScatterSeries::new();
    for (x, e) in points {
        series.push(x, e);
    }
    series
}

/// Score a finished RCS sketch (CSM estimator) against ground truth.
pub fn score_rcs(sketch: &Rcs, truth: &HashMap<FlowId, u64>) -> ScatterSeries {
    let mut pairs: Vec<(FlowId, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
    pairs.sort_unstable();
    let points: Vec<(u64, f64)> = par_map(&pairs, |&(f, x)| (x, sketch.query(f)));
    let mut series = ScatterSeries::new();
    for (x, e) in points {
        series.push(x, e);
    }
    series
}

/// Score a finished CASE sketch against ground truth.
pub fn score_case(sketch: &Case, truth: &HashMap<FlowId, u64>) -> ScatterSeries {
    let mut pairs: Vec<(FlowId, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
    pairs.sort_unstable();
    let mut series = ScatterSeries::new();
    for (f, x) in pairs {
        series.push(x, sketch.query(f));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_cache_returns_same_arc() {
        let a = trace_for(Scale::Tiny);
        let b = trace_for(Scale::Tiny);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn shard_flows_partitions_the_whole_trace_consistently() {
        let shared = trace_for(Scale::Tiny);
        let trace = &shared.0;
        let seed = 0xCAE5A12D;
        let batches = shard_flows(trace, 4, seed);
        assert_eq!(batches.len(), 4);
        assert_eq!(
            batches.iter().map(Vec::len).sum::<usize>(),
            trace.num_packets()
        );
        for (shard, batch) in batches.iter().enumerate() {
            assert!(batch
                .iter()
                .all(|&f| ConcurrentCaesar::shard_of(f, 4, seed) == shard));
        }
    }

    #[test]
    fn sharded_run_conserves_packets_at_tiny_scale() {
        let shared = trace_for(Scale::Tiny);
        let trace = &shared.0;
        let sketch = run_caesar_sharded(caesar_config(Scale::Tiny), 4, trace);
        assert_eq!(sketch.sram().total_added() as usize, trace.num_packets());
    }

    #[test]
    fn caesar_runs_end_to_end_at_tiny_scale() {
        let shared = trace_for(Scale::Tiny);
        let (trace, truth) = (&shared.0, &shared.1);
        let sketch = run_caesar(caesar_config(Scale::Tiny), trace);
        let series = score_caesar(&sketch, truth, Estimator::Csm);
        assert_eq!(series.len(), truth.len());
        // Packet conservation end-to-end.
        assert_eq!(sketch.sram().total_added() as usize, trace.num_packets());
        // Estimates must be finite and non-negative (clamped).
        for p in series.points() {
            assert!(p.estimated.is_finite() && p.estimated >= 0.0);
        }
    }
}
