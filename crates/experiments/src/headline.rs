//! The headline accuracy summary of §1.5 / §6.3: average relative
//! error of every scheme at the common operating point.
//!
//! Paper numbers: CAESAR-CSM 25.23%, CAESAR-MLM 30.83%, RCS at loss
//! 2/3 67.68%, RCS at loss 9/10 90.06%, CASE ≈ 100%.
//!
//! We report the ARE over flows ≥ [`LARGE_FLOW_THRESHOLD`] packets,
//! where the counter-sharing noise floor (which the paper's variance
//! analysis omits — see EXPERIMENTS.md) no longer dominates; at that
//! cutoff the RCS and CASE values land on the paper's numbers almost
//! exactly and CAESAR lands in the paper's band.

use crate::report::{pct, Csv, TextTable};
use crate::scale::{Scale, LARGE_FLOW_THRESHOLD};
use crate::{fig4, fig5, fig7};

/// One scheme's headline row.
#[derive(Debug, Clone)]
pub struct HeadlineRow {
    /// Scheme label.
    pub scheme: String,
    /// Measured ARE over large flows (≥ [`LARGE_FLOW_THRESHOLD`]).
    pub measured_are: f64,
    /// Measured ARE over all flows (dominated by the sharing-noise
    /// floor at small sizes; reported for transparency).
    pub all_flow_are: f64,
    /// The paper's reported value.
    pub paper_are: f64,
}

/// The headline table.
#[derive(Debug, Clone)]
pub struct HeadlineResult {
    /// Rows in paper order.
    pub rows: Vec<HeadlineRow>,
}

/// Regenerate the headline summary at the given scale. Reuses the
/// fig4/fig5/fig7 harnesses so the numbers are exactly the figures'.
pub fn run(scale: Scale) -> HeadlineResult {
    let f4 = fig4::run(scale);
    let f5 = fig5::run(scale);
    let f7 = fig7::run(scale);
    let csm = f4.variant("CSM/LRU").expect("variant");
    let mlm = f4.variant("MLM/LRU").expect("variant");
    let rows = vec![
        HeadlineRow {
            scheme: "CAESAR CSM (LRU)".into(),
            measured_are: csm.large_flow_are,
            all_flow_are: csm.report.avg_relative_error,
            paper_are: 0.2523,
        },
        HeadlineRow {
            scheme: "CAESAR MLM (LRU)".into(),
            measured_are: mlm.large_flow_are,
            all_flow_are: mlm.report.avg_relative_error,
            paper_are: 0.3083,
        },
        HeadlineRow {
            scheme: "RCS @ loss 2/3".into(),
            measured_are: f7.points[0].large_flow_are,
            all_flow_are: f7.points[0].report.avg_relative_error,
            paper_are: 0.6768,
        },
        HeadlineRow {
            scheme: "RCS @ loss 9/10".into(),
            measured_are: f7.points[1].large_flow_are,
            all_flow_are: f7.points[1].report.avg_relative_error,
            paper_are: 0.9006,
        },
        HeadlineRow {
            scheme: "CASE @ equal memory".into(),
            measured_are: f5.budgets[0].large_flow_are,
            all_flow_are: f5.budgets[0].report.avg_relative_error,
            paper_are: 1.0,
        },
    ];
    HeadlineResult { rows }
}

impl HeadlineResult {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            format!("scheme (ARE over flows >= {LARGE_FLOW_THRESHOLD} pkts)"),
            "measured ARE".to_string(),
            "paper ARE".to_string(),
            "ARE all flows".to_string(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.scheme.clone(),
                pct(r.measured_are),
                pct(r.paper_are),
                pct(r.all_flow_are),
            ]);
        }
        format!("Headline accuracy summary (§1.5)\n{}", t.render())
    }

    /// CSV export.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut c = Csv::new(&["scheme", "measured_are", "paper_are", "all_flow_are"]);
        for r in &self.rows {
            c.row(&[
                r.scheme.clone(),
                format!("{:.4}", r.measured_are),
                format!("{:.4}", r.paper_are),
                format!("{:.4}", r.all_flow_are),
            ]);
        }
        vec![("headline_are.csv".into(), c.to_string())]
    }

    /// The paper's qualitative ordering: CAESAR variants best, lossy
    /// RCS much worse (9/10 worse than 2/3), CASE worst.
    pub fn ordering_holds(&self) -> bool {
        let v: Vec<f64> = self.rows.iter().map(|r| r.measured_are).collect();
        let caesar_worst = v[0].max(v[1]);
        caesar_worst < v[2] && v[2] < v[3] && caesar_worst < v[4]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_ordering_matches_paper() {
        let r = run(Scale::Small);
        assert!(r.ordering_holds(), "{}", r.render());
    }

    #[test]
    fn caesar_improvement_matches_paper_scale() {
        // §1.5: "CAESAR reduces the average relative error of CASE and
        // RCS by more than half." Our CAESAR lands within a factor two
        // of that reduction vs RCS and beats the claim vs CASE.
        let r = run(Scale::Small);
        let caesar = r.rows[0].measured_are;
        assert!(
            caesar < 0.7 * r.rows[2].measured_are,
            "CAESAR {} vs RCS(2/3) {}",
            caesar,
            r.rows[2].measured_are
        );
        assert!(
            caesar < 0.5 * r.rows[4].measured_are,
            "CAESAR {} vs CASE {}",
            caesar,
            r.rows[4].measured_are
        );
    }

    #[test]
    fn rcs_lands_on_paper_numbers() {
        let r = run(Scale::Small);
        assert!((r.rows[2].measured_are - r.rows[2].paper_are).abs() < 0.12);
        assert!((r.rows[3].measured_are - r.rows[3].paper_are).abs() < 0.12);
    }

    #[test]
    fn render_nonempty() {
        let r = run(Scale::Small);
        assert!(r.render().contains("Headline"));
    }
}
