//! Accuracy-side ablations of CAESAR's design choices.
//!
//! The Criterion benches (`cargo bench --bench ablations`) measure the
//! timing side of each trade-off; this module produces the accuracy
//! side as tables, so `caesar-experiments ablate` documents the whole
//! design space the paper fixes by fiat (`k = 3`, `y = 2n/Q`, LRU):
//!
//! * `k` — counters per flow: more `k` spreads elephants but collects
//!   more sharing noise into the sum;
//! * `y` — entry capacity: too small floods the SRAM with evictions,
//!   too large wastes on-chip bits (the estimators don't care);
//! * replacement policy — LRU vs random vs FIFO;
//! * `M` — cache entries: hit rate and off-chip write rate;
//! * `L` — SRAM counters: the accuracy/memory curve.

use crate::report::{f, pct, Csv, TextTable};
use crate::runner::{caesar_config, run_caesar, score_caesar, trace_for};
use crate::scale::{Scale, LARGE_FLOW_THRESHOLD};
use caesar::{CaesarConfig, Estimator};
use cachesim::CachePolicy;
use metrics::are_over_threshold;

/// One ablation point.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The varied parameter's value, rendered.
    pub value: String,
    /// Large-flow ARE at this point.
    pub large_flow_are: f64,
    /// Cache hit rate.
    pub hit_rate: f64,
    /// Off-chip SRAM writes per packet.
    pub writes_per_packet: f64,
    /// SRAM memory at this point (KB).
    pub sram_kb: f64,
}

/// One ablation table.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Which parameter was swept.
    pub parameter: String,
    /// The sweep.
    pub rows: Vec<AblationRow>,
}

/// The full ablation study.
#[derive(Debug, Clone)]
pub struct AblateResult {
    /// One table per parameter.
    pub ablations: Vec<Ablation>,
}

fn run_point(cfg: CaesarConfig, scale: Scale, value: String) -> AblationRow {
    let shared = trace_for(scale);
    let (trace, truth) = (&shared.0, &shared.1);
    let sketch = run_caesar(cfg, trace);
    let series = score_caesar(&sketch, truth, Estimator::Csm);
    let st = sketch.stats();
    AblationRow {
        value,
        large_flow_are: are_over_threshold(series.points(), LARGE_FLOW_THRESHOLD)
            .map(|(_, a)| a)
            .unwrap_or(f64::NAN),
        hit_rate: st.cache.hit_rate(),
        writes_per_packet: st.sram_writes as f64 / trace.num_packets() as f64,
        sram_kb: cfg.sram_kb(),
    }
}

/// Run every ablation at the given scale.
pub fn run(scale: Scale) -> AblateResult {
    let base = caesar_config(scale);
    let mut ablations = Vec::new();

    ablations.push(Ablation {
        parameter: "k (counters per flow)".into(),
        rows: [1usize, 2, 3, 5, 8]
            .iter()
            .map(|&k| run_point(CaesarConfig { k, ..base }, scale, k.to_string()))
            .collect(),
    });

    ablations.push(Ablation {
        parameter: "y (entry capacity)".into(),
        rows: [4u64, 16, 54, 128, 512]
            .iter()
            .map(|&y| {
                run_point(CaesarConfig { entry_capacity: y, ..base }, scale, y.to_string())
            })
            .collect(),
    });

    ablations.push(Ablation {
        parameter: "replacement policy".into(),
        rows: [
            ("LRU", CachePolicy::Lru),
            ("random", CachePolicy::Random),
            ("FIFO", CachePolicy::Fifo),
        ]
        .iter()
        .map(|&(name, policy)| {
            run_point(CaesarConfig { policy, ..base }, scale, name.to_string())
        })
        .collect(),
    });

    ablations.push(Ablation {
        parameter: "M (cache entries)".into(),
        rows: [base.cache_entries / 8, base.cache_entries / 2, base.cache_entries, base.cache_entries * 4]
            .iter()
            .map(|&m| {
                let m = m.max(1);
                run_point(CaesarConfig { cache_entries: m, ..base }, scale, m.to_string())
            })
            .collect(),
    });

    ablations.push(Ablation {
        parameter: "L (SRAM counters)".into(),
        rows: [base.counters / 4, base.counters, base.counters * 4, base.counters * 16]
            .iter()
            .map(|&l| {
                let l = l.max(base.k);
                run_point(CaesarConfig { counters: l, ..base }, scale, l.to_string())
            })
            .collect(),
    });

    AblateResult { ablations }
}

impl AblateResult {
    /// Text rendering of every table.
    pub fn render(&self) -> String {
        let mut out = String::from("Ablations — CAESAR design choices (accuracy side)\n");
        for a in &self.ablations {
            let mut t = TextTable::new(vec![
                a.parameter.clone(),
                format!("ARE (x>={LARGE_FLOW_THRESHOLD})"),
                "hit rate".to_string(),
                "SRAM writes/pkt".to_string(),
                "SRAM KB".to_string(),
            ]);
            for r in &a.rows {
                t.row(vec![
                    r.value.clone(),
                    pct(r.large_flow_are),
                    pct(r.hit_rate),
                    f(r.writes_per_packet),
                    f(r.sram_kb),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// CSV export, one file per ablation.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for a in &self.ablations {
            let tag: String = a
                .parameter
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase();
            let mut c = Csv::new(&["value", "large_flow_are", "hit_rate", "writes_per_packet", "sram_kb"]);
            for r in &a.rows {
                c.row(&[
                    r.value.clone(),
                    format!("{:.4}", r.large_flow_are),
                    format!("{:.4}", r.hit_rate),
                    format!("{:.4}", r.writes_per_packet),
                    format!("{:.2}", r.sram_kb),
                ]);
            }
            out.push((format!("ablate_{tag}.csv"), c.to_string()));
        }
        out
    }

    /// Find an ablation by parameter prefix.
    pub fn ablation(&self, prefix: &str) -> Option<&Ablation> {
        self.ablations.iter().find(|a| a.parameter.starts_with(prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_budget_improves_accuracy() {
        let r = run(Scale::Tiny);
        let l = r.ablation("L").expect("L ablation");
        let first = l.rows.first().expect("rows").large_flow_are;
        let last = l.rows.last().expect("rows").large_flow_are;
        assert!(last < first, "more SRAM must reduce error: {first} -> {last}");
    }

    #[test]
    fn tiny_entry_capacity_floods_sram() {
        let r = run(Scale::Tiny);
        let y = r.ablation("y").expect("y ablation");
        let y4 = &y.rows[0];
        let y54 = &y.rows[2];
        // The exact multiple depends on the trace's hit rate (misses
        // write regardless of y); 1.5× holds across seed streams while
        // still witnessing the overflow flood.
        assert!(
            y4.writes_per_packet > 1.5 * y54.writes_per_packet,
            "y=4 writes {} vs y=54 writes {}",
            y4.writes_per_packet,
            y54.writes_per_packet
        );
    }

    #[test]
    fn bigger_cache_raises_hit_rate() {
        let r = run(Scale::Tiny);
        let m = r.ablation("M").expect("M ablation");
        let small = m.rows.first().expect("rows").hit_rate;
        let large = m.rows.last().expect("rows").hit_rate;
        assert!(large > small, "hit rate {small} -> {large}");
    }

    #[test]
    fn render_has_all_tables() {
        let r = run(Scale::Tiny);
        assert_eq!(r.ablations.len(), 5);
        let s = r.render();
        for p in ["k (", "y (", "replacement", "M (", "L ("] {
            assert!(s.contains(p), "missing {p}");
        }
        assert_eq!(r.to_csv().len(), 5);
    }
}
