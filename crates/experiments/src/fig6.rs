//! Figure 6: RCS under the lossless assumption.
//!
//! Paper observations to reproduce (§6.3.3): with the same SRAM as
//! Fig. 4 and no packet loss, RCS's accuracy is "quite similar" to
//! CAESAR's — which doubles as a check that CAESAR's cache stage adds
//! no accuracy cost (CAESAR ≈ RCS with y = 1). The paper skips RCS's
//! MLM because its search is extremely slow; we additionally time both
//! estimators to quantify that claim.

use crate::plot::{Chart, Series};
use crate::report::{f, pct, Csv, TextTable};
use crate::runner::{caesar_config, run_caesar, score_caesar, score_rcs, trace_for};
use crate::scale::Scale;
use baselines::{LossModel, Rcs, RcsConfig};
use caesar::Estimator;
use metrics::{are_by_size, AccuracyReport, ScatterSeries};
use std::time::Instant;

/// Figure 6 result.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// RCS (CSM) series and report.
    pub rcs_series: ScatterSeries,
    /// RCS aggregate accuracy.
    pub rcs_report: AccuracyReport,
    /// RCS ARE curve by size.
    pub rcs_are: Vec<(u64, f64)>,
    /// CAESAR (CSM/LRU) reference report for the similarity claim.
    pub caesar_report: AccuracyReport,
    /// Seconds to CSM-estimate all flows.
    pub csm_seconds: f64,
    /// Seconds to MLE-estimate a 1/100 sample of flows, scaled up —
    /// the "extremely slow" binary search of §6.3.3.
    pub mle_seconds_scaled: f64,
}

/// Regenerate Figure 6 at the given scale.
pub fn run(scale: Scale) -> Fig6Result {
    let shared = trace_for(scale);
    let (trace, truth) = (&shared.0, &shared.1);

    let mut rcs = Rcs::new(RcsConfig {
        counters: scale.caesar_counters(),
        k: 3,
        loss: LossModel::Lossless,
        seed: 0xF166,
    });
    for p in &trace.packets {
        rcs.record(p.flow);
    }

    let t0 = Instant::now();
    let rcs_series = score_rcs(&rcs, truth);
    let csm_seconds = t0.elapsed().as_secs_f64();

    // MLE on a deterministic 1% sample, extrapolated.
    let t1 = Instant::now();
    let mut sampled = 0u64;
    for (i, (&flow, _)) in truth.iter().enumerate() {
        if i % 100 == 0 {
            let _ = rcs.estimate_mle(flow);
            sampled += 1;
        }
    }
    let mle_seconds_scaled = t1.elapsed().as_secs_f64() * (truth.len() as f64 / sampled.max(1) as f64);

    let rcs_report = rcs_series.report();
    let rcs_are = are_by_size(rcs_series.points(), 20);

    let caesar = run_caesar(caesar_config(scale), trace);
    let caesar_report = score_caesar(&caesar, truth, Estimator::Csm).report();

    Fig6Result {
        rcs_series,
        rcs_report,
        rcs_are,
        caesar_report,
        csm_seconds,
        mle_seconds_scaled,
    }
}

impl Fig6Result {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["quantity", "RCS (lossless)", "CAESAR (CSM/LRU)"]);
        t.row(vec![
            "ARE".to_string(),
            pct(self.rcs_report.avg_relative_error),
            pct(self.caesar_report.avg_relative_error),
        ]);
        t.row(vec![
            "median RE".to_string(),
            pct(self.rcs_report.median_relative_error),
            pct(self.caesar_report.median_relative_error),
        ]);
        t.row(vec![
            "bias".to_string(),
            f(self.rcs_report.mean_signed_error),
            f(self.caesar_report.mean_signed_error),
        ]);
        format!(
            "Figure 6 — RCS under lossless assumption (paper: ≈ CAESAR)\n{}\
             estimation time: CSM {:.3}s, MLE ≈ {:.1}s (×{:.0} slower — why Fig. 6 omits it)\n",
            t.render(),
            self.csm_seconds,
            self.mle_seconds_scaled,
            self.mle_seconds_scaled / self.csm_seconds.max(1e-9)
        )
    }

    /// CSV series.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut sc = Csv::new(&["actual", "estimated"]);
        for p in self.rcs_series.sample(5000) {
            sc.row(&[p.actual.to_string(), f(p.estimated)]);
        }
        let mut are = Csv::new(&["size", "avg_relative_error"]);
        for &(s, e) in &self.rcs_are {
            are.row(&[s.to_string(), format!("{e:.6}")]);
        }
        vec![
            ("fig6_scatter_rcs_lossless.csv".into(), sc.to_string()),
            ("fig6_are_rcs_lossless.csv".into(), are.to_string()),
        ]
    }

    /// The paper's similarity claim: lossless RCS within a band of
    /// CAESAR's accuracy.
    pub fn similar_to_caesar(&self) -> bool {
        let a = self.rcs_report.avg_relative_error;
        let b = self.caesar_report.avg_relative_error;
        (a - b).abs() < 0.15 || a / b.max(1e-9) < 1.6
    }
}

impl Fig6Result {
    /// SVG rendering: the lossless-RCS scatter and its ARE curve.
    pub fn to_svg(&self) -> Vec<(String, String)> {
        let pts: Vec<(f64, f64)> = self
            .rcs_series
            .sample(3000)
            .into_iter()
            .map(|p| (p.actual as f64, p.estimated.max(0.1)))
            .collect();
        let chart = Chart::new(
            "Fig. 6 — RCS (lossless) estimated vs actual",
            "actual flow size",
            "estimated flow size",
        )
        .log_log()
        .with_diagonal()
        .push(Series::scatter("RCS lossless", "#2ca02c", pts));
        let are = Chart::new(
            "Fig. 6(d) — RCS (lossless) avg relative error",
            "actual flow size (packets)",
            "average relative error",
        )
        .log_log()
        .push(Series::line(
            "RCS lossless",
            "#2ca02c",
            self.rcs_are.iter().map(|&(s, e)| (s as f64, e.max(1e-4))).collect(),
        ));
        vec![
            ("fig6_scatter.svg".into(), chart.render_svg()),
            ("fig6_are.svg".into(), are.render_svg()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_rcs_matches_caesar_accuracy() {
        let r = run(Scale::Tiny);
        assert!(
            r.similar_to_caesar(),
            "RCS ARE {} vs CAESAR ARE {}",
            r.rcs_report.avg_relative_error,
            r.caesar_report.avg_relative_error
        );
    }

    #[test]
    fn mle_is_much_slower_than_csm() {
        let r = run(Scale::Tiny);
        assert!(
            r.mle_seconds_scaled > r.csm_seconds,
            "MLE {}s should exceed CSM {}s",
            r.mle_seconds_scaled,
            r.csm_seconds
        );
    }

    #[test]
    fn render_nonempty() {
        let r = run(Scale::Tiny);
        assert!(r.render().contains("Figure 6"));
        assert_eq!(r.to_csv().len(), 2);
    }
}
