//! Empirical validation of the paper's §4 analysis.
//!
//! Not a paper figure, but the reproduction's due diligence: each
//! analytic claim the estimators rest on is measured against the
//! simulator and reported as theory vs measured. Three findings are
//! encoded here (full discussion in DESIGN.md / EXPERIMENTS.md):
//!
//! * **Eqs. 6–10 are regime-dependent.** "Eviction values are uniform
//!   on `1..y`, so a flow is evicted `2x/y` times" holds only when an
//!   entry survives long enough to accumulate — the high-locality
//!   (bursty) regime. Under uniform-shuffled arrivals the cache evicts
//!   mice almost immediately, eviction values collapse toward 1, and
//!   the eviction count is several times `2n/y`. Estimator
//!   *unbiasedness is unaffected* (conservation guarantees the evicted
//!   values of a flow sum to `x` regardless); only the variance model
//!   degrades. Both regimes are reported; the bursty one is asserted.
//! * **Erratum E3:** the paper's Eq. 14 own-share variance is `k×` too
//!   large; the corrected `x(k−1)²/(yk²)` matches simulation within a
//!   few percent.
//! * **Erratum E2:** the 95% CI coverage collapses on small flows
//!   (model variance omits sharing-selection noise) and recovers on
//!   large ones.

use crate::report::{f, pct, Csv, TextTable};
use crate::runner::{bursty_trace_for, caesar_config, run_caesar, trace_for};
use crate::scale::{Scale, LARGE_FLOW_THRESHOLD};
use caesar::theory;
use caesar::update::spread_eviction;
use caesar::{CounterArray, Estimator};
use cachesim::{CacheConfig, CacheTable};
use support::rand::{rngs::StdRng, Rng, SeedableRng};

/// One theory-vs-measured row.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being checked (with the paper equation).
    pub name: String,
    /// The analytic value.
    pub theory: f64,
    /// The measured value.
    pub measured: f64,
    /// Acceptable relative deviation for [`Check::passes`].
    pub tolerance: f64,
    /// Informational rows document a known deviation instead of
    /// gating; they always pass.
    pub informational: bool,
}

impl Check {
    /// Whether the measurement is within tolerance of the theory.
    pub fn passes(&self) -> bool {
        if self.informational {
            return true;
        }
        if self.theory == 0.0 {
            return self.measured.abs() <= self.tolerance;
        }
        ((self.measured - self.theory) / self.theory).abs() <= self.tolerance
    }
}

/// The full validation result.
#[derive(Debug, Clone)]
pub struct TheoryResult {
    /// All checks.
    pub checks: Vec<Check>,
    /// Model-variance 95%-CI coverage over all flows.
    pub ci_coverage_all: f64,
    /// Model-variance 95%-CI coverage over flows ≥ the large cutoff.
    pub ci_coverage_large: f64,
    /// Empirically calibrated 95%-CI coverage over all flows
    /// (`Caesar::query_with_empirical_ci`).
    pub ci_coverage_empirical: f64,
}

/// Eviction statistics of one trace replayed through the cache.
struct EvictionProfile {
    total: u64,
    value_sum: u64,
    full_capacity: u64,
}

fn profile_evictions(trace: &flowtrace::Trace, entries: usize, y: u64) -> EvictionProfile {
    let mut cache = CacheTable::new(CacheConfig::lru(entries, y));
    let mut p = EvictionProfile { total: 0, value_sum: 0, full_capacity: 0 };
    let tally = |value: u64, p: &mut EvictionProfile| {
        p.total += 1;
        p.value_sum += value;
        if value == y {
            p.full_capacity += 1;
        }
    };
    for pk in &trace.packets {
        if let Some(ev) = cache.record(pk.flow) {
            tally(ev.value, &mut p);
        }
    }
    for ev in cache.drain() {
        tally(ev.value, &mut p);
    }
    p
}

/// Run the validation at the given scale.
pub fn run(scale: Scale) -> TheoryResult {
    let mut checks = Vec::new();

    // --- Eviction model (Eqs. 6-10), both arrival regimes --------------
    for (regime, shared, informational) in [
        ("bursty", bursty_trace_for(scale), false),
        ("shuffled", trace_for(scale), true),
    ] {
        let trace = &shared.0;
        let y = (2.0 * trace.mean_flow_size()).floor() as u64;
        let p = profile_evictions(trace, scale.cache_entries(), y);
        checks.push(Check {
            name: format!("[{regime}] mean eviction value = y/2 (Eqs. 6-7)"),
            theory: y as f64 / 2.0,
            measured: p.value_sum as f64 / p.total as f64,
            tolerance: 0.45,
            informational,
        });
        checks.push(Check {
            name: format!("[{regime}] total evictions = 2n/y (Eq. 10)"),
            theory: 2.0 * trace.num_packets() as f64 / y as f64,
            measured: p.total as f64,
            tolerance: 0.6,
            informational,
        });
        checks.push(Check {
            name: format!("[{regime}] full-capacity eviction fraction (§6.2, small)"),
            theory: 0.0,
            measured: p.full_capacity as f64 / p.total as f64,
            tolerance: 0.5,
            informational,
        });
    }

    // --- Own-share mean/variance per counter (Eqs. 12 & 14) -----------
    let x = 540u64;
    let y = 55u64;
    let k = 3usize;
    let trials = 4_000;
    let mut rng = StdRng::seed_from_u64(0x7E07);
    let mut first_counter = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut sram = CounterArray::new(k, 32);
        // Evictions of an isolated flow: i.i.d. uniform values on
        // 1..=y until the mass is spent (the E_i sequence of §4.2).
        let mut remaining = x;
        while remaining > 0 {
            let e = rng.gen_range(1..=y).min(remaining);
            spread_eviction(&mut sram, &[0, 1, 2], e, &mut rng);
            remaining -= e;
        }
        first_counter.push(sram.get(0) as f64);
    }
    let mean = first_counter.iter().sum::<f64>() / trials as f64;
    let var = first_counter.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / trials as f64;
    checks.push(Check {
        name: "own share per counter E(Y) = x/k (Eq. 12)".into(),
        theory: theory::expected_own_share(x, k),
        measured: mean,
        tolerance: 0.05,
        informational: false,
    });
    checks.push(Check {
        name: "own share variance, corrected x(k−1)²/(yk²) (erratum E3)".into(),
        theory: theory::own_share_variance_corrected(x, y, k),
        measured: var,
        tolerance: 0.15,
        informational: false,
    });
    checks.push(Check {
        name: "own share variance as printed, x(k−1)²/(yk) (Eq. 14: k× too large)".into(),
        theory: theory::own_share_variance(x, y, k),
        measured: var,
        tolerance: 0.0,
        informational: true,
    });

    // --- Remainder Bernoulli (Eq. 4) -----------------------------------
    let mut hits = 0u64;
    let reps = 60_000;
    for _ in 0..reps {
        let mut sram = CounterArray::new(k, 32);
        spread_eviction(&mut sram, &[0, 1, 2], 1, &mut rng);
        hits += sram.get(0);
    }
    checks.push(Check {
        name: "remainder unit hits counter w.p. 1/k (Eq. 4)".into(),
        theory: theory::remainder_hit_probability(k),
        measured: hits as f64 / reps as f64,
        tolerance: 0.05,
        informational: false,
    });

    // --- Noise per counter (corrected Eq. 15) ---------------------------
    let shared = trace_for(scale);
    let (trace, truth) = (&shared.0, &shared.1);
    let sketch = run_caesar(caesar_config(scale), trace);
    let n = sketch.sram().total_added();
    let l = sketch.config().counters;
    checks.push(Check {
        name: "mean counter value = n/L (corrected Eq. 15, erratum E1)".into(),
        theory: theory::expected_noise_per_counter(n, l),
        measured: sketch.sram().sum() as f64 / l as f64,
        tolerance: 0.01,
        informational: false,
    });

    // --- CI coverage (erratum E2) ---------------------------------------
    // Coverage is a Monte Carlo estimate over the sketch's sharing
    // randomness, and the large-flow population is small (tens of
    // flows at Small scale), so a single sketch seed is under-powered:
    // averaging over several independent sharing layouts gives the
    // per-flow coverage probabilities enough samples to be stable.
    const COVERAGE_SKETCH_SEEDS: u64 = 5;
    let mut pairs: Vec<(u64, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
    pairs.sort_unstable();
    let mut cover_all = (0usize, 0usize);
    let mut cover_large = (0usize, 0usize);
    let mut cover_emp = (0usize, 0usize);
    let k = sketch.config().k as f64;
    for seed_off in 0..COVERAGE_SKETCH_SEEDS {
        let reseeded;
        let sketch = if seed_off == 0 {
            &sketch
        } else {
            let mut cfg = caesar_config(scale);
            cfg.seed = cfg.seed.wrapping_add(seed_off);
            reseeded = run_caesar(cfg, trace);
            &reseeded
        };
        let emp_var = sketch.empirical_counter_variance();
        let half_emp = caesar::gaussian::z_alpha(0.95) * (k * emp_var).sqrt();
        for &(flow, actual) in &pairs {
            let est = sketch.estimate(flow, Estimator::Csm);
            let (lo, hi) = est.confidence_interval(0.95);
            let inside = (lo..=hi).contains(&(actual as f64));
            cover_all.1 += 1;
            cover_all.0 += inside as usize;
            if actual >= LARGE_FLOW_THRESHOLD {
                cover_large.1 += 1;
                cover_large.0 += inside as usize;
            }
            let inside_emp =
                (est.value - half_emp..=est.value + half_emp).contains(&(actual as f64));
            cover_emp.1 += 1;
            cover_emp.0 += inside_emp as usize;
        }
    }

    TheoryResult {
        checks,
        ci_coverage_all: cover_all.0 as f64 / cover_all.1.max(1) as f64,
        ci_coverage_large: cover_large.0 as f64 / cover_large.1.max(1) as f64,
        ci_coverage_empirical: cover_emp.0 as f64 / cover_emp.1.max(1) as f64,
    }
}

impl TheoryResult {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["check", "theory", "measured", "status"]);
        for c in &self.checks {
            let status = if c.informational {
                "info"
            } else if c.passes() {
                "ok"
            } else {
                "FAIL"
            };
            t.row(vec![c.name.clone(), f(c.theory), f(c.measured), status.to_string()]);
        }
        format!(
            "Theory validation (§4)\n{}\
             95% model-CI coverage: {} over all flows, {} over flows >= {}\n\
             (collapses because the paper's model variance omits the\n\
             sharing-selection term — erratum E2)\n\
             95% empirically-calibrated CI coverage: {} — the repaired\n\
             interval from Caesar::query_with_empirical_ci\n",
            t.render(),
            pct(self.ci_coverage_all),
            pct(self.ci_coverage_large),
            LARGE_FLOW_THRESHOLD,
            pct(self.ci_coverage_empirical),
        )
    }

    /// CSV export.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut c = Csv::new(&["check", "theory", "measured", "status"]);
        for ch in &self.checks {
            c.row(&[
                ch.name.clone(),
                format!("{:.6}", ch.theory),
                format!("{:.6}", ch.measured),
                if ch.informational { "info".into() } else { ch.passes().to_string() },
            ]);
        }
        vec![("theory_checks.csv".into(), c.to_string())]
    }

    /// True when every gating check passes.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(Check::passes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section4_claims_hold_at_small_scale() {
        let r = run(Scale::Small);
        assert!(r.all_pass(), "{}", r.render());
    }

    #[test]
    fn ci_coverage_recovers_on_large_flows() {
        let r = run(Scale::Small);
        assert!(
            r.ci_coverage_large > r.ci_coverage_all,
            "large {} vs all {}",
            r.ci_coverage_large,
            r.ci_coverage_all
        );
    }

    #[test]
    fn empirical_ci_repairs_the_coverage() {
        let r = run(Scale::Small);
        // The model CI covers almost nothing; the empirically
        // calibrated CI must be near its nominal 95%.
        assert!(r.ci_coverage_all < 0.2, "model coverage {}", r.ci_coverage_all);
        assert!(
            r.ci_coverage_empirical > 0.85,
            "empirical coverage {}",
            r.ci_coverage_empirical
        );
    }

    #[test]
    fn shuffled_regime_documents_eviction_collapse() {
        // The informational shuffled-regime rows must actually show the
        // collapse (mean eviction value well below y/2).
        let r = run(Scale::Tiny);
        let row = r
            .checks
            .iter()
            .find(|c| c.name.contains("[shuffled] mean eviction value"))
            .expect("row present");
        assert!(row.measured < 0.5 * row.theory, "{row:?}");
    }

    #[test]
    fn render_nonempty() {
        let r = run(Scale::Tiny);
        assert!(r.render().contains("Theory validation"));
        assert_eq!(r.to_csv().len(), 1);
    }
}
