//! Per-workload accuracy and stress sweeps over the workload zoo.
//!
//! Runs every family of [`flowtrace::zoo::standard_zoo`] through all
//! three ingest paths — sequential [`caesar::Caesar`], 2-shard
//! [`caesar::ConcurrentCaesar`], and 4-shard [`caesar::OnlineCaesar`]
//! driven by a per-family [`StressPlan`] — and reports, per workload:
//! relative error (all flows and large flows), cache hit rate, SRAM
//! saturated fraction, ingest loss, and [`caesar::QueryHealth`]
//! confidence. The adversarial rows show exactly which mechanism each
//! hostile shape breaks: the mouse flood collapses the cache hit rate
//! and (under a stalled lane) the loss accounting, the single elephant
//! pins its `k` shared counters at the clamp value, and flow churn
//! invalidates the cached working set every epoch.

use crate::report::{f, pct, Csv, TextTable};
use crate::scale::{
    Scale, PAPER_CACHE_ENTRIES, PAPER_CAESAR_COUNTERS, PAPER_FLOWS, PAPER_PACKETS,
};
use caesar::{
    BackpressurePolicy, Caesar, CaesarConfig, ConcurrentCaesar, Estimator, OnlineCaesar,
};
use flowtrace::zoo::{standard_zoo, WorkloadGen, ZOO_SEED};
use flowtrace::{FlowId, Trace};
use metrics::{are_over_threshold, HealthTally, ScatterSeries};
use std::collections::HashMap;
use support::json::{Json, ToJson};
use support::testkit::{FaultEvent, FaultInjector, FaultSite};

/// Shards used by the concurrent ingest pass.
const CONCURRENT_SHARDS: usize = 2;
/// Shards used by the online stress pass.
pub const ONLINE_SHARDS: usize = 4;
/// Health queries sampled per workload (largest flows first).
const HEALTH_SAMPLE: usize = 256;
/// Ingest chunk size for the online pass.
const ONLINE_CHUNK: usize = 4096;

/// A CAESAR configuration derived from a zoo trace's *realized* shape,
/// holding the paper's intensive operating point (`n/L` noise per
/// counter, `y = ⌊2·n/Q⌋`, cache covering the same working-set
/// fraction) on traces whose `Q` and mean differ wildly per family.
pub fn zoo_config(trace: &Trace) -> CaesarConfig {
    let q = trace.num_flows.max(1) as f64;
    let n = (trace.num_packets().max(1)) as f64;
    let paper_noise = PAPER_PACKETS as f64 / PAPER_CAESAR_COUNTERS as f64;
    CaesarConfig {
        cache_entries: ((q * PAPER_CACHE_ENTRIES as f64 / PAPER_FLOWS as f64).round() as usize)
            .max(32),
        entry_capacity: ((2.0 * n / q).floor() as u64).max(2),
        counters: ((n / paper_noise).round() as usize).max(64),
        k: 3,
        ..CaesarConfig::default()
    }
}

/// How the online stress pass runs one workload: ring/backpressure
/// shape, counter width, and the deterministic fault schedule.
#[derive(Debug, Clone)]
pub struct StressPlan {
    /// Per-shard ring capacity.
    pub ring_capacity: usize,
    /// Backpressure policy.
    pub policy: BackpressurePolicy,
    /// SRAM counter width for the online pass (narrow widths make
    /// saturation observable at sweep scales).
    pub counter_bits: u32,
    /// Watchdog deadline override (`None` = engine default).
    pub watchdog_deadline: Option<u64>,
    /// Scheduled faults (empty = clean run).
    pub events: Vec<FaultEvent>,
}

impl Default for StressPlan {
    fn default() -> Self {
        Self {
            ring_capacity: 1024,
            policy: BackpressurePolicy::Block,
            counter_bits: 32,
            watchdog_deadline: None,
            events: Vec::new(),
        }
    }
}

/// The per-family stress plan. Realistic families get a clean,
/// lossless run (`Block`, wide counters, no faults); each adversarial
/// family gets the plan that exposes its failure mode:
///
/// * `mouse_flood` — shard 0's ring consumer is stalled from the first
///   pump tick with a tail-drop ring of 64 slots and an effectively
///   infinite watchdog, so shard-0 loss grows without bound;
/// * `single_elephant` — 10-bit counters, so the elephant's mass pins
///   its `k` shared counters at the clamp value;
/// * `flow_churn` — three worker panics on shard 0, exercising the
///   quarantine accounting across epoch rotations.
pub fn stress_plan(workload: &str) -> StressPlan {
    match workload {
        "mouse_flood" => StressPlan {
            ring_capacity: 64,
            policy: BackpressurePolicy::DropNewest,
            watchdog_deadline: Some(1 << 40),
            events: vec![FaultEvent { site: FaultSite::RingStall, shard: 0, at_tick: 0 }],
            ..StressPlan::default()
        },
        "single_elephant" => StressPlan { counter_bits: 10, ..StressPlan::default() },
        "flow_churn" => StressPlan {
            events: vec![
                FaultEvent { site: FaultSite::WorkerPanic, shard: 0, at_tick: 1 },
                FaultEvent { site: FaultSite::WorkerPanic, shard: 0, at_tick: 3 },
                FaultEvent { site: FaultSite::WorkerPanic, shard: 0, at_tick: 5 },
            ],
            ..StressPlan::default()
        },
        _ => StressPlan::default(),
    }
}

/// Build the online engine a [`StressPlan`] describes (shared by the
/// sweep and the adversarial regression tests, so both stress the
/// identical configuration).
pub fn online_engine(cfg: CaesarConfig, plan: &StressPlan, shards: usize) -> OnlineCaesar {
    let cfg = CaesarConfig { counter_bits: plan.counter_bits, ..cfg };
    let mut engine = OnlineCaesar::new(cfg, shards)
        .with_policy(plan.policy)
        .with_ring_capacity(plan.ring_capacity)
        .with_injector(FaultInjector::with_events(plan.events.clone()));
    if let Some(deadline) = plan.watchdog_deadline {
        engine = engine.with_watchdog_deadline(deadline);
    }
    engine
}

/// One workload's sweep results.
#[derive(Debug, Clone)]
pub struct ZooRow {
    /// Family name (`flowtrace::zoo` naming).
    pub workload: String,
    /// `realistic` or `adversarial`.
    pub kind: &'static str,
    /// Realized flow count.
    pub flows: usize,
    /// Realized packet count.
    pub packets: usize,
    /// Sequential-ingest cache hit rate.
    pub cache_hit_rate: f64,
    /// Average relative error over all flows (sequential, CSM).
    pub are_all: f64,
    /// ARE over flows ≥ 20× the realized mean (`None` when the family
    /// has no such flows — e.g. flat/KV shapes).
    pub are_large: Option<f64>,
    /// ARE over all flows after 2-shard concurrent ingest.
    pub are_concurrent: f64,
    /// Fraction of online-pass SRAM counters pinned at the clamp.
    pub saturated_fraction: f64,
    /// Online ingest loss `(dropped + quarantined) / offered`.
    pub loss_fraction: f64,
    /// Mean [`caesar::QueryHealth`] confidence over the sampled flows.
    pub mean_confidence: f64,
    /// Fraction of sampled queries flagged degraded.
    pub degraded_fraction: f64,
}

/// Results of the full per-workload sweep.
#[derive(Debug, Clone)]
pub struct ZooSweep {
    /// Scale the sweep ran at.
    pub scale: Scale,
    /// One row per zoo family.
    pub rows: Vec<ZooRow>,
}

fn score_series(series: &ScatterSeries) -> f64 {
    series.report().avg_relative_error
}

fn score_concurrent(
    sketch: &ConcurrentCaesar,
    truth: &HashMap<FlowId, u64>,
) -> ScatterSeries {
    let mut pairs: Vec<(FlowId, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
    pairs.sort_unstable();
    let mut series = ScatterSeries::new();
    for (flow, x) in pairs {
        series.push(x, sketch.estimate(flow, Estimator::Csm).clamped());
    }
    series
}

/// Flows to health-query: the largest `HEALTH_SAMPLE` flows (size
/// descending, flow id as tiebreak — deterministic, and guaranteed to
/// include the elephant-class flows whose health matters most).
fn health_sample(truth: &HashMap<FlowId, u64>) -> Vec<FlowId> {
    let mut pairs: Vec<(u64, FlowId)> = truth.iter().map(|(&f, &x)| (x, f)).collect();
    pairs.sort_unstable_by(|a, b| b.cmp(a));
    pairs.into_iter().take(HEALTH_SAMPLE).map(|(_, f)| f).collect()
}

fn run_one(w: &dyn WorkloadGen, seed: u64) -> ZooRow {
    let (trace, truth) = w.generate(seed);
    let cfg = zoo_config(&trace);
    let mean = trace.num_packets().max(1) as f64 / trace.num_flows.max(1) as f64;

    // Sequential pass: hit rate + accuracy.
    let mut sketch = Caesar::new(cfg);
    for p in &trace.packets {
        sketch.record(p.flow);
    }
    sketch.finish();
    let series = crate::runner::score_caesar(&sketch, &truth, Estimator::Csm);
    let large_threshold = (20.0 * mean).ceil() as u64;
    let are_large = are_over_threshold(series.points(), large_threshold).map(|(_, are)| are);

    // Concurrent pass: 2-shard construction, same accuracy metric.
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    let concurrent = ConcurrentCaesar::build(cfg, CONCURRENT_SHARDS, &flows);
    let are_concurrent = score_series(&score_concurrent(&concurrent, &truth));

    // Online stress pass under the family's plan.
    let plan = stress_plan(w.name());
    let mut engine = online_engine(cfg, &plan, ONLINE_SHARDS);
    for chunk in flows.chunks(ONLINE_CHUNK) {
        engine.offer_batch(chunk);
        let s = engine.stats();
        assert_eq!(
            s.offered,
            s.recorded + s.dropped + s.quarantined + s.in_flight,
            "{}: online mass accounting must stay exact",
            w.name()
        );
    }
    engine.merge_now();
    let stats = engine.stats();
    let loss_fraction = if stats.offered == 0 {
        0.0
    } else {
        (stats.dropped + stats.quarantined) as f64 / stats.offered as f64
    };
    let saturated_fraction = engine.sram().saturated_fraction();
    let mut health = HealthTally::new();
    for flow in health_sample(&truth) {
        let h = engine.query_health(flow);
        health.push(h.is_degraded(), h.confidence);
    }

    ZooRow {
        workload: w.name().to_string(),
        kind: w.kind().name(),
        flows: trace.num_flows,
        packets: trace.num_packets(),
        cache_hit_rate: sketch.stats().cache.hit_rate(),
        are_all: score_series(&series),
        are_large,
        are_concurrent,
        saturated_fraction,
        loss_fraction,
        mean_confidence: health.mean_confidence(),
        degraded_fraction: health.degraded_fraction(),
    }
}

/// Run the sweep over every family of the standard zoo at `scale`.
pub fn run(scale: Scale) -> ZooSweep {
    // Quarter of the synth trace's flow count: the zoo runs 8 families
    // × 3 ingest paths per sweep, and several families multiply `q`
    // (4q mice, 14q elephant packets), so the per-family scale is kept
    // smaller than the single-trace figures at the same `Scale`.
    let q = (PAPER_FLOWS as f64 * scale.fraction() * 0.25).round() as usize;
    let zoo = standard_zoo(q).expect("standard zoo parameters are valid");
    let rows = zoo.iter().map(|w| run_one(w.as_ref(), ZOO_SEED)).collect();
    ZooSweep { scale, rows }
}

impl ZooSweep {
    /// Render the per-workload table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "workload", "kind", "flows", "packets", "hit rate", "ARE", "ARE large",
            "ARE 2-shard", "saturated", "loss", "confidence", "degraded",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                r.kind.to_string(),
                r.flows.to_string(),
                r.packets.to_string(),
                pct(r.cache_hit_rate),
                pct(r.are_all),
                r.are_large.map_or_else(|| "-".to_string(), pct),
                pct(r.are_concurrent),
                pct(r.saturated_fraction),
                pct(r.loss_fraction),
                f(r.mean_confidence),
                pct(r.degraded_fraction),
            ]);
        }
        format!(
            "Workload zoo sweep ({:?} scale): sequential / 2-shard / {}-shard online ingest\n{}",
            self.scale,
            ONLINE_SHARDS,
            t.render()
        )
    }

    /// CSV + JSON artifacts.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut csv = Csv::new(&[
            "workload", "kind", "flows", "packets", "cache_hit_rate", "are_all", "are_large",
            "are_concurrent", "saturated_fraction", "loss_fraction", "mean_confidence",
            "degraded_fraction",
        ]);
        for r in &self.rows {
            csv.row(&[
                r.workload.clone(),
                r.kind.to_string(),
                r.flows.to_string(),
                r.packets.to_string(),
                f(r.cache_hit_rate),
                f(r.are_all),
                r.are_large.map_or_else(|| "nan".to_string(), f),
                f(r.are_concurrent),
                f(r.saturated_fraction),
                f(r.loss_fraction),
                f(r.mean_confidence),
                f(r.degraded_fraction),
            ]);
        }
        vec![
            ("zoo_sweep.csv".to_string(), csv.to_string()),
            ("zoo_sweep.json".to_string(), self.to_json_string()),
        ]
    }
}

impl ToJson for ZooRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.clone())),
            ("kind", Json::from(self.kind)),
            ("flows", Json::from(self.flows)),
            ("packets", Json::from(self.packets)),
            ("cache_hit_rate", Json::from(self.cache_hit_rate)),
            ("are_all", Json::from(self.are_all)),
            (
                "are_large",
                self.are_large.map_or(Json::Null, Json::from),
            ),
            ("are_concurrent", Json::from(self.are_concurrent)),
            ("saturated_fraction", Json::from(self.saturated_fraction)),
            ("loss_fraction", Json::from(self.loss_fraction)),
            ("mean_confidence", Json::from(self.mean_confidence)),
            ("degraded_fraction", Json::from(self.degraded_fraction)),
        ])
    }
}

impl ToJson for ZooSweep {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scale", Json::from(format!("{:?}", self.scale))),
            (
                "rows",
                Json::from(self.rows.iter().map(ToJson::to_json).collect::<Vec<_>>()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(sweep: &'a ZooSweep, name: &str) -> &'a ZooRow {
        sweep
            .rows
            .iter()
            .find(|r| r.workload == name)
            .unwrap_or_else(|| panic!("missing row {name}"))
    }

    #[test]
    fn sweep_covers_every_family_with_contrasting_stress() {
        let sweep = run(Scale::Tiny);
        let names: Vec<&str> = sweep.rows.iter().map(|r| r.workload.as_str()).collect();
        assert_eq!(
            names,
            [
                "cdn",
                "kv",
                "flat",
                "bursty",
                "mouse_flood",
                "single_elephant",
                "flow_churn",
                "caida_fit"
            ]
        );

        // The cache-friendly CDN shape must beat the cache-thrashing
        // mouse flood on hit rate by a wide margin.
        assert!(
            row(&sweep, "cdn").cache_hit_rate > row(&sweep, "mouse_flood").cache_hit_rate + 0.3,
            "cdn {} vs mouse {}",
            row(&sweep, "cdn").cache_hit_rate,
            row(&sweep, "mouse_flood").cache_hit_rate
        );

        // The stalled-lane plan sheds packets; the elephant plan pins
        // counters; clean realistic runs lose nothing.
        assert!(row(&sweep, "mouse_flood").loss_fraction > 0.0);
        assert!(row(&sweep, "single_elephant").saturated_fraction > 0.0);
        assert!(row(&sweep, "flow_churn").loss_fraction > 0.0, "quarantined packets count");
        for name in ["cdn", "kv", "flat", "bursty", "caida_fit"] {
            let r = row(&sweep, name);
            assert_eq!(r.loss_fraction, 0.0, "{name}: clean plan must be lossless");
            assert!(r.are_all.is_finite() && r.are_all >= 0.0);
        }

        // Degraded workloads must report reduced confidence.
        assert!(row(&sweep, "mouse_flood").mean_confidence < 0.999);
        assert!(row(&sweep, "single_elephant").degraded_fraction > 0.0);
    }

    #[test]
    fn artifacts_are_well_formed() {
        let sweep = run(Scale::Tiny);
        let artifacts = sweep.to_csv();
        assert_eq!(artifacts.len(), 2);
        let (csv_name, csv) = &artifacts[0];
        assert_eq!(csv_name, "zoo_sweep.csv");
        assert_eq!(csv.lines().count(), 1 + sweep.rows.len());
        let (json_name, json) = &artifacts[1];
        assert_eq!(json_name, "zoo_sweep.json");
        let parsed = support::json::parse(json).expect("sweep JSON must parse");
        let rows = parsed.get("rows").expect("sweep JSON carries rows");
        match rows {
            Json::Arr(items) => assert_eq!(items.len(), sweep.rows.len()),
            other => panic!("expected array, got {other:?}"),
        }
        assert!(!sweep.render().is_empty());
    }

    #[test]
    fn stress_plans_differ_where_it_matters() {
        assert_eq!(stress_plan("cdn").events.len(), 0);
        assert_eq!(stress_plan("mouse_flood").policy, BackpressurePolicy::DropNewest);
        assert_eq!(stress_plan("single_elephant").counter_bits, 10);
        assert_eq!(stress_plan("flow_churn").events.len(), 3);
    }
}
