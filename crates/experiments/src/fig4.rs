//! Figure 4: CAESAR accuracy — estimated vs actual ((a) CSM, (b) MLM)
//! and average relative error vs actual flow size ((c) CSM, (d) MLM).
//!
//! Paper observations to reproduce (§6.3.1):
//! * both estimators track `y = x` closely at < 100 KB of SRAM;
//! * CSM and MLM differ little; MLM is slightly better on small flows;
//! * headline AREs: CSM 25.23%, MLM 30.83% (§1.5);
//! * LRU and random replacement both work (we run both).

use crate::plot::{Chart, Series};
use crate::report::{f, pct, Csv, TextTable};
use crate::runner::{caesar_config, run_caesar, score_caesar, trace_for};
use crate::scale::{Scale, LARGE_FLOW_THRESHOLD};
use caesar::Estimator;
use cachesim::CachePolicy;
use metrics::{are_by_size, are_over_threshold, AccuracyReport, ScatterSeries};

/// One CAESAR variant's scored run.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Label, e.g. "CSM/LRU".
    pub label: String,
    /// Estimated-vs-actual series.
    pub series: ScatterSeries,
    /// Aggregate accuracy.
    pub report: AccuracyReport,
    /// ARE per actual flow size (Fig. 4c/4d).
    pub are_curve: Vec<(u64, f64)>,
    /// ARE over flows ≥ [`LARGE_FLOW_THRESHOLD`] packets — the
    /// paper-comparable headline (see EXPERIMENTS.md).
    pub large_flow_are: f64,
    /// Number of flows above the threshold.
    pub large_flows: usize,
}

/// Figure 4 result: the four estimator × policy variants.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// CSM/LRU (the paper's default), CSM/Random, MLM/LRU, MLM/Random.
    pub variants: Vec<Variant>,
    /// SRAM size used, in KB.
    pub sram_kb: f64,
}

/// Regenerate Figure 4 at the given scale.
pub fn run(scale: Scale) -> Fig4Result {
    let shared = trace_for(scale);
    let (trace, truth) = (&shared.0, &shared.1);
    let mut variants = Vec::new();
    let mut sram_kb = 0.0;
    for policy in [CachePolicy::Lru, CachePolicy::Random] {
        let cfg = caesar::CaesarConfig {
            policy,
            ..caesar_config(scale)
        };
        sram_kb = cfg.sram_kb();
        let sketch = run_caesar(cfg, trace);
        for estimator in [Estimator::Csm, Estimator::Mlm] {
            let series = score_caesar(&sketch, truth, estimator);
            let report = series.report();
            let are_curve = are_by_size(series.points(), 20);
            let (large_flows, large_flow_are) =
                are_over_threshold(series.points(), LARGE_FLOW_THRESHOLD).unwrap_or((0, f64::NAN));
            variants.push(Variant {
                label: format!(
                    "{}/{}",
                    match estimator {
                        Estimator::Csm => "CSM",
                        Estimator::Mlm => "MLM",
                    },
                    match policy {
                        CachePolicy::Lru => "LRU",
                        CachePolicy::Random => "Random",
                        CachePolicy::Fifo => "FIFO",
                    }
                ),
                series,
                report,
                are_curve,
                large_flow_are,
                large_flows,
            });
        }
    }
    Fig4Result { variants, sram_kb }
}

impl Fig4Result {
    /// Find a variant by label.
    pub fn variant(&self, label: &str) -> Option<&Variant> {
        self.variants.iter().find(|v| v.label == label)
    }

    /// Text rendering of the accuracy summary.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "variant".to_string(),
            "flows".to_string(),
            "ARE (all)".to_string(),
            "median RE".to_string(),
            format!("ARE (x>={LARGE_FLOW_THRESHOLD})"),
            "paper ARE".to_string(),
        ]);
        for v in &self.variants {
            let paper = if v.label.starts_with("CSM") { "25.23%" } else { "30.83%" };
            t.row(vec![
                v.label.clone(),
                v.report.flows.to_string(),
                pct(v.report.avg_relative_error),
                pct(v.report.median_relative_error),
                format!("{} ({} flows)", pct(v.large_flow_are), v.large_flows),
                paper.to_string(),
            ]);
        }
        format!(
            "Figure 4 — CAESAR accuracy (SRAM {} KB)\n{}",
            f(self.sram_kb),
            t.render()
        )
    }

    /// CSV series: scatter samples and ARE curves per variant.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for v in &self.variants {
            let tag = v.label.to_lowercase().replace('/', "_");
            let mut sc = Csv::new(&["actual", "estimated"]);
            for p in v.series.sample(5000) {
                sc.row(&[p.actual.to_string(), f(p.estimated)]);
            }
            out.push((format!("fig4_scatter_{tag}.csv"), sc.to_string()));
            let mut are = Csv::new(&["size", "avg_relative_error"]);
            for &(s, e) in &v.are_curve {
                are.row(&[s.to_string(), format!("{e:.6}")]);
            }
            out.push((format!("fig4_are_{tag}.csv"), are.to_string()));
        }
        out
    }
}

impl Fig4Result {
    /// SVG rendering: one estimated-vs-actual scatter per variant plus
    /// a combined ARE-vs-size chart (the paper's panels a-d).
    pub fn to_svg(&self) -> Vec<(String, String)> {
        let colors = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd"];
        let mut out = Vec::new();
        let mut are_chart = Chart::new(
            "Fig. 4(c/d) — avg relative error vs actual flow size",
            "actual flow size (packets)",
            "average relative error",
        )
        .log_log();
        for (i, v) in self.variants.iter().enumerate() {
            let tag = v.label.to_lowercase().replace('/', "_");
            let pts: Vec<(f64, f64)> = v
                .series
                .sample(3000)
                .into_iter()
                .map(|p| (p.actual as f64, p.estimated.max(0.1)))
                .collect();
            let chart = Chart::new(
                &format!("Fig. 4 — CAESAR {} estimated vs actual", v.label),
                "actual flow size",
                "estimated flow size",
            )
            .log_log()
            .with_diagonal()
            .push(Series::scatter(&v.label, colors[i % colors.len()], pts));
            out.push((format!("fig4_scatter_{tag}.svg"), chart.render_svg()));
            are_chart = are_chart.push(Series::line(
                &v.label,
                colors[i % colors.len()],
                v.are_curve.iter().map(|&(s, e)| (s as f64, e.max(1e-4))).collect(),
            ));
        }
        out.push(("fig4_are.svg".into(), are_chart.render_svg()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_flow_accuracy_holds_at_small_scale() {
        // Above the counter-sharing noise floor, CAESAR's estimates
        // must be accurate (paper headline: ~25-31%). Lossy RCS sits at
        // 67%/90% at these sizes (Fig. 7), so < 50% preserves the
        // paper's ordering with margin.
        let r = run(Scale::Small);
        assert_eq!(r.variants.len(), 4);
        for v in &r.variants {
            assert!(v.large_flows >= 10, "{}: only {} large flows", v.label, v.large_flows);
            assert!(
                v.large_flow_are < 0.65,
                "{}: large-flow ARE = {}",
                v.label,
                v.large_flow_are
            );
        }
    }

    #[test]
    fn csm_and_mlm_differ_little() {
        // Paper §6.3.1: "CSM and MLM estimation results have little
        // difference".
        let r = run(Scale::Small);
        let csm = r.variant("CSM/LRU").expect("CSM/LRU present");
        let mlm = r.variant("MLM/LRU").expect("MLM/LRU present");
        let ratio = mlm.large_flow_are / csm.large_flow_are.max(1e-9);
        assert!(
            (0.5..=2.0).contains(&ratio),
            "MLM {} vs CSM {} diverge",
            mlm.large_flow_are,
            csm.large_flow_are
        );
    }

    #[test]
    fn relative_error_decays_with_flow_size() {
        // The cone shape of Fig. 4(c): ARE at small sizes far exceeds
        // ARE at large sizes (constant absolute noise, 1/x relative).
        let r = run(Scale::Small);
        let v = r.variant("CSM/LRU").expect("variant");
        let first = v.are_curve.first().expect("has curve").1;
        assert!(
            first > 4.0 * v.large_flow_are.max(1e-9),
            "small-size ARE {} vs large-flow ARE {}",
            first,
            v.large_flow_are
        );
    }

    #[test]
    fn lru_and_random_policies_both_work() {
        // Paper runs both replacement policies; neither may collapse.
        let r = run(Scale::Small);
        let lru = r.variant("CSM/LRU").expect("variant").large_flow_are;
        let rnd = r.variant("CSM/Random").expect("variant").large_flow_are;
        assert!(lru < 0.5 && rnd < 0.5, "LRU {lru} / Random {rnd}");
    }

    #[test]
    fn render_mentions_all_variants() {
        let r = run(Scale::Tiny);
        let s = r.render();
        for v in ["CSM/LRU", "CSM/Random", "MLM/LRU", "MLM/Random"] {
            assert!(s.contains(v), "missing {v} in:\n{s}");
        }
    }
}
