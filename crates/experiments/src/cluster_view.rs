//! Per-node vs merged cluster-view accuracy over the workload zoo.
//!
//! Emulates the deployment the `service` crate exists for: each zoo
//! family's packet stream is striped across [`CLUSTER_NODES`]
//! measurement taps (round-robin — every tap sees an unbiased slice of
//! every flow), each tap builds its own [`caesar::ConcurrentCaesar`]
//! sketch, exports its [`caesar::SketchPayload`], and pushes it to a
//! [`service::MeasurementService`] aggregator through the full wire
//! codec. Per workload the sweep reports:
//!
//! * **ARE single / ARE merged** — accuracy of the whole-stream sketch
//!   vs the merged cluster view queried through the service client;
//! * **bias per node / bias merged** — mass-weighted signed relative
//!   error `Σ(x̂ − x) / Σx` on *raw* (unclamped) estimates: the
//!   statistic that separates *missing traffic* from *sharing noise*.
//!   Counter-sharing noise is near-zero-mean and largely averages out
//!   of the bias over the sampled flows; a tap that saw only `1/N` of
//!   the stream cannot average its way out of a `≈ −(1 − 1/N)` bias.
//!
//! The sweep runs **two measurement intervals** per family. Interval 1
//! ingests the head of every stripe and full-pushes each tap's
//! payload. Interval 2 ingests the tail (the final `1/DELTA_TAIL` of
//! each stripe), diffs each tap's cumulative sketch against its
//! already-acked payload with [`caesar::SketchDelta`], and ships only
//! the changed counter blocks via `PushDelta`. Both wire costs are
//! *measured* — they come back in the service's `PushAck` (`bytes` =
//! decoded payload size) — and reported per family as **full B /
//! delta B**. Expect delta ≈ full here: the zoo geometry sizes `L`
//! to the flow count, so even a tail interval dirties every block —
//! this sweep charts the delta's *worst case* (bounded at full plus
//! block-index overhead). The regime where deltas win outright —
//! large provisioned `L`, few flows active between pushes — is
//! priced by the `service_delta` and `checkpoint` bench groups.
//!
//! All statistics are scored over the [`TOP_FLOWS`] largest flows (the
//! flows measurement exists for). The headline: the merged view tracks
//! the single-box sketch (linearity of the shared-counter SRAM) and
//! recovers the mass every single tap is missing — the quantitative
//! justification for the push/merge service. (Per-flow ARE does *not*
//! tell this story at small scales: a lone tap carries `1/N` of the
//! sharing mass, so its noise is smaller and its ARE can *beat* the
//! merged view even though every large flow is under-counted `N×`.)

use crate::report::{f, pct, Csv, TextTable};
use crate::scale::{Scale, PAPER_FLOWS};
use crate::zoo::zoo_config;
use caesar::{ConcurrentCaesar, Estimator, SketchDelta};
use flowtrace::zoo::{standard_zoo, WorkloadGen, ZOO_SEED};
use flowtrace::FlowId;
use metrics::ScatterSeries;
use service::{DeltaPush, InProcess, MeasurementClient, MeasurementService};
use std::collections::HashMap;
use support::json::{Json, ToJson};

/// Measurement taps the stream is striped across.
pub const CLUSTER_NODES: usize = 3;
/// Shards inside each tap's concurrent builder.
const NODE_SHARDS: usize = 2;
/// Flows per service query frame (exercises multi-frame batching).
const QUERY_BATCH: usize = 24;
/// Largest-flows sample the AREs are scored over.
pub const TOP_FLOWS: usize = 64;
/// The final `1/DELTA_TAIL` of every stripe is the second measurement
/// interval, shipped as a block-sparse delta push instead of a full
/// payload.
const DELTA_TAIL: usize = 10;

/// One workload's cluster-view results.
#[derive(Debug, Clone)]
pub struct ClusterRow {
    /// Family name (`flowtrace::zoo` naming).
    pub workload: String,
    /// `realistic` or `adversarial`.
    pub kind: &'static str,
    /// Realized flow count.
    pub flows: usize,
    /// Realized packet count.
    pub packets: usize,
    /// ARE of one sketch over the whole stream ([`TOP_FLOWS`] flows).
    pub are_single: f64,
    /// ARE of the merged cluster view, queried through the service
    /// ([`TOP_FLOWS`] flows).
    pub are_merged: f64,
    /// Mean (over taps) mass-weighted signed relative error
    /// `Σ(x̂ − x) / Σx` of querying a single tap alone; ≈ `−(1 − 1/N)`
    /// because each tap saw only its stripe.
    pub bias_node_mean: f64,
    /// Mass-weighted signed relative error of the merged view — no
    /// traffic is missing, so only residual sharing noise remains.
    pub bias_merged: f64,
    /// Epoch the merged answers were served at (= one full push plus
    /// one delta push per tap).
    pub epoch: u64,
    /// Mean service-side query-health confidence over sampled flows.
    pub mean_confidence: f64,
    /// Measured wire bytes of the interval-1 full pushes, summed over
    /// taps (from the service's `PushAck`).
    pub bytes_full: u64,
    /// Measured wire bytes of the interval-2 delta pushes, summed over
    /// taps (from the service's `PushAck`).
    pub bytes_delta: u64,
}

/// Results of the cluster-view sweep.
#[derive(Debug, Clone)]
pub struct ClusterSweep {
    /// Scale the sweep ran at.
    pub scale: Scale,
    /// One row per zoo family.
    pub rows: Vec<ClusterRow>,
}

/// ARE plus the mass-weighted signed relative error (`Σ(x̂ − x) / Σx`).
///
/// ARE is scored on clamped estimates (physical sizes); the bias is
/// scored on *raw* estimates so that zero-mean sharing noise cancels
/// instead of being rectified by the clamp at zero — only genuinely
/// missing traffic (a tap that never saw it) survives into the bias.
#[derive(Debug, Clone, Copy)]
struct Score {
    are: f64,
    bias: f64,
}

/// `pairs` is `(true size, raw unclamped estimate)`.
fn score(pairs: impl IntoIterator<Item = (u64, f64)>) -> Score {
    let mut series = ScatterSeries::new();
    let (mut est_sum, mut truth_sum) = (0.0f64, 0.0f64);
    for (x, raw) in pairs {
        series.push(x, raw.max(0.0));
        est_sum += raw;
        truth_sum += x as f64;
    }
    Score {
        are: series.report().avg_relative_error,
        bias: (est_sum - truth_sum) / truth_sum.max(1.0),
    }
}

fn score_sketch(sketch: &ConcurrentCaesar, truth: &[(FlowId, u64)]) -> Score {
    score(truth.iter().map(|&(flow, x)| (x, sketch.estimate(flow, Estimator::Csm).value)))
}

/// The [`TOP_FLOWS`] largest flows (size descending, flow id as a
/// deterministic tiebreak).
fn top_flows(truth: &HashMap<FlowId, u64>) -> Vec<(FlowId, u64)> {
    let mut pairs: Vec<(u64, FlowId)> = truth.iter().map(|(&f, &x)| (x, f)).collect();
    pairs.sort_unstable_by(|a, b| b.cmp(a));
    pairs.into_iter().take(TOP_FLOWS).map(|(x, f)| (f, x)).collect()
}

fn run_one(w: &dyn WorkloadGen, seed: u64) -> ClusterRow {
    let (trace, truth) = w.generate(seed);
    let cfg = zoo_config(&trace);
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    let truth = top_flows(&truth);

    // The accuracy ceiling: one box, whole stream.
    let single = ConcurrentCaesar::build(cfg, NODE_SHARDS, &flows);
    let single_score = score_sketch(&single, &truth);

    // Stripe the stream across the taps (round-robin: every tap sees
    // ~1/N of every flow, the uniform-tap-load case).
    let mut slices: Vec<Vec<u64>> = vec![Vec::new(); CLUSTER_NODES];
    for (i, &flow) in flows.iter().enumerate() {
        slices[i % CLUSTER_NODES].push(flow);
    }
    // Interval 1: each tap sketches the head of its stripe and
    // full-pushes the payload through the service codec. Interval 2:
    // each tap ingests its stripe's low-churn tail, diffs its
    // cumulative sketch against the already-acked payload, and ships
    // only the changed counter blocks. Both wire costs come back
    // measured in the ack.
    let svc = MeasurementService::new(cfg);
    let mut client = MeasurementClient::connect(InProcess::new(&svc), &single.fingerprint())
        .expect("same fleet config");
    let mut taps: Vec<ConcurrentCaesar> = Vec::with_capacity(CLUSTER_NODES);
    let mut acked: Vec<caesar::SketchPayload> = Vec::with_capacity(CLUSTER_NODES);
    let mut epoch = 0;
    let (mut bytes_full, mut bytes_delta) = (0u64, 0u64);
    for slice in &slices {
        let head = slice.len() - slice.len() / DELTA_TAIL;
        let tap = ConcurrentCaesar::build(cfg, NODE_SHARDS, &slice[..head]);
        let payload = tap.export_sketch();
        let receipt = client.push_sketch(&payload).expect("compatible sketch");
        epoch = receipt.epoch;
        bytes_full += receipt.bytes;
        taps.push(tap);
        acked.push(payload);
    }
    for (i, slice) in slices.iter().enumerate() {
        let head = slice.len() - slice.len() / DELTA_TAIL;
        taps[i]
            .merge(&ConcurrentCaesar::build(cfg, NODE_SHARDS, &slice[head..]))
            .expect("same fleet config");
        let delta = SketchDelta::between(&acked[i], &taps[i].export_sketch(), epoch)
            .expect("cumulative sketch extends the acked payload");
        match client.push_delta(&delta).expect("delta push") {
            DeltaPush::Accepted(receipt) => {
                epoch = receipt.epoch;
                bytes_delta += receipt.bytes;
            }
            DeltaPush::Stale { .. } => unreachable!("one client, no concurrent pushers"),
        }
    }
    // Nothing lost in transit: the merged view accounts for exactly
    // the packets the taps ingested across both intervals.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.total_added as usize, flows.len(), "delta pushes must conserve mass");
    let bias_node_mean =
        taps.iter().map(|n| score_sketch(n, &truth).bias).sum::<f64>() / taps.len() as f64;
    // ARE from the batch Query endpoint (clamped physical sizes);
    // bias + confidence from the QueryHealth endpoint, whose reports
    // carry the raw unclamped estimate.
    let mut series = ScatterSeries::new();
    let flow_ids: Vec<u64> = truth.iter().map(|&(f, _)| f).collect();
    for (batch, batch_truth) in flow_ids.chunks(QUERY_BATCH).zip(truth.chunks(QUERY_BATCH)) {
        let (_, values) = client.query(batch).expect("query");
        for (&(_, x), est) in batch_truth.iter().zip(&values) {
            series.push(x, *est);
        }
    }
    let mut confidence_sum = 0.0;
    let mut raw_sum = 0.0;
    let mut sampled = 0usize;
    for &flow in &flow_ids {
        let (_, health) = client.query_health(flow).expect("health");
        confidence_sum += health.confidence;
        raw_sum += health.estimate;
        sampled += 1;
    }
    let truth_mass: f64 = truth.iter().map(|&(_, x)| x as f64).sum();
    let bias_merged = (raw_sum - truth_mass) / truth_mass.max(1.0);

    ClusterRow {
        workload: w.name().to_string(),
        kind: w.kind().name(),
        flows: trace.num_flows,
        packets: trace.num_packets(),
        are_single: single_score.are,
        are_merged: series.report().avg_relative_error,
        bias_node_mean,
        bias_merged,
        epoch,
        mean_confidence: confidence_sum / sampled.max(1) as f64,
        bytes_full,
        bytes_delta,
    }
}

/// Run the cluster-view sweep over every family of the standard zoo.
pub fn run(scale: Scale) -> ClusterSweep {
    // Same per-family scale reasoning as the zoo sweep, with the
    // additional ×(CLUSTER_NODES + 1) sketch builds per family.
    let q = (PAPER_FLOWS as f64 * scale.fraction() * 0.25).round() as usize;
    let zoo = standard_zoo(q).expect("standard zoo parameters are valid");
    let rows = zoo.iter().map(|w| run_one(w.as_ref(), ZOO_SEED)).collect();
    ClusterSweep { scale, rows }
}

impl ClusterSweep {
    /// Render the per-workload table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "workload", "kind", "flows", "packets", "ARE single", "ARE merged",
            "bias per-node", "bias merged", "epoch", "confidence", "full B", "delta B", "delta/full",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                r.kind.to_string(),
                r.flows.to_string(),
                r.packets.to_string(),
                pct(r.are_single),
                pct(r.are_merged),
                pct(r.bias_node_mean),
                pct(r.bias_merged),
                r.epoch.to_string(),
                f(r.mean_confidence),
                r.bytes_full.to_string(),
                r.bytes_delta.to_string(),
                pct(r.bytes_delta as f64 / r.bytes_full.max(1) as f64),
            ]);
        }
        format!(
            "Cluster view ({:?} scale): {} taps, round-robin striping, merged via the service codec\n\
             (interval 1 full-pushed, interval 2 = final 1/{} of each stripe pushed as counter-block deltas)\n{}",
            self.scale,
            CLUSTER_NODES,
            DELTA_TAIL,
            t.render()
        )
    }

    /// CSV + JSON artifacts.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut csv = Csv::new(&[
            "workload", "kind", "flows", "packets", "are_single", "are_merged",
            "bias_node_mean", "bias_merged", "epoch", "mean_confidence",
            "bytes_full", "bytes_delta",
        ]);
        for r in &self.rows {
            csv.row(&[
                r.workload.clone(),
                r.kind.to_string(),
                r.flows.to_string(),
                r.packets.to_string(),
                f(r.are_single),
                f(r.are_merged),
                f(r.bias_node_mean),
                f(r.bias_merged),
                r.epoch.to_string(),
                f(r.mean_confidence),
                r.bytes_full.to_string(),
                r.bytes_delta.to_string(),
            ]);
        }
        vec![
            ("cluster_view.csv".to_string(), csv.to_string()),
            ("cluster_view.json".to_string(), self.to_json_string()),
        ]
    }
}

impl ToJson for ClusterRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.clone())),
            ("kind", Json::from(self.kind)),
            ("flows", Json::from(self.flows)),
            ("packets", Json::from(self.packets)),
            ("are_single", Json::from(self.are_single)),
            ("are_merged", Json::from(self.are_merged)),
            ("bias_node_mean", Json::from(self.bias_node_mean)),
            ("bias_merged", Json::from(self.bias_merged)),
            ("epoch", Json::from(self.epoch)),
            ("mean_confidence", Json::from(self.mean_confidence)),
            ("bytes_full", Json::from(self.bytes_full)),
            ("bytes_delta", Json::from(self.bytes_delta)),
        ])
    }
}

impl ToJson for ClusterSweep {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scale", Json::from(format!("{:?}", self.scale))),
            ("nodes", Json::from(CLUSTER_NODES)),
            (
                "rows",
                Json::from(self.rows.iter().map(ToJson::to_json).collect::<Vec<_>>()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_view_recovers_single_box_accuracy() {
        let sweep = run(Scale::Tiny);
        assert_eq!(sweep.rows.len(), 8, "every zoo family");
        for r in &sweep.rows {
            assert_eq!(
                r.epoch,
                2 * CLUSTER_NODES as u64,
                "{}: one full push plus one delta push per tap",
                r.workload
            );
            // Both wire costs were actually measured off PushAcks, and
            // the tail never costs more than re-shipping the whole
            // counter array would (worst case every block is dirty:
            // the full payload plus one block index per block — 1/64
            // of the counter bytes — plus fixed frame headers, which
            // at the zoo's small L approach 3% on their own). The zoo
            // geometry keeps every counter hot by design, so this
            // sweep measures the delta's worst case; the regime where
            // deltas win outright is priced by the "service_delta"
            // and "checkpoint" bench groups.
            assert!(r.bytes_full > 0 && r.bytes_delta > 0, "{}: acks carry bytes", r.workload);
            assert!(
                r.bytes_delta <= r.bytes_full + r.bytes_full / 16,
                "{}: delta pushes ({} B) must not exceed full pushes ({} B) plus block-index overhead",
                r.workload,
                r.bytes_delta,
                r.bytes_full
            );
            // A lone tap saw ~1/3 of the mass, so its estimates carry
            // an irreducible ≈ −2/3 bias (noise cannot hide it: bias
            // is mass-weighted and sharing noise is near-zero-mean).
            assert!(
                r.bias_node_mean < -0.25,
                "{}: per-node bias {} must reflect the missing 2/3 of traffic",
                r.workload,
                r.bias_node_mean
            );
            // Merging restores the missing mass: the merged bias moves
            // decisively back toward zero (residual sharing noise
            // keeps it from being exactly zero at Tiny scale).
            assert!(
                r.bias_merged > r.bias_node_mean + 0.25,
                "{}: merging must recover mass (merged {} vs per-node {})",
                r.workload,
                r.bias_merged,
                r.bias_node_mean
            );
            // Merging recovers the single-box accuracy regime: same
            // noise floor to within a factor (cache eviction timing
            // differs per tap, so not bit-equal).
            assert!(
                r.are_merged < r.are_single * 1.5 + 0.05 && r.are_merged > r.are_single * 0.5,
                "{}: merged ARE {} should track single-box ARE {}",
                r.workload,
                r.are_merged,
                r.are_single
            );
        }
    }

    #[test]
    fn artifacts_are_well_formed() {
        let sweep = run(Scale::Tiny);
        let artifacts = sweep.to_csv();
        assert_eq!(artifacts.len(), 2);
        let (csv_name, csv) = &artifacts[0];
        assert_eq!(csv_name, "cluster_view.csv");
        assert_eq!(csv.lines().count(), 1 + sweep.rows.len());
        let (_, json) = &artifacts[1];
        support::json::parse(json).expect("cluster JSON must parse");
        assert!(!sweep.render().is_empty());
    }
}
