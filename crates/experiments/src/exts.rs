//! Extension experiments beyond the paper's figures.
//!
//! * [`sampling_comparison`] — §2.2 dismisses sampling-based
//!   approaches ("the filtered flows inevitably introduce significant
//!   estimation errors") without measuring them; this quantifies the
//!   argument at equal memory.
//! * [`braids_comparison`] — §2.1's Counter Braids and VHC, measured
//!   instead of cited.
//! * [`compression_comparison`] — the single-counter compressor family
//!   (SAC / DISCO / ANLS / CEDAR) at equal width.
//! * [`burst_tolerance`] — how much arrival burstiness the cache
//!   front end absorbs relative to a cache-free design.
//! * [`tail_sensitivity`] — does the headline comparison survive a
//!   log-normal tail instead of a power law? (It does; CAESAR's
//!   absolute ARE even lands on the paper's number.)

use crate::report::{f, pct, Csv, TextTable};
use crate::runner::{caesar_config, run_caesar, trace_for};
use crate::scale::{Scale, LARGE_FLOW_THRESHOLD};
use baselines::{BraidsConfig, CounterBraids, SampledCounter, SamplingConfig};
use caesar::Estimator;
use metrics::{are_over_threshold, ScatterPoint};

/// One contender's row in the comparison.
#[derive(Debug, Clone)]
pub struct ContenderRow {
    /// Scheme label.
    pub scheme: String,
    /// Memory consumed (bytes), as configured or realized.
    pub memory_bytes: usize,
    /// ARE over large flows (≥ [`LARGE_FLOW_THRESHOLD`]).
    pub large_flow_are: f64,
    /// Fraction of all flows estimated as exactly 0 (invisible flows).
    pub frac_invisible: f64,
    /// Fraction of *large* flows estimated as exactly 0.
    pub frac_large_invisible: f64,
}

/// Result of the sampling comparison.
#[derive(Debug, Clone)]
pub struct SamplingComparison {
    /// CAESAR first, then the sampler at each swept rate.
    pub rows: Vec<ContenderRow>,
}

/// Run the comparison at the given scale.
pub fn sampling_comparison(scale: Scale) -> SamplingComparison {
    let shared = trace_for(scale);
    let (trace, truth) = (&shared.0, &shared.1);
    let mut pairs: Vec<(u64, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
    pairs.sort_unstable();

    let mut rows = Vec::new();

    // CAESAR at the paper budget. Total memory = SRAM + cache (32-bit
    // tag + 6-bit counter per entry).
    let cfg = caesar_config(scale);
    let sketch = run_caesar(cfg, trace);
    let caesar_bytes =
        (cfg.sram_kb() * 1024.0) as usize + (cfg.cache_kb(32) * 1024.0) as usize;
    let points: Vec<ScatterPoint> = pairs
        .iter()
        .map(|&(fl, x)| ScatterPoint {
            actual: x,
            estimated: sketch.estimate(fl, Estimator::Csm).clamped(),
        })
        .collect();
    rows.push(score("CAESAR (CSM)", caesar_bytes, &points));

    // NetFlow-style sampling with the flow table capped at the same
    // byte budget (12 bytes per record).
    let max_entries = caesar_bytes / 12;
    for rate in [0.001, 0.01, 0.1] {
        let mut sampler = SampledCounter::new(SamplingConfig {
            rate,
            max_entries,
            seed: 0xE47,
        });
        for p in &trace.packets {
            sampler.record(p.flow);
        }
        let points: Vec<ScatterPoint> = pairs
            .iter()
            .map(|&(fl, x)| ScatterPoint { actual: x, estimated: sampler.query(fl) })
            .collect();
        rows.push(score(
            &format!("sampling p={rate}"),
            sampler.memory_bytes(),
            &points,
        ));
    }
    SamplingComparison { rows }
}

fn score(scheme: &str, memory_bytes: usize, points: &[ScatterPoint]) -> ContenderRow {
    let large_flow_are = are_over_threshold(points, LARGE_FLOW_THRESHOLD)
        .map(|(_, a)| a)
        .unwrap_or(f64::NAN);
    let invisible = points.iter().filter(|p| p.estimated == 0.0).count();
    let large: Vec<&ScatterPoint> = points
        .iter()
        .filter(|p| p.actual >= LARGE_FLOW_THRESHOLD)
        .collect();
    let large_invisible = large.iter().filter(|p| p.estimated == 0.0).count();
    ContenderRow {
        scheme: scheme.to_string(),
        memory_bytes,
        large_flow_are,
        frac_invisible: invisible as f64 / points.len().max(1) as f64,
        frac_large_invisible: large_invisible as f64 / large.len().max(1) as f64,
    }
}

impl SamplingComparison {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "scheme",
            "memory KB",
            "large-flow ARE",
            "flows reading 0",
            "large flows reading 0",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.scheme.clone(),
                f(r.memory_bytes as f64 / 1024.0),
                pct(r.large_flow_are),
                pct(r.frac_invisible),
                pct(r.frac_large_invisible),
            ]);
        }
        format!(
            "Extension — CAESAR vs NetFlow-style sampling at equal memory (§2.2)\n{}\
             (A CAESAR zero is a noisy measurement clamped at zero; a sampler\n\
             zero is a structurally invisible flow that was never recorded.)\n",
            t.render()
        )
    }

    /// CSV export.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut c = Csv::new(&[
            "scheme",
            "memory_bytes",
            "large_flow_are",
            "frac_invisible",
            "frac_large_invisible",
        ]);
        for r in &self.rows {
            c.row(&[
                r.scheme.clone(),
                r.memory_bytes.to_string(),
                format!("{:.4}", r.large_flow_are),
                format!("{:.4}", r.frac_invisible),
                format!("{:.4}", r.frac_large_invisible),
            ]);
        }
        vec![("ext_sampling.csv".into(), c.to_string())]
    }
}

/// One row of the Counter Braids comparison.
#[derive(Debug, Clone)]
pub struct BraidsRow {
    /// Scheme label.
    pub scheme: String,
    /// Memory in bits.
    pub memory_bits: u64,
    /// ARE over large flows.
    pub large_flow_are: f64,
    /// ARE over all flows.
    pub all_flow_are: f64,
    /// Off-chip accesses per packet (the construction-phase cost).
    pub accesses_per_packet: f64,
}

/// Result of the Counter Braids comparison.
#[derive(Debug, Clone)]
pub struct BraidsComparison {
    /// CAESAR, then Counter Braids at equal and at generous memory.
    pub rows: Vec<BraidsRow>,
}

/// CAESAR vs Counter Braids (§2.1, refs [21, 25, 26]).
///
/// Quantifies both criticisms the paper levels at braids: every packet
/// costs `k1` off-chip read-modify-writes (vs CAESAR's ~0.1 amortized
/// writes), and decodability needs > 4 bits per flow — at CAESAR's
/// memory budget (< 1 bit per flow) the braid is hopelessly overloaded,
/// while in its decodable regime (~38 bits/flow for a regular braid) it
/// decodes almost exactly.
pub fn braids_comparison(scale: Scale) -> BraidsComparison {
    let shared = trace_for(scale);
    let (trace, truth) = (&shared.0, &shared.1);
    let mut pairs: Vec<(u64, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
    pairs.sort_unstable();
    let ids: Vec<u64> = pairs.iter().map(|&(f, _)| f).collect();

    let mut rows = Vec::new();

    // CAESAR reference.
    let cfg = caesar_config(scale);
    let sketch = run_caesar(cfg, trace);
    let st = sketch.stats();
    let points: Vec<ScatterPoint> = pairs
        .iter()
        .map(|&(fl, x)| ScatterPoint {
            actual: x,
            estimated: sketch.estimate(fl, Estimator::Csm).clamped(),
        })
        .collect();
    rows.push(BraidsRow {
        scheme: "CAESAR (CSM)".into(),
        memory_bits: cfg.counters as u64 * cfg.counter_bits as u64,
        large_flow_are: are_over_threshold(&points, LARGE_FLOW_THRESHOLD)
            .map(|(_, a)| a)
            .unwrap_or(f64::NAN),
        all_flow_are: metrics::AccuracyReport::from_points(&points).avg_relative_error,
        accesses_per_packet: st.sram_writes as f64 * 2.0 / trace.num_packets() as f64,
    });

    // Counter Braids at equal memory and in its decodable regime. A
    // regular k1 = 3 braid with min-sum decoding needs roughly three
    // layer-1 counters per flow (the optimized irregular graphs of the
    // original paper do better); with 8-bit layer-1 counters and a
    // layer-2 sized for the carries that is ≈ 38 bits per flow.
    let budget_bits = cfg.counters as u64 * cfg.counter_bits as u64;
    let q = truth.len() as f64;
    for (label, m1, m2) in [
        (
            "equal memory",
            (budget_bits as f64 * 0.8 / 8.0) as usize,
            ((budget_bits as f64 * 0.2 / 56.0) as usize).max(2),
        ),
        ("decodable, ~38 bits/flow", (q * 3.0) as usize, ((q * 0.25) as usize).max(2)),
    ] {
        let bcfg = BraidsConfig {
            layer1_counters: m1.max(4),
            layer2_counters: m2,
            ..BraidsConfig::default()
        };
        let mut cb = CounterBraids::new(bcfg);
        for p in &trace.packets {
            cb.record(p.flow);
        }
        let est = cb.decode(&ids, 100);
        let points: Vec<ScatterPoint> = pairs
            .iter()
            .zip(&est)
            .map(|(&(_, x), &e)| ScatterPoint { actual: x, estimated: e })
            .collect();
        rows.push(BraidsRow {
            scheme: format!("Counter Braids ({label})"),
            memory_bits: bcfg.memory_bits(),
            large_flow_are: are_over_threshold(&points, LARGE_FLOW_THRESHOLD)
                .map(|(_, a)| a)
                .unwrap_or(f64::NAN),
            all_flow_are: metrics::AccuracyReport::from_points(&points).avg_relative_error,
            accesses_per_packet: cb.stats().accesses as f64 / trace.num_packets() as f64,
        });
    }

    // VHC at equal memory: the §2.1 one-access-per-packet contender.
    let m = ((budget_bits / 5) as usize).max(512);
    let s_virtual = 256usize.min((m / 2).next_power_of_two() / 2).max(16);
    let mut vhc = baselines::Vhc::new(baselines::VhcConfig {
        registers: m,
        virtual_registers: s_virtual,
        seed: 0x7AC7,
    });
    for p in &trace.packets {
        vhc.record(p.flow);
    }
    let total = vhc.total_estimate();
    let points: Vec<ScatterPoint> = pairs
        .iter()
        .map(|&(fl, x)| ScatterPoint { actual: x, estimated: vhc.query_with_total(fl, total) })
        .collect();
    rows.push(BraidsRow {
        scheme: format!("VHC (s={s_virtual}, equal memory)"),
        memory_bits: vhc.config().memory_bits(),
        large_flow_are: are_over_threshold(&points, LARGE_FLOW_THRESHOLD)
            .map(|(_, a)| a)
            .unwrap_or(f64::NAN),
        all_flow_are: metrics::AccuracyReport::from_points(&points).avg_relative_error,
        accesses_per_packet: 1.0,
    });
    BraidsComparison { rows }
}

impl BraidsComparison {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "scheme",
            "memory KB",
            "large-flow ARE",
            "all-flow ARE",
            "off-chip accesses/pkt",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.scheme.clone(),
                f(r.memory_bits as f64 / 8192.0),
                pct(r.large_flow_are),
                pct(r.all_flow_are),
                f(r.accesses_per_packet),
            ]);
        }
        format!(
            "Extension — CAESAR vs Counter Braids vs VHC (§2.1)\n{}",
            t.render()
        )
    }

    /// CSV export.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut c = Csv::new(&[
            "scheme",
            "memory_bits",
            "large_flow_are",
            "all_flow_are",
            "accesses_per_packet",
        ]);
        for r in &self.rows {
            c.row(&[
                r.scheme.clone(),
                r.memory_bits.to_string(),
                format!("{:.4}", r.large_flow_are),
                format!("{:.4}", r.all_flow_are),
                format!("{:.4}", r.accesses_per_packet),
            ]);
        }
        vec![("ext_braids.csv".into(), c.to_string())]
    }
}

/// One scheme's moments at one operating point.
#[derive(Debug, Clone, Copy)]
pub struct Moments {
    /// Mean estimate over trials.
    pub mean: f64,
    /// Relative standard deviation.
    pub rel_std: f64,
}

/// One operating point of the compression-family comparison.
#[derive(Debug, Clone, Copy)]
pub struct CompressionPoint {
    /// True count applied.
    pub true_count: u64,
    /// SAC (mantissa/exponent).
    pub sac: Moments,
    /// DISCO geometric scale, CASE-style bulk updates.
    pub disco: Moments,
    /// ANLS geometric-decay sampling.
    pub anls: Moments,
    /// CEDAR shared estimator ladder.
    pub cedar: Moments,
}

/// Result of the compression-family comparison.
#[derive(Debug, Clone)]
pub struct CompressionComparison {
    /// Bits per counter both schemes were given.
    pub bits: u32,
    /// The sweep, increasing true counts.
    pub points: Vec<CompressionPoint>,
}

/// SAC vs DISCO at equal counter width (the §2.1 single-counter
/// compression family).
///
/// Both compressors get `bits`-wide counters spanning 10⁷ and count the
/// same workloads; the table shows that both stay unbiased while their
/// relative noise grows with the count — the structural weakness that
/// motivates shared-counter schemes like RCS/CAESAR in the first place.
pub fn compression_comparison(bits: u32, trials: usize) -> CompressionComparison {
    use support::rand::{rngs::StdRng, SeedableRng};
    let span = 1e7;
    // SAC: give 4 bits to the exponent, the rest to the mantissa, and
    // the smallest stride that still covers the span.
    let mode_bits = 4u32;
    let a_bits = bits - mode_bits;
    let mut r = 1;
    while baselines::SacCounter::new(a_bits, mode_bits, r).max_value() < span {
        r += 1;
    }
    let disco = baselines::DiscoScale::for_bits(bits, span);
    // CEDAR: pick the largest delta... the ladder must span `span`;
    // search the smallest delta that still covers it.
    let mut delta = 0.01f64;
    while baselines::CedarScale::new(bits, delta).max_value() < span {
        delta *= 1.3;
        assert!(delta < 1.0, "CEDAR cannot span {span} at {bits} bits");
    }
    let cedar = baselines::CedarScale::new(bits, delta);
    let anls_proto = baselines::AnlsCounter::for_range(bits, span);
    let mut rng = StdRng::seed_from_u64(0xC03B);

    let stats = |vals: &[f64]| {
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / vals.len() as f64;
        Moments { mean, rel_std: var.sqrt() / mean.max(1e-9) }
    };

    let mut points = Vec::new();
    for exp in 1..=6u32 {
        let true_count = 10u64.pow(exp);
        let mut sac_vals = Vec::with_capacity(trials);
        let mut disco_vals = Vec::with_capacity(trials);
        let mut anls_vals = Vec::with_capacity(trials);
        let mut cedar_vals = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut sac = baselines::SacCounter::new(a_bits, mode_bits, r);
            sac.add(true_count, &mut rng);
            sac_vals.push(sac.estimate());
            // Bulk-apply in eviction-sized chunks like CASE would.
            let mut c = 0u64;
            let mut left = true_count;
            while left > 0 {
                let chunk = left.min(54);
                c = disco.apply_bulk(c, chunk, &mut rng);
                left -= chunk;
            }
            disco_vals.push(disco.decompress(c));
            let mut anls = anls_proto;
            anls.add(true_count, &mut rng);
            anls_vals.push(anls.estimate());
            cedar_vals.push(cedar.estimate(cedar.add(0, true_count, &mut rng)));
        }
        points.push(CompressionPoint {
            true_count,
            sac: stats(&sac_vals),
            disco: stats(&disco_vals),
            anls: stats(&anls_vals),
            cedar: stats(&cedar_vals),
        });
    }
    CompressionComparison { bits, points }
}

impl CompressionComparison {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "true count",
            "SAC mean",
            "SAC rel sigma",
            "DISCO mean",
            "DISCO rel sigma",
            "ANLS mean",
            "ANLS rel sigma",
            "CEDAR mean",
            "CEDAR rel sigma",
        ]);
        for p in &self.points {
            t.row(vec![
                p.true_count.to_string(),
                f(p.sac.mean),
                pct(p.sac.rel_std),
                f(p.disco.mean),
                pct(p.disco.rel_std),
                f(p.anls.mean),
                pct(p.anls.rel_std),
                f(p.cedar.mean),
                pct(p.cedar.rel_std),
            ]);
        }
        format!(
            "Extension — single-counter compression family at {} bits (§2.1)\n{}",
            self.bits,
            t.render()
        )
    }

    /// CSV export.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut c = Csv::new(&[
            "true_count",
            "sac_mean",
            "sac_rel_std",
            "disco_mean",
            "disco_rel_std",
            "anls_mean",
            "anls_rel_std",
            "cedar_mean",
            "cedar_rel_std",
        ]);
        for p in &self.points {
            c.row(&[
                p.true_count.to_string(),
                format!("{:.2}", p.sac.mean),
                format!("{:.4}", p.sac.rel_std),
                format!("{:.2}", p.disco.mean),
                format!("{:.4}", p.disco.rel_std),
                format!("{:.2}", p.anls.mean),
                format!("{:.4}", p.anls.rel_std),
                format!("{:.2}", p.cedar.mean),
                format!("{:.4}", p.cedar.rel_std),
            ]);
        }
        vec![("ext_compression.csv".into(), c.to_string())]
    }
}

/// One row of the burst-tolerance study.
#[derive(Debug, Clone)]
pub struct BurstRow {
    /// Arrival process label.
    pub process: String,
    /// CAESAR pipeline ns/packet.
    pub caesar_ns_pkt: f64,
    /// CAESAR stall fraction.
    pub caesar_stall: f64,
    /// RCS pipeline ns/packet.
    pub rcs_ns_pkt: f64,
    /// RCS stall fraction.
    pub rcs_stall: f64,
}

/// Result of the burst-tolerance study.
#[derive(Debug, Clone)]
pub struct BurstTolerance {
    /// Average inter-arrival spacing used (ns).
    pub mean_spacing_ns: f64,
    /// Rows per arrival process.
    pub rows: Vec<BurstRow>,
}

/// Burst tolerance: how much arrival burstiness the cache front end
/// absorbs (extension; the paper models constant line-rate arrivals
/// only).
///
/// The average rate is set so cache-free RCS *just* keeps up under
/// constant arrivals; Poisson and on/off bursts at the same average
/// rate then expose the difference: CAESAR's writeback FIFO rides the
/// bursts out while RCS's per-packet off-chip access stalls.
pub fn burst_tolerance(scale: Scale) -> BurstTolerance {
    use flowtrace::timing::ArrivalProcess;
    use memsim::{PacketWork, Pipeline};

    let shared = crate::runner::bursty_trace_for(scale);
    let trace = &shared.0;
    let n = trace.packets.len().min(300_000);
    let prefix = &trace.packets[..n];

    // RCS work: 2 port ops per packet at 10 ns = 20 ns service. Give
    // arrivals a 24 ns average so constant arrivals are sustainable.
    let mean_ns = 24.0;
    let processes = [
        ("constant", ArrivalProcess::Constant { spacing_ns: mean_ns }),
        ("poisson", ArrivalProcess::Poisson { mean_ns, seed: 0xB127 }),
        (
            "on/off bursts (64 @ line rate)",
            ArrivalProcess::OnOff { mean_ns, on_ns: 1.0, burst_len: 64 },
        ),
    ];

    let pl = Pipeline { arrival_ns: mean_ns, ..Pipeline::default() };
    let k = crate::runner::caesar_config(scale).k as u32;
    let mut rows = Vec::new();
    for (label, proc_) in processes {
        let ts = proc_.timestamps(n);
        // CAESAR work stream: cache replay.
        let mut cache = cachesim::CacheTable::new(cachesim::CacheConfig::lru(
            scale.cache_entries(),
            (2.0 * crate::scale::PAPER_MEAN_FLOW).floor() as u64,
        ));
        let caesar = pl.run_timed(prefix.iter().zip(&ts).map(|(p, &t)| {
            let w = match cache.record(p.flow) {
                Some(_) => PacketWork { writebacks: k * 2, compute_ns: 0.0 },
                None => PacketWork::HIT,
            };
            (t, w)
        }));
        let rcs = pl.run_timed(
            ts.iter()
                .map(|&t| (t, PacketWork { writebacks: 2, compute_ns: 0.0 })),
        );
        rows.push(BurstRow {
            process: label.to_string(),
            caesar_ns_pkt: caesar.ns_per_packet(),
            caesar_stall: caesar.stall_fraction(),
            rcs_ns_pkt: rcs.ns_per_packet(),
            rcs_stall: rcs.stall_fraction(),
        });
    }
    BurstTolerance { mean_spacing_ns: mean_ns, rows }
}

impl BurstTolerance {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "arrival process",
            "CAESAR ns/pkt",
            "CAESAR stall",
            "RCS ns/pkt",
            "RCS stall",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.process.clone(),
                f(r.caesar_ns_pkt),
                pct(r.caesar_stall),
                f(r.rcs_ns_pkt),
                pct(r.rcs_stall),
            ]);
        }
        format!(
            "Extension — burst tolerance at {} ns average arrivals\n{}",
            f(self.mean_spacing_ns),
            t.render()
        )
    }

    /// CSV export.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut c = Csv::new(&[
            "process",
            "caesar_ns_pkt",
            "caesar_stall",
            "rcs_ns_pkt",
            "rcs_stall",
        ]);
        for r in &self.rows {
            c.row(&[
                r.process.clone(),
                format!("{:.2}", r.caesar_ns_pkt),
                format!("{:.4}", r.caesar_stall),
                format!("{:.2}", r.rcs_ns_pkt),
                format!("{:.4}", r.rcs_stall),
            ]);
        }
        vec![("ext_bursts.csv".into(), c.to_string())]
    }
}

/// One tail family's headline numbers.
#[derive(Debug, Clone)]
pub struct TailRow {
    /// Tail family label.
    pub tail: String,
    /// Realized mean flow size.
    pub mean_flow: f64,
    /// Fraction of flows below the mean.
    pub frac_below_mean: f64,
    /// CAESAR large-flow ARE.
    pub caesar_are: f64,
    /// Lossy RCS (2/3) large-flow ARE.
    pub rcs_lossy_are: f64,
}

/// Result of the tail-sensitivity study.
#[derive(Debug, Clone)]
pub struct TailSensitivity {
    /// One row per tail family.
    pub rows: Vec<TailRow>,
}

/// Does the headline comparison survive a different heavy-tail family?
///
/// The paper's trace is "heavy tailed" with no stated family; we
/// default to a truncated power law. This study reruns the CAESAR vs
/// lossy-RCS comparison with a log-normal tail at the same mean, so
/// the conclusion demonstrably does not hinge on the modelling choice.
pub fn tail_sensitivity(scale: Scale) -> TailSensitivity {
    use baselines::{LossModel, Rcs, RcsConfig};
    use flowtrace::synth::{SynthConfig, TailFamily, TraceGenerator};

    let mut rows = Vec::new();
    for (label, tail) in [
        ("power law", TailFamily::PowerLaw),
        ("log-normal (sigma=2)", TailFamily::LogNormal { sigma_log: 2.0 }),
    ] {
        let base = scale.synth_config();
        let (trace, truth) = TraceGenerator::new(SynthConfig { tail, ..base }).generate();
        let mut pairs: Vec<(u64, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
        pairs.sort_unstable();

        let sketch = run_caesar(caesar_config(scale), &trace);
        let caesar_pts: Vec<ScatterPoint> = pairs
            .iter()
            .map(|&(fl, x)| ScatterPoint {
                actual: x,
                estimated: sketch.estimate(fl, Estimator::Csm).clamped(),
            })
            .collect();

        let mut rcs = Rcs::new(RcsConfig {
            counters: scale.caesar_counters(),
            k: 3,
            loss: LossModel::Uniform(2.0 / 3.0),
            seed: 0x7A11,
        });
        for p in &trace.packets {
            rcs.record(p.flow);
        }
        let rcs_pts: Vec<ScatterPoint> = pairs
            .iter()
            .map(|&(fl, x)| ScatterPoint { actual: x, estimated: rcs.query(fl) })
            .collect();

        let sizes: Vec<u64> = pairs.iter().map(|&(_, x)| x).collect();
        let stats = flowtrace::stats::FlowStats::from_sizes(&sizes);
        rows.push(TailRow {
            tail: label.into(),
            mean_flow: stats.mean,
            frac_below_mean: stats.frac_below_mean,
            caesar_are: are_over_threshold(&caesar_pts, LARGE_FLOW_THRESHOLD)
                .map(|(_, a)| a)
                .unwrap_or(f64::NAN),
            rcs_lossy_are: are_over_threshold(&rcs_pts, LARGE_FLOW_THRESHOLD)
                .map(|(_, a)| a)
                .unwrap_or(f64::NAN),
        });
    }
    TailSensitivity { rows }
}

impl TailSensitivity {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "tail family",
            "mean flow",
            "below mean",
            "CAESAR ARE",
            "RCS(2/3) ARE",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.tail.clone(),
                f(r.mean_flow),
                pct(r.frac_below_mean),
                pct(r.caesar_are),
                pct(r.rcs_lossy_are),
            ]);
        }
        format!(
            "Extension — tail-family sensitivity (large-flow ARE)\n{}",
            t.render()
        )
    }

    /// CSV export.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut c = Csv::new(&[
            "tail",
            "mean_flow",
            "frac_below_mean",
            "caesar_are",
            "rcs_lossy_are",
        ]);
        for r in &self.rows {
            c.row(&[
                r.tail.clone(),
                format!("{:.2}", r.mean_flow),
                format!("{:.4}", r.frac_below_mean),
                format!("{:.4}", r.caesar_are),
                format!("{:.4}", r.rcs_lossy_are),
            ]);
        }
        vec![("ext_tails.csv".into(), c.to_string())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_ordering_survives_a_lognormal_tail() {
        let r = tail_sensitivity(Scale::Small);
        for row in &r.rows {
            assert!(
                row.caesar_are < row.rcs_lossy_are,
                "{}: CAESAR {} vs lossy RCS {}",
                row.tail,
                row.caesar_are,
                row.rcs_lossy_are
            );
        }
        // The lossy-RCS error tracks the loss rate under both tails.
        for row in &r.rows {
            assert!((row.rcs_lossy_are - 2.0 / 3.0).abs() < 0.15, "{row:?}");
        }
    }

    #[test]
    fn bursts_hurt_the_cache_free_scheme_most() {
        let r = burst_tolerance(Scale::Tiny);
        let constant = &r.rows[0];
        let bursty = &r.rows[2];
        // Constant arrivals at the chosen rate: both keep up.
        assert!(constant.rcs_stall < 0.05, "RCS constant stall {}", constant.rcs_stall);
        // Bursts at the same average rate: RCS stalls hard, CAESAR far less.
        assert!(bursty.rcs_stall > 0.2, "RCS bursty stall {}", bursty.rcs_stall);
        assert!(
            bursty.caesar_stall < bursty.rcs_stall,
            "CAESAR {} vs RCS {}",
            bursty.caesar_stall,
            bursty.rcs_stall
        );
    }

    #[test]
    fn compression_family_is_unbiased_but_noisy() {
        let r = compression_comparison(12, 60);
        for p in &r.points {
            for (name, m) in [
                ("SAC", p.sac),
                ("DISCO", p.disco),
                ("ANLS", p.anls),
                ("CEDAR", p.cedar),
            ] {
                let bias = (m.mean - p.true_count as f64).abs() / p.true_count as f64;
                // Unbiased within sampling noise (150 trials).
                let slack = 0.05 + 4.0 * m.rel_std / (60f64).sqrt();
                assert!(bias < slack, "{name} bias {bias} at {}", p.true_count);
            }
        }
        // Relative noise at 10^6 must be substantial — the family's
        // structural cost.
        let last = r.points.last().expect("sweep");
        assert!(last.sac.rel_std > 0.02 || last.disco.rel_std > 0.02);
    }

    #[test]
    fn braids_need_more_memory_but_decode_exactly_when_given_it() {
        let r = braids_comparison(Scale::Tiny);
        let caesar = &r.rows[0];
        let equal = &r.rows[1];
        let generous = &r.rows[2];
        // Equal memory: the braid is overloaded — far worse than CAESAR
        // on large flows.
        assert!(
            equal.large_flow_are > 2.0 * caesar.large_flow_are,
            "equal-memory braid ARE {} vs CAESAR {}",
            equal.large_flow_are,
            caesar.large_flow_are
        );
        // Generous memory: near-exact decoding.
        assert!(
            generous.all_flow_are < 0.1,
            "generous braid all-flow ARE {}",
            generous.all_flow_are
        );
        // But the paper's cost criticism stands: ≥ k1 accesses/packet.
        assert!(equal.accesses_per_packet >= 3.0);
        assert!(caesar.accesses_per_packet < 1.0);
    }

    #[test]
    fn caesar_sees_every_large_flow() {
        let r = sampling_comparison(Scale::Small);
        let caesar = &r.rows[0];
        assert_eq!(caesar.frac_large_invisible, 0.0, "{}", r.render());
        // The shared-counter structure makes *every* flow visible
        // (estimates can be clamped to 0, but large flows never are).
        assert!(caesar.large_flow_are < 0.6);
    }

    #[test]
    fn low_rate_sampling_filters_mice_as_paper_argues() {
        let r = sampling_comparison(Scale::Small);
        let low = r
            .rows
            .iter()
            .find(|row| row.scheme.contains("0.001"))
            .expect("rate swept");
        // §2.2's criticism quantified: at p = 0.1% the vast majority of
        // flows are invisible.
        assert!(low.frac_invisible > 0.8, "invisible = {}", low.frac_invisible);
    }

    #[test]
    fn render_lists_all_contenders() {
        let r = sampling_comparison(Scale::Tiny);
        assert_eq!(r.rows.len(), 4);
        assert!(r.render().contains("CAESAR"));
    }
}
