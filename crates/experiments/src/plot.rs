//! Minimal self-contained SVG plotting.
//!
//! Enough of a chart library to regenerate the paper's figures as
//! actual images — log-log scatter plots (Figs. 4–7 panels a/b), log-x
//! error curves (panels c/d), and log-log line charts (Fig. 8) — with
//! no dependencies beyond `std::fmt`. Each figure module feeds its CSV
//! series through these helpers; the CLI writes the `.svg` files next
//! to the CSVs.

use std::fmt::Write as _;

/// Where an axis is linear or base-10 logarithmic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisScale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (values must be positive; zeros are
    /// clamped to the axis minimum).
    Log,
}

/// One series of points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
    /// Stroke/fill color (any SVG color).
    pub color: String,
    /// Draw a connecting line (otherwise scatter markers only).
    pub line: bool,
}

impl Series {
    /// A scatter series.
    pub fn scatter(label: &str, color: &str, points: Vec<(f64, f64)>) -> Self {
        Self { label: label.into(), points, color: color.into(), line: false }
    }

    /// A line series.
    pub fn line(label: &str, color: &str, points: Vec<(f64, f64)>) -> Self {
        Self { label: label.into(), points, color: color.into(), line: true }
    }
}

/// A chart under construction.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Title rendered above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis scale.
    pub x_scale: AxisScale,
    /// Y-axis scale.
    pub y_scale: AxisScale,
    /// Data series.
    pub series: Vec<Series>,
    /// Draw the y = x reference line (the accuracy figures' guide).
    pub diagonal: bool,
}

const W: f64 = 640.0;
const H: f64 = 480.0;
const ML: f64 = 70.0; // margins
const MR: f64 = 20.0;
const MT: f64 = 40.0;
const MB: f64 = 55.0;

impl Chart {
    /// New chart with linear axes.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_scale: AxisScale::Linear,
            y_scale: AxisScale::Linear,
            series: Vec::new(),
            diagonal: false,
        }
    }

    /// Switch both axes to log scale.
    pub fn log_log(mut self) -> Self {
        self.x_scale = AxisScale::Log;
        self.y_scale = AxisScale::Log;
        self
    }

    /// Switch the x axis to log scale.
    pub fn log_x(mut self) -> Self {
        self.x_scale = AxisScale::Log;
        self
    }

    /// Enable the y = x reference diagonal.
    pub fn with_diagonal(mut self) -> Self {
        self.diagonal = true;
        self
    }

    /// Add a series.
    pub fn push(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    fn bounds(&self) -> ((f64, f64), (f64, f64)) {
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                xs.push(x);
                ys.push(y);
            }
        }
        let clean = |v: &mut Vec<f64>, log: bool| {
            v.retain(|x| x.is_finite() && (!log || *x > 0.0));
            if v.is_empty() {
                v.extend([1.0, 10.0]);
            }
        };
        clean(&mut xs, self.x_scale == AxisScale::Log);
        clean(&mut ys, self.y_scale == AxisScale::Log);
        let min = |v: &[f64]| v.iter().copied().fold(f64::MAX, f64::min);
        let max = |v: &[f64]| v.iter().copied().fold(f64::MIN, f64::max);
        let pad = |lo: f64, hi: f64, log: bool| {
            if log {
                (lo / 1.5, hi * 1.5)
            } else if (hi - lo).abs() < f64::EPSILON {
                (lo - 1.0, hi + 1.0)
            } else {
                let m = 0.05 * (hi - lo);
                (lo - m, hi + m)
            }
        };
        (
            pad(min(&xs), max(&xs), self.x_scale == AxisScale::Log),
            pad(min(&ys), max(&ys), self.y_scale == AxisScale::Log),
        )
    }

    fn project(v: f64, (lo, hi): (f64, f64), scale: AxisScale, out_lo: f64, out_hi: f64) -> f64 {
        let t = match scale {
            AxisScale::Linear => (v - lo) / (hi - lo),
            AxisScale::Log => {
                let v = v.max(lo.max(f64::MIN_POSITIVE));
                (v.ln() - lo.ln()) / (hi.ln() - lo.ln())
            }
        };
        out_lo + t.clamp(0.0, 1.0) * (out_hi - out_lo)
    }

    fn ticks((lo, hi): (f64, f64), scale: AxisScale) -> Vec<f64> {
        match scale {
            AxisScale::Log => {
                let mut t = Vec::new();
                let mut d = 10f64.powf(lo.max(f64::MIN_POSITIVE).log10().floor());
                while d <= hi {
                    if d >= lo {
                        t.push(d);
                    }
                    d *= 10.0;
                }
                if t.is_empty() {
                    t.push(lo);
                    t.push(hi);
                }
                t
            }
            AxisScale::Linear => {
                let span = hi - lo;
                let step = 10f64.powf(span.log10().floor());
                let step = if span / step >= 5.0 { step } else { step / 2.0 };
                let mut t = Vec::new();
                let mut v = (lo / step).ceil() * step;
                while v <= hi {
                    t.push(v);
                    v += step;
                }
                t
            }
        }
    }

    fn fmt_tick(v: f64) -> String {
        if v == 0.0 {
            "0".into()
        } else if v.abs() >= 10_000.0 || v.abs() < 0.01 {
            format!("{v:.0e}")
        } else if v.fract().abs() < 1e-9 {
            format!("{v:.0}")
        } else {
            format!("{v:.2}")
        }
    }

    /// Render the chart to an SVG document.
    pub fn render_svg(&self) -> String {
        let (xb, yb) = self.bounds();
        let px = |x: f64| Self::project(x, xb, self.x_scale, ML, W - MR);
        let py = |y: f64| Self::project(y, yb, self.y_scale, H - MB, MT);

        let mut s = String::new();
        let _ = writeln!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
        );
        let _ = writeln!(s, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
        let _ = writeln!(
            s,
            r#"<text x="{}" y="24" text-anchor="middle" font-family="sans-serif" font-size="15">{}</text>"#,
            W / 2.0,
            xml_escape(&self.title)
        );

        // Axes frame.
        let _ = writeln!(
            s,
            r##"<rect x="{ML}" y="{MT}" width="{}" height="{}" fill="none" stroke="#333"/>"##,
            W - ML - MR,
            H - MT - MB
        );

        // Ticks and grid.
        for t in Self::ticks(xb, self.x_scale) {
            let x = px(t);
            let _ = writeln!(
                s,
                r##"<line x1="{x:.1}" y1="{MT}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##,
                H - MB
            );
            let _ = writeln!(
                s,
                r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle" font-family="sans-serif" font-size="11">{}</text>"#,
                H - MB + 16.0,
                Self::fmt_tick(t)
            );
        }
        for t in Self::ticks(yb, self.y_scale) {
            let y = py(t);
            let _ = writeln!(
                s,
                r##"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
                W - MR
            );
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{y:.1}" text-anchor="end" font-family="sans-serif" font-size="11">{}</text>"#,
                ML - 6.0,
                Self::fmt_tick(t)
            );
        }

        // Axis labels.
        let _ = writeln!(
            s,
            r#"<text x="{}" y="{}" text-anchor="middle" font-family="sans-serif" font-size="13">{}</text>"#,
            (ML + W - MR) / 2.0,
            H - 12.0,
            xml_escape(&self.x_label)
        );
        let _ = writeln!(
            s,
            r#"<text x="16" y="{}" text-anchor="middle" font-family="sans-serif" font-size="13" transform="rotate(-90 16 {})">{}</text>"#,
            (MT + H - MB) / 2.0,
            (MT + H - MB) / 2.0,
            xml_escape(&self.y_label)
        );

        // y = x reference.
        if self.diagonal {
            let lo = xb.0.max(yb.0);
            let hi = xb.1.min(yb.1);
            if hi > lo {
                let _ = writeln!(
                    s,
                    r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#999" stroke-dasharray="5,4"/>"##,
                    px(lo),
                    py(lo),
                    px(hi),
                    py(hi)
                );
            }
        }

        // Series.
        for series in &self.series {
            if series.line {
                let mut d = String::new();
                for (i, &(x, y)) in series.points.iter().enumerate() {
                    let _ = write!(
                        d,
                        "{}{:.1},{:.1} ",
                        if i == 0 { "M" } else { "L" },
                        px(x),
                        py(y)
                    );
                }
                let _ = writeln!(
                    s,
                    r#"<path d="{}" fill="none" stroke="{}" stroke-width="1.8"/>"#,
                    d.trim_end(),
                    series.color
                );
            }
            for &(x, y) in &series.points {
                let _ = writeln!(
                    s,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="2.2" fill="{}" fill-opacity="0.55"/>"#,
                    px(x),
                    py(y),
                    series.color
                );
            }
        }

        // Legend.
        let mut ly = MT + 14.0;
        for series in &self.series {
            let _ = writeln!(
                s,
                r#"<circle cx="{:.1}" cy="{:.1}" r="4" fill="{}"/>"#,
                ML + 14.0,
                ly - 4.0,
                series.color
            );
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{ly:.1}" font-family="sans-serif" font-size="12">{}</text>"#,
                ML + 24.0,
                xml_escape(&series.label)
            );
            ly += 18.0;
        }

        s.push_str("</svg>\n");
        s
    }
}

fn xml_escape(t: &str) -> String {
    t.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// A categorical bar chart (used for the scheme-comparison figures).
#[derive(Debug, Clone)]
pub struct BarChart {
    /// Title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Bars: (category label, value).
    pub bars: Vec<(String, f64)>,
    /// Log-scale the y axis (values must be positive).
    pub log_y: bool,
}

impl BarChart {
    /// New bar chart.
    pub fn new(title: &str, y_label: &str) -> Self {
        Self {
            title: title.into(),
            y_label: y_label.into(),
            bars: Vec::new(),
            log_y: false,
        }
    }

    /// Log-scale the y axis.
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Add a bar.
    pub fn bar(mut self, label: &str, value: f64) -> Self {
        self.bars.push((label.into(), value));
        self
    }

    /// Render to SVG.
    pub fn render_svg(&self) -> String {
        const PALETTE: [&str; 8] = [
            "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf",
            "#7f7f7f",
        ];
        let scale = if self.log_y { AxisScale::Log } else { AxisScale::Linear };
        let values: Vec<f64> = self
            .bars
            .iter()
            .map(|&(_, v)| if self.log_y { v.max(f64::MIN_POSITIVE) } else { v })
            .collect();
        let hi = values.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
        let lo = if self.log_y {
            values.iter().copied().fold(f64::MAX, f64::min).min(hi) / 1.5
        } else {
            0.0
        };
        let yb = (lo, hi * 1.1);
        let py = |v: f64| Chart::project(v, yb, scale, H - MB, MT);

        let mut s = String::new();
        let _ = writeln!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
        );
        let _ = writeln!(s, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
        let _ = writeln!(
            s,
            r#"<text x="{}" y="24" text-anchor="middle" font-family="sans-serif" font-size="15">{}</text>"#,
            W / 2.0,
            xml_escape(&self.title)
        );
        let _ = writeln!(
            s,
            r##"<rect x="{ML}" y="{MT}" width="{}" height="{}" fill="none" stroke="#333"/>"##,
            W - ML - MR,
            H - MT - MB
        );
        for t in Chart::ticks(yb, scale) {
            let y = py(t);
            let _ = writeln!(
                s,
                r##"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
                W - MR
            );
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{y:.1}" text-anchor="end" font-family="sans-serif" font-size="11">{}</text>"#,
                ML - 6.0,
                Chart::fmt_tick(t)
            );
        }
        let _ = writeln!(
            s,
            r#"<text x="16" y="{}" text-anchor="middle" font-family="sans-serif" font-size="13" transform="rotate(-90 16 {})">{}</text>"#,
            (MT + H - MB) / 2.0,
            (MT + H - MB) / 2.0,
            xml_escape(&self.y_label)
        );

        let n = self.bars.len().max(1) as f64;
        let span = W - ML - MR;
        let slot = span / n;
        let bar_w = slot * 0.6;
        for (i, (label, value)) in self.bars.iter().enumerate() {
            let v = if self.log_y { value.max(yb.0) } else { *value };
            let x = ML + i as f64 * slot + (slot - bar_w) / 2.0;
            let top = py(v);
            let _ = writeln!(
                s,
                r#"<rect x="{x:.1}" y="{top:.1}" width="{bar_w:.1}" height="{:.1}" fill="{}" fill-opacity="0.85"/>"#,
                (H - MB - top).max(0.0),
                PALETTE[i % PALETTE.len()]
            );
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-family="sans-serif" font-size="10">{}</text>"#,
                x + bar_w / 2.0,
                H - MB + 14.0,
                xml_escape(label)
            );
        }
        s.push_str("</svg>\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> Chart {
        Chart::new("test", "x", "y")
            .log_log()
            .with_diagonal()
            .push(Series::scatter("a", "#1f77b4", vec![(1.0, 1.2), (10.0, 9.0), (100.0, 140.0)]))
            .push(Series::line("b", "#d62728", vec![(1.0, 2.0), (100.0, 50.0)]))
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = sample_chart().render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Balanced text elements, both series present, a path for the
        // line series and circles for markers.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
        assert!(svg.contains("stroke-dasharray")); // diagonal
        assert!(svg.contains("<path"));
        assert!(svg.matches("<circle").count() >= 5);
    }

    #[test]
    fn log_axis_clamps_nonpositive() {
        let svg = Chart::new("t", "x", "y")
            .log_log()
            .push(Series::scatter("z", "red", vec![(0.0, 0.0), (10.0, 10.0)]))
            .render_svg();
        // Must not produce NaN coordinates.
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn empty_chart_still_renders() {
        let svg = Chart::new("empty", "x", "y").render_svg();
        assert!(svg.contains("</svg>"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn escape_special_characters() {
        let svg = Chart::new("a < b & c", "x", "y").render_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn linear_ticks_cover_range() {
        let ticks = Chart::ticks((0.0, 100.0), AxisScale::Linear);
        assert!(ticks.len() >= 3);
        assert!(ticks.iter().all(|&t| (0.0..=100.0).contains(&t)));
    }

    #[test]
    fn bar_chart_renders() {
        let svg = BarChart::new("schemes", "ARE")
            .bar("CAESAR", 0.34)
            .bar("RCS", 0.69)
            .bar("CASE", 1.0)
            .render_svg();
        assert!(svg.contains("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 2 + 3); // bg + frame + 3 bars
        assert!(svg.contains("CAESAR"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn log_bar_chart_handles_small_values() {
        let svg = BarChart::new("t", "v")
            .log_y()
            .bar("a", 0.001)
            .bar("b", 1000.0)
            .render_svg();
        assert!(!svg.contains("NaN"));
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn log_ticks_are_decades() {
        let ticks = Chart::ticks((1.0, 100_000.0), AxisScale::Log);
        assert_eq!(ticks, vec![1.0, 10.0, 100.0, 1000.0, 10_000.0, 100_000.0]);
    }
}
