//! Figure 8: processing time vs number of packets.
//!
//! Paper observations to reproduce (§6.4):
//! * below ≈ 10⁴ packets CASE is the most time-consuming (its DISCO
//!   compression needs power operations, including a one-time table
//!   setup);
//! * above ≈ 10⁴ packets RCS's per-packet off-chip access dominates
//!   and its curve crosses above CASE's;
//! * CAESAR is always fastest — the paper measures it on average 74.8%
//!   (up to 92.4%) faster than CASE and on average 75.5% (up to 90%)
//!   faster than RCS.
//!
//! The timing model is the event-tally model of [`memsim::cost`]: each
//! scheme processes a prefix of the trace and its countable events
//! (hashes, on-chip accesses, SRAM read-modify-writes, power
//! operations) are priced with the paper's latencies (DESIGN.md §7).
//! The sweep replays the bursty-order trace — real captures keep
//! flows temporally local, which is what any cache-assisted scheme
//! (CASE and CAESAR alike) exploits on hardware.

use crate::plot::{Chart, Series};
use crate::report::{f, pct, Csv, TextTable};
use crate::runner::{bursty_trace_for, caesar_config};
use crate::scale::{Scale, PAPER_MEAN_FLOW};
use baselines::{Case, CaseConfig, LossModel, Rcs, RcsConfig};
use caesar::Caesar;
use cachesim::{CacheConfig, CacheTable};
use memsim::fpga::FpgaSpec;
use memsim::{AccessCosts, CostTally, PacketWork, Pipeline, PipelineReport};

/// Simulated processing time of the three schemes at one packet count.
#[derive(Debug, Clone, Copy)]
pub struct TimePoint {
    /// Packets processed.
    pub packets: u64,
    /// CAESAR total time (ns).
    pub caesar_ns: f64,
    /// CASE total time (ns).
    pub case_ns: f64,
    /// RCS total time (ns).
    pub rcs_ns: f64,
}

/// Event-driven pipeline cross-check at the largest sweep point.
#[derive(Debug, Clone, Copy)]
pub struct PipelineCheck {
    /// Packets replayed.
    pub packets: u64,
    /// CAESAR pipeline outcome.
    pub caesar: PipelineReport,
    /// CASE pipeline outcome.
    pub case: PipelineReport,
    /// RCS pipeline outcome.
    pub rcs: PipelineReport,
}

/// Figure 8 result.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Sweep points, increasing packet count.
    pub points: Vec<TimePoint>,
    /// Event-driven pipeline model cross-check (stalls, FIFO depth).
    pub pipeline: PipelineCheck,
    /// Cost constants used.
    pub costs: AccessCosts,
    /// First sweep point where RCS becomes slower than CASE, if any.
    pub crossover_packets: Option<u64>,
    /// Mean of `1 − t_caesar/t_case` over the sweep.
    pub avg_speedup_vs_case: f64,
    /// Max of the same.
    pub max_speedup_vs_case: f64,
    /// Mean of `1 − t_caesar/t_rcs` over the sweep.
    pub avg_speedup_vs_rcs: f64,
    /// Max of the same.
    pub max_speedup_vs_rcs: f64,
}

/// Regenerate Figure 8 at the given scale.
pub fn run(scale: Scale) -> Fig8Result {
    let shared = bursty_trace_for(scale);
    let trace = &shared.0;
    let costs = AccessCosts::default();
    let max_flow = shared.1.values().copied().max().unwrap_or(1) as f64;

    let mut sweep: Vec<u64> = vec![
        1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000,
    ];
    sweep.retain(|&n| n <= trace.num_packets() as u64);
    if sweep.is_empty() {
        sweep.push(trace.num_packets() as u64);
    }

    let mut points = Vec::with_capacity(sweep.len());
    for &n in &sweep {
        let prefix = &trace.packets[..n as usize];

        // --- CAESAR ---
        let mut caesar = Caesar::new(caesar_config(scale));
        for p in prefix {
            caesar.record(p.flow);
        }
        caesar.finish();
        let cs = caesar.stats();
        let caesar_tally =
            CostTally::caesar(n, cs.evictions, caesar.config().k as u64, cs.sram_writes);

        // --- CASE ---
        let mut case = Case::new(CaseConfig {
            counters: shared.1.len(),
            counter_bits: 2,
            max_expected_flow: max_flow,
            cache_entries: scale.cache_entries(),
            entry_capacity: (2.0 * PAPER_MEAN_FLOW).floor() as u64,
            ..CaseConfig::default()
        });
        for p in prefix {
            case.record(p.flow);
        }
        case.finish();
        let cst = case.stats();
        let case_tally = CostTally::case(n, cst.evictions, cst.sram_accesses, cst.pow_ops);

        // --- RCS (lossless: the experiment processes every packet) ---
        let mut rcs = Rcs::new(RcsConfig {
            counters: scale.caesar_counters(),
            k: 3,
            loss: LossModel::Lossless,
            seed: 0xF188,
        });
        for p in prefix {
            rcs.record(p.flow);
        }
        let rs = rcs.stats();
        let rcs_tally = CostTally::rcs(n, rs.recorded);

        points.push(TimePoint {
            packets: n,
            caesar_ns: caesar_tally.total_ns(&costs),
            case_ns: case_tally.total_ns(&costs),
            rcs_ns: rcs_tally.total_ns(&costs),
        });
    }

    // Event-driven pipeline cross-check at the largest sweep point:
    // resolves stalls and FIFO depth instead of summing prices.
    let n_max = *sweep.last().expect("sweep non-empty") as usize;
    let prefix = &trace.packets[..n_max];
    let pl = Pipeline::default();
    let k = caesar_config(scale).k as u32;
    let mk_cache = || {
        CacheTable::new(CacheConfig {
            entries: scale.cache_entries(),
            entry_capacity: (2.0 * PAPER_MEAN_FLOW).floor() as u64,
            policy: cachesim::CachePolicy::Lru,
            seed: 0xF18,
        })
    };
    let mut cache = mk_cache();
    let caesar_pl = pl.run(prefix.iter().map(|p| match cache.record(p.flow) {
        // Each mapped counter is one read-modify-write: 2 port ops.
        Some(_) => PacketWork { writebacks: k * 2, compute_ns: 0.0 },
        None => PacketWork::HIT,
    }));
    let mut cache = mk_cache();
    let case_pl = pl.run(prefix.iter().map(|p| match cache.record(p.flow) {
        // One counter RMW plus two power operations per eviction.
        Some(_) => PacketWork { writebacks: 2, compute_ns: 2.0 * costs.pow_op_ns },
        None => PacketWork::HIT,
    }));
    let rcs_pl = pl.run(prefix.iter().map(|_| PacketWork {
        // Cache-free: every packet is an off-chip RMW.
        writebacks: 2,
        compute_ns: 0.0,
    }));
    let pipeline = PipelineCheck {
        packets: n_max as u64,
        caesar: caesar_pl,
        case: case_pl,
        rcs: rcs_pl,
    };

    let crossover_packets = points
        .iter()
        .find(|p| p.rcs_ns > p.case_ns)
        .map(|p| p.packets);
    let speedup = |a: f64, b: f64| 1.0 - a / b;
    let vs_case: Vec<f64> = points.iter().map(|p| speedup(p.caesar_ns, p.case_ns)).collect();
    let vs_rcs: Vec<f64> = points.iter().map(|p| speedup(p.caesar_ns, p.rcs_ns)).collect();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().copied().fold(f64::MIN, f64::max);

    Fig8Result {
        crossover_packets,
        avg_speedup_vs_case: avg(&vs_case),
        max_speedup_vs_case: max(&vs_case),
        avg_speedup_vs_rcs: avg(&vs_rcs),
        max_speedup_vs_rcs: max(&vs_rcs),
        points,
        pipeline,
        costs,
    }
}

impl Fig8Result {
    /// Text rendering, including the Virtex-7 cycle conversion.
    pub fn render(&self) -> String {
        let fpga = FpgaSpec::virtex7();
        let mut t = TextTable::new(vec![
            "packets", "CAESAR ns", "CASE ns", "RCS ns", "CAESAR cycles@18.9MHz",
        ]);
        for p in &self.points {
            t.row(vec![
                p.packets.to_string(),
                f(p.caesar_ns),
                f(p.case_ns),
                f(p.rcs_ns),
                fpga.ns_to_cycles(p.caesar_ns).to_string(),
            ]);
        }
        let pl = &self.pipeline;
        format!(
            "Figure 8 — processing time vs number of packets\n{}\
             CASE/RCS crossover: {} (paper: ≈ 10⁴)\n\
             CAESAR vs CASE: avg {} faster, max {} (paper: 74.8% / 92.4%)\n\
             CAESAR vs RCS:  avg {} faster, max {} (paper: 75.5% / 90%)\n\
             pipeline cross-check @ {} pkts (ns/pkt, stall): \
             CAESAR {} ({}), CASE {} ({}), RCS {} ({})\n",
            t.render(),
            self.crossover_packets
                .map(|n| n.to_string())
                .unwrap_or_else(|| "none in sweep".into()),
            pct(self.avg_speedup_vs_case),
            pct(self.max_speedup_vs_case),
            pct(self.avg_speedup_vs_rcs),
            pct(self.max_speedup_vs_rcs),
            pl.packets,
            f(pl.caesar.ns_per_packet()),
            pct(pl.caesar.stall_fraction()),
            f(pl.case.ns_per_packet()),
            pct(pl.case.stall_fraction()),
            f(pl.rcs.ns_per_packet()),
            pct(pl.rcs.stall_fraction()),
        )
    }

    /// CSV series.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut c = Csv::new(&["packets", "caesar_ns", "case_ns", "rcs_ns"]);
        for p in &self.points {
            c.row(&[
                p.packets.to_string(),
                format!("{:.0}", p.caesar_ns),
                format!("{:.0}", p.case_ns),
                format!("{:.0}", p.rcs_ns),
            ]);
        }
        vec![("fig8_processing_time.csv".into(), c.to_string())]
    }
}

impl Fig8Result {
    /// SVG rendering: processing time vs number of packets, log-log.
    pub fn to_svg(&self) -> Vec<(String, String)> {
        let series = |label: &str, color: &str, pick: fn(&TimePoint) -> f64| {
            Series::line(
                label,
                color,
                self.points.iter().map(|p| (p.packets as f64, pick(p))).collect(),
            )
        };
        let chart = Chart::new(
            "Fig. 8 — processing time vs number of packets",
            "packets",
            "processing time (ns)",
        )
        .log_log()
        .push(series("CAESAR", "#1f77b4", |p| p.caesar_ns))
        .push(series("CASE", "#d62728", |p| p.case_ns))
        .push(series("RCS", "#2ca02c", |p| p.rcs_ns));
        vec![("fig8_processing_time.svg".into(), chart.render_svg())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caesar_is_always_fastest() {
        let r = run(Scale::Tiny);
        for p in &r.points {
            assert!(
                p.caesar_ns < p.case_ns && p.caesar_ns < p.rcs_ns,
                "at {} packets: CAESAR {} CASE {} RCS {}",
                p.packets,
                p.caesar_ns,
                p.case_ns,
                p.rcs_ns
            );
        }
    }

    #[test]
    fn case_is_slowest_at_small_n() {
        let r = run(Scale::Tiny);
        let first = &r.points[0];
        assert!(
            first.case_ns > first.rcs_ns,
            "CASE {} should exceed RCS {} at {} packets",
            first.case_ns,
            first.rcs_ns,
            first.packets
        );
    }

    #[test]
    fn rcs_overtakes_case_near_ten_thousand() {
        let r = run(Scale::Tiny);
        let n = r.crossover_packets.expect("crossover must exist in sweep");
        assert!(
            (3_000..=100_000).contains(&n),
            "crossover at {n} packets, paper says ≈ 10⁴"
        );
    }

    #[test]
    fn speedups_in_paper_ballpark() {
        let r = run(Scale::Tiny);
        // Shape, not exact numbers: CAESAR at least 2× faster on
        // average than both, max speedup vs CASE higher than average.
        assert!(r.avg_speedup_vs_case > 0.5, "{}", r.avg_speedup_vs_case);
        assert!(r.avg_speedup_vs_rcs > 0.5, "{}", r.avg_speedup_vs_rcs);
        assert!(r.max_speedup_vs_case >= r.avg_speedup_vs_case);
        assert!(r.max_speedup_vs_rcs <= 0.99);
    }

    #[test]
    fn render_nonempty() {
        let r = run(Scale::Tiny);
        assert!(r.render().contains("Figure 8"));
        assert_eq!(r.to_csv().len(), 1);
    }

    #[test]
    fn pipeline_cross_check_agrees_on_ordering() {
        let r = run(Scale::Tiny);
        let pl = &r.pipeline;
        // The event-driven model must rank the schemes like the batch
        // model: CAESAR sustains line rate while cache-free RCS is
        // port-bound and stalling.
        assert!(pl.caesar.ns_per_packet() < pl.rcs.ns_per_packet());
        assert!(pl.rcs.stall_fraction() > 0.5, "RCS stalls {}", pl.rcs.stall_fraction());
        assert!(
            pl.caesar.stall_fraction() < pl.rcs.stall_fraction(),
            "CAESAR {} vs RCS {}",
            pl.caesar.stall_fraction(),
            pl.rcs.stall_fraction()
        );
    }
}
