//! # experiments — regenerating every figure of the CAESAR paper
//!
//! One module per figure of the evaluation (§6), plus the headline
//! average-relative-error summary of §1.5. Each module exposes a
//! `run(scale) -> FigNResult` function whose result renders as a text
//! table and exports CSV series, so the paper's plots can be
//! regenerated with any plotting tool.
//!
//! | Module | Paper figure | What it shows |
//! |---|---|---|
//! | [`fig3`] | Fig. 3 | heavy-tailed flow-size distribution of the trace |
//! | [`fig4`] | Fig. 4 | CAESAR accuracy, CSM vs MLM, LRU vs random |
//! | [`fig5`] | Fig. 5 | CASE collapse at equal memory, partial recovery at 6.6× |
//! | [`fig6`] | Fig. 6 | RCS accuracy under the lossless assumption |
//! | [`fig7`] | Fig. 7 | RCS accuracy at loss 2/3 and 9/10 |
//! | [`fig8`] | Fig. 8 | processing time vs number of packets |
//! | [`headline`] | §1.5 | average relative error of every scheme |
//! | [`zoo`] | — | per-workload accuracy/stress sweep over the workload zoo |
//! | [`cluster_view`] | — | per-node vs merged-view accuracy through the service |
//!
//! The [`scale::Scale`] parameter shrinks or grows the synthetic trace
//! while keeping the paper's operating point (`n/L` noise per counter,
//! `y = 2·n/Q`) fixed — see DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablate;
pub mod cluster_view;
pub mod exts;
pub mod harness;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod headline;
pub mod plot;
pub mod report;
pub mod theory;
pub mod throughput;
pub mod runner;
pub mod scale;
pub mod zoo;

pub use report::{Csv, TextTable};
pub use scale::Scale;
