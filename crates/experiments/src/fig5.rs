//! Figure 5: CASE accuracy — (a)/(c) at the equal 183.11 KB SRAM
//! budget, (b)/(d) at the expanded 1.21 MB budget.
//!
//! Paper observations to reproduce (§6.3.2):
//! * at equal memory, CASE's one-to-one mapping leaves 1–2 bits per
//!   counter: almost every flow estimates ≈ 0, relative error ≈ 100%;
//! * at ≈ 6.6× memory (~10 bits/counter), "a small portion of flows
//!   can be estimated accurately while the others are still bad".

use crate::plot::{Chart, Series};
use crate::report::{f, pct, Csv, TextTable};
use crate::runner::{score_case, trace_for};
use crate::scale::{Scale, LARGE_FLOW_THRESHOLD, PAPER_MEAN_FLOW};
use baselines::{Case, CaseConfig};
use metrics::{are_by_size, are_over_threshold, AccuracyReport, ScatterSeries};

/// One CASE budget's scored run.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Label, e.g. "183.11 KB-equiv".
    pub label: String,
    /// Bits per counter the budget bought.
    pub counter_bits: u32,
    /// SRAM actually used, KB.
    pub sram_kb: f64,
    /// Estimated-vs-actual series.
    pub series: ScatterSeries,
    /// Aggregate accuracy.
    pub report: AccuracyReport,
    /// ARE per actual flow size.
    pub are_curve: Vec<(u64, f64)>,
    /// ARE over flows ≥ [`LARGE_FLOW_THRESHOLD`] packets.
    pub large_flow_are: f64,
}

/// Figure 5 result: the two budgets.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Equal-budget run, then expanded-budget run.
    pub budgets: Vec<Budget>,
}

/// Regenerate Figure 5 at the given scale.
pub fn run(scale: Scale) -> Fig5Result {
    let shared = trace_for(scale);
    let (trace, truth) = (&shared.0, &shared.1);
    let q = truth.len() as u64;
    // Deployment-honest compression span: CASE cannot know the largest
    // flow in advance, so the DISCO scale must be provisioned for the
    // worst case — a single flow carrying all n packets.
    let provisioned_max = trace.num_packets() as f64;

    let mut budgets = Vec::new();
    for (label, bits_budget) in [
        ("equal-budget (183.11 KB @ paper)", scale.case_sram_bits()),
        ("expanded (1.21 MB @ paper)", scale.case_big_sram_bits()),
    ] {
        // One-to-one mapping: L = Q counters; the budget fixes bits per
        // counter (at least 1).
        let counter_bits = ((bits_budget / q).max(1) as u32).min(32);
        let cfg = CaseConfig {
            counters: q as usize,
            counter_bits,
            max_expected_flow: provisioned_max,
            cache_entries: scale.cache_entries(),
            entry_capacity: (2.0 * PAPER_MEAN_FLOW).floor() as u64,
            ..CaseConfig::default()
        };
        let sram_kb = cfg.sram_kb();
        let mut sketch = Case::new(cfg);
        for p in &trace.packets {
            sketch.record(p.flow);
        }
        sketch.finish();
        let series = score_case(&sketch, truth);
        let report = series.report();
        let are_curve = are_by_size(series.points(), 20);
        let large_flow_are = are_over_threshold(series.points(), LARGE_FLOW_THRESHOLD)
            .map(|(_, a)| a)
            .unwrap_or(f64::NAN);
        budgets.push(Budget {
            label: label.to_string(),
            counter_bits,
            sram_kb,
            series,
            report,
            are_curve,
            large_flow_are,
        });
    }
    Fig5Result { budgets }
}

impl Fig5Result {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "budget", "bits/ctr", "SRAM KB", "ARE", "est==0", "paper",
        ]);
        for b in &self.budgets {
            let paper = if b.label.starts_with("equal") {
                "ARE ≈ 100%, estimates ≈ 0"
            } else {
                "slightly improved"
            };
            t.row(vec![
                b.label.clone(),
                b.counter_bits.to_string(),
                f(b.sram_kb),
                pct(b.report.avg_relative_error),
                pct(b.report.frac_estimated_zero),
                paper.to_string(),
            ]);
        }
        format!("Figure 5 — CASE accuracy\n{}", t.render())
    }

    /// CSV series per budget.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (i, b) in self.budgets.iter().enumerate() {
            let tag = if i == 0 { "equal" } else { "expanded" };
            let mut sc = Csv::new(&["actual", "estimated"]);
            for p in b.series.sample(5000) {
                sc.row(&[p.actual.to_string(), f(p.estimated)]);
            }
            out.push((format!("fig5_scatter_{tag}.csv"), sc.to_string()));
            let mut are = Csv::new(&["size", "avg_relative_error"]);
            for &(s, e) in &b.are_curve {
                are.row(&[s.to_string(), format!("{e:.6}")]);
            }
            out.push((format!("fig5_are_{tag}.csv"), are.to_string()));
        }
        out
    }
}

impl Fig5Result {
    /// SVG rendering: one scatter per budget plus the ARE curves.
    pub fn to_svg(&self) -> Vec<(String, String)> {
        let colors = ["#1f77b4", "#d62728"];
        let mut out = Vec::new();
        let mut are_chart = Chart::new(
            "Fig. 5(c/d) — CASE avg relative error vs actual flow size",
            "actual flow size (packets)",
            "average relative error",
        )
        .log_log();
        for (i, b) in self.budgets.iter().enumerate() {
            let tag = if i == 0 { "equal" } else { "expanded" };
            let pts: Vec<(f64, f64)> = b
                .series
                .sample(3000)
                .into_iter()
                .map(|p| (p.actual as f64, p.estimated.max(0.1)))
                .collect();
            let chart = Chart::new(
                &format!("Fig. 5 — CASE ({}) estimated vs actual", b.label),
                "actual flow size",
                "estimated flow size",
            )
            .log_log()
            .with_diagonal()
            .push(Series::scatter(&b.label, colors[i % 2], pts));
            out.push((format!("fig5_scatter_{tag}.svg"), chart.render_svg()));
            are_chart = are_chart.push(Series::line(
                &b.label,
                colors[i % 2],
                b.are_curve.iter().map(|&(s, e)| (s as f64, e.max(1e-4))).collect(),
            ));
        }
        out.push(("fig5_are.svg".into(), are_chart.render_svg()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_budget_collapses() {
        let r = run(Scale::Tiny);
        let equal = &r.budgets[0];
        // The Fig. 5(a)/(c) signature: most flows read back 0 and the
        // average relative error is near 100%.
        assert!(
            equal.report.frac_estimated_zero > 0.5,
            "only {} estimated zero",
            equal.report.frac_estimated_zero
        );
        assert!(
            equal.report.avg_relative_error > 0.8,
            "ARE = {}",
            equal.report.avg_relative_error
        );
    }

    #[test]
    fn expanded_budget_improves_but_stays_bad() {
        let r = run(Scale::Small);
        let (equal, expanded) = (&r.budgets[0], &r.budgets[1]);
        assert!(expanded.counter_bits > equal.counter_bits);
        assert!(
            expanded.report.avg_relative_error < equal.report.avg_relative_error,
            "expanded {} !< equal {}",
            expanded.report.avg_relative_error,
            equal.report.avg_relative_error
        );
        // Note: the paper reports the expanded budget as "slightly
        // improved ... the others are still bad"; our CASE recovers
        // more than theirs because a correctly calibrated geometric
        // counter at ~10 bits is genuinely usable (EXPERIMENTS.md
        // discusses the deviation). The *equal-budget collapse* —
        // the comparison that matters — reproduces exactly.
    }

    #[test]
    fn render_nonempty() {
        let r = run(Scale::Tiny);
        assert!(r.render().contains("Figure 5"));
        assert_eq!(r.to_csv().len(), 4);
    }
}
