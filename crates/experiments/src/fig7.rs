//! Figure 7: RCS under realistic loss.
//!
//! Paper observations to reproduce (§6.3.3): with the "empirical speed
//! difference between the on-chip cache and off-chip SRAM" — SRAM 3×
//! slower ⇒ loss 2/3, 10× slower ⇒ loss 9/10 — RCS's average relative
//! errors are 67.68% and 90.06%, "much worse" than CAESAR's 25.23% /
//! 30.83%. Note the errors land almost exactly at the loss rates: the
//! surviving fraction `1 − loss` of each flow is what the counters see.
//!
//! The loss here is not injected as a parameter: it *emerges* from the
//! D/D/1/B ingress queue whose service time is the SRAM access.

use crate::plot::{Chart, Series};
use crate::report::{f, pct, Csv, TextTable};
use crate::runner::{score_rcs, trace_for};
use crate::scale::{Scale, LARGE_FLOW_THRESHOLD};
use baselines::{LossModel, Rcs, RcsConfig};
use memsim::{IngressQueue, MemoryModel};
use metrics::{are_by_size, are_over_threshold, AccuracyReport, ScatterSeries};

/// One loss operating point.
#[derive(Debug, Clone)]
pub struct LossPoint {
    /// Label, e.g. "SRAM 3 ns (loss 2/3)".
    pub label: String,
    /// Loss rate the queue actually produced.
    pub realized_loss: f64,
    /// Loss rate the latency ratio predicts.
    pub predicted_loss: f64,
    /// Estimated-vs-actual series.
    pub series: ScatterSeries,
    /// Aggregate accuracy.
    pub report: AccuracyReport,
    /// ARE per actual flow size.
    pub are_curve: Vec<(u64, f64)>,
    /// ARE over flows ≥ [`LARGE_FLOW_THRESHOLD`] packets, where the
    /// loss-induced bias dominates the sharing noise; this is the
    /// paper-comparable number (≈ the loss rate).
    pub large_flow_are: f64,
    /// The paper's measured ARE at this point.
    pub paper_are: f64,
}

/// Figure 7 result: the 2/3 and 9/10 loss points.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Loss points in paper order.
    pub points: Vec<LossPoint>,
}

/// Regenerate Figure 7 at the given scale.
pub fn run(scale: Scale) -> Fig7Result {
    let shared = trace_for(scale);
    let (trace, truth) = (&shared.0, &shared.1);

    let mut points = Vec::new();
    for (mem, paper_are) in [(MemoryModel::fast_sram(), 0.6768), (MemoryModel::default(), 0.9006)] {
        let queue = IngressQueue {
            arrival_ns: mem.on_chip_ns,
            service_ns: mem.sram_ns,
            capacity: 64,
        };
        let mut rcs = Rcs::new(RcsConfig {
            counters: scale.caesar_counters(),
            k: 3,
            loss: LossModel::Queue(queue),
            seed: 0xF177,
        });
        for p in &trace.packets {
            rcs.record(p.flow);
        }
        let series = score_rcs(&rcs, truth);
        let report = series.report();
        let are_curve = are_by_size(series.points(), 20);
        let large_flow_are = are_over_threshold(series.points(), LARGE_FLOW_THRESHOLD)
            .map(|(_, a)| a)
            .unwrap_or(f64::NAN);
        points.push(LossPoint {
            label: format!(
                "SRAM {} ns (predicted loss {})",
                mem.sram_ns,
                pct(mem.cache_free_loss_rate())
            ),
            realized_loss: rcs.stats().loss_rate(),
            predicted_loss: mem.cache_free_loss_rate(),
            series,
            report,
            are_curve,
            large_flow_are,
            paper_are,
        });
    }
    Fig7Result { points }
}

impl Fig7Result {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "operating point".to_string(),
            "realized loss".to_string(),
            "ARE (all)".to_string(),
            format!("ARE (x>={LARGE_FLOW_THRESHOLD})"),
            "paper ARE".to_string(),
        ]);
        for p in &self.points {
            t.row(vec![
                p.label.clone(),
                pct(p.realized_loss),
                pct(p.report.avg_relative_error),
                pct(p.large_flow_are),
                pct(p.paper_are),
            ]);
        }
        format!("Figure 7 — RCS under realistic loss\n{}", t.render())
    }

    /// CSV series.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (i, p) in self.points.iter().enumerate() {
            let tag = if i == 0 { "loss23" } else { "loss910" };
            let mut sc = Csv::new(&["actual", "estimated"]);
            for pt in p.series.sample(5000) {
                sc.row(&[pt.actual.to_string(), f(pt.estimated)]);
            }
            out.push((format!("fig7_scatter_{tag}.csv"), sc.to_string()));
            let mut are = Csv::new(&["size", "avg_relative_error"]);
            for &(s, e) in &p.are_curve {
                are.row(&[s.to_string(), format!("{e:.6}")]);
            }
            out.push((format!("fig7_are_{tag}.csv"), are.to_string()));
        }
        out
    }
}

impl Fig7Result {
    /// SVG rendering: one scatter per loss point plus the ARE curves.
    pub fn to_svg(&self) -> Vec<(String, String)> {
        let colors = ["#ff7f0e", "#8c564b"];
        let mut out = Vec::new();
        let mut are_chart = Chart::new(
            "Fig. 7(c/d) — lossy RCS avg relative error vs actual flow size",
            "actual flow size (packets)",
            "average relative error",
        )
        .log_log();
        for (i, p) in self.points.iter().enumerate() {
            let tag = if i == 0 { "loss23" } else { "loss910" };
            let pts: Vec<(f64, f64)> = p
                .series
                .sample(3000)
                .into_iter()
                .map(|q| (q.actual as f64, q.estimated.max(0.1)))
                .collect();
            let chart = Chart::new(
                &format!("Fig. 7 — RCS at {} estimated vs actual", p.label),
                "actual flow size",
                "estimated flow size",
            )
            .log_log()
            .with_diagonal()
            .push(Series::scatter(&p.label, colors[i % 2], pts));
            out.push((format!("fig7_scatter_{tag}.svg"), chart.render_svg()));
            are_chart = are_chart.push(Series::line(
                &p.label,
                colors[i % 2],
                p.are_curve.iter().map(|&(s, e)| (s as f64, e.max(1e-4))).collect(),
            ));
        }
        out.push(("fig7_are.svg".into(), are_chart.render_svg()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_realizes_predicted_losses() {
        let r = run(Scale::Tiny);
        for p in &r.points {
            assert!(
                (p.realized_loss - p.predicted_loss).abs() < 0.02,
                "{}: realized {} vs predicted {}",
                p.label,
                p.realized_loss,
                p.predicted_loss
            );
        }
    }

    #[test]
    fn are_lands_near_loss_rate_as_in_paper() {
        // Paper: ARE 67.68% at loss 2/3, 90.06% at loss 9/10 — the ARE
        // tracks the loss rate where the loss-induced bias dominates
        // (large flows; small flows drown in sharing noise for every
        // scheme alike — see EXPERIMENTS.md).
        let r = run(Scale::Small);
        assert!((r.points[0].large_flow_are - 2.0 / 3.0).abs() < 0.12,
            "ARE = {}", r.points[0].large_flow_are);
        assert!((r.points[1].large_flow_are - 0.9).abs() < 0.12,
            "ARE = {}", r.points[1].large_flow_are);
    }

    #[test]
    fn higher_loss_means_higher_error() {
        let r = run(Scale::Small);
        assert!(r.points[1].large_flow_are > r.points[0].large_flow_are);
    }

    #[test]
    fn render_nonempty() {
        let r = run(Scale::Tiny);
        assert!(r.render().contains("Figure 7"));
        assert_eq!(r.to_csv().len(), 4);
    }
}
