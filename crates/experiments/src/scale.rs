//! Experiment scaling.
//!
//! The paper's trace has `n = 27,720,011` packets over `Q = 1,014,601`
//! flows. The estimators' accuracy is governed by intensive quantities
//! — noise per counter `n/L`, entry capacity `y = 2·n/Q`, counters per
//! flow `k` — so the whole evaluation can be scaled down by shrinking
//! `Q` and `L` together. `Scale` fixes three reproducible operating
//! points; every figure accepts one.

use flowtrace::synth::SynthConfig;

/// Paper flow count.
pub const PAPER_FLOWS: usize = 1_014_601;
/// Paper packet count.
pub const PAPER_PACKETS: u64 = 27_720_011;
/// Paper mean flow size `n/Q`.
pub const PAPER_MEAN_FLOW: f64 = PAPER_PACKETS as f64 / PAPER_FLOWS as f64;
/// CAESAR/RCS SRAM counters at paper scale: 91.55 KB of 32-bit
/// counters (§6.3.1).
pub const PAPER_CAESAR_COUNTERS: usize = 23_437;
/// CASE SRAM budget at paper scale: 183.11 KB (§6.3.2).
pub const PAPER_CASE_SRAM_KB: f64 = 183.11;
/// CASE's expanded budget: 1.21 MB (§6.3.2).
pub const PAPER_CASE_BIG_SRAM_KB: f64 = 1.21 * 1024.0;
/// Cache entries at paper scale (97.66 KB cache, §6.2, with 32-bit
/// tag + 6-bit counter per entry ⇒ ≈ 21 K entries).
pub const PAPER_CACHE_ENTRIES: usize = 21_000;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ≈ 2 K flows / 55 K packets — CI and doc tests, sub-second.
    Tiny,
    /// ≈ 20 K flows / 550 K packets — accuracy-shape tests, ~1 s.
    Small,
    /// ≈ 101 K flows / 2.77 M packets — 1/10 of the paper, seconds.
    Default,
    /// The paper's full size — minutes.
    Full,
}

/// The "large flow" cutoff (≈ 150× the mean flow size) above which
/// relative errors rise above the counter-sharing noise floor; the
/// headline accuracy comparisons are reported over these flows.
pub const LARGE_FLOW_THRESHOLD: u64 = 4000;

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Fraction of the paper's flow count.
    pub fn fraction(self) -> f64 {
        match self {
            Scale::Tiny => 0.002,
            Scale::Small => 0.02,
            Scale::Default => 0.1,
            Scale::Full => 1.0,
        }
    }

    /// Number of flows `Q` at this scale.
    pub fn flows(self) -> usize {
        ((PAPER_FLOWS as f64 * self.fraction()).round() as usize).max(100)
    }

    /// Synthetic-trace configuration at this scale.
    pub fn synth_config(self) -> SynthConfig {
        SynthConfig {
            num_flows: self.flows(),
            mean_flow_size: PAPER_MEAN_FLOW,
            max_flow_size: match self {
                Scale::Tiny | Scale::Small => 20_000,
                _ => 100_000,
            },
            ..SynthConfig::default()
        }
    }

    /// CAESAR/RCS counter count `L`, scaled to keep `n/L` at the
    /// paper's operating point (≈ 1183 units of noise per counter).
    pub fn caesar_counters(self) -> usize {
        ((PAPER_CAESAR_COUNTERS as f64 * self.fraction()).round() as usize).max(32)
    }

    /// On-chip cache entries `M`, scaled like the paper's 97.66 KB
    /// cache. The paper's cache holds ≈ 2% of concurrently active
    /// flows' working set; scaling M with Q preserves the hit rate.
    pub fn cache_entries(self) -> usize {
        ((PAPER_CACHE_ENTRIES as f64 * self.fraction()).round() as usize).max(32)
    }

    /// CASE counter budget (bits) at equal memory: the paper's
    /// 183.11 KB scaled by the same fraction.
    pub fn case_sram_bits(self) -> u64 {
        (PAPER_CASE_SRAM_KB * 1024.0 * 8.0 * self.fraction()) as u64
    }

    /// CASE's expanded budget (1.21 MB at paper scale), scaled.
    pub fn case_big_sram_bits(self) -> u64 {
        (PAPER_CASE_BIG_SRAM_KB * 1024.0 * 8.0 * self.fraction()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper_constants() {
        assert_eq!(Scale::Full.flows(), PAPER_FLOWS);
        assert_eq!(Scale::Full.caesar_counters(), PAPER_CAESAR_COUNTERS);
        assert!((PAPER_MEAN_FLOW - 27.32).abs() < 0.01);
    }

    #[test]
    fn noise_per_counter_is_scale_invariant() {
        // The expected noise n/L must track the paper's operating point
        // at every scale (the tiny trace's sampled heavy tail can push
        // its realized n, so compare the configured ratio only).
        for s in [Scale::Tiny, Scale::Small, Scale::Default, Scale::Full] {
            let n = s.flows() as f64 * PAPER_MEAN_FLOW;
            let noise = n / s.caesar_counters() as f64;
            let paper_noise = PAPER_PACKETS as f64 / PAPER_CAESAR_COUNTERS as f64;
            assert!(
                (noise - paper_noise).abs() / paper_noise < 0.15,
                "{s:?}: noise {noise} vs paper {paper_noise}"
            );
        }
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
    }
}
