//! Maximum sustainable line rate per scheme.
//!
//! The paper's FPGA prototype sustains 680.832 Mbps (§6.2) — a
//! property of their clock and bus, not of the schemes. The scheme-level
//! question an operator asks is: *at what packet rate does each design
//! start dropping or stalling?* This experiment answers it with the
//! event-driven pipeline model: binary-search the arrival spacing until
//! the run is (almost) stall-free, then convert to packets/second and
//! to Gbps at a 300-byte average packet.
//!
//! Expected shape: RCS saturates at the SRAM port rate divided by its
//! per-packet accesses; CASE at the cache rate minus its per-eviction
//! power ops; CAESAR at nearly the raw front-end rate because its
//! off-chip traffic is a trickle.

use crate::report::{f, Csv, TextTable};
use crate::runner::bursty_trace_for;
use crate::scale::{Scale, PAPER_MEAN_FLOW};
use cachesim::{CacheConfig, CacheTable};
use caesar::{BuildMode, ConcurrentCaesar};
use memsim::{AccessCosts, PacketWork, Pipeline};
use std::time::Instant;

/// One scheme's saturation point.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Scheme label.
    pub scheme: String,
    /// Smallest sustainable arrival spacing (ns/packet).
    pub min_spacing_ns: f64,
    /// Corresponding packet rate (Mpps).
    pub mpps: f64,
    /// Line rate at 300-byte average packets (Gbps).
    pub gbps_at_300b: f64,
}

/// The throughput study.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Rows, CAESAR / CASE / RCS.
    pub rows: Vec<ThroughputRow>,
}

/// Find the smallest arrival spacing at which the pipeline keeps up
/// with the line — makespan within 0.5% of the pure arrival span — by
/// bisection over `[lo, hi]` ns. (A stall-only criterion would miss
/// front-end saturation: a compute-bound front end falls behind
/// without ever reporting a FIFO stall.)
fn saturation_spacing(work: &[PacketWork], mut lo: f64, mut hi: f64) -> f64 {
    let n = work.len() as f64;
    let sustainable = |spacing: f64| {
        let pl = Pipeline { arrival_ns: spacing, ..Pipeline::default() };
        let r = pl.run(work.iter().copied());
        let span = n * spacing;
        r.makespan_ns <= span * 1.005 + 1_000.0
    };
    // Ensure the bracket is valid.
    if sustainable(lo) {
        return lo;
    }
    while !sustainable(hi) {
        hi *= 2.0;
        assert!(hi < 1e6, "no sustainable rate found");
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if sustainable(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Run the study at the given scale.
pub fn run(scale: Scale) -> ThroughputResult {
    let shared = bursty_trace_for(scale);
    let trace = &shared.0;
    let n = trace.packets.len().min(200_000);
    let prefix = &trace.packets[..n];
    let costs = AccessCosts::default();
    let k = crate::runner::caesar_config(scale).k as u32;

    let mk_cache = || {
        CacheTable::new(CacheConfig::lru(
            scale.cache_entries(),
            (2.0 * PAPER_MEAN_FLOW).floor() as u64,
        ))
    };

    // Materialize each scheme's work stream once.
    let mut cache = mk_cache();
    let caesar_work: Vec<PacketWork> = prefix
        .iter()
        .map(|p| match cache.record(p.flow) {
            Some(_) => PacketWork { writebacks: k * 2, compute_ns: 0.0 },
            None => PacketWork::HIT,
        })
        .collect();
    let mut cache = mk_cache();
    let case_work: Vec<PacketWork> = prefix
        .iter()
        .map(|p| match cache.record(p.flow) {
            Some(_) => PacketWork { writebacks: 2, compute_ns: 2.0 * costs.pow_op_ns },
            None => PacketWork::HIT,
        })
        .collect();
    let rcs_work: Vec<PacketWork> =
        vec![PacketWork { writebacks: 2, compute_ns: 0.0 }; n];

    let mut rows = Vec::new();
    for (scheme, work) in [
        ("CAESAR", &caesar_work),
        ("CASE", &case_work),
        ("RCS", &rcs_work),
    ] {
        let spacing = saturation_spacing(work, 0.5, 64.0);
        let mpps = 1e3 / spacing;
        rows.push(ThroughputRow {
            scheme: scheme.into(),
            min_spacing_ns: spacing,
            mpps,
            gbps_at_300b: mpps * 300.0 * 8.0 / 1e3,
        });
    }
    ThroughputResult { rows }
}

impl ThroughputResult {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "scheme",
            "min spacing ns/pkt",
            "Mpps",
            "Gbps @ 300B pkts",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.scheme.clone(),
                f(r.min_spacing_ns),
                f(r.mpps),
                f(r.gbps_at_300b),
            ]);
        }
        format!(
            "Extension — maximum sustainable line rate (pipeline model)\n{}",
            t.render()
        )
    }

    /// CSV export.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut c = Csv::new(&["scheme", "min_spacing_ns", "mpps", "gbps_at_300b"]);
        for r in &self.rows {
            c.row(&[
                r.scheme.clone(),
                format!("{:.3}", r.min_spacing_ns),
                format!("{:.3}", r.mpps),
                format!("{:.3}", r.gbps_at_300b),
            ]);
        }
        vec![("ext_throughput.csv".into(), c.to_string())]
    }

    /// Row lookup.
    pub fn row(&self, scheme: &str) -> Option<&ThroughputRow> {
        self.rows.iter().find(|r| r.scheme == scheme)
    }

    /// SVG rendering: sustainable packet rate per scheme.
    pub fn to_svg(&self) -> Vec<(String, String)> {
        use crate::plot::BarChart;
        let mut chart =
            BarChart::new("Maximum sustainable line rate", "Mpps");
        for r in &self.rows {
            chart = chart.bar(&r.scheme, r.mpps);
        }
        vec![("ext_throughput.svg".into(), chart.render_svg())]
    }
}

/// One measured construction run of the sharded CAESAR build.
#[derive(Debug, Clone)]
pub struct ConstructionRow {
    /// Ingest path: `partitioned` (O(n) single pass + batch writeback),
    /// `stream` (overlapped partition/consume over SPSC rings),
    /// `pinned` (explicit ring-fed worker-per-shard mode), or `replay`
    /// (the seed's O(T·n) scan-and-filter reference).
    pub path: String,
    /// Worker shards used.
    pub shards: usize,
    /// Wall-clock construction time (ms), median of the timed runs.
    pub ms: f64,
    /// Construction rate (Mpkt/s).
    pub mpps: f64,
}

/// Wall-clock construction-throughput study of the ingest pipeline:
/// the partitioned/batched build and its streaming variant versus the
/// replay reference, per shard count.
#[derive(Debug, Clone)]
pub struct ConstructionScaling {
    /// Measured rows.
    pub rows: Vec<ConstructionRow>,
    /// Packets per construction run.
    pub n_packets: usize,
}

fn median_ms(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Measure sharded construction wall-clock at `scale` for each shard
/// count (median of `samples` runs; the sketches are checked for
/// packet conservation on every run).
pub fn construction_scaling(
    scale: Scale,
    shard_counts: &[usize],
    samples: usize,
) -> ConstructionScaling {
    let shared = bursty_trace_for(scale);
    let trace = &shared.0;
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    let cfg = crate::runner::caesar_config(scale);
    let samples = samples.max(1);

    let mut rows = Vec::new();
    let mut timed = |path: &str, shards: usize, build: &dyn Fn() -> ConcurrentCaesar| {
        let times: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                let sketch = build();
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                assert_eq!(sketch.sram().total_added() as usize, flows.len());
                ms
            })
            .collect();
        let ms = median_ms(times);
        rows.push(ConstructionRow {
            path: path.into(),
            shards,
            ms,
            mpps: flows.len() as f64 / ms / 1e3,
        });
    };
    for &shards in shard_counts {
        timed("partitioned", shards, &|| {
            ConcurrentCaesar::build(cfg, shards, &flows)
        });
        timed("stream", shards, &|| {
            ConcurrentCaesar::build_stream(cfg, shards, flows.iter().copied())
        });
        timed("pinned", shards, &|| {
            ConcurrentCaesar::build_with_mode(cfg, shards, &flows, BuildMode::Pinned)
        });
        timed("replay", shards, &|| {
            ConcurrentCaesar::build_replay(cfg, shards, &flows)
        });
    }
    ConstructionScaling { rows, n_packets: flows.len() }
}

impl ConstructionScaling {
    /// Row lookup by path and shard count.
    pub fn row(&self, path: &str, shards: usize) -> Option<&ConstructionRow> {
        self.rows.iter().find(|r| r.path == path && r.shards == shards)
    }

    /// Replay-vs-partitioned wall-clock speedup at a shard count.
    pub fn speedup(&self, shards: usize) -> Option<f64> {
        Some(self.row("replay", shards)?.ms / self.row("partitioned", shards)?.ms)
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["path", "shards", "ms", "Mpkt/s"]);
        for r in &self.rows {
            t.row(vec![
                r.path.clone(),
                r.shards.to_string(),
                f(r.ms),
                f(r.mpps),
            ]);
        }
        format!(
            "Extension — sharded construction wall-clock ({} packets)\n{}",
            self.n_packets,
            t.render()
        )
    }

    /// CSV export.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut c = Csv::new(&["path", "shards", "ms", "mpps"]);
        for r in &self.rows {
            c.row(&[
                r.path.clone(),
                r.shards.to_string(),
                format!("{:.3}", r.ms),
                format!("{:.3}", r.mpps),
            ]);
        }
        vec![("ext_construction_scaling.csv".into(), c.to_string())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caesar_sustains_the_highest_rate() {
        let r = run(Scale::Tiny);
        let caesar = r.row("CAESAR").expect("row");
        let case = r.row("CASE").expect("row");
        let rcs = r.row("RCS").expect("row");
        assert!(
            caesar.mpps > rcs.mpps,
            "CAESAR {} vs RCS {} Mpps",
            caesar.mpps,
            rcs.mpps
        );
        assert!(caesar.mpps > case.mpps);
        // RCS is port-bound: two 10 ns accesses per packet ⇒ ≤ 50 Mpps.
        assert!(
            (rcs.min_spacing_ns - 20.0).abs() < 1.0,
            "RCS spacing {}",
            rcs.min_spacing_ns
        );
    }

    #[test]
    fn rates_are_positive_and_finite() {
        let r = run(Scale::Tiny);
        for row in &r.rows {
            assert!(row.min_spacing_ns > 0.0);
            assert!(row.mpps.is_finite() && row.mpps > 0.0);
            assert!(row.gbps_at_300b > 0.0);
        }
    }

    #[test]
    fn render_nonempty() {
        let r = run(Scale::Tiny);
        assert!(r.render().contains("sustainable"));
        assert_eq!(r.to_csv().len(), 1);
    }

    #[test]
    fn construction_scaling_measures_every_path() {
        // Structural assertions only — wall-clock ordering is asserted
        // by the `concurrent_build` bench, not in CI-sized tests.
        let r = construction_scaling(Scale::Tiny, &[1, 2], 1);
        assert_eq!(r.rows.len(), 8, "4 paths × 2 shard counts");
        for row in &r.rows {
            assert!(row.ms > 0.0 && row.ms.is_finite(), "{row:?}");
            assert!(row.mpps > 0.0 && row.mpps.is_finite(), "{row:?}");
        }
        assert!(r.speedup(2).is_some());
        assert!(r.row("stream", 1).is_some());
        assert!(r.row("pinned", 2).is_some());
        assert!(r.render().contains("construction"));
        assert_eq!(r.to_csv().len(), 1);
    }
}
