//! Maximum sustainable line rate per scheme.
//!
//! The paper's FPGA prototype sustains 680.832 Mbps (§6.2) — a
//! property of their clock and bus, not of the schemes. The scheme-level
//! question an operator asks is: *at what packet rate does each design
//! start dropping or stalling?* This experiment answers it with the
//! event-driven pipeline model: binary-search the arrival spacing until
//! the run is (almost) stall-free, then convert to packets/second and
//! to Gbps at a 300-byte average packet.
//!
//! Expected shape: RCS saturates at the SRAM port rate divided by its
//! per-packet accesses; CASE at the cache rate minus its per-eviction
//! power ops; CAESAR at nearly the raw front-end rate because its
//! off-chip traffic is a trickle.

use crate::report::{f, Csv, TextTable};
use crate::runner::bursty_trace_for;
use crate::scale::{Scale, PAPER_MEAN_FLOW};
use cachesim::{CacheConfig, CacheTable};
use memsim::{AccessCosts, PacketWork, Pipeline};

/// One scheme's saturation point.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Scheme label.
    pub scheme: String,
    /// Smallest sustainable arrival spacing (ns/packet).
    pub min_spacing_ns: f64,
    /// Corresponding packet rate (Mpps).
    pub mpps: f64,
    /// Line rate at 300-byte average packets (Gbps).
    pub gbps_at_300b: f64,
}

/// The throughput study.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Rows, CAESAR / CASE / RCS.
    pub rows: Vec<ThroughputRow>,
}

/// Find the smallest arrival spacing at which the pipeline keeps up
/// with the line — makespan within 0.5% of the pure arrival span — by
/// bisection over `[lo, hi]` ns. (A stall-only criterion would miss
/// front-end saturation: a compute-bound front end falls behind
/// without ever reporting a FIFO stall.)
fn saturation_spacing(work: &[PacketWork], mut lo: f64, mut hi: f64) -> f64 {
    let n = work.len() as f64;
    let sustainable = |spacing: f64| {
        let pl = Pipeline { arrival_ns: spacing, ..Pipeline::default() };
        let r = pl.run(work.iter().copied());
        let span = n * spacing;
        r.makespan_ns <= span * 1.005 + 1_000.0
    };
    // Ensure the bracket is valid.
    if sustainable(lo) {
        return lo;
    }
    while !sustainable(hi) {
        hi *= 2.0;
        assert!(hi < 1e6, "no sustainable rate found");
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if sustainable(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Run the study at the given scale.
pub fn run(scale: Scale) -> ThroughputResult {
    let shared = bursty_trace_for(scale);
    let trace = &shared.0;
    let n = trace.packets.len().min(200_000);
    let prefix = &trace.packets[..n];
    let costs = AccessCosts::default();
    let k = crate::runner::caesar_config(scale).k as u32;

    let mk_cache = || {
        CacheTable::new(CacheConfig::lru(
            scale.cache_entries(),
            (2.0 * PAPER_MEAN_FLOW).floor() as u64,
        ))
    };

    // Materialize each scheme's work stream once.
    let mut cache = mk_cache();
    let caesar_work: Vec<PacketWork> = prefix
        .iter()
        .map(|p| match cache.record(p.flow) {
            Some(_) => PacketWork { writebacks: k * 2, compute_ns: 0.0 },
            None => PacketWork::HIT,
        })
        .collect();
    let mut cache = mk_cache();
    let case_work: Vec<PacketWork> = prefix
        .iter()
        .map(|p| match cache.record(p.flow) {
            Some(_) => PacketWork { writebacks: 2, compute_ns: 2.0 * costs.pow_op_ns },
            None => PacketWork::HIT,
        })
        .collect();
    let rcs_work: Vec<PacketWork> =
        vec![PacketWork { writebacks: 2, compute_ns: 0.0 }; n];

    let mut rows = Vec::new();
    for (scheme, work) in [
        ("CAESAR", &caesar_work),
        ("CASE", &case_work),
        ("RCS", &rcs_work),
    ] {
        let spacing = saturation_spacing(work, 0.5, 64.0);
        let mpps = 1e3 / spacing;
        rows.push(ThroughputRow {
            scheme: scheme.into(),
            min_spacing_ns: spacing,
            mpps,
            gbps_at_300b: mpps * 300.0 * 8.0 / 1e3,
        });
    }
    ThroughputResult { rows }
}

impl ThroughputResult {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "scheme",
            "min spacing ns/pkt",
            "Mpps",
            "Gbps @ 300B pkts",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.scheme.clone(),
                f(r.min_spacing_ns),
                f(r.mpps),
                f(r.gbps_at_300b),
            ]);
        }
        format!(
            "Extension — maximum sustainable line rate (pipeline model)\n{}",
            t.render()
        )
    }

    /// CSV export.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut c = Csv::new(&["scheme", "min_spacing_ns", "mpps", "gbps_at_300b"]);
        for r in &self.rows {
            c.row(&[
                r.scheme.clone(),
                format!("{:.3}", r.min_spacing_ns),
                format!("{:.3}", r.mpps),
                format!("{:.3}", r.gbps_at_300b),
            ]);
        }
        vec![("ext_throughput.csv".into(), c.to_string())]
    }

    /// Row lookup.
    pub fn row(&self, scheme: &str) -> Option<&ThroughputRow> {
        self.rows.iter().find(|r| r.scheme == scheme)
    }

    /// SVG rendering: sustainable packet rate per scheme.
    pub fn to_svg(&self) -> Vec<(String, String)> {
        use crate::plot::BarChart;
        let mut chart =
            BarChart::new("Maximum sustainable line rate", "Mpps");
        for r in &self.rows {
            chart = chart.bar(&r.scheme, r.mpps);
        }
        vec![("ext_throughput.svg".into(), chart.render_svg())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caesar_sustains_the_highest_rate() {
        let r = run(Scale::Tiny);
        let caesar = r.row("CAESAR").expect("row");
        let case = r.row("CASE").expect("row");
        let rcs = r.row("RCS").expect("row");
        assert!(
            caesar.mpps > rcs.mpps,
            "CAESAR {} vs RCS {} Mpps",
            caesar.mpps,
            rcs.mpps
        );
        assert!(caesar.mpps > case.mpps);
        // RCS is port-bound: two 10 ns accesses per packet ⇒ ≤ 50 Mpps.
        assert!(
            (rcs.min_spacing_ns - 20.0).abs() < 1.0,
            "RCS spacing {}",
            rcs.min_spacing_ns
        );
    }

    #[test]
    fn rates_are_positive_and_finite() {
        let r = run(Scale::Tiny);
        for row in &r.rows {
            assert!(row.min_spacing_ns > 0.0);
            assert!(row.mpps.is_finite() && row.mpps > 0.0);
            assert!(row.gbps_at_300b > 0.0);
        }
    }

    #[test]
    fn render_nonempty() {
        let r = run(Scale::Tiny);
        assert!(r.render().contains("sustainable"));
        assert_eq!(r.to_csv().len(), 1);
    }
}
