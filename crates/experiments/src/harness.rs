//! A uniform interface over every measurement scheme in the workspace,
//! and the grand comparison it enables.
//!
//! Each scheme crate keeps its own idiomatic API (they differ in
//! essentials: RCS loses packets, braids decode in bulk, samplers keep
//! tables); [`FlowSketch`] is the *evaluation* interface that lets one
//! harness drive them all over the same trace and produce the unified
//! table `caesar-experiments compare` prints — every §2/§6 scheme, one
//! workload, memory / accuracy / access-cost side by side.

use crate::report::{f, pct, Csv, TextTable};
use crate::runner::{caesar_config, trace_for};
use crate::scale::{Scale, LARGE_FLOW_THRESHOLD};
use baselines::{
    BraidsConfig, Case, CaseConfig, CounterBraids, LossModel, Rcs, RcsConfig, SampledCounter,
    SamplingConfig, Vhc, VhcConfig,
};
use caesar::{Caesar, CaesarConfig, Estimator};
use hashkit::IdHashMap;
use metrics::{are_over_threshold, AccuracyReport, ScatterPoint};

/// A per-flow measurement scheme under evaluation.
pub trait FlowSketch {
    /// Display name.
    fn name(&self) -> String;
    /// Process one packet.
    fn record(&mut self, flow: u64);
    /// End of measurement (dump caches, etc.). Default: nothing.
    fn finish(&mut self) {}
    /// Optional bulk-decode pass over the candidate flows (Counter
    /// Braids needs one; everything else ignores it).
    fn prepare(&mut self, _candidates: &[u64]) {}
    /// Estimated size of `flow`.
    fn query(&self, flow: u64) -> f64;
    /// Memory footprint in bits (on-chip + off-chip state).
    fn memory_bits(&self) -> u64;
    /// Off-chip accesses performed during construction.
    fn offchip_accesses(&self) -> u64;
}

// --- Adapters -----------------------------------------------------------

/// CAESAR behind the trait.
pub struct CaesarSketch(pub Caesar);

impl FlowSketch for CaesarSketch {
    fn name(&self) -> String {
        "CAESAR (CSM)".into()
    }
    fn record(&mut self, flow: u64) {
        self.0.record(flow);
    }
    fn finish(&mut self) {
        self.0.finish();
    }
    fn query(&self, flow: u64) -> f64 {
        self.0.estimate(flow, Estimator::Csm).clamped()
    }
    fn memory_bits(&self) -> u64 {
        let cfg = self.0.config();
        cfg.counters as u64 * cfg.counter_bits as u64
            + (cfg.cache_kb(32) * 8.0 * 1024.0) as u64
    }
    fn offchip_accesses(&self) -> u64 {
        self.0.stats().sram_writes * 2
    }
}

/// RCS behind the trait.
pub struct RcsSketch(pub Rcs);

impl FlowSketch for RcsSketch {
    fn name(&self) -> String {
        match self.0.config().loss {
            LossModel::Lossless => "RCS (lossless)".into(),
            LossModel::Uniform(p) => format!("RCS (loss {p:.2})"),
            LossModel::Queue(_) => "RCS (queue loss)".into(),
        }
    }
    fn record(&mut self, flow: u64) {
        self.0.record(flow);
    }
    fn query(&self, flow: u64) -> f64 {
        self.0.query(flow)
    }
    fn memory_bits(&self) -> u64 {
        self.0.config().counters as u64 * 32
    }
    fn offchip_accesses(&self) -> u64 {
        self.0.stats().sram_accesses * 2
    }
}

/// CASE behind the trait.
pub struct CaseSketch(pub Case);

impl FlowSketch for CaseSketch {
    fn name(&self) -> String {
        format!("CASE ({} bit/flow)", self.0.config().counter_bits)
    }
    fn record(&mut self, flow: u64) {
        self.0.record(flow);
    }
    fn finish(&mut self) {
        self.0.finish();
    }
    fn query(&self, flow: u64) -> f64 {
        self.0.query(flow)
    }
    fn memory_bits(&self) -> u64 {
        let cfg = self.0.config();
        cfg.counters as u64 * cfg.counter_bits as u64
    }
    fn offchip_accesses(&self) -> u64 {
        self.0.stats().sram_accesses
    }
}

/// VHC behind the trait (caches the pool estimate at finish time).
pub struct VhcSketch {
    inner: Vhc,
    total: f64,
}

impl VhcSketch {
    /// Wrap a VHC instance.
    pub fn new(inner: Vhc) -> Self {
        Self { inner, total: 0.0 }
    }
}

impl FlowSketch for VhcSketch {
    fn name(&self) -> String {
        format!("VHC (s={})", self.inner.config().virtual_registers)
    }
    fn record(&mut self, flow: u64) {
        self.inner.record(flow);
    }
    fn finish(&mut self) {
        self.total = self.inner.total_estimate();
    }
    fn query(&self, flow: u64) -> f64 {
        self.inner.query_with_total(flow, self.total)
    }
    fn memory_bits(&self) -> u64 {
        self.inner.config().memory_bits()
    }
    fn offchip_accesses(&self) -> u64 {
        self.inner.packets()
    }
}

/// The NetFlow-style sampler behind the trait.
pub struct SamplingSketch(pub SampledCounter);

impl FlowSketch for SamplingSketch {
    fn name(&self) -> String {
        format!("sampling (p={})", self.0.config().rate)
    }
    fn record(&mut self, flow: u64) {
        self.0.record(flow);
    }
    fn query(&self, flow: u64) -> f64 {
        self.0.query(flow)
    }
    fn memory_bits(&self) -> u64 {
        self.0.memory_bytes() as u64 * 8
    }
    fn offchip_accesses(&self) -> u64 {
        self.0.stats().sampled
    }
}

/// Counter Braids behind the trait: `prepare` runs the min-sum decode
/// over the candidate flows and caches the results.
pub struct BraidsSketch {
    inner: CounterBraids,
    decoded: IdHashMap<f64>,
}

impl BraidsSketch {
    /// Wrap a braid.
    pub fn new(inner: CounterBraids) -> Self {
        Self { inner, decoded: IdHashMap::default() }
    }
}

impl FlowSketch for BraidsSketch {
    fn name(&self) -> String {
        "Counter Braids".into()
    }
    fn record(&mut self, flow: u64) {
        self.inner.record(flow);
    }
    fn prepare(&mut self, candidates: &[u64]) {
        let est = self.inner.decode(candidates, 60);
        self.decoded = candidates.iter().copied().zip(est).collect();
    }
    fn query(&self, flow: u64) -> f64 {
        self.decoded.get(&flow).copied().unwrap_or(0.0)
    }
    fn memory_bits(&self) -> u64 {
        self.inner.config().memory_bits()
    }
    fn offchip_accesses(&self) -> u64 {
        self.inner.stats().accesses
    }
}

// --- The grand comparison ------------------------------------------------

/// One scheme's scored row.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Scheme name.
    pub scheme: String,
    /// Memory in KB.
    pub memory_kb: f64,
    /// ARE over all flows.
    pub are_all: f64,
    /// ARE over flows ≥ the large-flow cutoff.
    pub are_large: f64,
    /// Off-chip accesses per packet.
    pub offchip_per_packet: f64,
}

/// The unified table.
#[derive(Debug, Clone)]
pub struct CompareResult {
    /// One row per scheme.
    pub rows: Vec<CompareRow>,
}

/// Drive a sketch over the trace and score it.
pub fn evaluate(
    sketch: &mut dyn FlowSketch,
    trace: &flowtrace::Trace,
    truth: &std::collections::HashMap<u64, u64>,
) -> CompareRow {
    for p in &trace.packets {
        sketch.record(p.flow);
    }
    sketch.finish();
    let mut pairs: Vec<(u64, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
    pairs.sort_unstable();
    let candidates: Vec<u64> = pairs.iter().map(|&(f, _)| f).collect();
    sketch.prepare(&candidates);
    let points: Vec<ScatterPoint> = pairs
        .iter()
        .map(|&(f, x)| ScatterPoint { actual: x, estimated: sketch.query(f) })
        .collect();
    CompareRow {
        scheme: sketch.name(),
        memory_kb: sketch.memory_bits() as f64 / 8192.0,
        are_all: AccuracyReport::from_points(&points).avg_relative_error,
        are_large: are_over_threshold(&points, LARGE_FLOW_THRESHOLD)
            .map(|(_, a)| a)
            .unwrap_or(f64::NAN),
        offchip_per_packet: sketch.offchip_accesses() as f64 / trace.num_packets() as f64,
    }
}

/// Every scheme in the workspace on one trace at roughly CAESAR's
/// memory budget (braids additionally shown in its decodable regime).
pub fn compare_all(scale: Scale) -> CompareResult {
    let shared = trace_for(scale);
    let (trace, truth) = (&shared.0, &shared.1);
    let cfg: CaesarConfig = caesar_config(scale);
    let budget_bits = cfg.counters as u64 * cfg.counter_bits as u64;
    let q = truth.len();

    let mut sketches: Vec<Box<dyn FlowSketch>> = vec![
        Box::new(CaesarSketch(Caesar::new(cfg))),
        Box::new(RcsSketch(Rcs::new(RcsConfig {
            counters: cfg.counters,
            k: cfg.k,
            loss: LossModel::Lossless,
            seed: 0xC01,
        }))),
        Box::new(RcsSketch(Rcs::new(RcsConfig {
            counters: cfg.counters,
            k: cfg.k,
            loss: LossModel::Uniform(2.0 / 3.0),
            seed: 0xC02,
        }))),
        Box::new(CaseSketch(Case::new(CaseConfig {
            counters: q,
            counter_bits: ((budget_bits / q as u64).max(1) as u32).min(32),
            max_expected_flow: trace.num_packets() as f64,
            cache_entries: scale.cache_entries(),
            entry_capacity: cfg.entry_capacity,
            ..CaseConfig::default()
        }))),
        Box::new(VhcSketch::new(Vhc::new(VhcConfig {
            registers: ((budget_bits / 5) as usize).max(512),
            virtual_registers: 256,
            seed: 0xC03,
        }))),
        Box::new(SamplingSketch(SampledCounter::new(SamplingConfig {
            rate: 0.01,
            max_entries: (budget_bits / 96) as usize, // 12-byte records
            seed: 0xC04,
        }))),
        Box::new(BraidsSketch::new(CounterBraids::new(BraidsConfig {
            layer1_counters: ((budget_bits as f64 * 0.8 / 8.0) as usize).max(4),
            layer2_counters: ((budget_bits as f64 * 0.2 / 56.0) as usize).max(2),
            ..BraidsConfig::default()
        }))),
    ];

    let rows = sketches
        .iter_mut()
        .map(|s| evaluate(s.as_mut(), trace, truth))
        .collect();
    CompareResult { rows }
}

impl CompareResult {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "scheme".to_string(),
            "memory KB".to_string(),
            format!("ARE (x>={LARGE_FLOW_THRESHOLD})"),
            "ARE (all)".to_string(),
            "off-chip accesses/pkt".to_string(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.scheme.clone(),
                f(r.memory_kb),
                pct(r.are_large),
                pct(r.are_all),
                f(r.offchip_per_packet),
            ]);
        }
        format!(
            "Grand comparison — every scheme, one trace, ≈ equal memory\n{}",
            t.render()
        )
    }

    /// CSV export.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        let mut c = Csv::new(&[
            "scheme",
            "memory_kb",
            "are_large",
            "are_all",
            "offchip_per_packet",
        ]);
        for r in &self.rows {
            c.row(&[
                r.scheme.clone(),
                format!("{:.2}", r.memory_kb),
                format!("{:.4}", r.are_large),
                format!("{:.4}", r.are_all),
                format!("{:.4}", r.offchip_per_packet),
            ]);
        }
        vec![("compare_all.csv".into(), c.to_string())]
    }

    /// Find a row by scheme-name prefix.
    pub fn row(&self, prefix: &str) -> Option<&CompareRow> {
        self.rows.iter().find(|r| r.scheme.starts_with(prefix))
    }

    /// SVG rendering: large-flow ARE and off-chip access-rate bars.
    pub fn to_svg(&self) -> Vec<(String, String)> {
        use crate::plot::BarChart;
        let mut are = BarChart::new(
            "Grand comparison — large-flow ARE (log scale)",
            "average relative error",
        )
        .log_y();
        let mut acc = BarChart::new(
            "Grand comparison — off-chip accesses per packet",
            "accesses / packet",
        );
        for r in &self.rows {
            let short: String = r.scheme.chars().take_while(|&c| c != '(').collect();
            are = are.bar(short.trim(), r.are_large.max(1e-4));
            acc = acc.bar(short.trim(), r.offchip_per_packet);
        }
        vec![
            ("compare_are.svg".into(), are.render_svg()),
            ("compare_accesses.svg".into(), acc.render_svg()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_produce_finite_rows() {
        let r = compare_all(Scale::Tiny);
        assert_eq!(r.rows.len(), 7);
        for row in &r.rows {
            assert!(row.memory_kb > 0.0, "{row:?}");
            assert!(row.are_large.is_finite(), "{row:?}");
            assert!(row.offchip_per_packet >= 0.0, "{row:?}");
        }
    }

    #[test]
    fn caesar_has_lowest_offchip_rate_of_accurate_schemes() {
        let r = compare_all(Scale::Tiny);
        let caesar = r.row("CAESAR").expect("row");
        let rcs = r.row("RCS (lossless)").expect("row");
        let braids = r.row("Counter Braids").expect("row");
        assert!(caesar.offchip_per_packet < rcs.offchip_per_packet);
        assert!(caesar.offchip_per_packet < braids.offchip_per_packet);
    }

    #[test]
    fn caesar_beats_lossy_rcs_and_case_on_large_flows() {
        let r = compare_all(Scale::Tiny);
        let caesar = r.row("CAESAR").expect("row");
        let lossy = r.row("RCS (loss 0").expect("row");
        let case = r.row("CASE").expect("row");
        assert!(caesar.are_large < lossy.are_large, "{}", r.render());
        assert!(caesar.are_large < case.are_large, "{}", r.render());
    }

    #[test]
    fn render_lists_every_scheme() {
        let r = compare_all(Scale::Tiny);
        let s = r.render();
        for name in ["CAESAR", "RCS", "CASE", "VHC", "sampling", "Counter Braids"] {
            assert!(s.contains(name), "missing {name}:\n{s}");
        }
    }
}
