//! `caesar-experiments` — regenerate every figure of the CAESAR paper.
//!
//! ```text
//! caesar-experiments [all|fig3|fig4|fig5|fig6|fig7|fig8|headline|theory|sampling|braids|compression|bursts|tails|ablate|compare|throughput|zoo|cluster]...
//!                    [--scale tiny|small|default|full] [--out DIR]
//! ```
//!
//! Tables are printed to stdout; CSV series land in `--out`
//! (default `results/`).

use experiments::{ablate, exts, fig3, fig4, fig5, fig6, fig7, fig8, headline, theory, Scale};
use std::path::PathBuf;
use std::process::ExitCode;
use support::testkit::INJECTED_PANIC;

/// The zoo sweep injects worker panics by design (the flow-churn
/// stress plan); they are caught by the online supervisor, so don't
/// let the default hook splat a backtrace for each one. Genuine panics
/// still print normally.
fn silence_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains(INJECTED_PANIC))
            .or_else(|| info.payload().downcast_ref::<&str>().map(|s| s.contains(INJECTED_PANIC)))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
}

const USAGE: &str = "usage: caesar-experiments [EXPERIMENT]... [--scale tiny|small|default|full] [--out DIR]

paper figures:    fig3 fig4 fig5 fig6 fig7 fig8 headline
validation:       theory        (empirical checks of the paper's Section 4)
extensions:       compare       (every scheme, one trace, equal memory)
                  ablate        (k / y / policy / M / L design space)
                  sampling      (vs NetFlow-style sampling)
                  braids        (vs Counter Braids and VHC)
                  compression   (SAC vs DISCO vs ANLS vs CEDAR)
                  bursts        (arrival burstiness tolerance)
                  tails         (power-law vs log-normal sensitivity)
                  throughput    (max sustainable line rate)
                  zoo           (per-workload accuracy/stress sweep)
                  cluster       (per-node vs merged cluster-view accuracy)
or `all` for everything. Tables print to stdout; CSV + SVG artifacts
land in --out (default results/).";

struct Args {
    figures: Vec<String>,
    scale: Scale,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut figures = Vec::new();
    let mut scale = Scale::Default;
    let mut out = PathBuf::from("results");
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--scale" => {
                let v = argv.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&v).ok_or(format!("unknown scale '{v}'"))?;
            }
            "--out" => {
                out = PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" | "--list" => {
                return Err(USAGE.into());
            }
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            other => figures.push(other.to_string()),
        }
    }
    if figures.is_empty() {
        figures.push("all".into());
    }
    Ok(Args { figures, scale, out })
}

fn main() -> ExitCode {
    silence_injected_panics();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let wanted = |name: &str| {
        args.figures.iter().any(|f| f == name || f == "all")
    };
    let mut csvs: Vec<(String, String)> = Vec::new();
    let mut ran_any = false;

    if wanted("fig3") {
        let r = fig3::run(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        csvs.extend(r.to_svg());
        ran_any = true;
    }
    if wanted("fig4") {
        let r = fig4::run(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        csvs.extend(r.to_svg());
        ran_any = true;
    }
    if wanted("fig5") {
        let r = fig5::run(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        csvs.extend(r.to_svg());
        ran_any = true;
    }
    if wanted("fig6") {
        let r = fig6::run(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        csvs.extend(r.to_svg());
        ran_any = true;
    }
    if wanted("fig7") {
        let r = fig7::run(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        csvs.extend(r.to_svg());
        ran_any = true;
    }
    if wanted("fig8") {
        let r = fig8::run(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        csvs.extend(r.to_svg());
        ran_any = true;
    }
    if wanted("headline") {
        let r = headline::run(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        ran_any = true;
    }
    if wanted("theory") {
        let r = theory::run(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        ran_any = true;
    }
    if wanted("sampling") {
        let r = exts::sampling_comparison(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        ran_any = true;
    }
    if wanted("braids") {
        let r = exts::braids_comparison(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        ran_any = true;
    }
    if wanted("throughput") {
        let r = experiments::throughput::run(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        csvs.extend(r.to_svg());
        let c = experiments::throughput::construction_scaling(args.scale, &[1, 2, 4], 3);
        println!("{}", c.render());
        if let Some(speedup) = c.speedup(4) {
            println!("partitioned-vs-replay speedup at 4 shards: {speedup:.2}x\n");
        }
        csvs.extend(c.to_csv());
        ran_any = true;
    }
    if wanted("compare") {
        let r = experiments::harness::compare_all(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        csvs.extend(r.to_svg());
        ran_any = true;
    }
    if wanted("ablate") {
        let r = ablate::run(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        ran_any = true;
    }
    if wanted("tails") {
        let r = exts::tail_sensitivity(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        ran_any = true;
    }
    if wanted("bursts") {
        let r = exts::burst_tolerance(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        ran_any = true;
    }
    if wanted("zoo") {
        let r = experiments::zoo::run(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        ran_any = true;
    }
    if wanted("cluster") {
        let r = experiments::cluster_view::run(args.scale);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        ran_any = true;
    }
    if wanted("compression") {
        let r = exts::compression_comparison(12, 200);
        println!("{}", r.render());
        csvs.extend(r.to_csv());
        ran_any = true;
    }

    if !ran_any {
        eprintln!("nothing to run: unknown experiment(s) {:?}\n{USAGE}", args.figures);
        return ExitCode::FAILURE;
    }

    if !csvs.is_empty() {
        if let Err(e) = std::fs::create_dir_all(&args.out) {
            eprintln!("cannot create {}: {e}", args.out.display());
            return ExitCode::FAILURE;
        }
        for (name, content) in &csvs {
            let path = args.out.join(name);
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        println!("wrote {} CSV/SVG artifacts to {}", csvs.len(), args.out.display());
    }
    ExitCode::SUCCESS
}
