//! Packed-SRAM ingest parity: the bit-packed [`PackedCaesar`] build
//! must be **byte-identical** to the word-per-counter [`Caesar`] build
//! for every configuration — same counters, same tallies, same
//! estimates. The [`caesar::SramBacking`] seam only swaps the storage
//! layout; nothing observable may change.

use caesar::{
    Caesar, CaesarConfig, ConcurrentCaesar, Estimator, PackedCaesar, SramBacking,
};
use cachesim::CachePolicy;
use support::rand::Rng;
use support::testkit::{for_each_seed, GenExt};

fn assert_parity(word: &Caesar, packed: &PackedCaesar, ctx: &str) {
    let (w, p) = (word.sram(), packed.sram());
    assert_eq!(w.len(), p.len(), "{ctx}: length");
    for i in 0..w.len() {
        assert_eq!(
            SramBacking::get(w, i),
            SramBacking::get(p, i),
            "{ctx}: counter {i}"
        );
    }
    assert_eq!(w.sum(), p.sum(), "{ctx}: sum");
    assert_eq!(w.total_added(), p.total_added(), "{ctx}: offered units");
    let (ws, ps) = (word.stats(), packed.stats());
    assert_eq!(ws.sram.accesses, ps.sram.accesses, "{ctx}: accesses");
    assert_eq!(ws.sram.saturations, ps.sram.saturations, "{ctx}: saturations");
    assert_eq!(ws.evictions, ps.evictions, "{ctx}: evictions");
    assert_eq!(ws.sram_writes, ps.sram_writes, "{ctx}: sram writes");
    assert_eq!(
        w.saturated_fraction().to_bits(),
        p.saturated_fraction().to_bits(),
        "{ctx}: saturated fraction"
    );
}

fn random_cfg(rng: &mut impl Rng, counter_bits: u32) -> CaesarConfig {
    let k = rng.gen_range(1usize..=8);
    CaesarConfig {
        cache_entries: rng.gen_range(4usize..64),
        entry_capacity: rng.gen_range(2u64..48),
        policy: rng.pick(&[CachePolicy::Lru, CachePolicy::Random, CachePolicy::Fifo]),
        counters: rng.gen_range(k.max(16)..400),
        k,
        counter_bits,
        seed: rng.gen(),
        ..CaesarConfig::default()
    }
}

fn random_trace(rng: &mut impl Rng) -> Vec<u64> {
    let universe = rng.gen_range(8u64..300);
    rng.vec_with(200..3000, |r| r.gen_range(0..universe))
}

/// Word-backed and packed-backed sequential builds are byte-identical
/// across all eviction policies and random geometries; queries agree
/// bitwise.
#[test]
fn sequential_builds_are_byte_identical() {
    for_each_seed(|rng| {
        // Word-straddling widths on purpose: 64 % bits != 0 exercises
        // split reads/writes in the packed layout.
        let bits = rng.pick(&[3u32, 5, 7, 11, 13, 17, 23, 31, 33, 63]);
        let cfg = random_cfg(rng, bits);
        let flows = random_trace(rng);

        let mut word = Caesar::new(cfg);
        word.record_batch(&flows);
        word.finish();

        let mut packed = PackedCaesar::new(cfg);
        packed.record_batch(&flows);
        packed.finish();

        assert_parity(&word, &packed, &format!("bits {bits}"));

        let query: Vec<u64> = (0..64).collect();
        for est in [Estimator::Csm, Estimator::Mlm] {
            let a = word.estimate_all(&query, est);
            let b = packed.estimate_all(&query, est);
            for i in 0..query.len() {
                assert_eq!(a[i].value.to_bits(), b[i].value.to_bits(), "{}", est.name());
                assert_eq!(a[i].variance.to_bits(), b[i].variance.to_bits(), "{}", est.name());
            }
        }
    });
}

/// Saturation edges: narrow straddling widths clamp at max_value in
/// both layouts on the same packets, leaving identical counters and
/// saturation tallies.
#[test]
fn saturation_edges_agree_at_straddling_widths() {
    for_each_seed(|rng| {
        let bits = rng.pick(&[1u32, 2, 3, 5, 7]);
        let mut cfg = random_cfg(rng, bits);
        // Saturation by pigeonhole: at most 11 counters * 127 max_value
        // = 1397 storable units, but every trace offers >= 2000, so at
        // least one counter must clamp regardless of the k-split.
        cfg.counters = rng.gen_range(cfg.k.max(4)..12);
        cfg.entry_capacity = rng.gen_range(16u64..64);
        let universe = rng.gen_range(8u64..300);
        let flows: Vec<u64> = rng.vec_with(2000..4000, |r| r.gen_range(0..universe));

        let mut word = Caesar::new(cfg);
        word.record_batch(&flows);
        word.finish();

        let mut packed = PackedCaesar::new(cfg);
        packed.record_batch(&flows);
        packed.finish();

        assert!(
            word.stats().sram.saturations > 0,
            "geometry failed to saturate (bits {bits}) — weak test"
        );
        assert_parity(&word, &packed, &format!("saturating bits {bits}"));
    });
}

/// Per-packet `record` and batched `record_batch` agree on the packed
/// backing too (the batch base-hash path is layout-independent).
#[test]
fn packed_scalar_and_batch_ingest_agree() {
    for_each_seed(|rng| {
        let bits = rng.pick(&[5u32, 13, 29]);
        let cfg = random_cfg(rng, bits);
        let flows = random_trace(rng);

        let mut scalar = PackedCaesar::new(cfg);
        for &f in &flows {
            scalar.record(f);
        }
        scalar.finish();

        let mut batch = PackedCaesar::new(cfg);
        batch.record_batch(&flows);
        batch.finish();

        let (s, b) = (scalar.sram(), batch.sram());
        for i in 0..s.len() {
            assert_eq!(SramBacking::get(s, i), SramBacking::get(b, i), "counter {i}");
        }
        assert_eq!(scalar.stats().evictions, batch.stats().evictions);
        assert_eq!(scalar.stats().sram_writes, batch.stats().sram_writes);
    });
}

/// The concurrent packed build (segment staging + serial merge) yields
/// the same counters as the word-backed threaded build, and with one
/// shard it is byte-identical to the sequential oracle.
#[test]
fn concurrent_packed_build_matches_word_build() {
    for_each_seed(|rng| {
        let bits = rng.pick(&[7u32, 16, 33]);
        let cfg = random_cfg(rng, bits);
        let flows = random_trace(rng);
        for shards in [1usize, 2, 3] {
            let word = ConcurrentCaesar::build(cfg, shards, &flows);
            let packed = ConcurrentCaesar::try_build_packed(cfg, shards, &flows)
                .expect("packed build");
            let (w, p) = (word.sram(), packed.sram());
            assert_eq!(w.len(), p.len());
            for i in 0..w.len() {
                assert_eq!(
                    w.get(i),
                    SramBacking::get(p, i),
                    "shards {shards} counter {i}"
                );
            }
            assert_eq!(
                word.ingest_stats().evictions,
                packed.stats().evictions,
                "shards {shards} evictions"
            );
            assert_eq!(
                word.ingest_stats().flushed_updates,
                packed.stats().sram_writes,
                "shards {shards} flushed updates vs writes"
            );
        }

        // One shard ≡ the sequential packed sketch, counter for counter.
        let seq = {
            let mut c = PackedCaesar::new(cfg);
            c.record_batch(&flows);
            c.finish();
            c
        };
        let one = ConcurrentCaesar::try_build_packed(cfg, 1, &flows).expect("packed build");
        for i in 0..seq.sram().len() {
            assert_eq!(
                SramBacking::get(seq.sram(), i),
                SramBacking::get(one.sram(), i),
                "sequential oracle counter {i}"
            );
        }
        assert_eq!(seq.stats().evictions, one.stats().evictions);
    });
}
