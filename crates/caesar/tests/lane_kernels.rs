//! Bit-identity properties for the lane-structured query kernels.
//!
//! The batch query engine sweeps prepared CSM/MLM kernels over
//! `HASH_LANES`-wide chunks of flows ([`csm::Prepared::estimate_lanes`]
//! and [`mlm::Prepared::estimate_lanes`]). The optimization contract is
//! that lanes only give the autovectorizer independent chains to pack —
//! **every lane must reproduce the scalar kernel bit for bit**, for
//! every `k` and geometry, so `estimate_all` answers never depend on
//! which code path computed them.

use caesar::estimator::{csm, mlm, EstimateParams, LANES};
use caesar::{Caesar, CaesarConfig, Estimator};
use cachesim::CachePolicy;
use support::rand::Rng;
use support::testkit::{for_each_seed, GenExt};

fn random_params(rng: &mut impl Rng, k: usize) -> EstimateParams {
    EstimateParams {
        k,
        y: rng.gen_range(2u64..200),
        counters: rng.gen_range(k.max(2)..5000),
        total_packets: rng.gen_range(0u64..2_000_000),
    }
}

/// CSM lane kernel ≡ scalar prepared kernel, bitwise, for k ∈ 1..=8 ×
/// random geometries × random counter loads.
#[test]
fn csm_lanes_match_scalar_bitwise() {
    for_each_seed(|rng| {
        for k in 1..=8usize {
            let params = random_params(rng, k);
            let prep = csm::Prepared::new(&params);
            let rows: Vec<Vec<u64>> =
                (0..LANES).map(|_| rng.vec_with(k..k + 1, |r| r.gen_range(0u64..1 << 34))).collect();
            // u64 accumulation then one exact convert, as the batch
            // gather pass does it.
            let sums: [u64; LANES] = std::array::from_fn(|l| rows[l].iter().sum());
            let sums_f: [f64; LANES] = std::array::from_fn(|l| sums[l] as f64);
            let (values, variances) = prep.estimate_lanes(&sums_f);
            for (lane, row) in rows.iter().enumerate() {
                let scalar = prep.estimate(row);
                assert_eq!(
                    scalar.value.to_bits(),
                    values[lane].to_bits(),
                    "csm value lane {lane} k {k}"
                );
                assert_eq!(
                    scalar.variance.to_bits(),
                    variances[lane].to_bits(),
                    "csm variance lane {lane} k {k}"
                );
            }
        }
    });
}

/// MLM lane kernel ≡ scalar prepared kernel, bitwise, including the
/// `denom == 0` guard lanes (forced via zero-noise geometries).
#[test]
fn mlm_lanes_match_scalar_bitwise() {
    for_each_seed(|rng| {
        for k in 1..=8usize {
            let params = random_params(rng, k);
            let prep = mlm::Prepared::new(&params);
            let rows: Vec<Vec<u64>> =
                (0..LANES).map(|_| rng.vec_with(k..k + 1, |r| r.gen_range(0u64..1 << 30))).collect();
            // Σw² exactly as the scalar kernel accumulates it.
            let sum_sq: [f64; LANES] = std::array::from_fn(|l| {
                rows[l].iter().map(|&w| (w as f64) * (w as f64)).sum()
            });
            let lanes = prep.estimate_lanes(&sum_sq);
            for (lane, row) in rows.iter().enumerate() {
                let scalar = prep.estimate(row);
                assert_eq!(
                    scalar.value.to_bits(),
                    lanes[lane].value.to_bits(),
                    "mlm value lane {lane} k {k}"
                );
                assert_eq!(
                    scalar.variance.to_bits(),
                    lanes[lane].variance.to_bits(),
                    "mlm variance lane {lane} k {k}"
                );
            }
        }
    });
}

/// The `denom == 0` guard: k = 1 makes every constant term vanish, so
/// the select lane must produce exactly 0.0, same as the scalar branch.
#[test]
fn mlm_zero_denominator_guard_matches() {
    let params = EstimateParams { k: 1, y: 10, counters: 100, total_packets: 0 };
    let prep = mlm::Prepared::new(&params);
    let scalar = prep.estimate(&[0]);
    let lanes = prep.estimate_lanes(&[0.0; LANES]);
    for est in &lanes {
        assert_eq!(scalar.value.to_bits(), est.value.to_bits());
        assert_eq!(scalar.variance.to_bits(), est.variance.to_bits());
        assert_eq!(est.variance, 0.0);
    }
}

/// End-to-end: `estimate_all`'s fused gather + lane sweep over a real
/// sketch is bit-identical to the per-flow scalar query, for every
/// k ∈ 1..=8, both estimators, random geometries, and flow sets that
/// are not a multiple of the lane width (remainder tail included).
#[test]
fn batch_query_matches_per_flow_bitwise() {
    for_each_seed(|rng| {
        let k = rng.gen_range(1usize..=8);
        let cfg = CaesarConfig {
            cache_entries: rng.gen_range(4usize..64),
            entry_capacity: rng.gen_range(2u64..40),
            policy: rng.pick(&[CachePolicy::Lru, CachePolicy::Random, CachePolicy::Fifo]),
            counters: rng.gen_range(k.max(16)..512),
            k,
            counter_bits: rng.gen_range(8u32..40),
            seed: rng.gen(),
            ..CaesarConfig::default()
        };
        let universe = rng.gen_range(8u64..200);
        let flows: Vec<u64> = rng.vec_with(100..2000, |r| r.gen_range(0..universe));
        let mut sketch = Caesar::new(cfg);
        sketch.record_batch(&flows);
        sketch.finish();
        let query: Vec<u64> = (0..universe).collect();
        for est in [Estimator::Csm, Estimator::Mlm] {
            let batch = sketch.estimate_all(&query, est);
            assert_eq!(batch.len(), query.len());
            for (i, &f) in query.iter().enumerate() {
                let scalar = sketch.estimate(f, est);
                assert_eq!(
                    scalar.value.to_bits(),
                    batch[i].value.to_bits(),
                    "{} flow {f} k {k}",
                    est.name()
                );
                assert_eq!(
                    scalar.variance.to_bits(),
                    batch[i].variance.to_bits(),
                    "{} flow {f} variance",
                    est.name()
                );
            }
        }
    });
}
