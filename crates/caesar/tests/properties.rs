//! Property tests for the CAESAR crate's data structures and
//! estimators, on the deterministic `support::testkit` harness.

use caesar::estimator::{csm, mlm, EstimateParams};
use caesar::{AtomicCounterArray, CounterArray, PackedCounterArray};
use support::rand::Rng;
use support::testkit::{for_each_seed, GenExt};

/// Packed, plain, and atomic counter arrays agree on any operation
/// stream and geometry.
#[test]
fn three_counter_layouts_agree() {
    for_each_seed(|rng| {
        let ops =
            rng.vec_with(1..800, |r| (r.gen_range(0usize..64), r.gen_range(0u64..5000)));
        let len = rng.gen_range(1usize..64);
        let bits = rng.gen_range(1u32..40);
        let mut packed = PackedCounterArray::new(len, bits);
        let mut plain = CounterArray::new(len, bits);
        let atomic = AtomicCounterArray::new(len, bits);
        for &(idx, v) in &ops {
            let idx = idx % len;
            packed.add(idx, v);
            plain.add(idx, v);
            atomic.add(idx, v);
        }
        for i in 0..len {
            assert_eq!(packed.get(i), plain.get(i), "counter {i}");
            assert_eq!(atomic.get(i), plain.get(i), "counter {i}");
        }
        assert_eq!(packed.total_added(), plain.total_added());
        assert_eq!(atomic.total_added(), plain.total_added());
    });
}

/// The packed layout's memory accounting is exactly ⌈len·bits/8⌉.
#[test]
fn packed_memory_is_exact() {
    for_each_seed(|rng| {
        let len = rng.gen_range(1usize..500);
        let bits = rng.gen_range(1u32..63);
        let a = PackedCounterArray::new(len, bits);
        assert_eq!(a.memory_bytes(), (len * bits as usize).div_ceil(8));
    });
}

/// CSM is the exact inverse of the counter-sum model: construct
/// counters with a known own-share split plus uniform noise and the
/// estimate recovers the size exactly.
#[test]
fn csm_inverts_the_forward_model() {
    for_each_seed(|rng| {
        let x = rng.gen_range(0u64..1_000_000);
        let noise = rng.gen_range(0u64..10_000);
        let k = rng.gen_range(1usize..8);
        let l_extra = rng.gen_range(0usize..100);
        let k64 = k as u64;
        let counters: Vec<u64> =
            (0..k64).map(|r| x / k64 + u64::from(r < x % k64) + noise).collect();
        let l = k + l_extra;
        let params = EstimateParams {
            k,
            y: 54,
            counters: l,
            // Total mass such that n/L is exactly `noise`.
            total_packets: noise * l as u64,
        };
        let est = csm::estimate(&counters, &params);
        assert!((est.value - x as f64).abs() < 1e-6, "x={} est={}", x, est.value);
    });
}

/// MLM and CSM agree within the model variance for noise-free
/// evenly split counters.
#[test]
fn mlm_tracks_csm_on_clean_counters() {
    for_each_seed(|rng| {
        let x = rng.gen_range(1u64..500_000);
        let k = rng.gen_range(2usize..6);
        let k64 = k as u64;
        let counters: Vec<u64> = (0..k64).map(|r| x / k64 + u64::from(r < x % k64)).collect();
        let params = EstimateParams { k, y: 54, counters: 1 << 20, total_packets: x };
        let c = csm::estimate(&counters, &params);
        let m = mlm::estimate(&counters, &params);
        // Identical inputs: the two estimators differ by at most the
        // MLM quadratic's (k−1)²/y correction plus rounding.
        assert!(
            (c.value - m.value).abs() <= 1.0 + 0.001 * x as f64,
            "CSM {} vs MLM {}",
            c.value,
            m.value
        );
    });
}

/// Confidence intervals are ordered and contain the point estimate
/// for any reliability.
#[test]
fn confidence_intervals_are_sane() {
    for_each_seed(|rng| {
        let w = rng.vec_with(3..4, |r| r.gen_range(0u64..100_000));
        let alpha = rng.gen_range(0.5f64..0.999);
        let params = EstimateParams { k: 3, y: 54, counters: 1000, total_packets: 50_000 };
        let e = csm::estimate(&w, &params);
        let (lo, hi) = e.confidence_interval(alpha);
        assert!(lo <= e.value && e.value <= hi);
        // Higher reliability never shrinks the interval.
        let (lo2, hi2) = e.confidence_interval((alpha + 1.0) / 2.0);
        assert!(lo2 <= lo && hi2 >= hi);
    });
}

/// Gaussian quantile inverts the CDF everywhere.
#[test]
fn gaussian_quantile_roundtrip() {
    for_each_seed(|rng| {
        let p = rng.gen_range(0.001f64..0.999);
        let x = caesar::gaussian::normal_quantile(p);
        assert!((caesar::gaussian::normal_cdf(x) - p).abs() < 1e-6);
    });
}
