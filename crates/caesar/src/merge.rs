//! Mergeable sketches: the cluster-view primitive.
//!
//! CAESAR's shared-counter SRAM is *linear*: two sketches built with
//! the same geometry and seeds map every flow onto the same `k`
//! counters, so their counter arrays sum counter-wise and the union
//! queries exactly as if one box had seen both packet streams. That is
//! what turns N independent linecard engines into one cluster-wide
//! measurement view.
//!
//! The one place a naive counter-wise sum goes wrong is saturation: a
//! counter clamped at `max_value` on one node, summed past the clamp
//! during a merge, would silently read as an ordinary (unsaturated)
//! value and every sharing flow would be under-estimated with no
//! warning. Merging here is therefore *saturation-aware*: sums clamp
//! at `max_value`, each crossing is counted as a saturation event, and
//! both sides' prior event tallies fold into the result — so
//! [`crate::QueryHealth`] confidence degrades on the merged view
//! exactly as it would have on a single overloaded node.
//!
//! Mismatched configurations are rejected with a typed [`MergeError`]
//! instead of producing silently-wrong sums; [`SketchFingerprint`]
//! captures exactly the fields two sketches must share. The
//! wire-transportable form of a sketch is [`SketchPayload`] — what a
//! measurement node pushes to an aggregator (see the `service` crate).

use crate::config::{CaesarConfig, Estimator};
use support::bytesx::{ByteReader, PutBytes};

/// Everything two sketches must share for their counter arrays to be
/// summable *and* for the merged view to answer queries identically:
/// the SRAM geometry (`L`, counter width), the per-flow mapping
/// (`k`, master seed — the hash family), the estimator the view will
/// serve, and the cache capacity `y` the estimators' noise model uses.
///
/// Deliberately **not** part of the fingerprint: `cache_entries` and
/// the replacement policy. They shape *when* mass is evicted on each
/// node, not *where* it lands — taps with different on-chip budgets
/// still merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchFingerprint {
    /// Number of shared SRAM counters `L`.
    pub counters: usize,
    /// Bits per counter (fixes the clamp value).
    pub counter_bits: u32,
    /// Mapped counters per flow `k`.
    pub k: usize,
    /// Cache entry capacity `y` (an estimator parameter).
    pub entry_capacity: u64,
    /// Master seed — the whole hash family.
    pub seed: u64,
    /// Default estimator the merged view serves.
    pub estimator: Estimator,
}

/// Serialized size of a fingerprint (see
/// [`SketchFingerprint::encode_into`]).
pub const FINGERPRINT_BYTES: usize = 8 + 4 + 8 + 8 + 8 + 1;

impl SketchFingerprint {
    /// The fingerprint of a configuration.
    pub fn of(cfg: &CaesarConfig) -> Self {
        Self {
            counters: cfg.counters,
            counter_bits: cfg.counter_bits,
            k: cfg.k,
            entry_capacity: cfg.entry_capacity,
            seed: cfg.seed,
            estimator: cfg.estimator,
        }
    }

    /// FNV-1a fold of every field — a compact identity for logs and
    /// wire handshakes. Equal fingerprints have equal digests; a digest
    /// alone cannot name *which* field diverged (compare the structs
    /// for that).
    pub fn digest(&self) -> u64 {
        let mut buf = Vec::with_capacity(FINGERPRINT_BYTES);
        self.encode_into(&mut buf);
        hashkit::fnv::fnv1a64(&buf)
    }

    /// Typed compatibility check: `Ok(())` when `other` can merge into
    /// a sketch with this fingerprint, the first mismatching field as
    /// a [`MergeError`] otherwise.
    pub fn expect_matches(&self, other: &Self) -> Result<(), MergeError> {
        let geometry = [
            ("counters", self.counters as u64, other.counters as u64),
            ("counter_bits", u64::from(self.counter_bits), u64::from(other.counter_bits)),
            ("k", self.k as u64, other.k as u64),
            ("entry_capacity", self.entry_capacity, other.entry_capacity),
        ];
        for (field, ours, theirs) in geometry {
            if ours != theirs {
                return Err(MergeError::Geometry { field, ours, theirs });
            }
        }
        if self.seed != other.seed {
            return Err(MergeError::Seed { ours: self.seed, theirs: other.seed });
        }
        if self.estimator != other.estimator {
            return Err(MergeError::Estimator {
                ours: self.estimator,
                theirs: other.estimator,
            });
        }
        Ok(())
    }

    /// Append the fixed-width encoding ([`FINGERPRINT_BYTES`] bytes).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(self.counters as u64);
        buf.put_u32_le(self.counter_bits);
        buf.put_u64_le(self.k as u64);
        buf.put_u64_le(self.entry_capacity);
        buf.put_u64_le(self.seed);
        buf.push(match self.estimator {
            Estimator::Csm => 0,
            Estimator::Mlm => 1,
        });
    }

    /// Decode [`SketchFingerprint::encode_into`] output from a reader.
    /// `None` on truncation or an unknown estimator tag.
    pub fn decode_from(r: &mut ByteReader) -> Option<Self> {
        let counters = r.get_u64_le()? as usize;
        let counter_bits = r.get_u32_le()?;
        let k = r.get_u64_le()? as usize;
        let entry_capacity = r.get_u64_le()?;
        let seed = r.get_u64_le()?;
        let estimator = match r.get_u8()? {
            0 => Estimator::Csm,
            1 => Estimator::Mlm,
            _ => return None,
        };
        Some(Self { counters, counter_bits, k, entry_capacity, seed, estimator })
    }
}

/// Why two sketches refused to merge. Every variant names what this
/// side expected (`ours`) and what the other side carried (`theirs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// A geometry field differs (counter count, width, `k`, or `y`).
    Geometry {
        /// Which field diverged.
        field: &'static str,
        /// This side's value.
        ours: u64,
        /// The other side's value.
        theirs: u64,
    },
    /// The master seeds differ — the hash families map flows to
    /// different counters, so summing would mix unrelated flows.
    Seed {
        /// This side's seed.
        ours: u64,
        /// The other side's seed.
        theirs: u64,
    },
    /// The default estimators differ — merged queries would silently
    /// answer with a different de-noising model than the pushing node
    /// calibrated for.
    Estimator {
        /// This side's estimator.
        ours: Estimator,
        /// The other side's estimator.
        theirs: Estimator,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Geometry { field, ours, theirs } => {
                write!(f, "sketch geometry mismatch: {field} is {ours} here, {theirs} there")
            }
            MergeError::Seed { ours, theirs } => {
                write!(f, "sketch seed mismatch: {ours:#x} here, {theirs:#x} there")
            }
            MergeError::Estimator { ours, theirs } => write!(
                f,
                "sketch estimator mismatch: {} here, {} there",
                ours.name(),
                theirs.name()
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Magic prefix of an encoded [`SketchPayload`].
pub const PAYLOAD_MAGIC: &[u8; 4] = b"CSKP";
/// Current payload encoding version.
pub const PAYLOAD_VERSION: u16 = 1;

/// Errors from decoding a [`SketchPayload`] or [`SketchDelta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadError {
    /// Stream did not start with the expected magic.
    BadMagic,
    /// Unknown encoding version.
    BadVersion(u16),
    /// Fewer bytes than the header promised, or a malformed field.
    Truncated,
    /// A field decoded but violates an internal invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for PayloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PayloadError::BadMagic => write!(f, "not a sketch payload"),
            PayloadError::BadVersion(v) => write!(f, "unsupported sketch payload version {v}"),
            PayloadError::Truncated => write!(f, "sketch payload truncated"),
            PayloadError::Malformed(what) => write!(f, "sketch payload malformed: {what}"),
        }
    }
}

impl std::error::Error for PayloadError {}

/// The wire-transportable state of one node's sketch: fingerprint,
/// frozen counters, and the tallies the merged view must fold to stay
/// honest. This is what `PushSketch` carries in the service protocol
/// and what [`crate::ConcurrentCaesar::merge_sketch`] consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchPayload {
    /// Identity of the producing configuration.
    pub fingerprint: SketchFingerprint,
    /// The `L` frozen counter values.
    pub counters: Vec<u64>,
    /// Units offered to the producing array (the estimators' `n`).
    pub total_added: u64,
    /// Saturating-add events the producer observed.
    pub saturation_events: u64,
    /// Eviction events behind those counters (diagnostics).
    pub evictions: u64,
}

impl SketchPayload {
    /// Fixed-width binary encoding (little-endian throughout):
    ///
    /// ```text
    /// magic "CSKP", version u16
    /// fingerprint (FINGERPRINT_BYTES)
    /// total_added u64, saturation_events u64, evictions u64
    /// num_counters u64, then each counter u64
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.put_slice(PAYLOAD_MAGIC);
        buf.put_u16_le(PAYLOAD_VERSION);
        self.fingerprint.encode_into(&mut buf);
        buf.put_u64_le(self.total_added);
        buf.put_u64_le(self.saturation_events);
        buf.put_u64_le(self.evictions);
        buf.put_u64_le(self.counters.len() as u64);
        for &c in &self.counters {
            buf.put_u64_le(c);
        }
        buf
    }

    /// Exact size of [`SketchPayload::encode`]'s output in bytes —
    /// the wire cost of a full push, without encoding.
    pub fn encoded_len(&self) -> usize {
        4 + 2 + FINGERPRINT_BYTES + 32 + self.counters.len() * 8
    }

    /// Decode [`SketchPayload::encode`] output.
    pub fn decode(data: &[u8]) -> Result<Self, PayloadError> {
        let mut r = ByteReader::new(data);
        let magic = r.get_array::<4>().ok_or(PayloadError::BadMagic)?;
        if &magic != PAYLOAD_MAGIC {
            return Err(PayloadError::BadMagic);
        }
        let version = r.get_u16_le().ok_or(PayloadError::Truncated)?;
        if version != PAYLOAD_VERSION {
            return Err(PayloadError::BadVersion(version));
        }
        let fingerprint =
            SketchFingerprint::decode_from(&mut r).ok_or(PayloadError::Truncated)?;
        let total_added = r.get_u64_le().ok_or(PayloadError::Truncated)?;
        let saturation_events = r.get_u64_le().ok_or(PayloadError::Truncated)?;
        let evictions = r.get_u64_le().ok_or(PayloadError::Truncated)?;
        let num = r.get_u64_le().ok_or(PayloadError::Truncated)? as usize;
        if r.remaining() < num.saturating_mul(8) {
            return Err(PayloadError::Truncated);
        }
        let mut counters = Vec::with_capacity(num);
        for _ in 0..num {
            counters.push(r.get_u64_le().ok_or(PayloadError::Truncated)?);
        }
        Ok(Self { fingerprint, counters, total_added, saturation_events, evictions })
    }
}

/// Magic prefix of an encoded [`SketchDelta`].
pub const DELTA_PAYLOAD_MAGIC: &[u8; 4] = b"CSKD";
/// Current delta payload encoding version.
pub const DELTA_PAYLOAD_VERSION: u16 = 1;

/// The **incremental** wire form of a sketch push: only the counter
/// blocks that grew since the tap's previous push, plus the tally
/// *increments* the view must fold. Counters are monotone
/// non-decreasing (saturating adds never shrink one), so the diff of
/// two consecutive [`SketchPayload`]s is itself a mergeable sketch —
/// applying it to the view is counter-wise addition, exactly like
/// [`SketchPayload`] but O(changed blocks) on the wire instead of
/// O(L).
///
/// Blocks are [`crate::DIRTY_BLOCK_COUNTERS`]-counter spans — the same
/// granularity the SRAM layer's dirty bitmap tracks — identified by
/// block index, carrying one increment per counter in the span.
///
/// `base_epoch` is the aggregator view epoch this delta diffs against:
/// the server only applies a delta whose base matches its current
/// epoch (see the service protocol's `PushDelta`/`DeltaNack`), so a
/// tap that missed an epoch is told to fall back to a full push
/// instead of silently double- or under-counting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchDelta {
    /// Identity of the producing configuration.
    pub fingerprint: SketchFingerprint,
    /// The aggregator view epoch this delta was diffed against.
    pub base_epoch: u64,
    /// Changed blocks: `(block index, per-counter increments)`,
    /// strictly ascending by block index. The last block of a
    /// non-multiple `L` is short, exactly like the dirty bitmap's.
    pub blocks: Vec<(usize, Vec<u64>)>,
    /// Increment of the producer's offered-units total (`n`).
    pub total_added_delta: u64,
    /// Saturating-add events since the previous push.
    pub saturation_events_delta: u64,
    /// Eviction events since the previous push (diagnostics).
    pub evictions_delta: u64,
}

impl SketchDelta {
    /// Diff two consecutive exports of the **same tap**: `cur` must be
    /// a later [`crate::ConcurrentCaesar::export_sketch`] (or
    /// equivalent) of the sketch that produced `prev`. Counters only
    /// grow, so `cur − prev` is exact below the clamp; a counter
    /// pinned at `max_value` on both sides diffs to zero (its mass is
    /// already accounted — the saturation tally increment keeps the
    /// view's health honest).
    ///
    /// # Errors
    /// Typed [`MergeError`] when the two payloads do not share a
    /// fingerprint (they cannot be exports of one tap).
    pub fn between(
        prev: &SketchPayload,
        cur: &SketchPayload,
        base_epoch: u64,
    ) -> Result<Self, MergeError> {
        cur.fingerprint.expect_matches(&prev.fingerprint)?;
        let span = crate::sram::DIRTY_BLOCK_COUNTERS;
        let len = cur.counters.len().min(prev.counters.len());
        let mut blocks = Vec::new();
        for (block, (c, p)) in cur.counters[..len]
            .chunks(span)
            .zip(prev.counters[..len].chunks(span))
            .enumerate()
        {
            if c != p {
                blocks.push((
                    block,
                    c.iter().zip(p).map(|(&cv, &pv)| cv.saturating_sub(pv)).collect(),
                ));
            }
        }
        Ok(Self {
            fingerprint: cur.fingerprint,
            base_epoch,
            blocks,
            total_added_delta: cur.total_added - prev.total_added,
            saturation_events_delta: cur.saturation_events - prev.saturation_events,
            evictions_delta: cur.evictions - prev.evictions,
        })
    }

    /// `true` when nothing changed between the two exports — the tap
    /// can skip the push entirely (the frame would still carry the
    /// header).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
            && self.total_added_delta == 0
            && self.saturation_events_delta == 0
            && self.evictions_delta == 0
    }

    /// Re-express this delta as a full-width [`SketchPayload`] that
    /// carries **only the increment**: the changed blocks' per-counter
    /// increments at their dense offsets, zeros everywhere else, and
    /// the tally *deltas* in the tally slots. Merging the result via
    /// [`crate::ConcurrentCaesar::merge_sketch`] is state-for-state
    /// identical to merging the delta via
    /// [`crate::ConcurrentCaesar::merge_delta`].
    ///
    /// This is the recovery path after a delta NACK: the aggregator
    /// refused the delta because its view epoch moved on, not because
    /// the increment was applied — so the tap re-pushes the same
    /// increment as an epoch-free full frame. Pushing the tap's
    /// *cumulative* sketch there instead would double-count every
    /// previously-acked epoch.
    pub fn to_increment_payload(&self) -> SketchPayload {
        let span = crate::sram::DIRTY_BLOCK_COUNTERS;
        let mut counters = vec![0u64; self.fingerprint.counters];
        for (block, increments) in &self.blocks {
            let start = block * span;
            counters[start..start + increments.len()].copy_from_slice(increments);
        }
        SketchPayload {
            fingerprint: self.fingerprint,
            counters,
            total_added: self.total_added_delta,
            saturation_events: self.saturation_events_delta,
            evictions: self.evictions_delta,
        }
    }

    /// Binary encoding, little-endian throughout:
    ///
    /// ```text
    /// magic "CSKD", version u16
    /// fingerprint (FINGERPRINT_BYTES)
    /// base_epoch u64
    /// total_added_delta u64, saturation_events_delta u64, evictions_delta u64
    /// num_blocks u64, then per block: block_index u64 + one u64 per
    ///   counter in the span (the span is derived from the
    ///   fingerprint's L, so it is not stored)
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.put_slice(DELTA_PAYLOAD_MAGIC);
        buf.put_u16_le(DELTA_PAYLOAD_VERSION);
        self.fingerprint.encode_into(&mut buf);
        buf.put_u64_le(self.base_epoch);
        buf.put_u64_le(self.total_added_delta);
        buf.put_u64_le(self.saturation_events_delta);
        buf.put_u64_le(self.evictions_delta);
        buf.put_u64_le(self.blocks.len() as u64);
        for (block, increments) in &self.blocks {
            buf.put_u64_le(*block as u64);
            for &v in increments {
                buf.put_u64_le(v);
            }
        }
        buf
    }

    /// Exact size of [`SketchDelta::encode`]'s output in bytes — the
    /// wire cost of a delta push, without encoding. O(changed blocks)
    /// where the full payload's is O(L).
    pub fn encoded_len(&self) -> usize {
        let values: usize = self.blocks.iter().map(|(_, v)| v.len()).sum();
        4 + 2 + FINGERPRINT_BYTES + 40 + self.blocks.len() * 8 + values * 8
    }

    /// Decode [`SketchDelta::encode`] output, validating block
    /// structure (in-range, strictly ascending, correct span length)
    /// so a decoded delta is always safe to apply.
    pub fn decode(data: &[u8]) -> Result<Self, PayloadError> {
        let span = crate::sram::DIRTY_BLOCK_COUNTERS;
        let mut r = ByteReader::new(data);
        let magic = r.get_array::<4>().ok_or(PayloadError::BadMagic)?;
        if &magic != DELTA_PAYLOAD_MAGIC {
            return Err(PayloadError::BadMagic);
        }
        let version = r.get_u16_le().ok_or(PayloadError::Truncated)?;
        if version != DELTA_PAYLOAD_VERSION {
            return Err(PayloadError::BadVersion(version));
        }
        let fingerprint =
            SketchFingerprint::decode_from(&mut r).ok_or(PayloadError::Truncated)?;
        let base_epoch = r.get_u64_le().ok_or(PayloadError::Truncated)?;
        let total_added_delta = r.get_u64_le().ok_or(PayloadError::Truncated)?;
        let saturation_events_delta = r.get_u64_le().ok_or(PayloadError::Truncated)?;
        let evictions_delta = r.get_u64_le().ok_or(PayloadError::Truncated)?;
        let n_blocks_total = fingerprint.counters.div_ceil(span);
        let num = r.get_u64_le().ok_or(PayloadError::Truncated)? as usize;
        if num > n_blocks_total {
            return Err(PayloadError::Malformed("more changed blocks than blocks"));
        }
        let mut blocks = Vec::with_capacity(num);
        let mut prev_block = None;
        for _ in 0..num {
            let block = r.get_u64_le().ok_or(PayloadError::Truncated)? as usize;
            if block >= n_blocks_total {
                return Err(PayloadError::Malformed("block index out of range"));
            }
            if prev_block.is_some_and(|p| block <= p) {
                return Err(PayloadError::Malformed("blocks not strictly ascending"));
            }
            prev_block = Some(block);
            let start = block * span;
            let count = span.min(fingerprint.counters - start);
            let mut increments = Vec::with_capacity(count);
            for _ in 0..count {
                increments.push(r.get_u64_le().ok_or(PayloadError::Truncated)?);
            }
            blocks.push((block, increments));
        }
        if r.remaining() != 0 {
            return Err(PayloadError::Malformed("trailing bytes"));
        }
        Ok(Self {
            fingerprint,
            base_epoch,
            blocks,
            total_added_delta,
            saturation_events_delta,
            evictions_delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> SketchFingerprint {
        SketchFingerprint::of(&CaesarConfig::default())
    }

    #[test]
    fn fingerprint_roundtrips_and_digests_stably() {
        let a = fp();
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        assert_eq!(buf.len(), FINGERPRINT_BYTES);
        let b = SketchFingerprint::decode_from(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let other = SketchFingerprint { seed: a.seed ^ 1, ..a };
        assert_ne!(a.digest(), other.digest());
    }

    #[test]
    fn expect_matches_names_the_diverging_field() {
        let a = fp();
        assert_eq!(a.expect_matches(&a), Ok(()));
        let geo = SketchFingerprint { counters: a.counters + 1, ..a };
        assert!(matches!(
            a.expect_matches(&geo),
            Err(MergeError::Geometry { field: "counters", .. })
        ));
        let width = SketchFingerprint { counter_bits: a.counter_bits - 1, ..a };
        assert!(matches!(
            a.expect_matches(&width),
            Err(MergeError::Geometry { field: "counter_bits", .. })
        ));
        let seed = SketchFingerprint { seed: a.seed ^ 0xFF, ..a };
        assert!(matches!(a.expect_matches(&seed), Err(MergeError::Seed { .. })));
        let est = SketchFingerprint { estimator: Estimator::Mlm, ..a };
        assert!(matches!(a.expect_matches(&est), Err(MergeError::Estimator { .. })));
    }

    #[test]
    fn merge_errors_render() {
        let a = fp();
        let seed = SketchFingerprint { seed: 7, ..a };
        let msg = a.expect_matches(&seed).unwrap_err().to_string();
        assert!(msg.contains("seed mismatch"), "{msg}");
        let est = SketchFingerprint { estimator: Estimator::Mlm, ..a };
        let msg = a.expect_matches(&est).unwrap_err().to_string();
        assert!(msg.contains("csm") && msg.contains("mlm"), "{msg}");
    }

    #[test]
    fn payload_roundtrips() {
        let p = SketchPayload {
            fingerprint: fp(),
            counters: vec![0, 1, u64::MAX >> 1, 42],
            total_added: 1_000,
            saturation_events: 3,
            evictions: 17,
        };
        let enc = p.encode();
        let dec = SketchPayload::decode(&enc).unwrap();
        assert_eq!(dec, p);
    }

    #[test]
    fn delta_between_diffs_only_changed_blocks() {
        let span = crate::sram::DIRTY_BLOCK_COUNTERS;
        let f = SketchFingerprint { counters: span * 3 + 5, ..fp() };
        let prev = SketchPayload {
            fingerprint: f,
            counters: vec![10; f.counters],
            total_added: 1_000,
            saturation_events: 1,
            evictions: 4,
        };
        let mut cur = prev.clone();
        cur.counters[3] += 7; // block 0
        cur.counters[span * 3 + 4] += 2; // the short tail block
        cur.total_added = 1_009;
        cur.saturation_events = 2;
        cur.evictions = 6;
        let d = SketchDelta::between(&prev, &cur, 42).unwrap();
        assert_eq!(d.base_epoch, 42);
        assert_eq!(d.total_added_delta, 9);
        assert_eq!(d.saturation_events_delta, 1);
        assert_eq!(d.evictions_delta, 2);
        assert_eq!(d.blocks.len(), 2);
        assert_eq!(d.blocks[0].0, 0);
        assert_eq!(d.blocks[0].1[3], 7);
        assert_eq!(d.blocks[1].0, 3);
        assert_eq!(d.blocks[1].1.len(), 5, "tail block is short");
        assert_eq!(d.blocks[1].1[4], 2);
        assert!(!d.is_empty());
        // Identical exports diff to the empty delta.
        assert!(SketchDelta::between(&prev, &prev, 42).unwrap().is_empty());
        // Foreign exports cannot diff.
        let foreign = SketchPayload {
            fingerprint: SketchFingerprint { seed: f.seed ^ 1, ..f },
            ..prev.clone()
        };
        assert!(matches!(
            SketchDelta::between(&prev, &foreign, 0),
            Err(MergeError::Seed { .. })
        ));
    }

    #[test]
    fn delta_roundtrips_and_rejects_malformed_frames() {
        let span = crate::sram::DIRTY_BLOCK_COUNTERS;
        let f = SketchFingerprint { counters: span * 2, ..fp() };
        let d = SketchDelta {
            fingerprint: f,
            base_epoch: 7,
            blocks: vec![(0, vec![1; span]), (1, vec![2; span])],
            total_added_delta: 3 * span as u64,
            saturation_events_delta: 0,
            evictions_delta: 5,
        };
        let enc = d.encode();
        assert_eq!(SketchDelta::decode(&enc).unwrap(), d);
        // Magic / version / truncation.
        assert_eq!(SketchDelta::decode(b"nope"), Err(PayloadError::BadMagic));
        assert_eq!(
            SketchDelta::decode(&enc[..enc.len() - 1]),
            Err(PayloadError::Truncated)
        );
        let mut wrong = enc.clone();
        wrong[4] = 0xEE;
        assert!(matches!(SketchDelta::decode(&wrong), Err(PayloadError::BadVersion(_))));
        // A full payload is not a delta.
        let full = SketchPayload {
            fingerprint: f,
            counters: vec![0; f.counters],
            total_added: 0,
            saturation_events: 0,
            evictions: 0,
        };
        assert_eq!(SketchDelta::decode(&full.encode()), Err(PayloadError::BadMagic));
        // Out-of-order and out-of-range blocks are structural errors.
        let unordered = SketchDelta {
            blocks: vec![(1, vec![2; span]), (0, vec![1; span])],
            ..d.clone()
        };
        assert!(matches!(
            SketchDelta::decode(&unordered.encode()),
            Err(PayloadError::Malformed("blocks not strictly ascending"))
        ));
        let out_of_range = SketchDelta { blocks: vec![(9, vec![1; span])], ..d.clone() };
        assert!(matches!(
            SketchDelta::decode(&out_of_range.encode()),
            Err(PayloadError::Malformed("block index out of range"))
        ));
    }

    #[test]
    fn increment_payload_merges_like_the_delta() {
        use crate::concurrent::ConcurrentCaesar;
        let cfg = CaesarConfig {
            cache_entries: 64,
            entry_capacity: 8,
            counters: 1024,
            k: 3,
            ..CaesarConfig::default()
        };
        let flows: Vec<u64> = (0..4_000u64)
            .map(|i| hashkit::mix::mix64(i % 97))
            .collect();
        let half = flows.len() / 2;
        let mut tap = ConcurrentCaesar::empty(cfg);
        tap.merge(&ConcurrentCaesar::build(cfg, 1, &flows[..half])).unwrap();
        let prev = tap.export_sketch();
        tap.merge(&ConcurrentCaesar::build(cfg, 1, &flows[half..])).unwrap();
        let cur = tap.export_sketch();
        let delta = SketchDelta::between(&prev, &cur, 3).unwrap();
        assert!(!delta.is_empty());

        let payload = delta.to_increment_payload();
        assert_eq!(payload.fingerprint, delta.fingerprint);
        assert_eq!(payload.counters.len(), cfg.counters);
        assert_eq!(payload.total_added, delta.total_added_delta);
        assert_eq!(payload.saturation_events, delta.saturation_events_delta);
        assert_eq!(payload.evictions, delta.evictions_delta);

        // Same aggregator state whichever wire form applies the
        // increment.
        let mut via_delta = ConcurrentCaesar::empty(cfg);
        via_delta.merge_sketch(&prev).unwrap();
        via_delta.merge_delta(&delta).unwrap();
        let mut via_payload = ConcurrentCaesar::empty(cfg);
        via_payload.merge_sketch(&prev).unwrap();
        via_payload.merge_sketch(&payload).unwrap();
        assert_eq!(via_delta.sram().snapshot(), via_payload.sram().snapshot());
        assert_eq!(via_delta.sram().total_added(), via_payload.sram().total_added());
        assert_eq!(via_delta.sram().saturations(), via_payload.sram().saturations());
        assert_eq!(via_delta.evictions(), via_payload.evictions());

        // An empty delta converts to the all-zero payload.
        let idle = SketchDelta::between(&cur, &cur, 4).unwrap();
        let zero = idle.to_increment_payload();
        assert!(zero.counters.iter().all(|&c| c == 0));
        assert_eq!(zero.total_added, 0);
    }

    #[test]
    fn payload_rejects_garbage() {
        assert_eq!(SketchPayload::decode(b"nope"), Err(PayloadError::BadMagic));
        let p = SketchPayload {
            fingerprint: fp(),
            counters: vec![1, 2, 3],
            total_added: 6,
            saturation_events: 0,
            evictions: 1,
        };
        let enc = p.encode();
        assert_eq!(
            SketchPayload::decode(&enc[..enc.len() - 1]),
            Err(PayloadError::Truncated)
        );
        let mut wrong = enc.clone();
        wrong[4] = 0xEE;
        assert!(matches!(
            SketchPayload::decode(&wrong),
            Err(PayloadError::BadVersion(_))
        ));
    }
}
