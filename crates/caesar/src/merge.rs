//! Mergeable sketches: the cluster-view primitive.
//!
//! CAESAR's shared-counter SRAM is *linear*: two sketches built with
//! the same geometry and seeds map every flow onto the same `k`
//! counters, so their counter arrays sum counter-wise and the union
//! queries exactly as if one box had seen both packet streams. That is
//! what turns N independent linecard engines into one cluster-wide
//! measurement view.
//!
//! The one place a naive counter-wise sum goes wrong is saturation: a
//! counter clamped at `max_value` on one node, summed past the clamp
//! during a merge, would silently read as an ordinary (unsaturated)
//! value and every sharing flow would be under-estimated with no
//! warning. Merging here is therefore *saturation-aware*: sums clamp
//! at `max_value`, each crossing is counted as a saturation event, and
//! both sides' prior event tallies fold into the result — so
//! [`crate::QueryHealth`] confidence degrades on the merged view
//! exactly as it would have on a single overloaded node.
//!
//! Mismatched configurations are rejected with a typed [`MergeError`]
//! instead of producing silently-wrong sums; [`SketchFingerprint`]
//! captures exactly the fields two sketches must share. The
//! wire-transportable form of a sketch is [`SketchPayload`] — what a
//! measurement node pushes to an aggregator (see the `service` crate).

use crate::config::{CaesarConfig, Estimator};
use support::bytesx::{ByteReader, PutBytes};

/// Everything two sketches must share for their counter arrays to be
/// summable *and* for the merged view to answer queries identically:
/// the SRAM geometry (`L`, counter width), the per-flow mapping
/// (`k`, master seed — the hash family), the estimator the view will
/// serve, and the cache capacity `y` the estimators' noise model uses.
///
/// Deliberately **not** part of the fingerprint: `cache_entries` and
/// the replacement policy. They shape *when* mass is evicted on each
/// node, not *where* it lands — taps with different on-chip budgets
/// still merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchFingerprint {
    /// Number of shared SRAM counters `L`.
    pub counters: usize,
    /// Bits per counter (fixes the clamp value).
    pub counter_bits: u32,
    /// Mapped counters per flow `k`.
    pub k: usize,
    /// Cache entry capacity `y` (an estimator parameter).
    pub entry_capacity: u64,
    /// Master seed — the whole hash family.
    pub seed: u64,
    /// Default estimator the merged view serves.
    pub estimator: Estimator,
}

/// Serialized size of a fingerprint (see
/// [`SketchFingerprint::encode_into`]).
pub const FINGERPRINT_BYTES: usize = 8 + 4 + 8 + 8 + 8 + 1;

impl SketchFingerprint {
    /// The fingerprint of a configuration.
    pub fn of(cfg: &CaesarConfig) -> Self {
        Self {
            counters: cfg.counters,
            counter_bits: cfg.counter_bits,
            k: cfg.k,
            entry_capacity: cfg.entry_capacity,
            seed: cfg.seed,
            estimator: cfg.estimator,
        }
    }

    /// FNV-1a fold of every field — a compact identity for logs and
    /// wire handshakes. Equal fingerprints have equal digests; a digest
    /// alone cannot name *which* field diverged (compare the structs
    /// for that).
    pub fn digest(&self) -> u64 {
        let mut buf = Vec::with_capacity(FINGERPRINT_BYTES);
        self.encode_into(&mut buf);
        hashkit::fnv::fnv1a64(&buf)
    }

    /// Typed compatibility check: `Ok(())` when `other` can merge into
    /// a sketch with this fingerprint, the first mismatching field as
    /// a [`MergeError`] otherwise.
    pub fn expect_matches(&self, other: &Self) -> Result<(), MergeError> {
        let geometry = [
            ("counters", self.counters as u64, other.counters as u64),
            ("counter_bits", u64::from(self.counter_bits), u64::from(other.counter_bits)),
            ("k", self.k as u64, other.k as u64),
            ("entry_capacity", self.entry_capacity, other.entry_capacity),
        ];
        for (field, ours, theirs) in geometry {
            if ours != theirs {
                return Err(MergeError::Geometry { field, ours, theirs });
            }
        }
        if self.seed != other.seed {
            return Err(MergeError::Seed { ours: self.seed, theirs: other.seed });
        }
        if self.estimator != other.estimator {
            return Err(MergeError::Estimator {
                ours: self.estimator,
                theirs: other.estimator,
            });
        }
        Ok(())
    }

    /// Append the fixed-width encoding ([`FINGERPRINT_BYTES`] bytes).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(self.counters as u64);
        buf.put_u32_le(self.counter_bits);
        buf.put_u64_le(self.k as u64);
        buf.put_u64_le(self.entry_capacity);
        buf.put_u64_le(self.seed);
        buf.push(match self.estimator {
            Estimator::Csm => 0,
            Estimator::Mlm => 1,
        });
    }

    /// Decode [`SketchFingerprint::encode_into`] output from a reader.
    /// `None` on truncation or an unknown estimator tag.
    pub fn decode_from(r: &mut ByteReader) -> Option<Self> {
        let counters = r.get_u64_le()? as usize;
        let counter_bits = r.get_u32_le()?;
        let k = r.get_u64_le()? as usize;
        let entry_capacity = r.get_u64_le()?;
        let seed = r.get_u64_le()?;
        let estimator = match r.get_u8()? {
            0 => Estimator::Csm,
            1 => Estimator::Mlm,
            _ => return None,
        };
        Some(Self { counters, counter_bits, k, entry_capacity, seed, estimator })
    }
}

/// Why two sketches refused to merge. Every variant names what this
/// side expected (`ours`) and what the other side carried (`theirs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// A geometry field differs (counter count, width, `k`, or `y`).
    Geometry {
        /// Which field diverged.
        field: &'static str,
        /// This side's value.
        ours: u64,
        /// The other side's value.
        theirs: u64,
    },
    /// The master seeds differ — the hash families map flows to
    /// different counters, so summing would mix unrelated flows.
    Seed {
        /// This side's seed.
        ours: u64,
        /// The other side's seed.
        theirs: u64,
    },
    /// The default estimators differ — merged queries would silently
    /// answer with a different de-noising model than the pushing node
    /// calibrated for.
    Estimator {
        /// This side's estimator.
        ours: Estimator,
        /// The other side's estimator.
        theirs: Estimator,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Geometry { field, ours, theirs } => {
                write!(f, "sketch geometry mismatch: {field} is {ours} here, {theirs} there")
            }
            MergeError::Seed { ours, theirs } => {
                write!(f, "sketch seed mismatch: {ours:#x} here, {theirs:#x} there")
            }
            MergeError::Estimator { ours, theirs } => write!(
                f,
                "sketch estimator mismatch: {} here, {} there",
                ours.name(),
                theirs.name()
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Magic prefix of an encoded [`SketchPayload`].
pub const PAYLOAD_MAGIC: &[u8; 4] = b"CSKP";
/// Current payload encoding version.
pub const PAYLOAD_VERSION: u16 = 1;

/// Errors from decoding a [`SketchPayload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadError {
    /// Stream did not start with [`PAYLOAD_MAGIC`].
    BadMagic,
    /// Unknown encoding version.
    BadVersion(u16),
    /// Fewer bytes than the header promised, or a malformed field.
    Truncated,
}

impl std::fmt::Display for PayloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PayloadError::BadMagic => write!(f, "not a sketch payload"),
            PayloadError::BadVersion(v) => write!(f, "unsupported sketch payload version {v}"),
            PayloadError::Truncated => write!(f, "sketch payload truncated"),
        }
    }
}

impl std::error::Error for PayloadError {}

/// The wire-transportable state of one node's sketch: fingerprint,
/// frozen counters, and the tallies the merged view must fold to stay
/// honest. This is what `PushSketch` carries in the service protocol
/// and what [`crate::ConcurrentCaesar::merge_sketch`] consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchPayload {
    /// Identity of the producing configuration.
    pub fingerprint: SketchFingerprint,
    /// The `L` frozen counter values.
    pub counters: Vec<u64>,
    /// Units offered to the producing array (the estimators' `n`).
    pub total_added: u64,
    /// Saturating-add events the producer observed.
    pub saturation_events: u64,
    /// Eviction events behind those counters (diagnostics).
    pub evictions: u64,
}

impl SketchPayload {
    /// Fixed-width binary encoding (little-endian throughout):
    ///
    /// ```text
    /// magic "CSKP", version u16
    /// fingerprint (FINGERPRINT_BYTES)
    /// total_added u64, saturation_events u64, evictions u64
    /// num_counters u64, then each counter u64
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4 + 2 + FINGERPRINT_BYTES + 32 + self.counters.len() * 8);
        buf.put_slice(PAYLOAD_MAGIC);
        buf.put_u16_le(PAYLOAD_VERSION);
        self.fingerprint.encode_into(&mut buf);
        buf.put_u64_le(self.total_added);
        buf.put_u64_le(self.saturation_events);
        buf.put_u64_le(self.evictions);
        buf.put_u64_le(self.counters.len() as u64);
        for &c in &self.counters {
            buf.put_u64_le(c);
        }
        buf
    }

    /// Decode [`SketchPayload::encode`] output.
    pub fn decode(data: &[u8]) -> Result<Self, PayloadError> {
        let mut r = ByteReader::new(data);
        let magic = r.get_array::<4>().ok_or(PayloadError::BadMagic)?;
        if &magic != PAYLOAD_MAGIC {
            return Err(PayloadError::BadMagic);
        }
        let version = r.get_u16_le().ok_or(PayloadError::Truncated)?;
        if version != PAYLOAD_VERSION {
            return Err(PayloadError::BadVersion(version));
        }
        let fingerprint =
            SketchFingerprint::decode_from(&mut r).ok_or(PayloadError::Truncated)?;
        let total_added = r.get_u64_le().ok_or(PayloadError::Truncated)?;
        let saturation_events = r.get_u64_le().ok_or(PayloadError::Truncated)?;
        let evictions = r.get_u64_le().ok_or(PayloadError::Truncated)?;
        let num = r.get_u64_le().ok_or(PayloadError::Truncated)? as usize;
        if r.remaining() < num.saturating_mul(8) {
            return Err(PayloadError::Truncated);
        }
        let mut counters = Vec::with_capacity(num);
        for _ in 0..num {
            counters.push(r.get_u64_le().ok_or(PayloadError::Truncated)?);
        }
        Ok(Self { fingerprint, counters, total_added, saturation_events, evictions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> SketchFingerprint {
        SketchFingerprint::of(&CaesarConfig::default())
    }

    #[test]
    fn fingerprint_roundtrips_and_digests_stably() {
        let a = fp();
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        assert_eq!(buf.len(), FINGERPRINT_BYTES);
        let b = SketchFingerprint::decode_from(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let other = SketchFingerprint { seed: a.seed ^ 1, ..a };
        assert_ne!(a.digest(), other.digest());
    }

    #[test]
    fn expect_matches_names_the_diverging_field() {
        let a = fp();
        assert_eq!(a.expect_matches(&a), Ok(()));
        let geo = SketchFingerprint { counters: a.counters + 1, ..a };
        assert!(matches!(
            a.expect_matches(&geo),
            Err(MergeError::Geometry { field: "counters", .. })
        ));
        let width = SketchFingerprint { counter_bits: a.counter_bits - 1, ..a };
        assert!(matches!(
            a.expect_matches(&width),
            Err(MergeError::Geometry { field: "counter_bits", .. })
        ));
        let seed = SketchFingerprint { seed: a.seed ^ 0xFF, ..a };
        assert!(matches!(a.expect_matches(&seed), Err(MergeError::Seed { .. })));
        let est = SketchFingerprint { estimator: Estimator::Mlm, ..a };
        assert!(matches!(a.expect_matches(&est), Err(MergeError::Estimator { .. })));
    }

    #[test]
    fn merge_errors_render() {
        let a = fp();
        let seed = SketchFingerprint { seed: 7, ..a };
        let msg = a.expect_matches(&seed).unwrap_err().to_string();
        assert!(msg.contains("seed mismatch"), "{msg}");
        let est = SketchFingerprint { estimator: Estimator::Mlm, ..a };
        let msg = a.expect_matches(&est).unwrap_err().to_string();
        assert!(msg.contains("csm") && msg.contains("mlm"), "{msg}");
    }

    #[test]
    fn payload_roundtrips() {
        let p = SketchPayload {
            fingerprint: fp(),
            counters: vec![0, 1, u64::MAX >> 1, 42],
            total_added: 1_000,
            saturation_events: 3,
            evictions: 17,
        };
        let enc = p.encode();
        let dec = SketchPayload::decode(&enc).unwrap();
        assert_eq!(dec, p);
    }

    #[test]
    fn payload_rejects_garbage() {
        assert_eq!(SketchPayload::decode(b"nope"), Err(PayloadError::BadMagic));
        let p = SketchPayload {
            fingerprint: fp(),
            counters: vec![1, 2, 3],
            total_added: 6,
            saturation_events: 0,
            evictions: 1,
        };
        let enc = p.encode();
        assert_eq!(
            SketchPayload::decode(&enc[..enc.len() - 1]),
            Err(PayloadError::Truncated)
        );
        let mut wrong = enc.clone();
        wrong[4] = 0xEE;
        assert!(matches!(
            SketchPayload::decode(&wrong),
            Err(PayloadError::BadVersion(_))
        ));
    }
}
